#!/usr/bin/env python3
"""Quickstart: one overcommitted guest, with and without VSwapper.

Builds a machine, gives a guest that believes it has 512 MB only
100 MB of actual memory, runs a sequential file read, and prints how
uncooperative swapping behaves under each configuration -- the paper's
Figure 3 scenario in a dozen lines of library code.

Run:  python examples/quickstart.py
"""

from repro import (
    Machine,
    MachineConfig,
    GuestConfig,
    VmConfig,
    VSwapperConfig,
    VmDriver,
)
from repro.units import mib_pages
from repro.workloads import SysbenchFileRead

#: Divide all sizes by this to keep the demo snappy.
SCALE = 4

CONFIGS = [
    ("baseline (uncooperative swap)", VSwapperConfig.off(), False),
    ("swap mapper only", VSwapperConfig.mapper_only(), False),
    ("full vswapper", VSwapperConfig.full(), False),
    ("balloon + baseline", VSwapperConfig.off(), True),
]


def run_one(label: str, vswapper: VSwapperConfig, ballooned: bool) -> None:
    machine = Machine(MachineConfig())
    guest_pages = mib_pages(512 / SCALE)
    actual_pages = mib_pages(100 / SCALE)

    vm = machine.create_vm(VmConfig(
        name="demo",
        guest=GuestConfig(
            memory_pages=guest_pages,
            kernel_reserve_pages=mib_pages(16 / SCALE),
            guest_swap_pages=mib_pages(256 / SCALE),
        ),
        vswapper=vswapper,
        resident_limit_pages=actual_pages,   # the cgroup-style grant
    ))
    machine.boot_guest(vm)                   # uptime history
    if ballooned:
        # A cooperative guest: the balloon tells it the truth.
        machine.apply_static_balloon(vm, guest_pages - actual_pages)

    vm.guest.fs.create_file("sysbench.dat", mib_pages(200 / SCALE))
    driver = VmDriver(machine, vm, SysbenchFileRead(
        file_pages=mib_pages(200 / SCALE), iterations=1))
    machine.run()

    counters = vm.counters
    print(f"{label:32s} runtime {driver.runtime:7.2f}s | "
          f"stale reads {counters.stale_reads:5d} | "
          f"swap sectors written {counters.swap_sectors_written:7d} | "
          f"disk ops {counters.disk_ops:5d}")


def main() -> None:
    print("Guest believes it has 512MB; the host grants 100MB.\n")
    for label, vswapper, ballooned in CONFIGS:
        run_one(label, vswapper, ballooned)
    print("\nVSwapper makes uncooperative swapping nearly as good as")
    print("cooperative ballooning -- without touching the guest.")


if __name__ == "__main__":
    main()
