#!/usr/bin/env python3
"""Consolidation planning: how many guests fit on this cluster?

The paper's motivation is consolidation density: "the number of guests
one host can support is typically limited by the physical memory size."
This example runs the ``cluster`` experiment -- 4/8/16 phased
MapReduce guests placed across a four-node cluster per placement
policy -- and reports, per memory-management configuration, the
largest fleet whose average slowdown against the unloaded singleton
stays under a target: the capacity-planning question an operator
would actually ask of this library.

Because it rides the sweep layer, the run parallelizes with ``--jobs``
and caches into ``--results-dir`` (rerun with ``--resume`` for free
regeneration), and the unloaded singleton is one shared cell per
configuration rather than re-measured per fleet size.

Run:  python examples/consolidation_planner.py [--scale N] [--jobs N]
          [--results-dir DIR [--resume]]
"""

import argparse

from repro.exec.executor import make_executor
from repro.exec.store import ResultStore
from repro.experiments.cluster import FLEET_SIZES, run_cluster_experiment

#: Accept fleets whose average runtime is within this factor of an
#: unloaded single guest.
SLOWDOWN_BUDGET = 1.5


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale", type=int, default=16,
        help="divide all sizes by this (default: 16, demo-snappy)")
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the sweep (default: 1)")
    parser.add_argument(
        "--results-dir", default=None,
        help="persist cells/figures here (enables caching)")
    parser.add_argument(
        "--resume", action="store_true",
        help="serve already-stored cells from the cache")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    store = ResultStore(args.results_dir) if args.results_dir else None
    if args.resume and store is None:
        raise SystemExit("--resume requires --results-dir")

    print(f"Cluster: four 4GB nodes (scaled 1/{args.scale}), overcommit "
          f"ratio 2.0, swap budgets 512MB; guests: 2GB MapReduce.")
    print(f"Capacity = most guests with average slowdown "
          f"<= {SLOWDOWN_BUDGET}x the unloaded singleton.\n")

    result = run_cluster_experiment(
        scale=args.scale,
        executor=make_executor(args.jobs),
        store=store,
        resume=args.resume,
    )

    sizes = tuple(str(n) for n in FLEET_SIZES)
    for config, by_policy in result.series.items():
        for policy, rows in by_policy.items():
            if policy == "solo":
                continue
            capacity = 0
            worst = None
            for n in sizes:
                slowdown = rows[n]["slowdown"]
                if slowdown is None:  # the fleet did not fit
                    continue
                worst = slowdown
                if rows[n]["oom_kills"] == 0 \
                        and slowdown <= SLOWDOWN_BUDGET:
                    capacity = int(n)
            worst_text = "-" if worst is None else f"{worst:4.2f}x"
            print(f"{config:14s} {policy:10s} capacity: {capacity:2d} "
                  f"guests (worst completed slowdown: {worst_text})")

    stats = result.stats
    if stats is not None:
        print(f"\n[{stats.cells} cells: {stats.executed} executed, "
              f"{stats.cached} cached]")
    print("\nVSwapper configurations sustain deeper overcommitment at")
    print("the same service level -- the paper's consolidation claim.")


if __name__ == "__main__":
    main()
