#!/usr/bin/env python3
"""Consolidation planning: how many guests fit on this host?

The paper's motivation is consolidation density: "the number of guests
one host can support is typically limited by the physical memory size."
This example sweeps the number of phased MapReduce guests on a fixed
host and reports, per memory-management configuration, the largest
fleet whose average slowdown stays under a target -- the capacity
planning question an operator would actually ask of this library.

Run:  python examples/consolidation_planner.py
"""

from repro.experiments.dynamic import run_phased
from repro.experiments.runner import ConfigName, standard_configs

#: Divide all sizes by this to keep the demo snappy.
SCALE = 16

#: Accept fleets whose average runtime is within this factor of an
#: unloaded single guest.
SLOWDOWN_BUDGET = 1.5

CONFIGS = (
    ConfigName.BASELINE,
    ConfigName.BALLOON_BASELINE,
    ConfigName.VSWAPPER,
    ConfigName.BALLOON_VSWAPPER,
)


def main() -> None:
    print(f"Host: 8GB for guests (scaled 1/{SCALE}); guests: 2GB "
          f"MapReduce, starting 10s apart.")
    print(f"Capacity = most guests with average slowdown "
          f"<= {SLOWDOWN_BUDGET}x.\n")

    fleet_sizes = (1, 2, 4, 6, 8, 10)
    for spec in standard_configs(CONFIGS):
        unloaded = None
        capacity = 0
        last_average = None
        for n in fleet_sizes:
            outcome = run_phased(spec, num_guests=n, scale=SCALE)
            average = outcome.average_runtime
            if unloaded is None:
                unloaded = average
            last_average = average
            if outcome.crashes == 0 and average <= SLOWDOWN_BUDGET * unloaded:
                capacity = n
        print(f"{spec.name.value:14s} capacity: {capacity:2d} guests "
              f"(at 10 guests: {last_average:6.1f}s avg, "
              f"{last_average / unloaded:4.1f}x slowdown)")

    print("\nVSwapper configurations sustain deeper overcommitment at")
    print("the same service level -- the paper's consolidation claim.")


if __name__ == "__main__":
    main()
