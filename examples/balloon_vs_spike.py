#!/usr/bin/env python3
"""Balloon responsiveness under a demand spike (paper Section 2.3).

A quiet guest is ballooned down by the manager; then its workload
suddenly builds a large working set.  The example traces, over virtual
time, the balloon size against the guest's demand -- showing the lag
window during which the host must fall back on uncooperative swapping,
and how much that window costs with and without VSwapper.

Run:  python examples/balloon_vs_spike.py
"""

from repro import (
    Machine,
    MachineConfig,
    GuestConfig,
    HostConfig,
    VmConfig,
    VSwapperConfig,
    VmDriver,
)
from repro.balloon import BalloonManager, BalloonPolicy, ManagerConfig
from repro.metrics.timeline import Timeline
from repro.sim.ops import Alloc, Compute, Touch
from repro.units import mib_pages
from repro.workloads.base import Workload

#: Divide all sizes by this to keep the demo snappy.
SCALE = 8


class WarmFileServer(Workload):
    """Fills its page cache from a file, then serves lightly.

    Its memory is mostly *idle clean cache* -- exactly what a balloon
    manager wants to reclaim when a neighbour spikes.
    """

    name = "warm-file-server"

    def __init__(self, file_pages: int, seconds: float):
        self.file_pages = file_pages
        self.seconds = seconds

    def operations(self):
        from repro.sim.ops import FileRead
        offset = 0
        while offset < self.file_pages:
            length = min(256, self.file_pages - offset)
            yield FileRead("corpus", offset, length)
            offset += length
        elapsed = 0.0
        while elapsed < self.seconds:
            yield FileRead("corpus", 0, min(64, self.file_pages))
            yield Compute(0.5)
            elapsed += 0.5


class QuietThenSpike(Workload):
    """Idle for a while, then rapidly build a big table."""

    name = "quiet-then-spike"
    threads = 2

    def __init__(self, idle_seconds: float, table_pages: int):
        self.idle_seconds = idle_seconds
        self.table_pages = table_pages

    def operations(self):
        elapsed = 0.0
        while elapsed < self.idle_seconds:
            yield Compute(0.5)
            elapsed += 0.5
        yield Alloc("tables", self.table_pages)
        offset = 0
        while offset < self.table_pages:
            length = min(256, self.table_pages - offset)
            yield Touch("tables", offset, length, write=True)
            yield Compute(0.05)
            offset += length
        for _ in range(10):
            yield Touch("tables", 0, min(1024, self.table_pages))
            yield Compute(0.3)


def run(vswapper: VSwapperConfig):
    machine = Machine(MachineConfig(host=HostConfig(
        total_memory_pages=mib_pages(1600 / SCALE),
        swap_size_pages=mib_pages(8192 / SCALE),
    )))
    # A neighbour VM occupies most of the host.
    neighbour = machine.create_vm(VmConfig(
        name="neighbour",
        guest=GuestConfig(memory_pages=mib_pages(1536 / SCALE),
                          kernel_reserve_pages=mib_pages(16 / SCALE),
                          guest_swap_pages=mib_pages(512 / SCALE)),
        vswapper=vswapper,
        image_size_pages=mib_pages(4096 / SCALE),
    ))
    machine.boot_guest(neighbour, fraction=0.4)
    # The neighbour serves a warm file cache; its balloon driver stays
    # responsive through its (light) activity.
    neighbour.guest.fs.create_file(
        "corpus", mib_pages(1200 / SCALE))
    VmDriver(machine, neighbour, WarmFileServer(
        file_pages=mib_pages(1200 / SCALE), seconds=400.0))

    vm = machine.create_vm(VmConfig(
        name="spiker",
        guest=GuestConfig(memory_pages=mib_pages(1024 / SCALE),
                          kernel_reserve_pages=mib_pages(16 / SCALE),
                          guest_swap_pages=mib_pages(512 / SCALE)),
        vswapper=vswapper,
        image_size_pages=mib_pages(4096 / SCALE),
    ))
    machine.boot_guest(vm, fraction=0.3)

    workload = QuietThenSpike(
        idle_seconds=30.0 / SCALE * 8,
        table_pages=mib_pages(700 / SCALE))
    driver = VmDriver(machine, vm, workload)
    BalloonManager(machine, ManagerConfig(
        poll_interval=5.0,
        policy=BalloonPolicy(host_pressure_evictions=64)))

    timeline = Timeline()
    timeline.register(
        "balloon", lambda: neighbour.guest.balloon_size)
    timeline.register("demand", lambda: vm.guest.committed_pages())
    timeline.register(
        "host_swapins", lambda: vm.counters.guest_context_faults)
    machine.engine.add_periodic(
        2.0, lambda: timeline.sample_all(machine.now))
    while not driver.done:
        machine.engine.run(until=machine.now + 30.0)
    machine.engine.stop()
    return driver, machine, timeline


def main() -> None:
    for label, vswapper in (("baseline fallback", VSwapperConfig.off()),
                            ("vswapper fallback", VSwapperConfig.full())):
        driver, machine, timeline = run(vswapper)
        times, balloon = timeline.series("balloon")
        _t, demand = timeline.series("demand")
        totals = machine.aggregate_counters()
        print(f"=== {label}: spike workload finished in "
              f"{driver.runtime:.1f}s; machine-wide "
              f"{totals['swap_sectors_written']} swap sectors written, "
              f"{totals['guest_context_faults']} major faults")
        print("  time   neighbour-balloon[p]  spiker-demand[p]")
        for i in range(0, len(times), max(1, len(times) // 10)):
            print(f"  {times[i]:5.0f}  {balloon[i]:10.0f} "
                  f" {demand[i]:9.0f}")
        print()
    print("The balloon trails the spike; VSwapper cheapens the window.")


if __name__ == "__main__":
    main()
