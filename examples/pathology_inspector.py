#!/usr/bin/env python3
"""Pathology inspector: decompose *why* uncooperative swapping is slow.

Runs one overcommitted workload and attributes the observable damage to
the paper's five named pathologies (Section 3), then shows which of
them each VSwapper component eliminates -- a diagnosis tool built on
the library's counters.

Run:  python examples/pathology_inspector.py
"""

from repro import (
    Machine,
    MachineConfig,
    GuestConfig,
    VmConfig,
    VSwapperConfig,
    VmDriver,
)
from repro.units import mib_pages
from repro.workloads import SysbenchThenAlloc

#: Divide all sizes by this to keep the demo snappy.
SCALE = 4


def run_config(vswapper: VSwapperConfig):
    machine = Machine(MachineConfig())
    vm = machine.create_vm(VmConfig(
        name="probe",
        guest=GuestConfig(
            memory_pages=mib_pages(512 / SCALE),
            kernel_reserve_pages=mib_pages(16 / SCALE),
            guest_swap_pages=mib_pages(256 / SCALE),
        ),
        vswapper=vswapper,
        resident_limit_pages=mib_pages(100 / SCALE),
    ))
    machine.boot_guest(vm)
    vm.guest.fs.create_file("sysbench.dat", mib_pages(200 / SCALE))
    workload = SysbenchThenAlloc(
        file_pages=mib_pages(200 / SCALE),
        alloc_pages=mib_pages(150 / SCALE))
    driver = VmDriver(machine, vm, workload)
    machine.run()
    return driver, vm


def report(title: str, vswapper: VSwapperConfig) -> None:
    driver, vm = run_config(vswapper)
    c = vm.counters
    silent_pct = (100 * c.silent_swap_writes * 8
                  / max(1, c.swap_sectors_written))
    print(f"--- {title} "
          f"({'crashed' if driver.crashed else f'{driver.runtime:.1f}s'})")
    print(f"  silent swap writes    : {c.silent_swap_writes:6d} pages "
          f"({silent_pct:.0f}% of swap write traffic)")
    print(f"  stale swap reads      : {c.stale_reads:6d}")
    print(f"  false swap reads      : {c.false_reads:6d}")
    print(f"  decayed sequentiality : {c.guest_context_faults:6d} "
          f"major guest faults")
    print(f"  false page anonymity  : {c.hypervisor_code_faults:6d} "
          f"hypervisor-code refaults")
    if c.preventer_remaps or c.mapper_discards:
        print(f"  [vswapper at work]    : {c.mapper_discards} discards, "
              f"{c.preventer_remaps} preventer remaps, "
              f"{c.mapper_invalidations} consistency invalidations")
    print()


def main() -> None:
    print("Attribution of uncooperative-swapping damage "
          "(Section 3 pathologies)\n")
    report("baseline", VSwapperConfig.off())
    report("mapper only (kills silent writes, stale reads, decay, "
           "anonymity)", VSwapperConfig.mapper_only())
    report("full vswapper (adds the false-read preventer)",
           VSwapperConfig.full())


if __name__ == "__main__":
    main()
