"""Legacy setup shim for offline editable installs (no wheel package)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'VSwapper: A Memory Swapper for Virtualized "
        "Environments' (ASPLOS 2014) as a full-system simulation"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    entry_points={
        "console_scripts": ["vswapper-repro = repro.cli:main"],
    },
)
