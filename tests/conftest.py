"""Shared fixtures: small machines, VMs, and workload helpers."""

from __future__ import annotations

import pytest

from repro.config import (
    GuestConfig,
    HostConfig,
    MachineConfig,
    VmConfig,
    VSwapperConfig,
)
from repro.machine import Machine
from repro.units import mib_pages


def small_machine_config(**host_overrides) -> MachineConfig:
    """A machine sized for fast tests."""
    host_defaults = dict(
        total_memory_pages=mib_pages(256),
        swap_size_pages=mib_pages(512),
        hypervisor_code_pages=16,
        code_pages_per_io=2,
        code_pages_per_fault=1,
        reclaim_noise=0.0,   # determinism unless a test wants noise
    )
    host_defaults.update(host_overrides)
    return MachineConfig(host=HostConfig(**host_defaults))


def small_guest_config(**overrides) -> GuestConfig:
    """A guest sized for fast tests (16 MiB of believed memory)."""
    defaults = dict(
        memory_pages=mib_pages(16),
        kernel_reserve_pages=mib_pages(1),
        guest_swap_pages=mib_pages(8),
        allocator_window=1,  # strict LIFO: deterministic tests
    )
    defaults.update(overrides)
    return GuestConfig(**defaults)


def small_vm_config(*, vswapper: VSwapperConfig | None = None,
                    resident_limit_mib: float | None = None,
                    guest: GuestConfig | None = None,
                    name: str = "vm0") -> VmConfig:
    """A VM config matching :func:`small_guest_config`."""
    return VmConfig(
        name=name,
        guest=guest or small_guest_config(),
        vswapper=vswapper or VSwapperConfig.off(),
        image_size_pages=mib_pages(64),
        resident_limit_pages=(
            None if resident_limit_mib is None
            else mib_pages(resident_limit_mib)),
    )


@pytest.fixture
def machine() -> Machine:
    """A small, deterministic machine."""
    return Machine(small_machine_config())


@pytest.fixture
def vm(machine: Machine):
    """A small baseline VM with no resident limit."""
    return machine.create_vm(small_vm_config())


@pytest.fixture
def tight_vm(machine: Machine):
    """A VM whose host grant (4 MiB) is far below its belief (16 MiB)."""
    return machine.create_vm(small_vm_config(resident_limit_mib=4))


@pytest.fixture
def vswapper_vm(machine: Machine):
    """A tight VM running the full VSwapper."""
    return machine.create_vm(small_vm_config(
        vswapper=VSwapperConfig.full(), resident_limit_mib=4))
