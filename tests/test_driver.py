"""VM driver: timing, phases, crashes, overlap."""

import pytest

from repro.config import GuestOsKind
from repro.driver import VmDriver, fault_overlap_for
from repro.machine import Machine
from repro.sim.ops import Alloc, Compute, MarkPhase, Touch
from repro.workloads.base import Workload
from tests.conftest import (
    small_guest_config,
    small_machine_config,
    small_vm_config,
)


class ScriptedWorkload(Workload):
    """Yields a fixed list of operations."""

    name = "scripted"

    def __init__(self, ops, threads=1, min_resident_pages=0):
        self.ops = ops
        self.threads = threads
        self.min_resident_pages = min_resident_pages

    def operations(self):
        yield from self.ops


def test_runtime_matches_compute_total(machine, vm):
    driver = VmDriver(machine, vm, ScriptedWorkload(
        [Compute(1.0), Compute(2.0)]))
    machine.run()
    assert driver.done
    assert driver.runtime == pytest.approx(3.0)


def test_runtime_unfinished_raises(machine, vm):
    driver = VmDriver(machine, vm, ScriptedWorkload([Compute(1.0)]))
    with pytest.raises(RuntimeError):
        _ = driver.runtime


def test_phase_callback_invoked(machine, vm):
    marks = []
    driver = VmDriver(
        machine, vm,
        ScriptedWorkload([MarkPhase("a", {"k": 1}), Compute(1.0),
                          MarkPhase("b")]),
        phase_callback=lambda name, payload, t: marks.append(
            (name, payload, t)))
    machine.run()
    assert [m[0] for m in marks] == ["a", "b"]
    assert marks[0][1] == {"k": 1}
    assert marks[1][2] == pytest.approx(1.0)


def test_min_resident_set_at_start(machine, vm):
    VmDriver(machine, vm, ScriptedWorkload(
        [Compute(0.1)], min_resident_pages=500))
    machine.run()
    assert vm.guest.workload_min_resident == 500


def test_start_delay(machine, vm):
    driver = VmDriver(machine, vm, ScriptedWorkload([Compute(1.0)]),
                      start_delay=5.0)
    machine.run()
    assert driver.started_at == 5.0
    assert driver.finished_at == pytest.approx(6.0)


def test_crash_on_oom(machine):
    guest = small_guest_config()
    vm = machine.create_vm(small_vm_config(guest=guest))
    # Demand a resident set bigger than the guest: killed at the spike.
    spike = MarkPhase("spike", {
        "min_resident_pages": guest.memory_pages * 2})
    driver = VmDriver(machine, vm, ScriptedWorkload(
        [Compute(0.1), spike, Compute(10.0)]))
    machine.run()
    assert driver.crashed
    assert driver.done
    # The post-spike compute never ran.
    assert driver.finished_at < 5.0


def test_driver_applies_pending_balloon_target(machine, vm):
    driver = VmDriver(machine, vm, ScriptedWorkload(
        [Compute(0.1)] * 5))
    vm.guest.set_balloon_target(512)
    machine.run()
    assert driver.done
    assert vm.guest.balloon_size == 512


def test_fault_overlap_for():
    assert fault_overlap_for(1, True) == 1.0
    assert fault_overlap_for(8, False) == 1.0
    assert fault_overlap_for(2, True) == 0.5
    assert fault_overlap_for(4, True) == 0.5  # floor


def test_windows_guest_gets_no_overlap(machine):
    guest = small_guest_config(os_kind=GuestOsKind.WINDOWS)
    vm = machine.create_vm(small_vm_config(guest=guest))
    VmDriver(machine, vm, ScriptedWorkload([Compute(0.1)], threads=8))
    assert vm.fault_overlap == 1.0


def test_linux_multithreaded_gets_overlap(machine, vm):
    VmDriver(machine, vm, ScriptedWorkload([Compute(0.1)], threads=8))
    assert vm.fault_overlap == 0.5


def test_multiple_drivers_interleave():
    machine = Machine(small_machine_config())
    a = machine.create_vm(small_vm_config(name="a"))
    b = machine.create_vm(small_vm_config(name="b"))
    da = VmDriver(machine, a, ScriptedWorkload([Compute(1.0)] * 3))
    db = VmDriver(machine, b, ScriptedWorkload([Compute(1.0)] * 3),
                  start_delay=0.5)
    machine.run()
    assert da.done and db.done
    assert da.runtime == pytest.approx(3.0)
    assert db.runtime == pytest.approx(3.0)
