"""FaultPlan determinism, the circuit breaker, and config validation."""

import pytest

from repro.config import FaultConfig
from repro.errors import ConfigError
from repro.faults.breaker import CircuitBreaker
from repro.faults.plan import (
    FaultPlan,
    default_fault_config,
    set_default_fault_config,
)
from repro.sim.rng import DeterministicRng


def make_plan(seed=7, **overrides):
    defaults = dict(enabled=True, disk_transient_error_rate=0.3,
                    disk_latency_spike_rate=0.2,
                    swap_read_error_rate=0.3,
                    mapper_invalidation_rate=0.3)
    defaults.update(overrides)
    return FaultPlan(FaultConfig(**defaults), DeterministicRng(seed))


def test_same_seed_same_schedule():
    a = make_plan(seed=11)
    b = make_plan(seed=11)
    draws_a = [(a.disk_transient_error(), a.swap_read_failure(),
                a.mapper_invalidation()) for _ in range(100)]
    draws_b = [(b.disk_transient_error(), b.swap_read_failure(),
                b.mapper_invalidation()) for _ in range(100)]
    assert draws_a == draws_b


def test_different_seeds_diverge():
    a = make_plan(seed=11)
    b = make_plan(seed=12)
    draws_a = [a.disk_transient_error() for _ in range(100)]
    draws_b = [b.disk_transient_error() for _ in range(100)]
    assert draws_a != draws_b


def test_layers_draw_from_independent_substreams():
    """Consuming one layer's stream must not shift another's."""
    a = make_plan(seed=11)
    b = make_plan(seed=11)
    for _ in range(50):
        a.disk_transient_error()  # only a consumes the disk stream
    draws_a = [a.swap_read_failure() for _ in range(50)]
    draws_b = [b.swap_read_failure() for _ in range(50)]
    assert draws_a == draws_b


def test_disabled_plan_never_faults():
    plan = make_plan(enabled=False, disk_transient_error_rate=1.0,
                     disk_latency_spike_rate=1.0,
                     disk_torn_write_rate=1.0,
                     swap_read_error_rate=1.0,
                     swap_slot_corruption_rate=1.0,
                     mapper_invalidation_rate=1.0)
    assert not plan.enabled
    assert not plan.disk_transient_error()
    assert plan.disk_latency_spike() == 0.0
    assert not plan.disk_torn_write()
    assert not plan.swap_read_failure()
    assert not plan.swap_slot_corrupted()
    assert not plan.mapper_invalidation()


def test_chaos_preset_is_valid_and_enabled():
    cfg = FaultConfig.chaos()
    cfg.validate()
    assert cfg.enabled
    assert cfg.watchdog_max_events is not None


def test_config_rejects_bad_rates():
    with pytest.raises(ConfigError):
        FaultConfig(disk_transient_error_rate=1.5).validate()
    with pytest.raises(ConfigError):
        FaultConfig(max_retries=-1).validate()
    with pytest.raises(ConfigError):
        FaultConfig(backoff_factor=0.5).validate()
    with pytest.raises(ConfigError):
        FaultConfig(mapper_breaker_threshold=0).validate()
    with pytest.raises(ConfigError):
        FaultConfig(watchdog_max_events=0).validate()


def test_default_fault_config_round_trip():
    assert default_fault_config() is None
    cfg = FaultConfig.chaos()
    set_default_fault_config(cfg)
    try:
        assert default_fault_config() is cfg
    finally:
        set_default_fault_config(None)
    assert default_fault_config() is None


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------

def test_breaker_trips_once_at_threshold():
    breaker = CircuitBreaker(3)
    assert not breaker.record()
    assert not breaker.record()
    assert breaker.record()       # the trip
    assert breaker.tripped
    assert not breaker.record()   # already open: no second trip
    assert breaker.count == 4


def test_breaker_rejects_bad_threshold():
    with pytest.raises(ValueError):
        CircuitBreaker(0)


def test_plan_builds_breakers_at_configured_threshold():
    plan = make_plan(mapper_breaker_threshold=5)
    breaker = plan.new_breaker()
    assert breaker.threshold == 5
    assert not breaker.tripped


# ----------------------------------------------------------------------
# store fault config
# ----------------------------------------------------------------------

def test_store_fault_config_validates_rates_and_bounds():
    from repro.faults.plan import StoreFaultConfig, StoreFaultPoint

    StoreFaultConfig().validate()
    StoreFaultConfig.chaos(rate=1.0).validate()
    with pytest.raises(ConfigError):
        StoreFaultConfig(enabled=True, torn_write_rate=1.5).validate()
    with pytest.raises(ConfigError):
        StoreFaultConfig(enabled=True,
                         crash_before_rename_rate=-0.1).validate()
    with pytest.raises(ConfigError):
        StoreFaultConfig(enabled=True, lock_stall_seconds=-1.0).validate()
    with pytest.raises(ConfigError):
        StoreFaultConfig(enabled=True, max_strikes=0).validate()
    # Every crash point maps to exactly one configured rate.
    config = StoreFaultConfig.chaos(rate=0.125)
    assert {config.rate_for(point) for point in StoreFaultPoint} == {0.125}
