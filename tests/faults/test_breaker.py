"""CircuitBreaker: threshold boundaries, single trip, reset re-arming."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.breaker import CircuitBreaker


def test_trip_fires_exactly_at_the_threshold_boundary():
    breaker = CircuitBreaker(3)
    assert [breaker.record() for _ in range(5)] == \
        [False, False, True, False, False]
    assert breaker.tripped
    assert breaker.count == 5


def test_threshold_one_trips_on_the_first_fault():
    breaker = CircuitBreaker(1)
    assert breaker.record()
    assert breaker.tripped


def test_non_positive_thresholds_rejected():
    for bad in (0, -1, -8):
        with pytest.raises(ValueError):
            CircuitBreaker(bad)


def test_reset_rearms_and_demands_threshold_fresh_faults():
    breaker = CircuitBreaker(2)
    breaker.record()
    assert breaker.record()  # tripped
    breaker.reset()
    assert not breaker.tripped
    assert breaker.count == 0
    # The next trip needs `threshold` *fresh* faults, not just one more.
    assert not breaker.record()
    assert breaker.record()


def test_reset_of_a_closed_breaker_is_harmless():
    breaker = CircuitBreaker(3)
    breaker.record()
    breaker.reset()
    assert [breaker.record() for _ in range(3)] == [False, False, True]


@settings(max_examples=60, deadline=None)
@given(threshold=st.integers(1, 50), faults=st.integers(0, 120))
def test_trip_is_monotone_in_recorded_faults(threshold, faults):
    """Tripped iff count >= threshold, the trip fires exactly once, and
    once open the breaker never closes on its own."""
    breaker = CircuitBreaker(threshold)
    trips = [breaker.record() for _ in range(faults)]
    assert breaker.tripped == (faults >= threshold)
    assert trips.count(True) == (1 if faults >= threshold else 0)
    if faults >= threshold:
        assert trips.index(True) == threshold - 1
