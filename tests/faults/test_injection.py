"""Fault hooks in the host swap path and the mapper circuit breaker."""

import pytest

from repro.config import FaultConfig, MachineConfig, VSwapperConfig
from repro.errors import HostError
from repro.guest.kernel import Transfer
from repro.machine import Machine
from repro.mem.page import AnonContent
from tests.conftest import small_machine_config, small_vm_config


def fault_machine(fault_config, *, seed=1, **host_overrides):
    base = small_machine_config(**host_overrides)
    return Machine(MachineConfig(
        host=base.host, disk=base.disk, seed=seed, faults=fault_config))


def thrash(machine, vm, pages=1200, rounds=2):
    """Touch a footprint far above the resident limit to force host
    swap-out and genuine disk swap-ins."""
    hyp = machine.hypervisor
    for _ in range(rounds):
        for i in range(pages):
            hyp.touch_page(vm, 0x1000 + i, write=True)


# ----------------------------------------------------------------------
# host swap path
# ----------------------------------------------------------------------

def test_swap_read_failures_are_retried_not_silent():
    cfg = FaultConfig(enabled=True, swap_read_error_rate=0.4,
                      max_retries=20)
    machine = fault_machine(cfg, swap_writeback_batch_pages=16)
    vm = machine.create_vm(small_vm_config(resident_limit_mib=1))
    thrash(machine, vm)
    counts = vm.counters.snapshot()
    assert counts["swap_read_retries"] > 0
    # Every retried read also re-touched the disk; data always arrived.
    assert machine.faults.counters.snapshot()["swap_read_retries"] == \
        counts["swap_read_retries"]


def test_swap_slot_corruption_surfaces_as_host_error():
    cfg = FaultConfig(enabled=True, swap_slot_corruption_rate=1.0)
    machine = fault_machine(cfg, swap_writeback_batch_pages=16)
    vm = machine.create_vm(small_vm_config(resident_limit_mib=1))
    with pytest.raises(HostError, match="corrupted"):
        thrash(machine, vm)
    assert vm.counters.snapshot()["swap_slot_corruptions"] == 1


def test_faultless_plan_leaves_swap_path_untouched():
    cfg = FaultConfig(enabled=True)  # all rates zero
    machine = fault_machine(cfg, swap_writeback_batch_pages=16)
    vm = machine.create_vm(small_vm_config(resident_limit_mib=1))
    thrash(machine, vm)
    counts = vm.counters.snapshot()
    assert counts["swap_read_retries"] == 0
    assert counts["swap_slot_corruptions"] == 0


# ----------------------------------------------------------------------
# mapper circuit breaker (the Section 4.1 fallback)
# ----------------------------------------------------------------------

def breaker_machine(threshold=3, rate=1.0):
    cfg = FaultConfig(enabled=True, mapper_invalidation_rate=rate,
                      mapper_breaker_threshold=threshold)
    machine = fault_machine(cfg)
    vm = machine.create_vm(small_vm_config(
        vswapper=VSwapperConfig.mapper_only()))
    return machine, vm


def test_forced_invalidations_sever_associations():
    machine, vm = breaker_machine(threshold=100)
    machine.hypervisor.virtio_read(vm, [Transfer(0, 0x100)])
    # rate=1.0: the association built by the read was invalidated.
    assert not vm.mapper.is_tracked(0x100)
    assert vm.counters.snapshot()["mapper_forced_invalidations"] == 1
    assert not vm.degraded


def test_repeated_faults_trip_the_breaker():
    machine, vm = breaker_machine(threshold=3)
    hyp = machine.hypervisor
    for i in range(5):
        hyp.virtio_read(vm, [Transfer(i, 0x100 + i)])
    counts = vm.counters.snapshot()
    assert counts["mapper_breaker_trips"] == 1
    assert vm.degraded
    assert vm.mapper.disabled
    # Exactly `threshold` injections happened before tracking stopped.
    assert counts["mapper_forced_invalidations"] == 3


def test_degraded_vm_stops_tracking_but_keeps_running():
    machine, vm = breaker_machine(threshold=2)
    hyp = machine.hypervisor
    for i in range(10):
        hyp.virtio_read(vm, [Transfer(i, 0x200 + i)])
    assert vm.mapper.disabled
    assert vm.mapper.tracked_pages == 0
    # Ordinary paths still work: touches, overwrites, more reads.
    hyp.touch_page(vm, 0x300, write=True,
                   new_content=AnonContent.fresh())
    hyp.virtio_read(vm, [Transfer(40, 0x400)])
    assert vm.mapper.tracked_pages == 0  # track() stays a no-op


def test_discarded_pages_survive_the_trip():
    """Associations discarded before the trip must stay refaultable --
    their only copy lives in the image."""
    machine, vm = breaker_machine(threshold=1000, rate=0.0)
    hyp = machine.hypervisor
    hyp.virtio_read(vm, [Transfer(3, 0x500)])
    assert vm.mapper.is_tracked_resident(0x500)
    vm.mapper.mark_discarded(0x500)
    dropped = vm.mapper.disable()
    assert dropped == []  # only resident associations are severed
    assert vm.mapper.is_discarded(0x500)
    assert vm.mapper.block_of(0x500) == 3


def test_breaker_trips_fall_back_without_consistency_errors():
    """A tight VM that degrades mid-thrash finishes with verified data:
    the whole point of the Section 4.1 fallback."""
    cfg = FaultConfig(enabled=True, mapper_invalidation_rate=0.2,
                      mapper_breaker_threshold=4)
    machine = fault_machine(cfg, swap_writeback_batch_pages=16)
    vm = machine.create_vm(small_vm_config(
        vswapper=VSwapperConfig.mapper_only(), resident_limit_mib=1))
    hyp = machine.hypervisor
    for i in range(400):
        if i % 3 == 0:
            hyp.virtio_read(vm, [Transfer(i % 256, 0x100 + i % 512)])
        else:
            hyp.touch_page(vm, 0x100 + i % 512, write=(i % 2 == 0))
    assert vm.degraded
    assert vm.counters.snapshot()["mapper_breaker_trips"] == 1
    # Frame accounting stayed exact through the degradation.
    accounted = (vm.ept.resident_pages + len(vm.qemu.resident)
                 + len(vm.swap_cache))
    assert machine.frames.used == accounted
