"""The worker-kill chaos fault: deterministic, bounded, opt-in.

``should_kill_worker`` is a pure function of (config, cell id, seed,
attempt): the supervisor consults it in the worker process before the
cell runs, and the answer must replay identically so that surviving
attempts stay bit-identical and CI chaos runs are reproducible.
"""

import pytest

from repro.config import FaultConfig
from repro.errors import ConfigError
from repro.faults.plan import should_kill_worker

KILLER = FaultConfig(enabled=True, worker_kill_rate=1.0)


def test_rate_one_kills_the_first_attempt():
    assert should_kill_worker(KILLER, "c0", seed=1, attempt=1)


def test_attempts_beyond_the_cap_are_spared():
    # worker_kill_max_attempt defaults to 1: a retry always recovers.
    assert not should_kill_worker(KILLER, "c0", seed=1, attempt=2)
    assert not should_kill_worker(KILLER, "c0", seed=1, attempt=5)


def test_raising_the_cap_extends_the_chaos():
    config = FaultConfig(enabled=True, worker_kill_rate=1.0,
                         worker_kill_max_attempt=3)
    assert should_kill_worker(config, "c0", seed=1, attempt=3)
    assert not should_kill_worker(config, "c0", seed=1, attempt=4)


def test_rate_zero_never_kills():
    config = FaultConfig(enabled=True)
    assert not should_kill_worker(config, "c0", seed=1, attempt=1)


def test_disabled_config_never_kills():
    config = FaultConfig(enabled=False, worker_kill_rate=1.0)
    assert not should_kill_worker(config, "c0", seed=1, attempt=1)


def test_decision_is_deterministic_per_cell_and_seed():
    config = FaultConfig(enabled=True, worker_kill_rate=0.5)
    draws = [
        [should_kill_worker(config, f"c{i}", seed=7, attempt=1)
         for i in range(64)]
        for _ in range(3)
    ]
    assert draws[0] == draws[1] == draws[2]
    # A 0.5 rate over 64 cells kills some and spares some.
    assert any(draws[0]) and not all(draws[0])


def test_different_seeds_draw_independently():
    config = FaultConfig(enabled=True, worker_kill_rate=0.5)
    a = [should_kill_worker(config, f"c{i}", seed=1, attempt=1)
         for i in range(64)]
    b = [should_kill_worker(config, f"c{i}", seed=2, attempt=1)
         for i in range(64)]
    assert a != b


def test_worker_kill_config_validation():
    with pytest.raises(ConfigError):
        FaultConfig(worker_kill_rate=1.5).validate()
    with pytest.raises(ConfigError):
        FaultConfig(worker_kill_rate=-0.1).validate()
    with pytest.raises(ConfigError):
        FaultConfig(worker_kill_max_attempt=0).validate()
    FaultConfig(worker_kill_rate=0.5, worker_kill_max_attempt=2).validate()
