"""End-to-end invariants across full workload runs.

These tests run real workloads through the whole stack and assert
system-level properties: frame conservation, content consistency,
determinism, and the headline behavioural claims of the paper.
"""

import pytest

from repro.config import MachineConfig, VSwapperConfig
from repro.driver import VmDriver
from repro.machine import Machine
from repro.units import mib_pages
from repro.workloads.alloctouch import SysbenchThenAlloc
from repro.workloads.sysbench import SysbenchFileRead
from tests.conftest import (
    small_guest_config,
    small_machine_config,
    small_vm_config,
)


def run_sysbench(machine, vm, iterations=2, file_pages=1024):
    vm.guest.fs.create_file("sysbench.dat", file_pages)
    workload = SysbenchFileRead(
        file_pages=file_pages, iterations=iterations, chunk_pages=128)
    driver = VmDriver(machine, vm, workload)
    machine.run()
    assert driver.done and not driver.crashed
    return driver


def frames_accounted(machine):
    total = 0
    for vm in machine.vms:
        total += vm.ept.resident_pages
        total += len(vm.qemu.resident)
        total += len(vm.swap_cache)
    return total


def test_frame_conservation_after_pressure_run(machine, tight_vm):
    run_sysbench(machine, tight_vm)
    assert machine.frames.used == frames_accounted(machine)


def test_resident_limit_respected_throughout(machine, tight_vm):
    run_sysbench(machine, tight_vm)
    assert tight_vm.resident_pages <= tight_vm.resident_limit


def test_swap_slot_ownership_consistent(machine, tight_vm):
    run_sysbench(machine, tight_vm)
    hyp = machine.hypervisor
    for gpa, slot in tight_vm.swap_slots.items():
        owner = hyp.slot_owner.get(slot)
        assert owner is not None
        assert owner[0] is tight_vm and owner[1] == gpa
        assert machine.swap_area.is_allocated(slot)


def test_mapper_tracked_pages_match_image_content(machine, vswapper_vm):
    run_sysbench(machine, vswapper_vm)
    vm = vswapper_vm
    mapper = vm.mapper
    for gpa in list(vm.ept.present_gpas()):
        if mapper.is_tracked_resident(gpa):
            block = mapper.block_of(gpa)
            assert vm.image.matches(block, vm.content_of(gpa))


def test_same_seed_is_bit_identical():
    def one_run():
        machine = Machine(small_machine_config(reclaim_noise=0.06))
        vm = machine.create_vm(small_vm_config(resident_limit_mib=4))
        machine.boot_guest(vm)
        driver = run_sysbench(machine, vm)
        return driver.runtime, vm.counters.snapshot()

    run_a = one_run()
    run_b = one_run()
    assert run_a == run_b


def test_different_seed_differs():
    def one_run(seed):
        config = small_machine_config(reclaim_noise=0.2)
        machine = Machine(MachineConfig(
            host=config.host, disk=config.disk, seed=seed))
        vm = machine.create_vm(small_vm_config(resident_limit_mib=4))
        machine.boot_guest(vm)
        return run_sysbench(machine, vm).runtime

    assert one_run(1) != one_run(2)


def test_vswapper_beats_baseline_under_pressure():
    def runtime_for(vswapper):
        machine = Machine(small_machine_config(reclaim_noise=0.06))
        vm = machine.create_vm(small_vm_config(
            vswapper=vswapper, resident_limit_mib=4))
        machine.boot_guest(vm)
        return run_sysbench(
            machine, vm, iterations=3, file_pages=2048).runtime

    baseline = runtime_for(VSwapperConfig.off())
    vswapper = runtime_for(VSwapperConfig.full())
    assert vswapper < baseline / 2


def test_vswapper_eliminates_swap_writes_for_clean_pages():
    machine = Machine(small_machine_config())
    vm = machine.create_vm(small_vm_config(
        vswapper=VSwapperConfig.full(), resident_limit_mib=4))
    # No boot: a clean cache workload only.
    run_sysbench(machine, vm, file_pages=2048)
    baseline_machine = Machine(small_machine_config())
    baseline_vm = baseline_machine.create_vm(
        small_vm_config(resident_limit_mib=4))
    run_sysbench(baseline_machine, baseline_vm, file_pages=2048)
    assert (vm.counters.swap_sectors_written
            < baseline_vm.counters.swap_sectors_written / 4)


def test_preventer_eliminates_false_read_disk_traffic():
    def run_alloc(vswapper):
        machine = Machine(small_machine_config())
        vm = machine.create_vm(small_vm_config(
            vswapper=vswapper, resident_limit_mib=4))
        machine.boot_guest(vm)
        vm.guest.fs.create_file("sysbench.dat", 1024)
        workload = SysbenchThenAlloc(file_pages=1024, alloc_pages=1024)
        driver = VmDriver(machine, vm, workload)
        machine.run()
        assert driver.done and not driver.crashed
        return vm

    mapper_vm = run_alloc(VSwapperConfig.mapper_only())
    full_vm = run_alloc(VSwapperConfig.full())
    assert full_vm.counters.false_reads == 0
    assert mapper_vm.counters.false_reads > 0
    assert full_vm.counters.preventer_remaps > 0


def test_ballooned_guest_avoids_host_swapping(machine):
    vm = machine.create_vm(small_vm_config(resident_limit_mib=6))
    machine.boot_guest(vm)
    machine.apply_static_balloon(
        vm, vm.cfg.guest.memory_pages - mib_pages(6))
    run_sysbench(machine, vm)
    # The guest constrained itself: essentially no uncooperative swap.
    assert vm.counters.swap_sectors_written == 0


def test_content_never_lost_across_swap_cycles(machine, tight_vm):
    """Write distinctive content, thrash, and read it back."""
    from repro.sim.ops import Alloc, Touch
    from repro.guest.anon import PageLocation
    guest = tight_vm.guest
    guest.execute(Alloc("precious", 64))
    guest.execute(Touch("precious", 0, 64, write=True))
    region = guest.anon.region("precious")
    before = {}
    for index, state in enumerate(region.pages):
        assert state.location is PageLocation.MEMORY
        before[index] = tight_vm.content_of(state.where)
    # Thrash with a big read so 'precious' pages get host-swapped.
    run_sysbench(machine, tight_vm)
    guest.execute(Touch("precious", 0, 64, write=False))
    for index, state in enumerate(region.pages):
        if state.location is PageLocation.MEMORY:
            assert tight_vm.content_of(state.where) == before[index]
