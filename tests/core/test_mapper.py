"""Swap Mapper association bookkeeping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mapper import METADATA_BYTES_PER_PAGE, SwapMapper
from repro.errors import ConsistencyError, DegradedError


def test_track_creates_resident_association():
    mapper = SwapMapper()
    mapper.track(gpa=1, block=100)
    assert mapper.is_tracked(1)
    assert mapper.is_tracked_resident(1)
    assert not mapper.is_discarded(1)
    assert mapper.block_of(1) == 100


def test_latest_wins_on_gpa():
    mapper = SwapMapper()
    mapper.track(1, 100)
    mapper.track(1, 200)
    assert mapper.block_of(1) == 200
    assert mapper.owner_of_block(100) is None


def test_latest_wins_on_block():
    mapper = SwapMapper()
    mapper.track(1, 100)
    mapper.track(2, 100)
    assert not mapper.is_tracked(1)
    assert mapper.owner_of_block(100).gpa == 2


def test_break_cow_severs():
    mapper = SwapMapper()
    mapper.track(1, 100)
    assert mapper.break_cow(1)
    assert not mapper.is_tracked(1)
    assert mapper.owner_of_block(100) is None


def test_break_cow_untracked_is_false():
    assert not SwapMapper().break_cow(5)


def test_break_cow_on_discarded_is_inconsistent():
    mapper = SwapMapper()
    mapper.track(1, 100)
    mapper.mark_discarded(1)
    with pytest.raises(ConsistencyError):
        mapper.break_cow(1)


def test_discard_refault_cycle():
    mapper = SwapMapper()
    mapper.track(1, 100)
    assert mapper.mark_discarded(1) == 100
    assert mapper.is_discarded(1)
    assert mapper.mark_refaulted(1) == 100
    assert mapper.is_tracked_resident(1)


def test_double_discard_rejected():
    mapper = SwapMapper()
    mapper.track(1, 100)
    mapper.mark_discarded(1)
    with pytest.raises(ConsistencyError):
        mapper.mark_discarded(1)


def test_refault_of_resident_rejected():
    mapper = SwapMapper()
    mapper.track(1, 100)
    with pytest.raises(ConsistencyError):
        mapper.mark_refaulted(1)


def test_operations_on_untracked_rejected():
    mapper = SwapMapper()
    with pytest.raises(ConsistencyError):
        mapper.mark_discarded(9)
    with pytest.raises(ConsistencyError):
        mapper.block_of(9)


def test_discarded_gpa_for_block():
    mapper = SwapMapper()
    mapper.track(1, 100)
    assert mapper.discarded_gpa_for_block(100) is None  # resident
    mapper.mark_discarded(1)
    assert mapper.discarded_gpa_for_block(100) == 1


def test_drop_gpa():
    mapper = SwapMapper()
    mapper.track(1, 100)
    assert mapper.drop_gpa(1)
    assert not mapper.drop_gpa(1)
    assert mapper.tracked_pages == 0


def test_disable_drops_resident_keeps_discarded():
    mapper = SwapMapper()
    mapper.track(1, 100)
    mapper.track(2, 200)
    mapper.mark_discarded(2)
    dropped = mapper.disable()
    assert dropped == [1]
    assert mapper.disabled
    assert not mapper.is_tracked(1)
    assert mapper.is_discarded(2)       # refault path must still work
    assert mapper.mark_refaulted(2) == 200


def test_disabled_mapper_ignores_track_and_refuses_discard():
    mapper = SwapMapper()
    mapper.track(1, 100)
    mapper.disable()
    mapper.track(3, 300)                # silently ignored post-fallback
    assert not mapper.is_tracked(3)
    mapper2 = SwapMapper()
    mapper2.track(1, 100)
    mapper2.mark_discarded(1)
    mapper2.disable()
    mapper2.mark_refaulted(1)
    with pytest.raises(DegradedError):
        mapper2.mark_discarded(1)       # discard could lose the only copy


def test_gauges():
    mapper = SwapMapper()
    mapper.track(1, 100)
    mapper.track(2, 200)
    mapper.mark_discarded(2)
    assert mapper.tracked_pages == 2
    assert mapper.tracked_resident_pages == 1
    assert mapper.metadata_bytes == 2 * METADATA_BYTES_PER_PAGE
    assert mapper.peak_tracked == 2
    mapper.drop_gpa(1)
    assert mapper.peak_tracked == 2  # peak is sticky


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 8), st.integers(0, 8)),
                max_size=60))
def test_property_bijection(pairs):
    """gpa->block and block->gpa stay mutually consistent."""
    mapper = SwapMapper()
    for gpa, block in pairs:
        mapper.track(gpa, block)
        assert mapper.block_of(gpa) == block
        owner = mapper.owner_of_block(block)
        assert owner is not None and owner.gpa == gpa
    # Global check: every tracked gpa's block maps back to that gpa.
    for gpa, block in pairs:
        if mapper.is_tracked(gpa):
            back = mapper.owner_of_block(mapper.block_of(gpa))
            assert back.gpa == gpa
