"""False Reads Preventer policy decisions."""

from repro.config import VSwapperConfig
from repro.core.preventer import FalseReadsPreventer, OverwriteVerdict
from repro.sim.ops import WritePattern


def make_preventer(**overrides):
    config = VSwapperConfig(
        enable_mapper=True, enable_preventer=True, **overrides)
    return FalseReadsPreventer(config)


def test_full_sequential_remaps():
    preventer = make_preventer()
    verdict = preventer.classify_overwrite(
        1, WritePattern.FULL_SEQUENTIAL, now=0.0)
    assert verdict is OverwriteVerdict.REMAP
    assert not preventer.is_emulated(1)


def test_scattered_falls_back():
    preventer = make_preventer()
    verdict = preventer.classify_overwrite(
        1, WritePattern.SCATTERED, now=0.0)
    assert verdict is OverwriteVerdict.FALLBACK


def test_partial_buffers():
    preventer = make_preventer()
    verdict = preventer.classify_overwrite(
        1, WritePattern.PARTIAL, now=0.0)
    assert verdict is OverwriteVerdict.BUFFERED
    assert preventer.is_emulated(1)
    assert preventer.pages_under_emulation == 1


def test_partial_then_full_completes():
    preventer = make_preventer()
    preventer.classify_overwrite(1, WritePattern.PARTIAL, now=0.0)
    verdict = preventer.classify_overwrite(
        1, WritePattern.FULL_SEQUENTIAL, now=0.0005)
    assert verdict is OverwriteVerdict.REMAP
    assert not preventer.is_emulated(1)


def test_partial_then_scattered_aborts():
    preventer = make_preventer()
    preventer.classify_overwrite(1, WritePattern.PARTIAL, now=0.0)
    verdict = preventer.classify_overwrite(
        1, WritePattern.SCATTERED, now=0.0005)
    assert verdict is OverwriteVerdict.FALLBACK
    assert not preventer.is_emulated(1)


def test_cap_blocks_new_partial_buffers():
    preventer = make_preventer(preventer_max_pages=2)
    assert preventer.classify_overwrite(
        1, WritePattern.PARTIAL, 0.0) is OverwriteVerdict.BUFFERED
    assert preventer.classify_overwrite(
        2, WritePattern.PARTIAL, 0.0) is OverwriteVerdict.BUFFERED
    assert preventer.classify_overwrite(
        3, WritePattern.PARTIAL, 0.0) is OverwriteVerdict.FALLBACK


def test_cap_blocks_full_overwrites_of_new_pages():
    preventer = make_preventer(preventer_max_pages=1)
    preventer.classify_overwrite(1, WritePattern.PARTIAL, 0.0)
    assert preventer.classify_overwrite(
        2, WritePattern.FULL_SEQUENTIAL, 0.0) is OverwriteVerdict.FALLBACK


def test_existing_buffer_can_always_complete():
    preventer = make_preventer(preventer_max_pages=1)
    preventer.classify_overwrite(1, WritePattern.PARTIAL, 0.0)
    assert preventer.classify_overwrite(
        1, WritePattern.FULL_SEQUENTIAL, 0.0) is OverwriteVerdict.REMAP


def test_window_expiry():
    preventer = make_preventer(preventer_window=1e-3)
    preventer.classify_overwrite(1, WritePattern.PARTIAL, now=0.0)
    preventer.classify_overwrite(2, WritePattern.PARTIAL, now=0.0008)
    lapsed = preventer.expired(now=0.0011)
    assert lapsed == [1]
    assert preventer.is_emulated(2)
    assert not preventer.is_emulated(1)


def test_force_close():
    preventer = make_preventer()
    preventer.classify_overwrite(1, WritePattern.PARTIAL, 0.0)
    assert preventer.force_close(1)
    assert not preventer.force_close(1)


def test_close_all():
    preventer = make_preventer()
    preventer.classify_overwrite(1, WritePattern.PARTIAL, 0.0)
    preventer.classify_overwrite(2, WritePattern.PARTIAL, 0.0)
    assert sorted(preventer.close_all()) == [1, 2]
    assert preventer.pages_under_emulation == 0


def test_rep_detection_cheapens_full_overwrites():
    with_rep = make_preventer(rep_prefix_detection=True)
    without = make_preventer(rep_prefix_detection=False)
    assert (with_rep.emulation_cost(WritePattern.FULL_SEQUENTIAL)
            < without.emulation_cost(WritePattern.FULL_SEQUENTIAL))
    assert (with_rep.emulation_cost(WritePattern.PARTIAL)
            == without.emulation_cost(WritePattern.PARTIAL))
