"""VSwapper facade configurations."""

from repro.config import VSwapperConfig
from repro.core.vswapper import VSwapper


def test_off_has_no_components():
    vswapper = VSwapper(VSwapperConfig.off())
    assert vswapper.mapper is None
    assert vswapper.preventer is None
    assert not vswapper.active
    assert vswapper.describe() == "baseline"


def test_mapper_only():
    vswapper = VSwapper(VSwapperConfig.mapper_only())
    assert vswapper.mapper is not None
    assert vswapper.preventer is None
    assert vswapper.active
    assert vswapper.describe() == "mapper"


def test_full():
    vswapper = VSwapper(VSwapperConfig.full())
    assert vswapper.mapper is not None
    assert vswapper.preventer is not None
    assert vswapper.describe() == "vswapper"


def test_preventer_only():
    vswapper = VSwapper(VSwapperConfig(enable_preventer=True))
    assert vswapper.mapper is None
    assert vswapper.preventer is not None
    assert vswapper.describe() == "preventer-only"
