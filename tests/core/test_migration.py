"""Live-migration planner (paper Section 7 extension)."""

import pytest

from repro.config import VSwapperConfig
from repro.core.mapper import METADATA_BYTES_PER_PAGE
from repro.core.migration import MigrationPlan, MigrationPlanner
from repro.guest.kernel import Transfer
from repro.mem.page import AnonContent
from repro.units import PAGE_SIZE
from tests.conftest import small_vm_config


def test_empty_vm_plans_zero(machine, vm):
    plan = MigrationPlanner().plan(vm)
    assert plan.baseline_bytes == 0
    assert plan.vswapper_bytes == 0
    assert plan.savings_fraction == 0.0


def test_private_pages_counted_in_both(machine, vm):
    for i in range(10):
        machine.hypervisor.touch_page(vm, 0x100 + i, write=True)
    plan = MigrationPlanner().plan(vm)
    assert plan.private_pages == 10
    assert plan.baseline_bytes == 10 * PAGE_SIZE
    assert plan.vswapper_bytes == 10 * PAGE_SIZE


def test_zero_pages_skipped(machine, vm):
    for i in range(10):
        machine.hypervisor.touch_page(vm, 0x100 + i, write=False)
    plan = MigrationPlanner().plan(vm)
    assert plan.zero_pages == 10
    assert plan.baseline_bytes == 0


def test_mapped_pages_become_references(machine):
    vm = machine.create_vm(small_vm_config(
        vswapper=VSwapperConfig.mapper_only()))
    machine.hypervisor.virtio_read(
        vm, [Transfer(100 + i, 0x100 + i) for i in range(20)])
    plan = MigrationPlanner().plan(vm)
    assert plan.mapped_pages == 20
    assert plan.baseline_bytes == 20 * PAGE_SIZE
    assert plan.vswapper_bytes == 20 * METADATA_BYTES_PER_PAGE
    assert plan.savings_fraction > 0.9


def test_discarded_pages_cost_references_only(machine):
    vm = machine.create_vm(small_vm_config(
        vswapper=VSwapperConfig.mapper_only(), resident_limit_mib=4))
    machine.hypervisor.virtio_read(
        vm, [Transfer(100 + i, 0x100 + i) for i in range(2048)])
    plan = MigrationPlanner().plan(vm)
    assert plan.discarded_pages > 0
    assert plan.vswapper_bytes < plan.baseline_bytes


def test_swapped_private_pages_cost_full_both_ways(machine, tight_vm):
    for i in range(2048):
        machine.hypervisor.touch_page(tight_vm, 0x100 + i, write=True)
    plan = MigrationPlanner().plan(tight_vm)
    assert plan.swapped_private_pages > 0
    assert plan.baseline_bytes == plan.vswapper_bytes  # no mapper


def test_plan_dataclass_math():
    plan = MigrationPlan(
        private_pages=10, mapped_pages=100, discarded_pages=50,
        swapped_private_pages=5, zero_pages=3)
    assert plan.baseline_bytes == 165 * PAGE_SIZE
    assert plan.vswapper_bytes == (
        15 * PAGE_SIZE + 150 * METADATA_BYTES_PER_PAGE)
    assert 0 < plan.savings_fraction < 1


def test_study_experiment_runs():
    from repro.experiments.migration import run_migration_study
    result = run_migration_study(scale=16)
    rows = result.series
    assert rows["vswapper"]["savings"] > 0.5
    assert rows["baseline"]["savings"] == pytest.approx(0.0)
    assert "migration" in result.rendered.lower()
