"""Named/anon reclaim scanning."""

import pytest

from repro.errors import MemoryError_
from repro.mem.reclaim import ReclaimScanner
from repro.sim.rng import DeterministicRng


def make_scanner(referenced=None, **kwargs):
    referenced = referenced or (lambda key: False)
    return ReclaimScanner(referenced, **kwargs)


def test_resident_counting():
    scanner = make_scanner()
    scanner.note_resident(1, named=True)
    scanner.note_resident(2, named=False)
    assert scanner.resident == 2
    assert scanner.is_named(1)
    assert not scanner.is_named(2)


def test_note_evicted_clears_both_lists():
    scanner = make_scanner()
    scanner.note_resident(1, named=True)
    scanner.note_evicted(1)
    assert scanner.resident == 0


def test_change_kind_moves_lists():
    scanner = make_scanner()
    scanner.note_resident(1, named=True)
    scanner.change_kind(1, named=False)
    assert not scanner.is_named(1)
    assert scanner.resident == 1


def test_named_preference():
    scanner = make_scanner(named_fraction=0.75)
    for key in range(4):
        scanner.note_resident(("named", key), named=True)
    for key in range(20):
        scanner.note_resident(("anon", key), named=False)
    result = scanner.pick_victims(4)
    named_victims = [k for k, was_named in result.victims if was_named]
    assert len(named_victims) == 3  # 0.75 * 4


def test_all_from_named_when_anon_empty():
    scanner = make_scanner()
    for key in range(8):
        scanner.note_resident(key, named=True)
    result = scanner.pick_victims(4)
    assert len(result.victims) == 4
    assert all(was_named for _k, was_named in result.victims)


def test_shortfall_escalates_to_named():
    # Anon nearly empty: the named list must cover the shortfall even
    # beyond its fraction.
    scanner = make_scanner()
    for key in range(10):
        scanner.note_resident(("named", key), named=True)
    scanner.note_resident(("anon", 0), named=False)
    result = scanner.pick_victims(6)
    assert len(result.victims) == 6


def test_examined_counts_rotations():
    referenced = {1, 2}

    def probe(key):
        if key in referenced:
            referenced.discard(key)
            return True
        return False

    scanner = make_scanner(probe)
    for key in (1, 2, 3, 4):
        scanner.note_resident(key, named=False)
    result = scanner.pick_victims(1)
    assert result.victims == [(3, False)]
    assert result.examined == 3


def test_unevictable_pages_survive_even_escalation():
    pinned = {("named", 0)}
    scanner = ReclaimScanner(
        lambda key: False, unevictable=lambda key: key in pinned)
    for key in range(3):
        scanner.note_resident(("named", key), named=True)
    result = scanner.pick_victims(3)
    victims = [k for k, _ in result.victims]
    assert ("named", 0) not in victims
    assert len(victims) == 2


def test_noise_requires_rng():
    with pytest.raises(MemoryError_):
        make_scanner(noise=0.5)


def test_noise_perturbs_eviction_order():
    def build(noise):
        rng = DeterministicRng(3)
        scanner = ReclaimScanner(
            lambda key: False, noise=noise, noise_rng=rng)
        for key in range(64):
            scanner.note_resident(key, named=False)
        victims, _ = [], None
        result = scanner.pick_victims(32)
        return [k for k, _ in result.victims]

    assert build(0.0) == list(range(32))
    assert build(0.5) != list(range(32))


def test_bad_fraction_rejected():
    with pytest.raises(MemoryError_):
        make_scanner(named_fraction=1.5)


def test_want_zero_returns_empty():
    scanner = make_scanner()
    scanner.note_resident(1, named=False)
    result = scanner.pick_victims(0)
    assert result.victims == []
    assert result.examined == 0


def test_cold_insertion_evicted_first():
    scanner = make_scanner()
    scanner.note_resident(1, named=False)
    scanner.note_resident(2, named=False, cold=True)
    result = scanner.pick_victims(1)
    assert result.victims == [(2, False)]
