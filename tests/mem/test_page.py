"""Page-content identities."""

from repro.disk.image import BlockVersion
from repro.mem.page import AnonContent, ZERO, ZeroContent, content_repr


def test_zero_is_singleton():
    assert ZeroContent() is ZERO
    assert ZeroContent() is ZeroContent()


def test_anon_tokens_are_unique():
    a = AnonContent.fresh()
    b = AnonContent.fresh()
    assert a != b
    assert a.token != b.token


def test_anon_equality_by_token():
    assert AnonContent(5) == AnonContent(5)
    assert AnonContent(5) != AnonContent(6)


def test_block_version_equality():
    assert BlockVersion(1, 2) == BlockVersion(1, 2)
    assert BlockVersion(1, 2) != BlockVersion(1, 3)


def test_content_repr_forms():
    assert content_repr(None) == "ZERO"
    assert content_repr(ZERO) == "ZERO"
    assert content_repr(AnonContent(9)) == "anon#9"
    assert content_repr(BlockVersion(4, 2)) == "blk4v2"


def test_contents_usable_as_dict_values():
    d = {1: ZERO, 2: AnonContent.fresh(), 3: BlockVersion(0, 1)}
    assert d[1] is ZERO
