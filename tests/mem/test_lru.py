"""Clock list semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.lru import ClockList


def test_add_and_contains():
    clock = ClockList()
    clock.add("a")
    assert "a" in clock
    assert len(clock) == 1


def test_re_add_refreshes_position():
    clock = ClockList()
    clock.add("a")
    clock.add("b")
    clock.add("a")  # now 'b' is coldest
    assert clock.peek_head() == "b"


def test_add_front_is_first_victim():
    clock = ClockList()
    clock.add("warm")
    clock.add_front("cold")
    assert clock.peek_head() == "cold"


def test_remove_missing_is_noop():
    clock = ClockList()
    clock.remove("ghost")
    assert len(clock) == 0


def test_scan_evicts_unreferenced_in_order():
    clock = ClockList()
    for key in "abcd":
        clock.add(key)
    victims, examined = clock.scan(2, lambda key: False)
    assert victims == ["a", "b"]
    assert examined == 2
    assert "a" not in clock


def test_scan_gives_second_chance():
    clock = ClockList()
    for key in "abc":
        clock.add(key)
    referenced = {"a"}
    victims, examined = clock.scan(
        1, lambda key: key in referenced and not referenced.discard(key))
    # 'a' was referenced: rotated to tail; 'b' evicted.
    assert victims == ["b"]
    assert examined == 2
    assert clock.keys_in_order() == ["c", "a"]


def test_scan_gives_up_after_max_examined():
    clock = ClockList()
    for key in "abc":
        clock.add(key)
    victims, examined = clock.scan(1, lambda key: True, max_examined=3)
    assert victims == []
    assert examined == 3
    assert len(clock) == 3


def test_scan_empty_list():
    victims, examined = ClockList().scan(5, lambda key: False)
    assert victims == []
    assert examined == 0


def test_peek_head_empty():
    assert ClockList().peek_head() is None


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=20),
                min_size=1, max_size=50))
def test_property_scan_preserves_membership_invariant(keys):
    clock = ClockList()
    for key in keys:
        clock.add(key)
    unique = list(dict.fromkeys(keys))
    victims, _ = clock.scan(3, lambda key: key % 2 == 0)
    # victims + remaining == original membership, no duplication
    assert sorted(victims + clock.keys_in_order()) == sorted(unique)
