"""EPT mapping semantics."""

import pytest

from repro.errors import MemoryError_
from repro.mem.ept import Ept


def test_map_and_presence():
    ept = Ept()
    ept.map_page(0x1000)
    assert ept.is_present(0x1000)
    assert 0x1000 in ept
    assert ept.resident_pages == 1


def test_double_map_rejected():
    ept = Ept()
    ept.map_page(1)
    with pytest.raises(MemoryError_):
        ept.map_page(1)


def test_unmap_returns_final_state():
    ept = Ept()
    ept.map_page(1, accessed=False, dirty=True)
    entry = ept.unmap_page(1)
    assert entry.dirty
    assert not entry.accessed
    assert not ept.is_present(1)


def test_unmap_missing_rejected():
    with pytest.raises(MemoryError_):
        Ept().unmap_page(7)


def test_entry_missing_rejected():
    with pytest.raises(MemoryError_):
        Ept().entry(7)


def test_mark_accessed_sets_bits():
    ept = Ept()
    ept.map_page(1, accessed=False)
    ept.mark_accessed(1, write=True)
    entry = ept.entry(1)
    assert entry.accessed
    assert entry.dirty


def test_mark_accessed_read_does_not_dirty():
    ept = Ept()
    ept.map_page(1, accessed=False, dirty=False)
    ept.mark_accessed(1, write=False)
    assert not ept.entry(1).dirty


def test_test_and_clear_accessed():
    ept = Ept()
    ept.map_page(1, accessed=True)
    assert ept.test_and_clear_accessed(1)
    assert not ept.test_and_clear_accessed(1)


def test_present_gpas():
    ept = Ept()
    ept.map_page(3)
    ept.map_page(1)
    assert sorted(ept.present_gpas()) == [1, 3]
