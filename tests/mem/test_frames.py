"""Frame pool conservation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MemoryError_
from repro.mem.frames import FramePool


def test_initial_state():
    pool = FramePool(100)
    assert pool.free == 100
    assert pool.used == 0


def test_allocate_and_release():
    pool = FramePool(10)
    pool.allocate(4)
    assert pool.used == 4
    pool.release(2)
    assert pool.used == 2
    assert pool.free == 8


def test_cannot_overallocate():
    pool = FramePool(5)
    pool.allocate(5)
    with pytest.raises(MemoryError_):
        pool.allocate(1)


def test_cannot_release_more_than_used():
    pool = FramePool(5)
    pool.allocate(2)
    with pytest.raises(MemoryError_):
        pool.release(3)


def test_negative_amounts_rejected():
    pool = FramePool(5)
    with pytest.raises(MemoryError_):
        pool.allocate(-1)
    with pytest.raises(MemoryError_):
        pool.release(-1)


def test_zero_size_pool_rejected():
    with pytest.raises(MemoryError_):
        FramePool(0)


def test_can_allocate():
    pool = FramePool(5)
    assert pool.can_allocate(5)
    pool.allocate(3)
    assert pool.can_allocate(2)
    assert not pool.can_allocate(3)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=-20, max_value=20), max_size=60))
def test_property_conservation(deltas):
    pool = FramePool(100)
    used = 0
    for delta in deltas:
        if delta >= 0 and used + delta <= 100:
            pool.allocate(delta)
            used += delta
        elif delta < 0 and used >= -delta:
            pool.release(-delta)
            used += delta
        assert pool.used == used
        assert pool.used + pool.free == 100
