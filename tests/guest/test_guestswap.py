"""Guest swap device slots."""

import pytest

from repro.errors import GuestError
from repro.guest.guestswap import GuestSwapDevice


def test_allocate_lowest_first():
    dev = GuestSwapDevice(start_block=9000, size_pages=10)
    assert dev.allocate() == 0
    assert dev.allocate() == 1


def test_block_of_maps_into_partition():
    dev = GuestSwapDevice(start_block=9000, size_pages=10)
    assert dev.block_of(3) == 9003


def test_block_of_bounds():
    dev = GuestSwapDevice(9000, 10)
    with pytest.raises(GuestError):
        dev.block_of(10)


def test_free_and_reuse():
    dev = GuestSwapDevice(9000, 10)
    slot = dev.allocate()
    dev.free(slot)
    assert dev.allocate() == slot


def test_double_free_rejected():
    dev = GuestSwapDevice(9000, 10)
    slot = dev.allocate()
    dev.free(slot)
    with pytest.raises(GuestError):
        dev.free(slot)


def test_exhaustion():
    dev = GuestSwapDevice(9000, 2)
    dev.allocate()
    dev.allocate()
    with pytest.raises(GuestError):
        dev.allocate()


def test_counts():
    dev = GuestSwapDevice(9000, 10)
    dev.allocate()
    assert dev.used_slots == 1
    assert dev.free_slots == 9
