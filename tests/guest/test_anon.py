"""Anonymous memory regions."""

import pytest

from repro.errors import GuestError
from repro.guest.anon import GuestAnonMemory, PageLocation


def test_commit_is_lazy():
    anon = GuestAnonMemory()
    region = anon.commit("heap", 10)
    assert region.resident_pages() == 0
    assert all(p.location is PageLocation.UNMATERIALIZED
               for p in region.pages)


def test_place_in_memory():
    anon = GuestAnonMemory()
    anon.commit("heap", 10)
    anon.place_in_memory("heap", 3, gpa=42)
    assert anon.owner_of(42) == ("heap", 3)
    assert anon.is_anon_gpa(42)
    assert anon.region("heap").resident_pages() == 1


def test_double_place_rejected():
    anon = GuestAnonMemory()
    anon.commit("heap", 10)
    anon.place_in_memory("heap", 3, 42)
    with pytest.raises(GuestError):
        anon.place_in_memory("heap", 3, 43)


def test_move_to_swap():
    anon = GuestAnonMemory()
    anon.commit("heap", 10)
    anon.place_in_memory("heap", 3, 42)
    anon.move_to_swap(42, slot=7)
    state = anon.region("heap").pages[3]
    assert state.location is PageLocation.GUEST_SWAP
    assert state.where == 7
    assert not anon.is_anon_gpa(42)


def test_owner_of_unknown_rejected():
    with pytest.raises(GuestError):
        GuestAnonMemory().owner_of(42)


def test_release_region_returns_resources():
    anon = GuestAnonMemory()
    anon.commit("heap", 4)
    anon.place_in_memory("heap", 0, 10)
    anon.place_in_memory("heap", 1, 11)
    anon.move_to_swap(11, slot=3)
    gpas, slots = anon.release_region("heap")
    assert gpas == [10]
    assert slots == [3]
    assert not anon.has_region("heap")
    assert not anon.is_anon_gpa(10)


def test_duplicate_region_rejected():
    anon = GuestAnonMemory()
    anon.commit("a", 1)
    with pytest.raises(GuestError):
        anon.commit("a", 1)


def test_empty_region_rejected():
    with pytest.raises(GuestError):
        GuestAnonMemory().commit("empty", 0)


def test_resident_pages_total():
    anon = GuestAnonMemory()
    anon.commit("a", 5)
    anon.commit("b", 5)
    anon.place_in_memory("a", 0, 1)
    anon.place_in_memory("b", 0, 2)
    assert anon.resident_pages() == 2
    assert sorted(anon.region_names()) == ["a", "b"]
