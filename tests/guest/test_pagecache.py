"""Guest page cache bookkeeping."""

import pytest

from repro.errors import GuestError
from repro.guest.pagecache import GuestPageCache


def test_insert_and_lookup():
    cache = GuestPageCache()
    cache.insert(100, 5, dirty=False)
    assert cache.lookup(100) == 5
    assert cache.lookup(101) is None
    assert cache.describe(5).block == 100


def test_counts():
    cache = GuestPageCache()
    cache.insert(1, 10, dirty=False)
    cache.insert(2, 11, dirty=True)
    assert cache.cached_pages == 2
    assert cache.dirty_pages == 1
    assert cache.clean_pages == 1


def test_duplicate_block_rejected():
    cache = GuestPageCache()
    cache.insert(1, 10, dirty=False)
    with pytest.raises(GuestError):
        cache.insert(1, 11, dirty=False)


def test_duplicate_gpa_rejected():
    cache = GuestPageCache()
    cache.insert(1, 10, dirty=False)
    with pytest.raises(GuestError):
        cache.insert(2, 10, dirty=False)


def test_dirty_transitions():
    cache = GuestPageCache()
    cache.insert(1, 10, dirty=False)
    cache.mark_dirty(10)
    assert cache.describe(10).dirty
    assert 10 in cache.dirty_gpas_snapshot()
    cache.mark_clean(10)
    assert not cache.describe(10).dirty
    assert 10 in cache.clean_gpas_snapshot()


def test_remove():
    cache = GuestPageCache()
    cache.insert(1, 10, dirty=True)
    page = cache.remove(10)
    assert page.block == 1
    assert cache.lookup(1) is None
    assert cache.dirty_pages == 0


def test_remove_missing_rejected():
    with pytest.raises(GuestError):
        GuestPageCache().remove(10)


def test_mark_missing_rejected():
    with pytest.raises(GuestError):
        GuestPageCache().mark_dirty(10)


def test_snapshots_disjoint_and_complete():
    cache = GuestPageCache()
    for i in range(10):
        cache.insert(i, 100 + i, dirty=(i % 2 == 0))
    dirty = set(cache.dirty_gpas_snapshot())
    clean = set(cache.clean_gpas_snapshot())
    assert not dirty & clean
    assert len(dirty | clean) == 10
