"""Guest kernel behaviour over a real hypervisor."""

import pytest

from repro.errors import GuestOomKill
from repro.machine import Machine
from repro.sim.ops import (
    Alloc,
    Compute,
    DropCaches,
    FileRead,
    FileSync,
    FileWrite,
    Free,
    MarkPhase,
    Touch,
)
from tests.conftest import (
    small_guest_config,
    small_machine_config,
    small_vm_config,
)


def run(vm, *ops):
    for op in ops:
        vm.guest.execute(op)


def test_file_read_populates_cache(vm):
    vm.guest.fs.create_file("f", 64)
    run(vm, FileRead("f", 0, 64))
    assert vm.guest.cache.cached_pages == 64
    assert vm.guest.cache.dirty_pages == 0


def test_second_read_hits_cache(vm):
    vm.guest.fs.create_file("f", 64)
    run(vm, FileRead("f", 0, 64))
    ops_before = vm.counters.disk_ops
    run(vm, FileRead("f", 0, 64))
    assert vm.counters.disk_ops == ops_before


def test_read_batches_into_readahead_requests(vm):
    vm.guest.fs.create_file("f", 64)
    run(vm, FileRead("f", 0, 64))
    # 64 pages at a 32-page readahead window: two image requests (plus
    # possibly a hypervisor-code fault read).
    assert vm.counters.virtual_io_sectors == 64 * 8
    assert vm.counters.disk_ops <= 4


def test_file_write_dirties_cache(vm):
    vm.guest.fs.create_file("f", 16)
    run(vm, FileWrite("f", 0, 16))
    assert vm.guest.cache.dirty_pages == 16


def test_fsync_cleans_dirty_pages(vm):
    vm.guest.fs.create_file("f", 16)
    run(vm, FileWrite("f", 0, 16), FileSync("f"))
    assert vm.guest.cache.dirty_pages == 0
    assert vm.counters.virtual_io_sectors >= 16 * 8


def test_write_back_threshold_triggers(machine):
    guest = small_guest_config(dirty_threshold_fraction=0.01)
    vm = machine.create_vm(small_vm_config(guest=guest))
    vm.guest.fs.create_file("f", 256)
    run(vm, FileWrite("f", 0, 256))
    assert vm.guest.cache.dirty_pages < 256


def test_overwriting_cached_file_page_dirties_it_again(vm):
    vm.guest.fs.create_file("f", 4)
    run(vm, FileWrite("f", 0, 4), FileSync("f"), FileWrite("f", 0, 4))
    assert vm.guest.cache.dirty_pages == 4


def test_drop_caches_frees_clean_only(vm):
    vm.guest.fs.create_file("f", 32)
    run(vm, FileRead("f", 0, 32), FileWrite("f", 0, 4), DropCaches())
    assert vm.guest.cache.cached_pages == 4
    assert vm.guest.cache.dirty_pages == 4


def test_alloc_is_lazy(vm):
    free_before = len(vm.guest.free_list)
    run(vm, Alloc("heap", 64))
    assert len(vm.guest.free_list) == free_before


def test_touch_materializes_pages(vm):
    run(vm, Alloc("heap", 64), Touch("heap", 0, 64, write=True))
    assert vm.guest.anon.resident_pages() == 64


def test_touch_stride(vm):
    run(vm, Alloc("heap", 64), Touch("heap", 0, 64, stride=2))
    assert vm.guest.anon.resident_pages() == 32


def test_free_returns_pages(vm):
    run(vm, Alloc("heap", 64), Touch("heap", 0, 64, write=True))
    free_before = len(vm.guest.free_list)
    run(vm, Free("heap"))
    assert len(vm.guest.free_list) == free_before + 64


def test_compute_charges_cpu(vm):
    vm.costs.reset()
    run(vm, Compute(1.5))
    assert vm.costs.cpu_seconds == 1.5


def test_guest_reclaim_drops_clean_cache_under_pressure(vm):
    # Fill believed memory with cache, then allocate: the guest must
    # reclaim its own clean pages.
    guest = vm.guest
    usable = guest.cfg.memory_pages - guest.cfg.kernel_reserve_pages
    vm.guest.fs.create_file("big", usable - 128)
    run(vm, FileRead("big", 0, usable - 128))
    run(vm, Alloc("heap", 256), Touch("heap", 0, 256, write=True))
    assert guest.cache.cached_pages < usable - 128
    # Most of the heap stays resident; stragglers may have been swapped
    # by the guest's own reclaim racing the touch loop.
    resident = guest.anon.resident_pages()
    swapped = guest.gswap.used_slots
    assert resident + swapped == 256
    assert resident > 128


def test_guest_swaps_anon_when_cache_exhausted(vm):
    guest = vm.guest
    usable = guest.cfg.memory_pages - guest.cfg.kernel_reserve_pages
    run(vm, Alloc("heap", usable - 64),
        Touch("heap", 0, usable - 64, write=True))
    run(vm, Alloc("heap2", 512), Touch("heap2", 0, 512, write=True))
    assert guest.gswap.used_slots > 0
    assert vm.counters.guest_swap_sectors_written > 0


def test_guest_swap_in_faults_back(vm):
    guest = vm.guest
    usable = guest.cfg.memory_pages - guest.cfg.kernel_reserve_pages
    run(vm, Alloc("heap", usable - 64),
        Touch("heap", 0, usable - 64, write=True))
    run(vm, Alloc("heap2", 512), Touch("heap2", 0, 512, write=True))
    swapped = guest.gswap.used_slots
    assert swapped > 0
    # Touch the early pages again: they must come back from guest swap.
    run(vm, Touch("heap", 0, 512, write=False))
    assert vm.counters.guest_swap_faults > 0


def test_min_resident_recorded_via_markphase(vm):
    run(vm, MarkPhase("x", {"min_resident_pages": 123}))
    assert vm.guest.workload_min_resident == 123


def test_balloon_inflate_pins_pages(vm):
    guest = vm.guest
    inflated = guest.inflate(256)
    assert inflated == 256
    assert guest.balloon_size == 256
    assert len(vm.ballooned) == 256


def test_balloon_deflate_returns_pages(vm):
    guest = vm.guest
    guest.inflate(256)
    free_before = len(guest.free_list)
    guest.deflate(100)
    assert guest.balloon_size == 156
    assert len(guest.free_list) == free_before + 100


def test_apply_balloon_moves_toward_target(vm):
    guest = vm.guest
    guest.set_balloon_target(300)
    assert guest.apply_balloon(max_delta=100) == 100
    assert guest.balloon_size == 100
    guest.set_balloon_target(50)
    assert guest.apply_balloon(max_delta=100) == -50
    assert guest.balloon_size == 50


def test_over_ballooning_kills_workload(vm):
    guest = vm.guest
    guest.workload_min_resident = guest.cfg.memory_pages
    with pytest.raises(GuestOomKill):
        guest.inflate(512)
    assert guest.oom_killed
    assert vm.counters.oom_kills == 1


def test_demand_spike_kills_under_balloon(vm):
    guest = vm.guest
    guest.inflate(guest.cfg.memory_pages // 2)
    spike = MarkPhase("spike", {
        "min_resident_pages": guest.cfg.memory_pages})
    with pytest.raises(GuestOomKill):
        run(vm, spike)
    assert guest.oom_killed


def test_oom_killed_guest_refuses_to_run(vm):
    guest = vm.guest
    guest.workload_min_resident = guest.cfg.memory_pages
    with pytest.raises(GuestOomKill):
        guest.inflate(512)
    with pytest.raises(GuestOomKill):
        run(vm, Compute(1.0))


def test_memory_stats_consistency(vm):
    vm.guest.fs.create_file("f", 32)
    run(vm, FileRead("f", 0, 32), Alloc("h", 16),
        Touch("h", 0, 16, write=True))
    stats = vm.guest.memory_stats()
    assert stats["cache_clean"] == 32
    assert stats["anon_resident"] == 16
    accounted = (stats["free"] + stats["cache_clean"]
                 + stats["cache_dirty"] + stats["anon_resident"]
                 + stats["pinned"] + stats["kernel_reserve"])
    assert accounted == stats["total"]


def test_windows_guest_zeroes_free_pages(machine):
    from repro.config import GuestOsKind
    guest_cfg = small_guest_config(
        os_kind=GuestOsKind.WINDOWS, zero_free_pages=True)
    vm = machine.create_vm(small_vm_config(guest=guest_cfg))
    # Dirty some pages, free them, then run another op: the zero-page
    # thread should rewrite recycled frames with zeroes.
    run(vm, Alloc("h", 64), Touch("h", 0, 64, write=True), Free("h"))
    run(vm, Compute(0.001))
    from repro.mem.page import ZERO
    zeroed = sum(1 for gpa in vm.guest.free_list
                 if vm.content_of(gpa) is ZERO)
    assert zeroed > 0


def test_unaligned_io_fraction_marks_transfers(machine):
    guest_cfg = small_guest_config(unaligned_io_fraction=1.0)
    vm = machine.create_vm(small_vm_config(guest=guest_cfg))
    assert not vm.guest._aligned()
