"""Guest filesystem extents."""

import pytest

from repro.errors import GuestError
from repro.guest.filesystem import GuestFilesystem


def make_fs(image_blocks=10000, swap_pages=1000):
    return GuestFilesystem(image_blocks, swap_pages)


def test_files_are_contiguous_and_disjoint():
    fs = make_fs()
    a = fs.create_file("a", 100)
    b = fs.create_file("b", 50)
    assert b.start_block == a.start_block + 100
    assert a.block_of(99) < b.block_of(0)


def test_files_start_after_os_reserve():
    fs = make_fs()
    f = fs.create_file("a", 10)
    assert f.start_block >= GuestFilesystem.OS_RESERVED_BLOCKS


def test_swap_partition_at_image_tail():
    fs = make_fs(image_blocks=10000, swap_pages=1000)
    assert fs.swap_start_block == 9000


def test_block_of_bounds():
    fs = make_fs()
    f = fs.create_file("a", 10)
    with pytest.raises(GuestError):
        f.block_of(10)
    with pytest.raises(GuestError):
        f.block_of(-1)


def test_file_lookup():
    fs = make_fs()
    f = fs.create_file("a", 10)
    assert fs.file("a") is f
    assert fs.has_file("a")
    assert not fs.has_file("b")


def test_missing_file_rejected():
    with pytest.raises(GuestError):
        make_fs().file("ghost")


def test_duplicate_file_rejected():
    fs = make_fs()
    fs.create_file("a", 10)
    with pytest.raises(GuestError):
        fs.create_file("a", 10)


def test_ensure_file_idempotent():
    fs = make_fs()
    first = fs.ensure_file("a", 10)
    second = fs.ensure_file("a", 10)
    assert first is second


def test_ensure_file_too_small_rejected():
    fs = make_fs()
    fs.ensure_file("a", 10)
    with pytest.raises(GuestError):
        fs.ensure_file("a", 20)


def test_filesystem_full_rejected():
    fs = make_fs(image_blocks=4000, swap_pages=1000)
    with pytest.raises(GuestError):
        fs.create_file("huge", 4000)


def test_files_never_overlap_swap():
    fs = make_fs(image_blocks=4000, swap_pages=1000)
    usable = fs.swap_start_block - GuestFilesystem.OS_RESERVED_BLOCKS
    f = fs.create_file("big", usable)
    assert f.block_of(usable - 1) < fs.swap_start_block


def test_image_too_small_rejected():
    with pytest.raises(GuestError):
        GuestFilesystem(1000, 1000)
