"""Balloon sizing policies."""

import pytest

from repro.balloon.policy import (
    BalloonPolicy,
    GuestObservation,
    ProportionalSharePolicy,
)
from repro.errors import ConfigError


def obs(total=4096, free=1024, cache_clean=512, cache_dirty=0,
        anon=1024, pinned=0, swap_activity=0):
    stats = {
        "total": total,
        "free": free,
        "cache_clean": cache_clean,
        "cache_dirty": cache_dirty,
        "anon_resident": anon,
        "pinned": pinned,
        "min_resident": 0,
        "kernel_reserve": 128,
    }
    return GuestObservation(stats, swap_activity)


def test_idle_guest_inflated_under_host_pressure():
    policy = BalloonPolicy()
    decision = policy.decide({0: obs(free=2048)}, host_evictions_since_last=10_000)
    assert decision.host_pressure
    assert decision.targets[0] > 0


def test_no_pressure_no_change():
    policy = BalloonPolicy()
    decision = policy.decide({0: obs(pinned=100)},
                             host_evictions_since_last=0)
    assert decision.targets[0] == 100


def test_guest_pressure_deflates():
    policy = BalloonPolicy()
    observation = obs(free=10, pinned=1000)
    decision = policy.decide({0: observation},
                             host_evictions_since_last=10_000)
    assert decision.targets[0] < 1000


def test_guest_swapping_deflates():
    policy = BalloonPolicy()
    observation = obs(free=2048, pinned=1000, swap_activity=10_000)
    decision = policy.decide({0: observation},
                             host_evictions_since_last=10_000)
    assert decision.targets[0] < 1000


def test_balloon_capped_at_65_percent():
    policy = BalloonPolicy()
    observation = obs(total=1000, free=990, cache_clean=0, anon=0,
                      pinned=649)
    for _ in range(50):
        decision = policy.decide({0: observation},
                                 host_evictions_since_last=10_000)
    assert decision.targets[0] <= 650


def test_target_never_negative():
    policy = BalloonPolicy()
    observation = obs(free=0, pinned=10, swap_activity=10**6)
    decision = policy.decide({0: observation}, 0)
    assert decision.targets[0] >= 0


def test_bad_parameters_rejected():
    with pytest.raises(ConfigError):
        BalloonPolicy(balloon_max_fraction=2.0)
    with pytest.raises(ConfigError):
        BalloonPolicy(inflate_step_fraction=0)


def test_proportional_policy_squeezes_proportionally():
    policy = ProportionalSharePolicy(host_capacity_pages=4096)
    observations = {
        0: obs(total=4096, anon=3000, cache_clean=0, free=968),
        1: obs(total=4096, anon=1000, cache_clean=0, free=2968),
    }
    decision = policy.decide(observations, 0)
    # The hungrier guest keeps more memory => smaller balloon share of
    # its demand, but both are squeezed when oversubscribed.
    assert decision.targets[0] < decision.targets[1]


def test_proportional_policy_satisfies_when_undersubscribed():
    policy = ProportionalSharePolicy(host_capacity_pages=100_000)
    observations = {0: obs(total=4096, anon=1000)}
    decision = policy.decide(observations, 0)
    demand = policy.demand_of(observations[0].stats)
    assert decision.targets[0] == 4096 - demand


def test_proportional_policy_requires_capacity():
    with pytest.raises(ConfigError):
        ProportionalSharePolicy(host_capacity_pages=0)
