"""Balloon manager control loop over a live machine."""

from repro.balloon.manager import BalloonManager, ManagerConfig
from repro.balloon.policy import BalloonPolicy
from repro.driver import VmDriver
from repro.machine import Machine
from repro.sim.ops import Alloc, Compute, Touch
from repro.workloads.base import Workload
from tests.conftest import small_machine_config, small_vm_config


class IdleWorkload(Workload):
    """Computes quietly for a while."""

    name = "idle"

    def __init__(self, steps=40):
        self.steps = steps

    def operations(self):
        for _ in range(self.steps):
            yield Compute(1.0)


class HungryWorkload(Workload):
    """Rapidly builds a large anonymous footprint."""

    name = "hungry"
    min_resident_pages = 0

    def __init__(self, pages=3000, chunk=256):
        self.pages = pages
        self.chunk = chunk

    def operations(self):
        yield Alloc("tables", self.pages)
        offset = 0
        while offset < self.pages:
            length = min(self.chunk, self.pages - offset)
            yield Touch("tables", offset, length, write=True)
            yield Compute(0.2)
            offset += length


def test_manager_ticks_and_records_history():
    machine = Machine(small_machine_config())
    vm = machine.create_vm(small_vm_config())
    VmDriver(machine, vm, IdleWorkload(steps=5))
    manager = BalloonManager(machine, ManagerConfig(poll_interval=1.0))
    machine.engine.run(until=4.5)
    machine.engine.stop()
    machine.engine.run()
    assert manager.ticks >= 4
    assert all(vm_id == vm.vm_id for _t, vm_id, _tg in manager.history)


def test_manager_inflates_idle_guests_under_pressure():
    # Two guests on a host that cannot hold both: the hungry one's
    # growth creates host evictions, and the manager should balloon
    # the idle one.
    machine = Machine(small_machine_config(total_memory_pages=6000))
    idle = machine.create_vm(small_vm_config(name="idle"))
    hungry = machine.create_vm(small_vm_config(name="hungry"))
    # Pre-touch the idle guest so it owns memory worth reclaiming.
    for i in range(3500):
        machine.hypervisor.touch_page(idle, 0x100 + i, write=True)
    idle_driver = VmDriver(machine, idle, IdleWorkload(steps=60))
    hungry_driver = VmDriver(machine, hungry, HungryWorkload(pages=3400))
    BalloonManager(machine, ManagerConfig(
        poll_interval=1.0,
        policy=BalloonPolicy(host_pressure_evictions=64)))
    machine.engine.run(until=80.0)
    machine.engine.stop()
    machine.engine.run()
    assert idle_driver.done and hungry_driver.done
    assert idle.guest.balloon_target > 0
    assert idle.counters.balloon_inflated_pages > 0


def test_manager_skips_oom_killed_guests():
    machine = Machine(small_machine_config())
    vm = machine.create_vm(small_vm_config())
    vm.guest.oom_killed = True
    manager = BalloonManager(machine, ManagerConfig(poll_interval=1.0))
    machine.engine.run(until=2.5)
    machine.engine.stop()
    machine.engine.run()
    assert manager.history == []
