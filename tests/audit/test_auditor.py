"""The runtime invariant auditor: clean runs pass, corruption raises.

A paranoid machine carries an :class:`InvariantAuditor` that re-checks
frame conservation, EPT/swap/mapper consistency, and clock
monotonicity at phase boundaries and (sampled) reclaim events.  These
tests drive a real pressure workload under audit -- it must pass with
a nonzero audit count -- then corrupt live state by hand and assert
the auditor refuses it.
"""

import pytest

from repro.audit import InvariantAuditor, paranoid_enabled, set_paranoid
from repro.config import VSwapperConfig
from repro.driver import VmDriver
from repro.errors import InvariantViolation, SimulationError
from repro.machine import Machine
from repro.workloads.sysbench import SysbenchFileRead
from tests.conftest import small_machine_config, small_vm_config


@pytest.fixture(autouse=True)
def _restore_paranoid():
    previous = paranoid_enabled()
    yield
    set_paranoid(previous)


def _paranoid_machine() -> Machine:
    set_paranoid(True)
    return Machine(small_machine_config())


def _pressure_run(machine: Machine, *, vswapper=None) -> "object":
    vm = machine.create_vm(small_vm_config(
        vswapper=vswapper, resident_limit_mib=4))
    machine.boot_guest(vm)
    vm.guest.fs.create_file("sysbench.dat", 1024)
    workload = SysbenchFileRead(
        file_pages=1024, iterations=2, chunk_pages=128)
    driver = VmDriver(machine, vm, workload)
    machine.run()
    assert driver.done and not driver.crashed
    return vm


def test_set_paranoid_returns_previous_value():
    assert set_paranoid(True) is False
    assert paranoid_enabled()
    assert set_paranoid(False) is True
    assert not paranoid_enabled()


def test_machine_only_audits_when_paranoid(machine):
    assert machine.auditor is None  # fixture machine: paranoid off
    paranoid = _paranoid_machine()
    assert isinstance(paranoid.auditor, InvariantAuditor)
    assert paranoid.hypervisor.auditor is paranoid.auditor


def test_invariant_violation_is_a_simulation_error():
    assert issubclass(InvariantViolation, SimulationError)


def test_clean_pressure_run_passes_audit_baseline():
    machine = _paranoid_machine()
    _pressure_run(machine)
    assert machine.auditor.audits > 0
    assert machine.auditor.quick_checks > 0
    machine.auditor.check("post-run")  # final full walk still clean


def test_clean_pressure_run_passes_audit_vswapper():
    machine = _paranoid_machine()
    _pressure_run(machine, vswapper=VSwapperConfig.full())
    assert machine.auditor.audits > 0
    machine.auditor.check("post-run")


def test_frame_pool_corruption_is_caught():
    machine = _paranoid_machine()
    machine.frames._used = machine.frames.total_frames + 1
    with pytest.raises(InvariantViolation, match="frame"):
        machine.auditor.check("tampered")


def test_clock_regression_is_caught():
    machine = _paranoid_machine()
    machine.auditor._last_time = machine.now + 100.0
    with pytest.raises(InvariantViolation):
        machine.auditor.check("tampered")


def test_page_both_mapped_and_swapped_is_caught():
    machine = _paranoid_machine()
    vm = _pressure_run(machine)
    present = next(iter(vm.ept.present_gpas()))
    vm.swap_slots[present] = 0
    with pytest.raises(InvariantViolation):
        machine.auditor.check("tampered")


def test_orphan_swap_slot_owner_is_caught():
    machine = _paranoid_machine()
    vm = _pressure_run(machine)
    assert vm.swap_slots, "pressure run should have swapped pages out"
    gpa, slot = next(iter(vm.swap_slots.items()))
    del machine.hypervisor.slot_owner[slot]
    with pytest.raises(InvariantViolation):
        machine.auditor.check("tampered")


def test_mapper_geometry_violation_is_caught():
    machine = _paranoid_machine()
    vm = _pressure_run(machine, vswapper=VSwapperConfig.full())
    assoc = next(iter(vm.mapper.associations()), None)
    assert assoc is not None, "vswapper run should track pages"
    assoc.block = vm.image.size_blocks + 7
    with pytest.raises(InvariantViolation):
        machine.auditor.check("tampered")


def test_violation_message_names_site_and_time():
    machine = _paranoid_machine()
    machine.frames._used = -1
    with pytest.raises(InvariantViolation, match=r"at tampered \(t="):
        machine.auditor.check("tampered")
