"""Chrome trace-event export: structure, validation, determinism."""

import json

from repro.exec.executor import ParallelExecutor, run_sweep
from repro.exec.store import ResultStore
from repro.trace import set_tracing
from repro.trace.collector import TraceCollector
from repro.trace.export import (
    chrome_trace,
    render_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.trace.tools import load_traced_cells


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0


def small_trace():
    trace = TraceCollector(FakeClock(), mode="full")
    sid = trace.begin_span("FileRead", vm="vm0")
    trace.clock.now = 0.5
    trace.emit("fault.major", vm="vm0", gpa=3, stale=True)
    trace.clock.now = 1.0
    trace.end_span(sid)
    trace.emit("engine.stop")
    return trace.finish()


def test_chrome_trace_structure():
    document = chrome_trace([("cell-a", small_trace())])
    assert validate_chrome_trace(document) == []
    records = document["traceEvents"]

    meta = [r for r in records if r["ph"] == "M"]
    assert meta[0]["args"]["name"] == "cell-a"

    spans = [r for r in records if r["ph"] == "X"]
    assert spans[0]["name"] == "FileRead"
    assert spans[0]["ts"] == 0.0 and spans[0]["dur"] == 1e6  # us

    instants = {r["name"]: r for r in records if r["ph"] == "i"}
    fault = instants["fault.major"]
    assert fault["cat"] == "fault" and fault["s"] == "t"
    assert fault["ts"] == 0.5e6
    assert fault["args"]["stale"] is True
    assert fault["args"]["vm"] == "vm0"
    assert fault["args"]["sid"] == spans[0]["args"]["sid"]
    assert "sid" not in instants["engine.stop"]["args"]


def test_cells_become_distinct_processes():
    document = chrome_trace(
        [("cell-a", small_trace()), ("cell-b", small_trace())])
    pids = {r["args"]["name"]: r["pid"]
            for r in document["traceEvents"] if r["ph"] == "M"}
    assert pids == {"cell-a": 0, "cell-b": 1}


def test_validator_catches_malformed_documents():
    assert validate_chrome_trace({}) == \
        ["traceEvents is missing or not a list"]
    problems = validate_chrome_trace({"traceEvents": [
        "not a record",
        {"ph": "Z", "name": "bad-phase"},
        {"ph": "i", "name": "no-ts", "s": "t"},
        {"ph": "X", "name": "no-dur", "ts": 0},
        {"ph": "i", "name": "no-scope", "ts": 0},
    ]})
    assert len(problems) == 5


def test_write_creates_parent_directories(tmp_path):
    target = tmp_path / "deep" / "nested" / "trace.json"
    written = write_chrome_trace(target, [("cell-a", small_trace())])
    assert written == target
    document = json.loads(target.read_text())
    assert validate_chrome_trace(document) == []


def test_render_is_stable():
    cells = [("cell-a", small_trace())]
    assert render_chrome_trace(cells) == render_chrome_trace(cells)


def test_parallel_sweep_exports_byte_identically_to_serial(tmp_path):
    """Acceptance criterion: the merged export of a parallel traced
    sweep is byte-identical to a serial one's."""
    from repro.experiments.registry import EXPERIMENTS

    sweep = EXPERIMENTS["fig3"].build_sweep(scale=32)
    previous = set_tracing("full")
    try:
        serial_store = ResultStore(tmp_path / "serial")
        run_sweep(sweep, store=serial_store)
        parallel_store = ResultStore(tmp_path / "parallel")
        run_sweep(sweep, executor=ParallelExecutor(2), store=parallel_store)
    finally:
        set_tracing(previous)

    documents = []
    for store in (serial_store, parallel_store):
        cells = load_traced_cells(store, "fig3", scale=32)
        assert not cells.notes, cells.notes
        documents.append(render_chrome_trace(
            [(spec.cell_id, result.trace)
             for spec, result in cells.traced]))
    assert documents[0] == documents[1]
    assert validate_chrome_trace(json.loads(documents[0])) == []
