"""Analyzer tests: synthetic signature counting plus the live
trace/counter cross-check the tracing subsystem exists for."""

import pytest

from repro.errors import TraceError
from repro.trace import set_tracing
from repro.trace.analyzer import ROOT_CAUSES, TraceAnalyzer
from repro.trace.events import Span, TraceData, TraceEvent


def ev(seq: int, kind: str, span: int | None = None, **args) -> TraceEvent:
    return TraceEvent(seq, float(seq), kind, span=span, args=args)


def trace_of(*events: TraceEvent, mode: str = "full",
             spans: list | None = None, **kwargs) -> TraceData:
    return TraceData(mode=mode, events=list(events), spans=spans or [],
                     emitted=len(events), **kwargs)


def test_each_root_cause_has_its_event_signature():
    trace = trace_of(
        ev(0, "swap.out", silent=True),
        ev(1, "swap.out", silent=False),
        ev(2, "fault.major", stale=True, context="host"),
        ev(3, "fault.major", stale=False, context="guest"),
        ev(4, "fault.false_read", gpa=9),
        ev(5, "fault.code", index=2),
        ev(6, "mapper.name", gpa=1),  # not a root cause
    )
    assert TraceAnalyzer(trace).root_causes() == {
        "silent_swap_writes": 1,
        "stale_reads": 1,
        "false_reads": 1,
        "guest_context_faults": 1,
        "hypervisor_code_faults": 1,
    }


def test_stale_guest_fault_counts_toward_both_causes():
    trace = trace_of(ev(0, "fault.major", stale=True, context="guest"))
    counts = TraceAnalyzer(trace).root_causes()
    assert counts["stale_reads"] == 1
    assert counts["guest_context_faults"] == 1


def test_counts_sum_across_traces():
    one = trace_of(ev(0, "swap.out", silent=True))
    two = trace_of(ev(0, "swap.out", silent=True), ev(1, "fault.code"))
    counts = TraceAnalyzer([one, two]).root_causes()
    assert counts["silent_swap_writes"] == 2
    assert counts["hypervisor_code_faults"] == 1


def test_no_traces_is_an_error():
    with pytest.raises(TraceError, match="no traces"):
        TraceAnalyzer([])


def test_cross_check_exact_when_counts_agree():
    trace = trace_of(ev(0, "swap.out", silent=True))
    counters = dict.fromkeys(ROOT_CAUSES, 0)
    counters["silent_swap_writes"] = 1
    counters["swap_sectors_written"] = 99  # unrelated counters ignored
    assert TraceAnalyzer(trace).cross_check(counters) == []


def test_cross_check_reports_each_disagreement():
    trace = trace_of(ev(0, "swap.out", silent=True))
    mismatches = TraceAnalyzer(trace).cross_check(
        {"silent_swap_writes": 2, "stale_reads": 1})
    assert len(mismatches) == 2
    assert any("silent_swap_writes" in m for m in mismatches)
    assert any("stale_reads" in m for m in mismatches)


def test_incomplete_traces_refuse_exactness():
    sampled = trace_of(mode="sampled", sampled_out=3)
    clipped = trace_of(ev(0, "fault.code"), dropped=7)
    for trace in (sampled, clipped):
        lines = TraceAnalyzer(trace).cross_check(
            dict.fromkeys(ROOT_CAUSES, 0))
        assert lines and all(
            line.startswith("exact cross-check impossible") for line in lines)
    issues = TraceAnalyzer([sampled, clipped]).completeness_issues()
    assert len(issues) == 2


def test_verify_raises_on_mismatch_and_returns_counts_on_success():
    trace = trace_of(ev(0, "fault.false_read"))
    with pytest.raises(TraceError, match="cross-check failed"):
        TraceAnalyzer(trace).verify(dict.fromkeys(ROOT_CAUSES, 0))
    good = dict.fromkeys(ROOT_CAUSES, 0)
    good["false_reads"] = 1
    assert TraceAnalyzer(trace).verify(good)["false_reads"] == 1


def test_top_spans_ranks_by_caused_then_duration():
    spans = [
        Span(1, "FileRead", "vm0", 0.0, 5.0),
        Span(2, "Touch", "vm0", 0.0, 1.0),
        Span(3, "Idle", "vm0", 0.0, 9.0),
    ]
    trace = trace_of(
        ev(0, "fault.major", span=1),
        ev(1, "disk.submit", span=1),
        ev(2, "fault.major", span=2),
        ev(3, "disk.submit", span=2),
        spans=spans,
    )
    ranked = TraceAnalyzer(trace).top_spans()
    # 1 and 2 tie on caused events (2 each); the longer span wins.
    assert [(span.sid, caused) for span, caused in ranked] == [
        (1, 2), (2, 2), (3, 0)]
    assert [span.sid for span, _ in TraceAnalyzer(trace).top_spans(2)] \
        == [1, 2]
    assert TraceAnalyzer(trace).top_spans(0) == []


def test_live_cell_cross_checks_bit_exactly():
    """The acceptance criterion: on a real fig9 cell the analyzer's
    five counts equal the simulation's Counters exactly."""
    from repro.experiments.registry import EXPERIMENTS, cell_runner

    sweep = EXPERIMENTS["fig9"].build_sweep(scale=32)
    spec = sweep.cells[0]  # baseline: every pathology fires
    previous = set_tracing("full")
    try:
        result = cell_runner(spec.experiment_id)(spec)
    finally:
        set_tracing(previous)
    assert result.trace is not None and result.trace.complete
    derived = TraceAnalyzer(result.trace).verify(result.counters)
    assert derived["silent_swap_writes"] > 0
    assert derived["hypervisor_code_faults"] > 0
