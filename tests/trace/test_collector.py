"""Collector unit tests: rings, spans, sampling, serialization."""

import pytest

from repro.errors import ConfigError, ReproError
from repro.trace.collector import (
    NULL_SPAN,
    NULL_TRACE,
    TraceCollector,
)
from repro.trace.events import TRACE_SCHEMA_VERSION, TraceData


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0


def collector(**kwargs) -> TraceCollector:
    return TraceCollector(FakeClock(), **kwargs)


def test_null_trace_is_disabled_and_inert():
    assert not NULL_TRACE.enabled
    NULL_TRACE.emit("fault.major", gpa=1)
    sid = NULL_TRACE.begin_span("Touch")
    assert sid == NULL_SPAN
    NULL_TRACE.end_span(sid)
    NULL_TRACE.reset()
    assert NULL_TRACE.finish() is None


def test_emit_records_time_kind_and_args():
    trace = collector()
    trace.clock.now = 1.5
    trace.emit("swap.out", vm="vm0", gpa=7, silent=True)
    data = trace.finish()
    assert len(data.events) == 1
    event = data.events[0]
    assert (event.time, event.kind, event.vm) == (1.5, "swap.out", "vm0")
    assert event.args == {"gpa": 7, "silent": True}
    assert event.span is None
    assert data.complete


def test_at_override_stamps_the_virtual_future():
    trace = collector()
    trace.emit("disk.complete", at=9.25, sector=4)
    assert trace.finish().events[0].time == 9.25


def test_events_carry_the_innermost_open_span():
    trace = collector()
    outer = trace.begin_span("FileRead", vm="vm0")
    trace.emit("fault.major", gpa=1)
    inner = trace.begin_span("Nested")
    trace.emit("disk.submit", sector=0)
    trace.end_span(inner)
    trace.emit("swap.in", gpa=1)
    trace.end_span(outer)
    data = trace.finish()
    spans = [e.span for e in data.events]
    assert spans == [outer, inner, outer]
    assert [s.sid for s in data.spans] == sorted([outer, inner])


def test_finish_closes_abandoned_spans():
    trace = collector()
    sid = trace.begin_span("Touch")
    trace.clock.now = 3.0
    data = trace.finish()
    assert data.spans[0].sid == sid
    assert data.spans[0].end == 3.0
    assert data.spans[0].duration == 3.0


def test_sampled_mode_keeps_every_nth_top_level_span():
    trace = collector(mode="sampled", sample_every=4)
    kept = []
    for i in range(8):
        sid = trace.begin_span("Op")
        trace.emit("fault.major", index=i)
        trace.end_span(sid)
        if sid != NULL_SPAN:
            kept.append(i)
    data = trace.finish()
    assert kept == [0, 4]
    assert [e.args["index"] for e in data.events] == [0, 4]
    assert data.sampled_out == 6
    assert not data.complete


def test_sampled_mode_suppresses_nested_spans_wholesale():
    trace = collector(mode="sampled", sample_every=2)
    first = trace.begin_span("Kept")
    trace.end_span(first)
    skipped = trace.begin_span("Skipped")
    nested = trace.begin_span("Nested")
    trace.emit("fault.major")
    assert skipped == NULL_SPAN and nested == NULL_SPAN
    trace.end_span(nested)
    trace.end_span(skipped)
    # Suppression fully unwound: the next kept span records again.
    kept = trace.begin_span("Kept2")
    trace.emit("swap.out")
    trace.end_span(kept)
    data = trace.finish()
    assert [e.kind for e in data.events] == ["swap.out"]


def test_ring_capacity_evicts_and_counts():
    trace = collector(capacity=4)
    for i in range(6):
        trace.emit("reclaim.scan", index=i)
    data = trace.finish()
    assert [e.args["index"] for e in data.events] == [2, 3, 4, 5]
    assert data.emitted == 6
    assert data.dropped == 2
    assert not data.complete


def test_reset_discards_everything():
    trace = collector()
    sid = trace.begin_span("Op")
    trace.emit("fault.major")
    trace.reset()
    trace.end_span(sid)  # stale id from before the reset: ignored
    data = trace.finish()
    assert data.events == [] and data.spans == []
    assert data.emitted == 0 and data.dropped == 0


def test_invalid_configuration_raises():
    with pytest.raises(ConfigError):
        collector(mode="verbose")
    with pytest.raises(ConfigError):
        collector(capacity=0)
    with pytest.raises(ConfigError):
        collector(sample_every=0)


def test_trace_data_round_trips_through_dict():
    trace = collector()
    sid = trace.begin_span("FileRead", vm="vm0")
    trace.clock.now = 2.0
    trace.emit("fault.major", vm="vm0", gpa=3, stale=True)
    trace.end_span(sid)
    data = trace.finish()
    restored = TraceData.from_dict(data.to_dict())
    assert restored == data


def test_trace_data_rejects_unknown_schema():
    payload = collector().finish().to_dict()
    payload["schema"] = TRACE_SCHEMA_VERSION + 1
    with pytest.raises(ReproError, match="schema"):
        TraceData.from_dict(payload)
