"""CLI flow: run --trace, then the trace subcommands against the store.

Scale 32 keeps each fig3 cell tiny; the traced run fans out over two
worker processes so the pool initializer is exercised carrying the
ambient trace mode across process boundaries.
"""

import json

from repro.cli import main
from repro.trace import tracing_mode
from repro.trace.export import validate_chrome_trace


def traced_run(store: str) -> int:
    # --trace takes an optional MODE, so it must not precede the
    # experiment positional (argparse would swallow it).
    return main(["run", "fig3", "--scale", "32", "--jobs", "2",
                 "--results-dir", store, "--trace"])


def test_traced_run_then_export_analyze_top_spans(tmp_path, capsys):
    store = str(tmp_path / "store")
    assert traced_run(store) == 0
    assert tracing_mode() is None  # ambient flag restored
    capsys.readouterr()

    out_path = tmp_path / "fig3-trace.json"
    assert main(["trace", "export", "fig3", "--scale", "32",
                 "--results-dir", store, "--out", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert f"wrote {out_path}" in out
    document = json.loads(out_path.read_text())
    assert validate_chrome_trace(document) == []
    assert document["traceEvents"]

    assert main(["trace", "analyze", "fig3", "--scale", "32",
                 "--results-dir", store]) == 0
    captured = capsys.readouterr()
    assert "root causes re-derived from the trace" in captured.out
    assert "exact" in captured.out
    assert "MISMATCH" not in captured.err

    assert main(["trace", "top-spans", "fig3", "--scale", "32",
                 "--results-dir", store, "--limit", "3"]) == 0
    out = capsys.readouterr().out
    assert "causing the most host work" in out
    assert "FileRead" in out


def test_resume_over_untraced_cache_reports_unavailable(tmp_path, capsys):
    store = str(tmp_path / "store")
    assert main(["run", "fig3", "--scale", "32",
                 "--results-dir", store]) == 0
    capsys.readouterr()

    # Tracing is not part of the cell hash: the resume serves untraced
    # cache hits and must say so instead of fabricating empty traces.
    assert main(["run", "fig3", "--scale", "32", "--results-dir", store,
                 "--resume", "--trace"]) == 0
    out = capsys.readouterr().out
    assert "executed=0" in out
    assert "trace unavailable (cached) for 4 cell(s)" in out

    assert main(["trace", "export", "fig3", "--scale", "32",
                 "--results-dir", store,
                 "--out", str(tmp_path / "empty.json")]) == 1
    err = capsys.readouterr().err
    assert "refusing to write an empty trace" in err
    assert not (tmp_path / "empty.json").exists()


def test_sampled_traces_refuse_the_exact_cross_check(tmp_path, capsys):
    store = str(tmp_path / "store")
    assert main(["run", "fig3", "--scale", "32", "--results-dir", store,
                 "--trace=sampled"]) == 0
    capsys.readouterr()

    assert main(["trace", "analyze", "fig3", "--scale", "32",
                 "--results-dir", store]) == 1
    captured = capsys.readouterr()
    assert "exact cross-check impossible" in captured.out
    assert "MISMATCH" in captured.err


def test_trace_subcommand_rejects_bad_targets(tmp_path, capsys):
    store = str(tmp_path / "store")
    assert main(["trace", "export", "nope", "--scale", "32",
                 "--results-dir", store]) == 1
    assert "unknown experiment" in capsys.readouterr().err

    assert main(["trace", "analyze", "table1", "--scale", "32",
                 "--results-dir", store]) == 1
    assert "declares no cells" in capsys.readouterr().err

    # Stored, but never traced at this scale: nothing to export.
    assert main(["trace", "top-spans", "fig3", "--scale", "32",
                 "--results-dir", store]) == 1
    assert "not in store" in capsys.readouterr().err
