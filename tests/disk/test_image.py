"""Virtual disk image content versioning."""

import pytest

from repro.disk.geometry import DiskRegion
from repro.disk.image import BlockVersion, VirtualDiskImage
from repro.errors import DiskError


def make_image(pages=100):
    return VirtualDiskImage(
        DiskRegion("img", base_sector=1000, size_sectors=pages * 8))


def test_fresh_blocks_are_version_zero():
    image = make_image()
    assert image.version_of(5) == 0


def test_write_bumps_version():
    image = make_image()
    v1 = image.write(5)
    v2 = image.write(5)
    assert v1 == BlockVersion(5, 1)
    assert v2 == BlockVersion(5, 2)


def test_writes_are_per_block():
    image = make_image()
    image.write(1)
    assert image.version_of(2) == 0


def test_current_matches_write():
    image = make_image()
    version = image.write(3)
    assert image.current(3) == version


def test_matches_true_for_current_content():
    image = make_image()
    version = image.write(7)
    assert image.matches(7, version)


def test_matches_false_after_overwrite():
    image = make_image()
    old = image.write(7)
    image.write(7)
    assert not image.matches(7, old)


def test_matches_false_for_other_block():
    image = make_image()
    version = image.write(7)
    assert not image.matches(8, version)


def test_matches_false_for_none():
    image = make_image()
    assert not image.matches(0, None)


def test_sector_of():
    image = make_image()
    assert image.sector_of(0) == 1000
    assert image.sector_of(2) == 1016


def test_out_of_range_rejected():
    image = make_image(pages=10)
    with pytest.raises(DiskError):
        image.version_of(10)
    with pytest.raises(DiskError):
        image.write(-1)
    with pytest.raises(DiskError):
        image.sector_of(100)


def test_matches_false_for_non_block_content():
    from repro.mem.page import ZERO, AnonContent
    image = make_image()
    image.write(3)
    assert not image.matches(3, ZERO)
    assert not image.matches(3, AnonContent.fresh())
