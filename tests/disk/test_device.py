"""Shared disk device: queueing, head position, throttling."""

import pytest

from repro.disk.device import DiskDevice
from repro.disk.latency import HddLatencyModel
from repro.errors import DiskError
from repro.sim.clock import Clock


def make_device(max_write_backlog=0.25):
    clock = Clock()
    model = HddLatencyModel(bandwidth_bytes_per_sec=100e6,
                            per_request_overhead=0.0)
    return clock, DiskDevice(clock, model,
                             max_write_backlog=max_write_backlog)


def test_sequential_reads_are_cheap():
    _clock, disk = make_device()
    transfer = 8 * 512 / 100e6
    first = disk.read(0, 8)
    second = disk.read(8, 8)   # head continues: no seek
    # Stalls are measured from the frozen clock, so the second request
    # includes the first's service; its own increment is one transfer.
    assert first == pytest.approx(transfer)
    assert second - first == pytest.approx(transfer)


def test_random_read_pays_seek():
    _clock, disk = make_device()
    disk.read(0, 8)
    jump = disk.read(10**8, 8)
    stay = 8 * 512 / 100e6
    assert jump > stay * 5


def test_queueing_serializes_requests():
    _clock, disk = make_device()
    stall1 = disk.read(10**8, 8)
    stall2 = disk.read(0, 8)
    assert stall2 > stall1  # waited behind the first request


def test_busy_until_advances():
    _clock, disk = make_device()
    disk.read(0, 8)
    assert disk.busy_until > 0


def test_head_position_tracks_requests():
    _clock, disk = make_device()
    disk.read(100, 8)
    assert disk.head_sector == 108


def test_async_write_returns_zero_when_backlog_small():
    _clock, disk = make_device(max_write_backlog=10.0)
    assert disk.write_async(0, 8) == 0.0


def test_async_write_throttles_when_backlogged():
    _clock, disk = make_device(max_write_backlog=0.001)
    stall = 0.0
    for i in range(200):
        stall = disk.write_async(i * 10**6, 8)
    assert stall > 0.0


def test_stats_track_reads_and_writes():
    _clock, disk = make_device()
    disk.read(0, 8)
    disk.write_sync(100, 16)
    assert disk.stats.sectors_read == 8
    assert disk.stats.sectors_written == 16
    assert disk.stats.requests == 2


def test_stats_per_region():
    _clock, disk = make_device()
    disk.read(0, 8, region="image")
    disk.read(100, 8, region="swap")
    disk.read(200, 8, region="swap")
    assert disk.stats.per_region_requests == {"image": 1, "swap": 2}


def test_rejects_bad_requests():
    _clock, disk = make_device()
    with pytest.raises(DiskError):
        disk.read(0, 0)
    with pytest.raises(DiskError):
        disk.read(-5, 8)


def test_quiesce_resets_queue_and_stats():
    clock, disk = make_device()
    disk.read(10**8, 8)
    disk.quiesce()
    assert disk.busy_until == clock.now
    assert disk.stats.requests == 0


def test_clock_advance_drains_queue():
    clock, disk = make_device()
    disk.read(10**8, 8)
    clock.advance_to(100.0)
    # A new request after the queue drained waits only its own service.
    stall = disk.read(10**8 + 8, 8)
    assert stall < 0.01


def test_utilization():
    clock, disk = make_device()
    disk.read(10**8, 8)
    clock.advance_to(1.0)
    assert 0.0 < disk.utilization(1.0) <= 1.0
    assert disk.utilization(0.0) == 0.0


def test_read_async_occupies_head_without_stall():
    _clock, disk = make_device()
    completion = disk.read_async(10**8, 8)
    assert completion > 0
    stall = disk.read(0, 8)
    assert stall >= completion * 0.9  # queued behind the async read
