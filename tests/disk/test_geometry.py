"""Disk layout and regions."""

import pytest

from repro.disk.geometry import DiskLayout, DiskRegion
from repro.errors import DiskError


def test_regions_do_not_overlap():
    layout = DiskLayout(gap_sectors=100)
    a = layout.add_region("a", 1000)
    b = layout.add_region("b", 1000)
    assert b.base_sector >= a.base_sector + a.size_sectors + 100


def test_region_lookup():
    layout = DiskLayout()
    region = layout.add_region("swap", 800)
    assert layout.region("swap") is region


def test_unknown_region_rejected():
    with pytest.raises(DiskError):
        DiskLayout().region("nope")


def test_duplicate_region_rejected():
    layout = DiskLayout()
    layout.add_region("a", 100)
    with pytest.raises(DiskError):
        layout.add_region("a", 100)


def test_non_positive_region_rejected():
    with pytest.raises(DiskError):
        DiskLayout().add_region("z", 0)


def test_add_region_pages():
    layout = DiskLayout()
    region = layout.add_region_pages("img", 10)
    assert region.size_sectors == 80
    assert region.size_pages == 10


def test_sector_of_page():
    region = DiskRegion("r", base_sector=1000, size_sectors=80)
    assert region.sector_of_page(0) == 1000
    assert region.sector_of_page(9) == 1000 + 72


def test_sector_of_page_out_of_range():
    region = DiskRegion("r", base_sector=0, size_sectors=80)
    with pytest.raises(DiskError):
        region.sector_of_page(10)
    with pytest.raises(DiskError):
        region.sector_of_page(-1)


def test_contains():
    region = DiskRegion("r", base_sector=100, size_sectors=50)
    assert region.contains(100)
    assert region.contains(149)
    assert not region.contains(150)
    assert not region.contains(99)


def test_total_sectors_grows():
    layout = DiskLayout(gap_sectors=10)
    layout.add_region("a", 100)
    first = layout.total_sectors
    layout.add_region("b", 100)
    assert layout.total_sectors > first


def test_regions_listed_in_order():
    layout = DiskLayout()
    layout.add_region("a", 10)
    layout.add_region("b", 10)
    assert [r.name for r in layout.regions()] == ["a", "b"]
