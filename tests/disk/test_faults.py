"""Disk fault injection: retry/backoff accounting and write throttling."""

import pytest

from repro.config import FaultConfig
from repro.disk.device import DiskDevice
from repro.disk.latency import HddLatencyModel
from repro.errors import FaultError
from repro.faults.plan import FaultPlan
from repro.sim.clock import Clock
from repro.sim.rng import DeterministicRng


def make_device(max_write_backlog=0.25, fault_config=None, seed=42):
    clock = Clock()
    model = HddLatencyModel(bandwidth_bytes_per_sec=100e6,
                            per_request_overhead=0.0)
    faults = None
    if fault_config is not None:
        faults = FaultPlan(fault_config, DeterministicRng(seed))
    return clock, DiskDevice(clock, model,
                             max_write_backlog=max_write_backlog,
                             faults=faults)


# ----------------------------------------------------------------------
# retry / backoff accounting
# ----------------------------------------------------------------------

def test_no_faults_without_a_plan():
    _clock, disk = make_device()
    for i in range(50):
        disk.read(i * 8, 8)
    assert disk.stats.transient_errors == 0
    assert disk.stats.retries == 0


def test_disabled_plan_injects_nothing():
    cfg = FaultConfig(enabled=False, disk_transient_error_rate=1.0)
    _clock, disk = make_device(fault_config=cfg)
    disk.read(0, 8)
    assert disk.stats.transient_errors == 0


def test_transient_errors_are_retried_and_counted():
    cfg = FaultConfig(enabled=True, disk_transient_error_rate=0.5,
                      max_retries=10)
    _clock, disk = make_device(fault_config=cfg)
    for i in range(200):
        disk.read(i * 8, 8)
    assert disk.stats.transient_errors > 0
    assert disk.stats.retries > 0
    # Every injected error is accounted as either a retry or an abort.
    assert disk.stats.transient_errors == (
        disk.stats.retries + disk.stats.fault_aborts)


def test_retry_adds_backoff_latency():
    cfg = FaultConfig(enabled=True, disk_transient_error_rate=0.5,
                      max_retries=50, backoff_base=0.01)
    _clock, faulty = make_device(fault_config=cfg)
    _clock2, clean = make_device()
    faulty_total = sum(faulty.read(i * 8, 8) for i in range(100))
    clean_total = sum(clean.read(i * 8, 8) for i in range(100))
    assert faulty.stats.retries > 0
    assert faulty_total > clean_total


def test_exhausted_retries_raise_fault_error():
    cfg = FaultConfig(enabled=True, disk_transient_error_rate=1.0,
                      max_retries=2)
    _clock, disk = make_device(fault_config=cfg)
    with pytest.raises(FaultError):
        disk.read(0, 8)
    assert disk.stats.fault_aborts == 1
    assert disk.stats.retries == 2  # budget fully consumed first


def test_fault_totals_mirrored_into_plan_counters():
    cfg = FaultConfig(enabled=True, disk_transient_error_rate=0.5,
                      max_retries=10)
    _clock, disk = make_device(fault_config=cfg)
    for i in range(100):
        disk.read(i * 8, 8)
    plan_counts = disk.faults.counters.snapshot()
    assert plan_counts["disk_retries"] == disk.stats.retries
    assert plan_counts["disk_transient_errors"] == disk.stats.transient_errors


def test_latency_spike_stretches_the_request():
    spike = 0.5
    cfg = FaultConfig(enabled=True, disk_latency_spike_rate=1.0,
                      disk_latency_spike_seconds=spike)
    _clock, disk = make_device(fault_config=cfg)
    stall = disk.read(0, 8)
    assert stall >= spike
    assert disk.stats.latency_spikes == 1


def test_torn_writes_hit_writes_only():
    cfg = FaultConfig(enabled=True, disk_torn_write_rate=1.0)
    _clock, disk = make_device(fault_config=cfg)
    disk.read(0, 8)
    assert disk.stats.torn_writes == 0
    disk.write_sync(0, 8)
    assert disk.stats.torn_writes == 1


def test_torn_write_costs_a_reissue():
    cfg = FaultConfig(enabled=True, disk_torn_write_rate=1.0)
    _clock, faulty = make_device(fault_config=cfg)
    _clock2, clean = make_device()
    assert faulty.write_sync(0, 8) > clean.write_sync(0, 8)


def test_backoff_grows_exponentially():
    cfg = FaultConfig(enabled=True, backoff_base=0.001, backoff_factor=2.0)
    plan = FaultPlan(cfg, DeterministicRng(1))
    assert plan.retry_backoff(1) == pytest.approx(0.001)
    assert plan.retry_backoff(2) == pytest.approx(0.002)
    assert plan.retry_backoff(4) == pytest.approx(0.008)


# ----------------------------------------------------------------------
# max_write_backlog throttling
# ----------------------------------------------------------------------

def test_write_backlog_under_cap_is_free():
    _clock, disk = make_device(max_write_backlog=10.0)
    for i in range(20):
        assert disk.write_async(i * 8, 8) == 0.0


def test_write_backlog_throttle_equals_excess_over_cap():
    cap = 0.001
    _clock, disk = make_device(max_write_backlog=cap)
    throttle = 0.0
    for i in range(100):
        throttle = disk.write_async(i * 10**6, 8)
    backlog = disk.busy_until - disk.clock.now
    assert throttle == pytest.approx(backlog - cap)


def test_write_throttle_grows_with_backlog():
    _clock, disk = make_device(max_write_backlog=0.001)
    throttles = [disk.write_async(i * 10**6, 8) for i in range(50)]
    assert throttles[-1] > throttles[1]


def test_backlog_drains_with_virtual_time():
    clock, disk = make_device(max_write_backlog=0.001)
    for i in range(50):
        disk.write_async(i * 10**6, 8)
    clock.advance_to(disk.busy_until + 1.0)
    # A sequential write after the drain has only its own tiny service.
    assert disk.write_async(disk.head_sector, 8) == 0.0


def test_sync_writes_bypass_the_backlog_cap():
    """Sync writers wait for completion, never for the throttle cap."""
    _clock, disk = make_device(max_write_backlog=0.0)
    stall = disk.write_sync(0, 8)
    assert stall == pytest.approx(8 * 512 / 100e6)
