"""Swap-area run allocator: contiguity, coalescing, conservation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk.geometry import DiskRegion
from repro.disk.swaparea import HostSwapArea
from repro.errors import DiskError


def make_area(pages=256):
    return HostSwapArea(
        DiskRegion("swap", base_sector=0, size_sectors=pages * 8))


def test_first_run_is_contiguous_from_zero():
    area = make_area()
    assert area.allocate_run(8) == list(range(8))


def test_runs_advance_through_fresh_space():
    area = make_area()
    area.allocate_run(8)
    assert area.allocate_run(4) == [8, 9, 10, 11]


def test_single_allocation():
    area = make_area()
    slot = area.allocate()
    assert slot == 0
    assert area.used_slots == 1


def test_free_and_reuse_lowest_hole():
    area = make_area()
    area.allocate_run(16)
    for slot in (3, 4, 5, 6):
        area.free(slot)
    assert area.allocate_run(4) == [3, 4, 5, 6]


def test_small_holes_skipped_for_large_runs():
    area = make_area()
    area.allocate_run(16)
    area.free(3)  # 1-slot hole
    run = area.allocate_run(4)
    assert run == [16, 17, 18, 19]  # fresh space, not the hole


def test_holes_coalesce():
    area = make_area()
    area.allocate_run(16)
    # Free out of order; the three must coalesce into one run of 3.
    area.free(5)
    area.free(7)
    area.free(6)
    assert area.allocate_run(3) == [5, 6, 7]


def test_fragmented_fallback_gathers_pieces():
    area = make_area(pages=16)
    area.allocate_run(16)
    for slot in (1, 5, 9, 13):
        area.free(slot)
    run = area.allocate_run(4)
    assert sorted(run) == [1, 5, 9, 13]


def test_exhaustion_raises():
    area = make_area(pages=8)
    area.allocate_run(8)
    with pytest.raises(DiskError):
        area.allocate()


def test_double_free_rejected():
    area = make_area()
    slot = area.allocate()
    area.free(slot)
    with pytest.raises(DiskError):
        area.free(slot)


def test_free_unallocated_rejected():
    area = make_area()
    with pytest.raises(DiskError):
        area.free(3)


def test_non_positive_run_rejected():
    area = make_area()
    with pytest.raises(DiskError):
        area.allocate_run(0)


def test_counts():
    area = make_area(pages=64)
    area.allocate_run(10)
    assert area.used_slots == 10
    assert area.free_slots == 54
    area.free(0)
    assert area.used_slots == 9


def test_high_watermark():
    area = make_area()
    area.allocate_run(10)
    assert area.high_watermark == 10
    area.free(9)
    area.allocate()
    assert area.high_watermark == 10  # reuse does not raise it


def test_cluster_of_alignment():
    area = make_area(pages=64)
    assert list(area.cluster_of(11, 8)) == list(range(8, 16))
    assert list(area.cluster_of(0, 8)) == list(range(0, 8))


def test_cluster_of_clipped_at_end():
    area = make_area(pages=12)
    assert list(area.cluster_of(11, 8)) == [8, 9, 10, 11]


def test_cluster_of_rejects_bad_size():
    area = make_area()
    with pytest.raises(DiskError):
        area.cluster_of(0, 0)


def test_sector_of():
    area = make_area()
    assert area.sector_of(3) == 24
    with pytest.raises(DiskError):
        area.sector_of(10**9)


def test_fragmentation_diagnostic():
    area = make_area()
    area.allocate_run(64)
    assert area.fragmentation() == 0.0
    area.free(1)
    assert area.fragmentation() == 1.0


@settings(max_examples=60, deadline=None)
@given(st.lists(
    st.tuples(st.booleans(), st.integers(min_value=1, max_value=12)),
    min_size=1, max_size=80))
def test_property_conservation_and_no_double_allocation(ops):
    """Random alloc/free interleavings keep perfect slot accounting."""
    area = make_area(pages=512)
    live: list[int] = []
    for is_alloc, n in ops:
        if is_alloc and area.free_slots >= n:
            slots = area.allocate_run(n)
            assert len(slots) == n
            assert len(set(slots)) == n         # no duplicates
            assert not set(slots) & set(live)   # no double allocation
            live.extend(slots)
        elif live:
            for _ in range(min(n, len(live))):
                area.free(live.pop())
        assert area.used_slots == len(live)
        assert area.used_slots + area.free_slots == area.size_slots


@settings(max_examples=40, deadline=None)
@given(st.sets(st.integers(min_value=0, max_value=63),
               min_size=0, max_size=64))
def test_property_free_set_fully_reusable(freed):
    """Everything freed can be allocated again, one way or another."""
    area = make_area(pages=64)
    area.allocate_run(64)
    for slot in freed:
        area.free(slot)
    recovered = []
    for _ in range(len(freed)):
        recovered.append(area.allocate())
    assert sorted(recovered) == sorted(freed)
