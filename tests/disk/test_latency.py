"""Disk latency models."""

import pytest

from repro.disk.latency import HddLatencyModel, SsdLatencyModel
from repro.errors import DiskError


def test_hdd_adjacent_request_pays_transfer_only():
    model = HddLatencyModel(bandwidth_bytes_per_sec=100e6,
                            per_request_overhead=0.0)
    # 8 sectors = 4096 bytes at 100 MB/s.
    assert model.service_time(0, 8) == pytest.approx(4096 / 100e6)


def test_hdd_seek_adds_rotation():
    model = HddLatencyModel(per_request_overhead=0.0)
    adjacent = model.service_time(0, 8)
    moved = model.service_time(1, 8)
    assert moved > adjacent + model.rotation_half * 0.99


def test_hdd_seek_grows_with_distance():
    model = HddLatencyModel()
    near = model.seek_time(1000)
    far = model.seek_time(10**9)
    assert far > near


def test_hdd_seek_zero_distance_is_free():
    assert HddLatencyModel().seek_time(0) == 0.0


def test_hdd_seek_capped_at_max():
    model = HddLatencyModel(seek_min=1e-3, seek_max=9e-3)
    assert model.seek_time(10**18) == pytest.approx(9e-3)


def test_hdd_rejects_non_positive_length():
    model = HddLatencyModel()
    with pytest.raises(DiskError):
        model.service_time(0, 0)


def test_hdd_rejects_bad_bandwidth():
    with pytest.raises(DiskError):
        HddLatencyModel(bandwidth_bytes_per_sec=0)


def test_hdd_rejects_bad_rotation_fraction():
    with pytest.raises(DiskError):
        HddLatencyModel(rotation_fraction=1.5)


def test_ssd_position_independent():
    model = SsdLatencyModel()
    assert model.service_time(0, 8) == model.service_time(10**9, 8)


def test_ssd_faster_than_hdd_for_random():
    ssd = SsdLatencyModel()
    hdd = HddLatencyModel()
    assert ssd.service_time(10**9, 8) < hdd.service_time(10**9, 8)


def test_ssd_rejects_non_positive_length():
    with pytest.raises(DiskError):
        SsdLatencyModel().service_time(0, -1)


def test_larger_transfers_take_longer():
    for model in (HddLatencyModel(), SsdLatencyModel()):
        assert model.service_time(0, 64) > model.service_time(0, 8)
