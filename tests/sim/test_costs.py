"""Cost accumulator: incremental disk-stall accounting."""

import pytest

from repro.errors import SimulationError
from repro.sim.costs import CostAccumulator


def test_cpu_accumulates():
    costs = CostAccumulator()
    costs.cpu(1.0)
    costs.cpu(0.5)
    assert costs.cpu_seconds == 1.5


def test_io_single_stall():
    costs = CostAccumulator()
    costs.io(2.0)
    assert costs.io_seconds == 2.0


def test_io_growing_stalls_charge_increments():
    # Two serialized requests of one op: stalls measured from the
    # frozen op start.  Total disk time is the max, not the sum.
    costs = CostAccumulator()
    costs.io(1.0)
    costs.io(3.0)
    assert costs.io_seconds == 3.0


def test_io_shrinking_stall_charges_nothing():
    costs = CostAccumulator()
    costs.io(3.0)
    costs.io(1.0)
    assert costs.io_seconds == 3.0


def test_fault_and_io_share_the_disk_mark():
    costs = CostAccumulator()
    costs.fault(2.0)   # swap-in read completes at +2.0
    costs.io(3.0)      # explicit read queued behind it, completes at +3.0
    assert costs.fault_seconds == 2.0
    assert costs.io_seconds == 1.0
    assert costs.total() == 3.0


def test_duration_applies_overlap_to_faults_only():
    costs = CostAccumulator()
    costs.cpu(1.0)
    costs.io(1.0)
    costs.fault(3.0)   # 2.0 incremental fault stall
    assert costs.duration(1.0) == pytest.approx(4.0)
    assert costs.duration(0.5) == pytest.approx(3.0)


def test_duration_rejects_bad_overlap():
    costs = CostAccumulator()
    with pytest.raises(SimulationError):
        costs.duration(1.5)


def test_negative_cost_rejected():
    costs = CostAccumulator()
    with pytest.raises(SimulationError):
        costs.cpu(-1.0)
    with pytest.raises(SimulationError):
        costs.io(-0.1)


def test_reset_clears_everything():
    costs = CostAccumulator()
    costs.cpu(1.0)
    costs.io(2.0)
    costs.reset()
    assert costs.total() == 0.0
    # The disk mark must reset too: a fresh op starts a fresh queue view.
    costs.io(1.0)
    assert costs.io_seconds == 1.0
