"""Deterministic RNG behaviour."""

from repro.sim.rng import DeterministicRng


def test_same_seed_same_stream():
    a = DeterministicRng(42)
    b = DeterministicRng(42)
    assert [a.randint(0, 100) for _ in range(20)] == \
           [b.randint(0, 100) for _ in range(20)]


def test_different_seeds_differ():
    a = DeterministicRng(1)
    b = DeterministicRng(2)
    assert [a.randint(0, 10**9) for _ in range(5)] != \
           [b.randint(0, 10**9) for _ in range(5)]


def test_fork_is_deterministic():
    a = DeterministicRng(7).fork("guest")
    b = DeterministicRng(7).fork("guest")
    assert a.randint(0, 10**9) == b.randint(0, 10**9)


def test_fork_seed_is_stable_across_interpreters():
    """Fork derivation must not use hash(): string hashing is salted
    per process, so a hash-derived child seed would give every
    interpreter launch a different schedule.  Pin the exact value."""
    assert DeterministicRng(7).fork("guest").seed == 98374863


def test_fork_labels_independent():
    a = DeterministicRng(7).fork("guest")
    b = DeterministicRng(7).fork("host")
    assert [a.randint(0, 10**9) for _ in range(5)] != \
           [b.randint(0, 10**9) for _ in range(5)]


def test_fork_does_not_disturb_parent():
    parent = DeterministicRng(7)
    first = parent.randint(0, 10**9)
    parent2 = DeterministicRng(7)
    parent2.fork("child")
    assert parent2.randint(0, 10**9) == first


def test_uniform_range():
    rng = DeterministicRng(3)
    for _ in range(100):
        value = rng.uniform(2.0, 5.0)
        assert 2.0 <= value < 5.0


def test_chance_extremes():
    rng = DeterministicRng(3)
    assert not any(rng.chance(0.0) for _ in range(50))
    assert all(rng.chance(1.0) for _ in range(50))


def test_choice_and_sample():
    rng = DeterministicRng(3)
    items = list(range(10))
    assert rng.choice(items) in items
    sample = rng.sample(items, 4)
    assert len(sample) == 4
    assert len(set(sample)) == 4


def test_shuffle_preserves_elements():
    rng = DeterministicRng(3)
    items = list(range(20))
    shuffled = items[:]
    rng.shuffle(shuffled)
    assert sorted(shuffled) == items
