"""Operation vocabulary sanity."""

from repro.sim.ops import (
    Alloc,
    Compute,
    DropCaches,
    FileRead,
    FileWrite,
    Free,
    MarkPhase,
    Overwrite,
    Touch,
    WritePattern,
)


def test_ops_are_frozen():
    op = Compute(1.0)
    try:
        op.seconds = 2.0
        raised = False
    except AttributeError:
        raised = True
    assert raised


def test_defaults():
    read = FileRead("f", 0, 10)
    assert read.touch_cost == 0.0
    touch = Touch("r", 0, 5)
    assert not touch.write
    assert touch.stride == 1
    over = Overwrite("r", 0, 5)
    assert over.pattern is WritePattern.FULL_SEQUENTIAL


def test_markphase_payload_default_is_isolated():
    a = MarkPhase("x")
    b = MarkPhase("y")
    a.payload["k"] = 1
    assert b.payload == {}


def test_write_patterns_enumerated():
    assert {p.value for p in WritePattern} == {
        "full_sequential", "partial", "scattered"}


def test_ops_equality():
    assert FileRead("f", 0, 10) == FileRead("f", 0, 10)
    assert Alloc("a", 5) != Alloc("a", 6)
    assert Free("a") == Free("a")
    assert FileWrite("f", 0, 1) != FileRead("f", 0, 1)
    assert DropCaches() == DropCaches()
