"""Event-loop ordering, processes, and periodic tasks."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


def test_events_run_in_time_order():
    engine = Engine()
    order = []
    engine.schedule(2.0, lambda: order.append("b"))
    engine.schedule(1.0, lambda: order.append("a"))
    engine.schedule(3.0, lambda: order.append("c"))
    engine.run()
    assert order == ["a", "b", "c"]


def test_ties_run_in_schedule_order():
    engine = Engine()
    order = []
    engine.schedule(1.0, lambda: order.append(1))
    engine.schedule(1.0, lambda: order.append(2))
    engine.run()
    assert order == [1, 2]


def test_clock_tracks_event_times():
    engine = Engine()
    seen = []
    engine.schedule(2.5, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [2.5]
    assert engine.now == 2.5


def test_negative_delay_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.schedule(-1.0, lambda: None)


def test_schedule_at_absolute_time():
    engine = Engine()
    seen = []
    engine.schedule_at(4.0, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [4.0]


def test_schedule_at_past_rejected():
    engine = Engine()
    engine.schedule(1.0, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_at(0.5, lambda: None)


def test_run_until_stops_early():
    engine = Engine()
    seen = []
    engine.schedule(1.0, lambda: seen.append("early"))
    engine.schedule(10.0, lambda: seen.append("late"))
    engine.run(until=5.0)
    assert seen == ["early"]
    assert engine.now == 5.0
    assert engine.pending_events() == 1


def test_run_resumes_after_until():
    engine = Engine()
    seen = []
    engine.schedule(10.0, lambda: seen.append("late"))
    engine.run(until=5.0)
    engine.run()
    assert seen == ["late"]


def test_process_steps_until_none():
    engine = Engine()
    steps = []

    def step():
        steps.append(engine.now)
        return 1.0 if len(steps) < 3 else None

    engine.add_process(step)
    engine.run()
    assert steps == [0.0, 1.0, 2.0]


def test_process_negative_duration_rejected():
    engine = Engine()
    engine.add_process(lambda: -1.0)
    with pytest.raises(SimulationError):
        engine.run()


def test_periodic_fires_until_stopped():
    engine = Engine()
    ticks = []

    def tick():
        ticks.append(engine.now)
        if len(ticks) == 3:
            engine.stop()

    engine.add_periodic(2.0, tick)
    engine.run()
    assert ticks == [2.0, 4.0, 6.0]


def test_periodic_rejects_non_positive_interval():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.add_periodic(0.0, lambda: None)


def test_stop_halts_event_dispatch():
    """Regression: stop() must halt the run loop itself, not merely
    keep periodic tasks from rescheduling."""
    engine = Engine()
    seen = []
    engine.schedule(1.0, lambda: (seen.append("a"), engine.stop()))
    engine.schedule(2.0, lambda: seen.append("b"))
    engine.schedule(3.0, lambda: seen.append("c"))
    engine.run()
    assert seen == ["a"]
    assert engine.pending_events() == 2
    assert engine.stopped


def test_run_after_stop_returns_immediately():
    engine = Engine()
    engine.schedule(1.0, lambda: None)
    engine.stop()
    assert engine.run() == 0.0
    assert engine.pending_events() == 1


def test_watchdog_max_events_raises_instead_of_hanging():
    engine = Engine(max_events=25)

    def forever() -> float:
        return 1.0  # a step process that never finishes

    engine.add_process(forever)
    with pytest.raises(SimulationError) as exc:
        engine.run()
    assert "watchdog" in str(exc.value)
    assert "pending" in str(exc.value)  # diagnostic dump of the queue
    assert engine.events_dispatched == 25


def test_watchdog_max_virtual_time_raises():
    engine = Engine(max_virtual_time=10.0)
    engine.add_process(lambda: 3.0)
    with pytest.raises(SimulationError) as exc:
        engine.run()
    assert "virtual time" in str(exc.value)
    assert engine.now <= 10.0


def test_watchdog_quiet_run_unaffected():
    engine = Engine(max_events=100, max_virtual_time=100.0)
    seen = []
    engine.schedule(1.0, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [1.0]


def test_events_scheduled_from_callbacks_run():
    engine = Engine()
    seen = []
    engine.schedule(1.0, lambda: engine.schedule(
        1.0, lambda: seen.append(engine.now)))
    engine.run()
    assert seen == [2.0]
