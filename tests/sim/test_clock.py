"""Virtual clock invariants."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import Clock


def test_starts_at_zero():
    assert Clock().now == 0.0


def test_custom_start():
    assert Clock(5.0).now == 5.0


def test_negative_start_rejected():
    with pytest.raises(SimulationError):
        Clock(-1.0)


def test_advance_to():
    clock = Clock()
    clock.advance_to(3.5)
    assert clock.now == 3.5


def test_advance_to_same_time_is_fine():
    clock = Clock(2.0)
    clock.advance_to(2.0)
    assert clock.now == 2.0


def test_advance_backwards_rejected():
    clock = Clock(2.0)
    with pytest.raises(SimulationError):
        clock.advance_to(1.0)


def test_advance_by():
    clock = Clock(1.0)
    clock.advance_by(0.5)
    assert clock.now == 1.5


def test_advance_by_negative_rejected():
    clock = Clock()
    with pytest.raises(SimulationError):
        clock.advance_by(-0.1)
