"""CLI host-fault knobs: typed validation, and the ambient plan wiring."""

import pytest

from repro.cli import _validate_evac_deadline, _validate_host_fault_rate, main
from repro.errors import ConfigError


def test_negative_or_zero_host_fault_rate_rejected(capsys):
    for bad in ("-0.5", "0", "0.0"):
        assert main(["run", "fig3", "--scale", "32",
                     "--host-faults", bad]) == 1
        err = capsys.readouterr().err
        assert "error:" in err
        assert "--host-faults must be a rate in (0, 1]" in err


def test_rate_above_one_rejected(capsys):
    assert main(["run", "fig3", "--scale", "32",
                 "--host-faults", "1.5"]) == 1
    assert "--host-faults must be a rate in (0, 1]" in \
        capsys.readouterr().err


def test_non_positive_evac_deadline_rejected(capsys):
    for bad in ("0", "-3"):
        assert main(["run", "fig3", "--scale", "32",
                     "--evac-deadline", bad]) == 1
        err = capsys.readouterr().err
        assert "--evac-deadline must be positive" in err


def test_validators_raise_typed_config_errors():
    with pytest.raises(ConfigError):
        _validate_host_fault_rate(-0.5)
    with pytest.raises(ConfigError):
        _validate_host_fault_rate(1.0001)
    with pytest.raises(ConfigError):
        _validate_evac_deadline(0.0)
    # None means "flag not given": never an error.
    _validate_host_fault_rate(None)
    _validate_evac_deadline(None)
    _validate_host_fault_rate(1.0)
    _validate_evac_deadline(0.5)


def test_list_names_the_chaos_experiment(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "cluster-chaos" in out
    assert "cells=16" in out
