"""Cluster assembly: placement policies, admission, and the facade."""

import pytest

from repro.cluster import Cluster, choose_host
from repro.config import ClusterConfig, MachineConfig
from repro.errors import ConfigError, PlacementError
from repro.machine import Machine
from tests.cluster.conftest import fill_to_limit, small_node
from tests.conftest import (
    small_machine_config,
    small_vm_config,
)


def four_nodes(**kwargs):
    return tuple(small_node(f"node{i}", **kwargs) for i in range(4))


# ----------------------------------------------------------------------
# placement policies
# ----------------------------------------------------------------------

def test_first_fit_fills_lowest_host_first():
    cluster = Cluster(ClusterConfig(
        hosts=four_nodes(overcommit_ratio=0.125),  # 32 MiB: two guests
        placement="first-fit"))
    for i in range(5):
        cluster.create_vm(small_vm_config(name=f"vm{i}"))
    assert cluster.placements == [
        ("vm0", "node0"), ("vm1", "node0"),
        ("vm2", "node1"), ("vm3", "node1"),
        ("vm4", "node2"),
    ]


def test_balance_spreads_across_hosts():
    cluster = Cluster(ClusterConfig(
        hosts=four_nodes(), placement="balance"))
    for i in range(6):
        cluster.create_vm(small_vm_config(name=f"vm{i}"))
    hosts = [host for _, host in cluster.placements]
    assert hosts == ["node0", "node1", "node2", "node3",
                     "node0", "node1"]


def test_pack_concentrates_until_full():
    cluster = Cluster(ClusterConfig(
        hosts=four_nodes(overcommit_ratio=0.125),
        placement="pack"))
    for i in range(3):
        cluster.create_vm(small_vm_config(name=f"vm{i}"))
    assert [h for _, h in cluster.placements] == \
        ["node0", "node0", "node1"]


def test_placement_error_when_nothing_admits():
    cluster = Cluster(ClusterConfig(
        hosts=(small_node(overcommit_ratio=0.05),)))  # 12.8 MiB < guest
    with pytest.raises(PlacementError):
        cluster.create_vm(small_vm_config())


def test_placement_error_names_every_candidate_with_occupancy():
    """The rejection message carries per-host state/occupancy/pressure
    so an operator sees *why* each node refused."""
    cluster = Cluster(ClusterConfig(
        hosts=four_nodes(overcommit_ratio=0.0625)))  # 16 MiB: one guest
    for i in range(4):
        cluster.create_vm(small_vm_config(name=f"vm{i}"))
    cluster.hosts[3].fail()
    with pytest.raises(PlacementError) as excinfo:
        cluster.create_vm(small_vm_config(name="vm4"))
    message = str(excinfo.value)
    for name in ("node0", "node1", "node2", "node3"):
        assert name in message
    assert "state=up" in message
    assert "state=failed" in message
    assert "committed=4096/4096 (100%)" in message
    assert "swap_pressure=" in message


def test_unknown_policy_rejected():
    with pytest.raises(ConfigError):
        Cluster(ClusterConfig(hosts=(small_node(),),
                              placement="round-robin"))


def test_choose_host_skips_full_hosts():
    cluster = Cluster(ClusterConfig(
        hosts=four_nodes(overcommit_ratio=0.0625)))  # 16 MiB: one guest
    cluster.create_vm(small_vm_config(name="vm0"))
    target = choose_host("first-fit", cluster.hosts, small_vm_config())
    assert target.name == "node1"


# ----------------------------------------------------------------------
# admission accounting
# ----------------------------------------------------------------------

def test_committed_pages_follow_vm_lifecycle():
    cluster = Cluster(ClusterConfig(hosts=four_nodes()))
    vm = cluster.create_vm(small_vm_config())
    src = vm.host
    believed = vm.cfg.guest.memory_pages
    assert src.committed_guest_pages == believed
    src.release_vm(vm)
    assert src.committed_guest_pages == 0
    assert vm not in src.vms
    assert vm not in src.hypervisor.vms


def test_unlimited_ratio_admits_past_physical_memory():
    # None = the single-host Machine behaviour: admission never blocks.
    node = small_node(total_memory_pages=8192)  # 32 MiB physical
    cluster = Cluster(ClusterConfig(hosts=(node,)))
    for i in range(4):  # 64 MiB believed on 32 MiB physical
        cluster.create_vm(small_vm_config(name=f"vm{i}"))
    assert len(cluster.hosts[0].vms) == 4


# ----------------------------------------------------------------------
# the Machine facade
# ----------------------------------------------------------------------

def test_machine_is_a_cluster_of_one():
    machine = Machine(small_machine_config())
    assert len(machine.cluster.hosts) == 1
    assert machine.hypervisor is machine.cluster.hosts[0].hypervisor
    assert machine.engine is machine.cluster.engine


def test_facade_bit_identical_to_explicit_cluster():
    """The same seed drives the same eviction choices whether the host
    is reached through Machine or through its one-node Cluster."""
    config = small_machine_config()
    machine = Machine(config)
    cluster = Cluster(config.as_cluster())

    vm_a = machine.create_vm(small_vm_config(resident_limit_mib=4))
    vm_b = cluster.create_vm(small_vm_config(resident_limit_mib=4))
    fill_to_limit(vm_a, extra=256)
    fill_to_limit(vm_b, extra=256)

    assert vm_a.counters.snapshot() == vm_b.counters.snapshot()
    assert sorted(vm_a.swap_slots) == sorted(vm_b.swap_slots)
    assert machine.swap_area.used_slots == \
        cluster.hosts[0].swap_area.used_slots


def test_facade_create_vm_keeps_config_error():
    machine = Machine(small_machine_config(hypervisor_code_pages=32768))
    machine.create_vm(small_vm_config(name="vm0"))
    machine.create_vm(small_vm_config(name="vm1"))
    with pytest.raises(ConfigError):
        machine.create_vm(small_vm_config(name="vm2"))


def test_vm_host_backref_set_on_placement():
    cluster = Cluster(ClusterConfig(hosts=four_nodes()))
    vm = cluster.create_vm(small_vm_config())
    assert vm.host is cluster.hosts[0]
    assert vm in cluster.vms
