"""Host-failure recovery: crash, evacuation, typed loss, determinism.

The tentpole invariants under test: a crashed host's VMs are either
re-homed through the placement policy (with capped-exponential-backoff
retries) or become typed ``VmLost`` records -- never silent drops; a
mid-copy failure rolls back or completes, never both; the fault
schedule is a pure function of ``host_fault_seed``; and survivors on
untouched hosts stay bit-identical to an uninjected run.
"""

import pytest

from repro.audit import set_paranoid
from repro.cluster import Cluster, choose_host, migrate_vm
from repro.cluster.host import HostState
from repro.cluster.recovery import EvacuationPolicy
from repro.config import (
    ClusterConfig,
    ClusterMigrationConfig,
    FaultConfig,
    VSwapperConfig,
)
from repro.errors import PlacementError
from tests.cluster.conftest import fill_to_limit, small_node
from tests.conftest import small_vm_config


def four_nodes(**kwargs):
    return tuple(small_node(f"node{i}", **kwargs) for i in range(4))


def build_cluster(nodes, *, placement="first-fit", faults=None, seed=7):
    return Cluster(ClusterConfig(
        hosts=nodes, placement=placement,
        migration=ClusterMigrationConfig(enabled=False),
        seed=seed, faults=faults))


def touch_over_time(cluster, vm, total, *, stride=0.05):
    """An engine process touching one page per ``stride`` seconds.

    Freezes (without consuming touches) while the VM is homeless, and
    ends early if the VM is lost -- the driver contract in miniature.
    """
    state = {"i": 0}

    def step():
        if vm.lost or state["i"] >= total:
            return None
        if vm.host is None:
            return 0.1
        vm.host.hypervisor.touch_page(vm, 0x100 + state["i"], write=True)
        state["i"] += 1
        return stride

    cluster.engine.add_process(step)


# ----------------------------------------------------------------------
# host lifecycle
# ----------------------------------------------------------------------

def test_failed_host_rejects_admission_and_placement_skips_it():
    cluster = build_cluster(four_nodes(overcommit_ratio=0.125))
    cluster.hosts[0].fail()
    assert not cluster.hosts[0].can_admit(small_vm_config())
    target = choose_host("first-fit", cluster.hosts, small_vm_config())
    assert target.name == "node1"
    vm = cluster.create_vm(small_vm_config())
    assert vm.host.name == "node1"


def test_placement_error_when_every_host_failed():
    cluster = build_cluster(four_nodes())
    for host in cluster.hosts:
        host.fail()
    with pytest.raises(PlacementError):
        cluster.create_vm(small_vm_config())


def test_degrade_scales_disk_latency_and_recover_resets_it():
    cluster = build_cluster(four_nodes())
    host = cluster.hosts[0]
    cluster._degrade_host(host, 8.0)
    assert host.state is HostState.DEGRADED
    assert host.ever_degraded
    assert host.disk.latency_scale == 8.0
    assert host.can_admit(small_vm_config())  # degraded still admits
    cluster._recover_host(host)
    assert host.state is HostState.UP
    assert host.disk.latency_scale == 1.0


def test_crash_inside_a_degrade_window_wins():
    cluster = build_cluster(four_nodes())
    host = cluster.hosts[0]
    cluster._degrade_host(host, 8.0)
    cluster._fail_host(host)
    assert host.state is HostState.FAILED
    assert host.disk.latency_scale == 1.0
    # The window's scheduled end must not resurrect the host.
    cluster._recover_host(host)
    assert host.state is HostState.FAILED
    # Nor may a second crash or a late degradation touch it.
    cluster._fail_host(host)
    cluster._degrade_host(host, 2.0)
    assert host.state is HostState.FAILED


# ----------------------------------------------------------------------
# evacuation
# ----------------------------------------------------------------------

def test_crash_evacuates_vms_to_a_surviving_host():
    cluster = build_cluster(four_nodes(overcommit_ratio=0.125))
    vms = [cluster.create_vm(small_vm_config(name=f"vm{i}",
                                             resident_limit_mib=4))
           for i in range(2)]
    for vm in vms:
        fill_to_limit(vm, extra=64)  # resident memory plus swap
    before = [(sorted(vm.ept.present_gpas()), sorted(vm.swap_slots))
              for vm in vms]

    cluster._fail_host(cluster.hosts[0])
    cluster.engine.run()

    assert not cluster.evac.active
    assert not cluster.lost
    for vm, (present, swapped) in zip(vms, before):
        assert vm.host is not None and vm.host.name == "node1"
        assert vm.counters.snapshot()["evacuations"] == 1
        # The carried set re-materialized: every page that was present
        # or swapped on the dead host lives on the destination -- EPT
        # present, or re-evicted to its swap by the rebuild's own
        # reclaim pressure.
        after = set(vm.ept.present_gpas()) | set(vm.swap_slots)
        assert set(present) | set(swapped) <= after
        assert vm.pending_stall > 0  # restore traffic charged as freeze
    kinds = [(r.kind, r.outcome) for r in cluster.migrations]
    assert kinds == [("evacuation", "completed")] * 2
    assert set(cluster.evac.latencies) == {"vm0", "vm1"}


def test_no_capacity_becomes_a_typed_vm_lost():
    cluster = build_cluster((small_node(),))  # nowhere to evacuate to
    vm = cluster.create_vm(small_vm_config(resident_limit_mib=4))
    fill_to_limit(vm, extra=32)
    cluster._fail_host(cluster.hosts[0])
    cluster.engine.run()

    assert vm.lost
    assert vm.host is None
    assert not cluster.evac.active
    [hole] = cluster.lost
    assert hole.vm_name == "vm0"
    assert hole.host == "node0"
    assert "retries exhausted" in hole.reason
    # Satellite: the loss reason carries the per-candidate placement
    # diagnostics (the PlacementError message is embedded verbatim).
    assert "state=failed" in hole.reason
    # First attempt plus evac_max_retries retries.
    assert hole.attempts == EvacuationPolicy().max_retries + 1


def test_evac_deadline_loses_the_vm():
    faults = FaultConfig(enabled=True, evac_deadline=1.0,
                         evac_max_retries=1000)
    cluster = build_cluster((small_node(),), faults=faults)
    vm = cluster.create_vm(small_vm_config())
    cluster._fail_host(cluster.hosts[0])
    cluster.engine.run()

    assert vm.lost
    [hole] = cluster.lost
    assert "deadline exceeded" in hole.reason
    assert hole.time <= cluster.now


def test_backoff_is_capped_exponential():
    policy = EvacuationPolicy(backoff_base=0.5, backoff_factor=2.0,
                              backoff_cap=8.0)
    assert [policy.backoff(n) for n in range(1, 7)] == \
        [0.5, 1.0, 2.0, 4.0, 8.0, 8.0]


def test_retry_succeeds_once_capacity_frees_up():
    """An evacuation that finds no host keeps retrying; freeing the
    blocker between attempts re-homes the VM (latency > 0)."""
    nodes = (small_node("node0", overcommit_ratio=0.0625),  # one VM each
             small_node("node1", overcommit_ratio=0.0625))
    cluster = build_cluster(nodes)
    victim = cluster.create_vm(small_vm_config(name="victim"))
    blocker = cluster.create_vm(small_vm_config(name="blocker"))
    assert (victim.host.name, blocker.host.name) == ("node0", "node1")

    cluster._fail_host(cluster.hosts[0])
    # Free node1 after the first attempt has already failed.
    cluster.engine.schedule(0.2,
                            lambda: cluster.hosts[1].release_vm(blocker))
    cluster.engine.run()

    assert not victim.lost
    assert victim.host.name == "node1"
    assert cluster.evac.retries >= 1
    assert cluster.evac.latencies["victim"] > 0
    [record] = cluster.migrations
    assert record.kind == "evacuation"
    assert record.attempt >= 2


# ----------------------------------------------------------------------
# mid-copy failure: rollback or complete, never both
# ----------------------------------------------------------------------

def test_mid_copy_rollback_leaves_the_source_untouched():
    cluster = build_cluster(four_nodes())
    vm = cluster.create_vm(small_vm_config(resident_limit_mib=4))
    fill_to_limit(vm, extra=32)
    src, dst = cluster.hosts[0], cluster.hosts[1]
    present = sorted(vm.ept.present_gpas())
    swapped = sorted(vm.swap_slots)

    record = migrate_vm(
        vm, src, dst, bandwidth_bytes_per_sec=1.25e9,
        region_name="image-vm0@m1", fail_point="rollback")

    assert record.outcome == "rolled-back"
    assert record.carried_pages == 0
    assert record.downtime_seconds == 0.0
    assert record.transferred_bytes > 0  # wasted wire traffic accounted
    assert vm.host is src
    assert sorted(vm.ept.present_gpas()) == present
    assert sorted(vm.swap_slots) == swapped
    assert dst.committed_guest_pages == 0
    assert dst.frames.used == 0


def test_mid_copy_complete_finishes_the_move():
    cluster = build_cluster(four_nodes())
    vm = cluster.create_vm(small_vm_config(resident_limit_mib=4))
    fill_to_limit(vm, extra=32)
    src, dst = cluster.hosts[0], cluster.hosts[1]

    record = migrate_vm(
        vm, src, dst, bandwidth_bytes_per_sec=1.25e9,
        region_name="image-vm0@m1", fail_point="complete")

    assert record.outcome == "completed"
    assert vm.host is dst
    assert src.committed_guest_pages == 0
    assert src.frames.used == 0


# ----------------------------------------------------------------------
# determinism and survivor bit-identity
# ----------------------------------------------------------------------

def crashy_faults(**overrides):
    defaults = dict(enabled=True, host_crash_rate=0.45,
                    host_fault_horizon=20.0, host_fault_seed=7)
    defaults.update(overrides)
    return FaultConfig(**defaults)


def run_seeded_fleet(faults):
    cluster = build_cluster(four_nodes(overcommit_ratio=0.125),
                            placement="balance", faults=faults)
    vms = [cluster.create_vm(small_vm_config(name=f"vm{i}",
                                             resident_limit_mib=4))
           for i in range(4)]
    for vm in vms:
        touch_over_time(cluster, vm, 2048)
    cluster.engine.run()
    cluster.engine.stop()
    return cluster, vms


def fleet_fingerprint(cluster, vms):
    return {
        "placements": list(cluster.placements),
        "migrations": [r.to_dict() for r in cluster.migrations],
        "lost": [hole.to_dict() for hole in cluster.lost],
        "states": {h.name: h.state.value for h in cluster.hosts},
        "counters": [vm.counters.snapshot() for vm in vms],
    }


def test_same_seed_replays_the_same_crash_and_recovery_sequence():
    first = fleet_fingerprint(*run_seeded_fleet(crashy_faults()))
    second = fleet_fingerprint(*run_seeded_fleet(crashy_faults()))
    assert first == second
    assert first["migrations"] or first["lost"], \
        "schedule never crashed a loaded host: inert test"


def test_host_fault_seed_changes_the_schedule():
    a = fleet_fingerprint(*run_seeded_fleet(crashy_faults()))
    b = fleet_fingerprint(
        *run_seeded_fleet(crashy_faults(host_fault_seed=104)))
    assert a["states"] != b["states"]


def test_survivors_on_untouched_hosts_are_bit_identical():
    """Hosts the schedule leaves alone (and that never served as an
    evacuation destination) run exactly as in an uninjected cluster."""
    clean_cluster, clean_vms = run_seeded_fleet(None)
    faulty_cluster, faulty_vms = run_seeded_fleet(
        crashy_faults(host_fault_seed=22))  # kills exactly node0

    assert clean_cluster.placements == faulty_cluster.placements
    touched = {r.src for r in faulty_cluster.migrations}
    touched |= {r.dst for r in faulty_cluster.migrations}
    touched |= {hole.host for hole in faulty_cluster.lost}
    assert "node0" in touched
    untouched_vms = [
        (clean, faulty)
        for clean, faulty in zip(clean_vms, faulty_vms)
        if faulty.host is not None and faulty.host.name not in touched]
    assert untouched_vms, "every host was touched: inert test"
    for clean, faulty in untouched_vms:
        assert clean.counters.snapshot() == faulty.counters.snapshot()
        assert sorted(clean.swap_slots) == sorted(faulty.swap_slots)


# ----------------------------------------------------------------------
# paranoid invariants through a crash
# ----------------------------------------------------------------------

def test_paranoid_invariants_hold_through_crash_and_evacuation():
    set_paranoid(True)
    try:
        cluster = build_cluster(four_nodes(overcommit_ratio=0.125))
        vms = [cluster.create_vm(small_vm_config(
            name=f"vm{i}", vswapper=VSwapperConfig.full(),
            resident_limit_mib=4)) for i in range(2)]
        for vm in vms:
            fill_to_limit(vm, extra=64)
        cluster._fail_host(cluster.hosts[0])
        cluster.engine.run()
    finally:
        set_paranoid(False)

    assert cluster.auditor is not None
    assert cluster.auditor.audits > 0
    assert all(vm.host is not None for vm in vms)


def test_paranoid_catches_a_silent_vm_drop():
    """The conservation invariant: a VM that is neither placed nor
    evacuating nor recorded lost must blow up the auditor."""
    from repro.errors import InvariantViolation

    set_paranoid(True)
    try:
        cluster = build_cluster(four_nodes())
        vm = cluster.create_vm(small_vm_config())
        vm.host.release_vm(vm)  # drop it on the floor, bypassing recovery
        vm.host = None
        with pytest.raises(InvariantViolation):
            cluster.auditor.check("test")
    finally:
        set_paranoid(False)
