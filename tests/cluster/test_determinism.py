"""Acceptance property: cluster runs are bit-deterministic.

Same seed, same fleet => identical placements, migration log, and
per-VM counters -- rebuilt from scratch, and serial == parallel when
the cells run through the sweep executor.
"""

from repro.cluster import Cluster
from repro.config import ClusterConfig, ClusterMigrationConfig
from repro.exec.executor import ParallelExecutor, SerialExecutor, run_sweep
from repro.experiments.cluster import (
    build_cluster_exp_sweep,
    run_cluster_fleet,
)
from repro.experiments.runner import ConfigName, standard_configs
from tests.cluster.conftest import fill_to_limit, small_node
from tests.conftest import small_vm_config

NUM_VMS = 24
NUM_HOSTS = 4


def build_and_load_cluster(seed: int = 7):
    """A 4-host/24-VM cluster loaded until migrations happen.

    Tight nodes (one slot per eviction, low thresholds) so the manual
    pressure passes below migrate deterministically chosen VMs.
    """
    cluster = Cluster(ClusterConfig(
        hosts=tuple(
            small_node(f"node{i}", swap_budget_pages=2048,
                       pressure_threshold=0.05, reclaim_batch_pages=1)
            for i in range(NUM_HOSTS)),
        placement="balance",
        migration=ClusterMigrationConfig(enabled=False),
        seed=seed,
    ))
    vms = [cluster.create_vm(
        small_vm_config(name=f"vm{i}", resident_limit_mib=4))
        for i in range(NUM_VMS)]
    for i, vm in enumerate(vms):
        # Uneven overflow so hosts cross their thresholds unevenly.
        fill_to_limit(vm, extra=16 + (i % 5) * 24)
        cluster.pressure_tick()
    return cluster


def fingerprint(cluster) -> dict:
    return {
        "placements": list(cluster.placements),
        "migrations": [r.to_dict() for r in cluster.migrations],
        "counters": [vm.counters.snapshot() for vm in cluster.vms],
        "swap": [host.swap_area.used_slots for host in cluster.hosts],
    }


def test_24_vm_cluster_bit_deterministic():
    first = fingerprint(build_and_load_cluster())
    second = fingerprint(build_and_load_cluster())
    assert first == second
    assert first["migrations"], "scenario never migrated: inert test"


def test_different_seed_may_differ_but_placements_hold():
    """Placement is load-driven, not RNG-driven: seeds change eviction
    noise streams, never where the scheduler put a VM."""
    a = build_and_load_cluster(seed=7)
    b = build_and_load_cluster(seed=8)
    assert a.placements == b.placements


def test_cluster_cells_parallel_identical_to_serial():
    """The cluster experiment's cells agree bit-for-bit under
    ``--jobs 2``: each worker rebuilds its cluster from the spec."""
    sweep = build_cluster_exp_sweep(
        scale=32, config_names=(ConfigName.BASELINE,),
        policies=("first-fit",), fleet_sizes=(8,))
    serial = run_sweep(sweep, executor=SerialExecutor())
    parallel = run_sweep(sweep, executor=ParallelExecutor(2))

    assert list(serial.results) == list(parallel.results)
    migrated = 0
    for cell_id, expected in serial.results.items():
        got = parallel.results[cell_id]
        assert got.counters == expected.counters, cell_id
        assert got.runtime == expected.runtime, cell_id
        assert got.phases == expected.phases, cell_id
        assert got.status == expected.status, cell_id
        migrated += expected.counters.get("migrations", 0)
    assert migrated > 0, "fleet cell never migrated: inert test"


def test_engine_driven_fleet_reruns_identically():
    """The full harness (engine clock, staggered drivers, periodic
    pressure controller) reproduces its own migration log and runtimes."""
    spec = standard_configs([ConfigName.BASELINE])[0]

    def run():
        out = run_cluster_fleet(
            spec, num_guests=8, scale=32,
            swap_budget_mib=2048, pressure_threshold=0.3)
        return (out.placements, [r.to_dict() for r in out.migrations],
                out.runtimes, out.crashes)

    first, second = run(), run()
    assert first == second
    assert first[1], "fleet never migrated: inert test"
