"""Cluster test helpers: small nodes and synchronous page loaders."""

from __future__ import annotations

from repro.config import HostConfig, HostNodeConfig
from repro.units import mib_pages


def small_node(name: str = "node0", *,
               overcommit_ratio: float | None = None,
               swap_budget_pages: int | None = None,
               pressure_threshold: float = 0.9,
               **host_overrides) -> HostNodeConfig:
    """One cluster node sized for fast tests (matches
    :func:`tests.conftest.small_machine_config`)."""
    host_defaults = dict(
        total_memory_pages=mib_pages(256),
        swap_size_pages=mib_pages(512),
        hypervisor_code_pages=16,
        code_pages_per_io=2,
        code_pages_per_fault=1,
        reclaim_noise=0.0,
    )
    host_defaults.update(host_overrides)
    return HostNodeConfig(
        name=name,
        host=HostConfig(**host_defaults),
        overcommit_ratio=overcommit_ratio,
        swap_budget_pages=swap_budget_pages,
        pressure_threshold=pressure_threshold,
    )


def fill_to_limit(vm, *, start_gpa: int = 0x100, extra: int = 0) -> None:
    """Touch pages on ``vm``'s current host until it sits at its
    resident limit plus ``extra`` evictions' worth of overflow."""
    for i in range(vm.resident_limit + extra):
        vm.host.hypervisor.touch_page(vm, start_gpa + i, write=True)
