"""Pressure-driven migration: thresholds, victim choice, teardown."""

import pytest

from repro.cluster import Cluster
from repro.config import ClusterConfig
from tests.cluster.conftest import fill_to_limit, small_node
from tests.conftest import small_vm_config


def two_node_cluster(*, budget: int = 100,
                     threshold: float = 0.05) -> Cluster:
    """node0 budgeted and thresholded; node1 idle and unbudgeted.

    ``reclaim_batch_pages=1`` makes every eviction take exactly one
    swap slot, so tests can position a node exactly at its threshold.
    """
    return Cluster(ClusterConfig(hosts=(
        small_node("node0", swap_budget_pages=budget,
                   pressure_threshold=threshold,
                   reclaim_batch_pages=1),
        small_node("node1", reclaim_batch_pages=1),
    )))


def pinned_vm(cluster, name="vm0", host_index=0):
    return cluster.create_vm(
        small_vm_config(name=name, resident_limit_mib=4),
        host=cluster.hosts[host_index])


def test_no_migration_one_slot_below_threshold():
    cluster = two_node_cluster()  # threshold at 5 of 100 slots
    vm = pinned_vm(cluster)
    fill_to_limit(vm, extra=4)
    assert cluster.hosts[0].swap_area.used_slots == 4
    assert not cluster.hosts[0].over_pressure
    assert cluster.pressure_tick() == []
    assert vm.host is cluster.hosts[0]


def test_migration_fires_exactly_at_threshold():
    cluster = two_node_cluster()
    vm = pinned_vm(cluster)
    fill_to_limit(vm, extra=5)  # 5/100 == the 0.05 threshold exactly
    src, dst = cluster.hosts
    assert src.swap_area.used_slots == 5
    assert src.over_pressure

    records = cluster.pressure_tick()

    assert len(records) == 1
    record = records[0]
    assert (record.vm_name, record.src, record.dst) == \
        ("vm0", "node0", "node1")
    assert record.src_pressure == pytest.approx(0.05)
    assert vm.host is dst
    assert cluster.migrations == records
    # Evacuation freed every source swap slot the VM held.
    assert src.swap_area.used_slots == 0
    assert not src.over_pressure
    assert vm.counters.extra.get("migrations") == 1


def test_migrated_vm_state_rebuilt_on_destination():
    cluster = two_node_cluster()
    vm = pinned_vm(cluster)
    fill_to_limit(vm, extra=5)
    resident_before = vm.resident_pages
    content_before = {gpa: vm.content_of(gpa)
                      for gpa in vm.ept.present_gpas()}
    cluster.pressure_tick()

    dst = cluster.hosts[1]
    assert vm in dst.vms
    assert vm in dst.hypervisor.vms
    assert vm.resident_pages == resident_before
    for gpa, content in content_before.items():
        assert vm.content_of(gpa) == content
    # The freeze shows up as a pending stall the driver will charge.
    assert vm.pending_stall > 0.0
    assert vm.take_pending_stall() == pytest.approx(
        cluster.migrations[0].downtime_seconds)
    assert vm.pending_stall == 0.0  # draining zeroes it


def test_no_migration_without_destination():
    cluster = Cluster(ClusterConfig(hosts=(
        small_node("node0", swap_budget_pages=100,
                   pressure_threshold=0.05, reclaim_batch_pages=1),
    )))
    vm = pinned_vm(cluster)
    fill_to_limit(vm, extra=8)
    assert cluster.hosts[0].over_pressure
    assert cluster.pressure_tick() == []
    assert vm.host is cluster.hosts[0]


def test_victim_is_largest_swap_footprint():
    cluster = two_node_cluster(budget=1000, threshold=0.01)
    small = pinned_vm(cluster, name="vm0")
    big = pinned_vm(cluster, name="vm1")
    fill_to_limit(small, extra=4)
    fill_to_limit(big, start_gpa=0x8000, extra=32)

    records = cluster.pressure_tick()
    assert records and records[0].vm_name == "vm1"


def test_io_pinned_vm_never_migrates():
    cluster = two_node_cluster()
    vm = pinned_vm(cluster)
    fill_to_limit(vm, extra=8)
    vm.io_pinned.add(0x100)  # in-flight DMA
    assert cluster.pressure_tick() == []
    vm.io_pinned.clear()
    assert len(cluster.pressure_tick()) == 1


def test_migration_emits_trace_and_audits_cleanly():
    from repro.audit import set_paranoid
    set_paranoid(True)
    try:
        cluster = two_node_cluster()
        assert cluster.auditor is not None
        vm = pinned_vm(cluster)
        fill_to_limit(vm, extra=5)
        records = cluster.pressure_tick()
        assert len(records) == 1
        assert cluster.auditor.audits > 0
    finally:
        set_paranoid(False)
