"""Swap budgets: ``memory.swap.max``-style caps on node swap usage."""

import pytest

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.disk.geometry import DiskLayout
from repro.disk.swaparea import HostSwapArea
from repro.errors import DiskError
from repro.exec.spec import CellSpec
from repro.experiments.cluster import cluster_fleet_cell
from tests.cluster.conftest import fill_to_limit, small_node
from tests.conftest import small_vm_config


def swap_area(size_pages: int = 1024, **kwargs) -> HostSwapArea:
    region = DiskLayout().add_region_pages("swap", size_pages)
    return HostSwapArea(region, **kwargs)


# ----------------------------------------------------------------------
# allocator-level enforcement
# ----------------------------------------------------------------------

def test_budget_zero_forbids_swapping():
    area = swap_area(budget_slots=0)
    with pytest.raises(DiskError, match="budget"):
        area.allocate_run(1)
    assert area.used_slots == 0
    assert area.budget_pressure == 0.0


def test_negative_budget_rejected():
    with pytest.raises(DiskError):
        swap_area(budget_slots=-1)


def test_budget_caps_below_region_size():
    area = swap_area(size_pages=1024, budget_slots=8)
    area.allocate_run(8)
    with pytest.raises(DiskError, match="budget"):
        area.allocate_run(1)
    assert area.used_slots == 8
    assert area.free_slots == 1024 - 8  # region itself far from full


def test_freeing_restores_budget_headroom():
    area = swap_area(budget_slots=4)
    slots = area.allocate_run(4)
    area.free(slots[0])
    assert area.budget_pressure == 0.75
    area.allocate_run(1)  # headroom is back
    with pytest.raises(DiskError, match="budget"):
        area.allocate_run(1)


def test_budget_pressure_tracks_cap_not_region():
    area = swap_area(size_pages=1000, budget_slots=10)
    area.allocate_run(5)
    assert area.budget_pressure == 0.5
    unbudgeted = swap_area(size_pages=1000)
    unbudgeted.allocate_run(5)
    assert unbudgeted.budget_pressure == 0.005


# ----------------------------------------------------------------------
# node-level enforcement through the hypervisor swap path
# ----------------------------------------------------------------------

def test_budget_zero_node_cannot_evict_to_swap():
    cluster = Cluster(ClusterConfig(
        hosts=(small_node(swap_budget_pages=0),)))
    vm = cluster.create_vm(small_vm_config(resident_limit_mib=4))
    with pytest.raises(DiskError, match="budget"):
        fill_to_limit(vm, extra=64)
    assert cluster.hosts[0].swap_area.used_slots == 0


def test_budget_below_working_set_fails_mid_run():
    budget = 64
    cluster = Cluster(ClusterConfig(
        hosts=(small_node(swap_budget_pages=budget),)))
    vm = cluster.create_vm(small_vm_config(resident_limit_mib=4))
    with pytest.raises(DiskError, match="budget"):
        fill_to_limit(vm, extra=512)  # needs far more than 64 slots
    assert cluster.hosts[0].swap_area.used_slots <= budget


def test_unbudgeted_node_swaps_freely():
    cluster = Cluster(ClusterConfig(hosts=(small_node(),)))
    vm = cluster.create_vm(small_vm_config(resident_limit_mib=4))
    fill_to_limit(vm, extra=512)
    assert cluster.hosts[0].swap_area.used_slots > 0


# ----------------------------------------------------------------------
# the experiment reports an over-budget fleet as a crashed cell
# ----------------------------------------------------------------------

def test_overdense_fleet_reports_crashed_cell():
    spec = CellSpec(
        experiment_id="cluster", cell_id="baseline@first-fitx16",
        scale=32, config="baseline",
        params={"num_guests": 16, "num_hosts": 4, "policy": "first-fit"})
    result = cluster_fleet_cell(spec)
    assert result.crashed
    assert result.runtime is None
    assert "budget" in result.crash_reason
