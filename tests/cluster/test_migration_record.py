"""MigrationRecord/VmLost schema: round-trips, version guard, store."""

import pytest

from repro.cluster.migrate import MIGRATION_SCHEMA_VERSION, MigrationRecord
from repro.cluster.recovery import VMLOST_SCHEMA_VERSION, VmLost
from repro.errors import ExperimentError
from repro.exec.spec import CellSpec
from repro.exec.store import ResultStore
from repro.experiments.runner import ConfigName, PhaseMark, RunResult


def _record(**overrides) -> MigrationRecord:
    defaults = dict(time=12.5, vm_name="vm3", src="node0", dst="node2",
                    carried_pages=4096, transferred_bytes=7_340_032,
                    downtime_seconds=0.0625, src_pressure=0.75,
                    kind="evacuation", attempt=3, outcome="completed")
    defaults.update(overrides)
    return MigrationRecord(**defaults)


def _hole() -> VmLost:
    return VmLost(time=30.0, vm_name="vm1", host="node0",
                  reason="retries exhausted after 5 attempt(s)",
                  attempts=5)


def test_migration_record_round_trip():
    record = _record()
    data = record.to_dict()
    assert data["schema"] == MIGRATION_SCHEMA_VERSION
    assert MigrationRecord.from_dict(data) == record


def test_migration_record_rejects_foreign_schema():
    for bad in (0, MIGRATION_SCHEMA_VERSION + 1,
                str(MIGRATION_SCHEMA_VERSION)):
        data = _record().to_dict()
        data["schema"] = bad
        with pytest.raises(ExperimentError):
            MigrationRecord.from_dict(data)
    unversioned = _record().to_dict()
    del unversioned["schema"]
    with pytest.raises(ExperimentError):
        MigrationRecord.from_dict(unversioned)


def test_migration_record_defaults_optional_fields():
    """A minimal dict (schema + core fields) reads as a plain completed
    pressure migration."""
    data = {"schema": MIGRATION_SCHEMA_VERSION, "time": 1.0, "vm": "vm0",
            "src": "node0", "dst": "node1", "pages": 8, "bytes": 32768,
            "downtime": 0.001, "src_pressure": 0.5}
    record = MigrationRecord.from_dict(data)
    assert (record.kind, record.attempt, record.outcome) == \
        ("pressure", 1, "completed")


def test_vm_lost_round_trip_and_schema_guard():
    hole = _hole()
    data = hole.to_dict()
    assert data["schema"] == VMLOST_SCHEMA_VERSION
    assert VmLost.from_dict(data) == hole
    data["schema"] += 1
    with pytest.raises(ExperimentError):
        VmLost.from_dict(data)


def test_records_survive_the_result_store(tmp_path):
    """Records embedded as phase payloads round-trip the JSON store
    bit-exactly -- the cluster-chaos figure is reassembled from them."""
    record, hole = _record(), _hole()
    result = RunResult(
        config=ConfigName.VSWAPPER, runtime=5.0, crashed=False,
        counters={"evacuations": 1, "vms_lost": 1},
        phases=[PhaseMark("migration", record.to_dict(), record.time),
                PhaseMark("vm-lost", hole.to_dict(), hole.time)])
    spec = CellSpec(experiment_id="cluster-chaos",
                    cell_id="crash-one@first-fitx4", scale=8,
                    config="vswapper", params={"schedule": "crash-one"})
    store = ResultStore(tmp_path)
    store.store_cell(spec, result, wall_seconds=0.1)
    loaded = store.load_cell(spec)
    assert loaded == result
    assert MigrationRecord.from_dict(loaded.phases[0].payload) == record
    assert VmLost.from_dict(loaded.phases[1].payload) == hole
