"""Default-path identity and cell-spec cache-key stability.

The backend layer's contract with the rest of the repo: as long as no
backend is chosen, nothing anywhere -- simulation results, event
streams, cache keys -- may change.  These tests pin both halves:
an explicit ``disk`` backend is bit-identical to no backend at all,
and a backend-less spec serializes to the exact pre-backend form.
"""

import json

import pytest

from repro.errors import ExperimentError
from repro.exec.executor import execute_cell
from repro.exec.spec import CellSpec
from repro.swapback.base import (
    default_swap_backend,
    set_default_swap_backend,
)

SCALE = 8


def _cell(backend):
    return CellSpec(
        experiment_id="swaptier",
        cell_id=f"{backend or 'none'}/vswapper",
        scale=SCALE,
        config="vswapper",
        params={"swap_backend": backend or "disk"},
        backend=backend,
    )


def test_explicit_disk_backend_is_bit_identical_to_none():
    none_result = execute_cell(_cell(None))
    disk_result = execute_cell(_cell("disk"))
    assert disk_result.counters == none_result.counters
    assert disk_result.runtime == none_result.runtime
    assert (disk_result.iteration_durations()
            == none_result.iteration_durations())


def test_fast_backend_changes_runtime_but_not_traffic():
    none_result = execute_cell(_cell(None))
    nvme_result = execute_cell(_cell("nvme"))
    # Swap traffic is decided above the backend; only its cost moves.
    for name in ("swap_sectors_written", "stale_reads",
                 "silent_swap_writes"):
        assert nvme_result.counters.get(name) \
            == none_result.counters.get(name)
    assert nvme_result.runtime < none_result.runtime


def test_backendless_spec_serializes_to_legacy_form():
    spec = CellSpec(experiment_id="fig09", cell_id="baseline",
                    scale=8, config="baseline", backend=None)
    doc = spec.to_dict()
    assert "backend" not in doc
    assert sorted(doc) == ["cell_id", "config", "experiment_id",
                           "faults", "params", "scale", "schema",
                           "seed"]
    # Legacy dicts (no backend key) must round-trip to backend=None.
    assert CellSpec.from_dict(doc).backend is None


def test_backend_field_round_trips_and_changes_identity():
    with_b = CellSpec(experiment_id="fig09", cell_id="c", scale=8,
                      backend="nvme")
    without = CellSpec(experiment_id="fig09", cell_id="c", scale=8,
                       backend=None)
    assert with_b.canonical_json() != without.canonical_json()
    assert CellSpec.from_dict(
        json.loads(with_b.canonical_json())).backend == "nvme"


def test_unknown_backend_rejected_at_spec_build():
    with pytest.raises(ExperimentError, match="unknown swap backend"):
        CellSpec(experiment_id="fig09", cell_id="c", scale=8,
                 backend="floppy")


def test_specs_capture_the_ambient_backend():
    assert default_swap_backend() is None
    set_default_swap_backend("zram")
    try:
        spec = CellSpec(experiment_id="fig09", cell_id="c", scale=8)
        assert spec.backend == "zram"
    finally:
        set_default_swap_backend(None)
    assert CellSpec(experiment_id="fig09", cell_id="c",
                    scale=8).backend is None


def test_execute_cell_restores_the_ambient_backend():
    set_default_swap_backend("ssd")
    try:
        execute_cell(_cell("nvme"))
        assert default_swap_backend().kind == "ssd"
    finally:
        set_default_swap_backend(None)
