"""Swap-backend devices: service models, capacity, faults, registry."""

import pytest

from repro.config import (
    FaultConfig,
    SwapBackendConfig,
    swap_backend_config,
)
from repro.errors import ConfigError, DiskError
from repro.faults.plan import FaultPlan
from repro.sim.clock import Clock
from repro.sim.rng import DeterministicRng
from repro.swapback.devices import FlashBackend, RemoteBackend
from repro.swapback.factory import build_swap_backend
from repro.swapback.zram import CompressedBackend
from repro.units import PAGE_SIZE, SECTOR_SIZE, SECTORS_PER_PAGE


# ----------------------------------------------------------------------
# config registry
# ----------------------------------------------------------------------


def test_registry_knows_every_kind():
    for kind in ("disk", "ssd", "nvme", "zram", "remote", "tiered"):
        cfg = swap_backend_config(kind)
        assert cfg.kind == kind


def test_unknown_kind_is_typed_config_error():
    with pytest.raises(ConfigError, match="unknown swap backend kind"):
        swap_backend_config("floppy")


def test_unknown_disk_kind_is_typed_config_error():
    from repro.config import DiskConfig
    with pytest.raises(ConfigError, match="unknown disk kind"):
        DiskConfig(kind="floppy").validate()


def test_tiered_requires_both_tiers():
    with pytest.raises(ConfigError):
        SwapBackendConfig(kind="tiered").validate()


def test_tiered_fast_tier_needs_finite_capacity():
    cfg = SwapBackendConfig(
        kind="tiered", fast=SwapBackendConfig.zram(),
        slow=SwapBackendConfig.ssd())
    with pytest.raises(ConfigError):
        cfg.validate()


def test_nested_tiered_rejected():
    inner = SwapBackendConfig.tiered()
    cfg = SwapBackendConfig(
        kind="tiered", fast=inner, slow=SwapBackendConfig.ssd())
    with pytest.raises(ConfigError):
        cfg.validate()


# ----------------------------------------------------------------------
# flash queue model
# ----------------------------------------------------------------------


def test_flash_load_is_latency_plus_transfer():
    clock = Clock()
    backend = FlashBackend(clock, SwapBackendConfig.ssd())
    cfg = backend.cfg
    stall = backend.load(0, 4)
    expected = (cfg.read_latency
                + 4 * SECTORS_PER_PAGE * SECTOR_SIZE
                / cfg.bandwidth_bytes_per_sec)
    assert stall == pytest.approx(expected)
    assert backend.stats.loads == 1
    assert backend.stats.pages_loaded == 4


def test_flash_store_absorbs_backlog_before_throttling():
    clock = Clock()
    backend = FlashBackend(clock, SwapBackendConfig.ssd())
    # A single small write completes far inside the backlog horizon.
    assert backend.store(0, 1) == 0.0
    assert backend.stats.pages_stored == 1


def test_serial_queue_serializes_requests():
    clock = Clock()
    cfg = SwapBackendConfig.ssd()  # queue_depth=1
    backend = FlashBackend(clock, cfg)
    one = backend.load(0, 1)
    two = backend.load(1, 1)
    # The second request waits for the first: its stall includes the
    # first request's full service time.
    assert two == pytest.approx(2 * one)


def test_deep_queue_overlaps_requests():
    clock = Clock()
    backend = FlashBackend(clock, SwapBackendConfig.nvme())
    stalls = [backend.load(slot, 1) for slot in range(8)]
    # queue_depth=32: all eight requests run concurrently.
    assert stalls == pytest.approx([stalls[0]] * 8)


# ----------------------------------------------------------------------
# compressed tier
# ----------------------------------------------------------------------


def _zram(capacity_pages=None, *, mean=0.45, jitter=0.20, rng=None):
    cfg = SwapBackendConfig(
        kind="zram", capacity_pages=capacity_pages,
        compression_ratio_mean=mean, compression_ratio_jitter=jitter)
    cfg.validate()
    return CompressedBackend(cfg, rng=rng)


def test_compressed_capacity_counts_compressed_bytes():
    backend = _zram(capacity_pages=4, mean=0.5, jitter=0.0)
    # Every page compresses 2:1, so 8 pages fit in a 4-page budget.
    for slot in range(8):
        assert backend.fits(slot)
        backend.store_page(slot)
    assert backend.used_bytes == 8 * (PAGE_SIZE // 2)
    assert not backend.fits(8)
    with pytest.raises(DiskError, match="compressed swap tier full"):
        backend.store_page(8)


def test_incompressible_page_fills_one_page_exactly():
    # ratio 1.0 with no jitter: the degenerate page is stored verbatim
    # and a 1-page tier holds exactly one of them.
    backend = _zram(capacity_pages=1, mean=1.0, jitter=0.0)
    assert backend.compressed_size(0) == PAGE_SIZE
    backend.store_page(0)
    assert backend.used_bytes == PAGE_SIZE
    assert backend.pressure == 1.0
    assert not backend.fits(1)
    # Re-storing the resident slot is not growth; it still fits.
    assert backend.fits(0)


def test_compressed_ratio_is_pure_in_seed_and_slot():
    rng = DeterministicRng(7)
    one = _zram(rng=rng.fork("cell"))
    two = _zram(rng=DeterministicRng(7).fork("cell"))
    sizes_one = [one.compressed_size(s) for s in range(64)]
    # Probe order must not matter.
    sizes_two = [two.compressed_size(s) for s in reversed(range(64))]
    assert sizes_one == list(reversed(sizes_two))


def test_compressed_free_returns_bytes():
    backend = _zram(capacity_pages=2, mean=1.0, jitter=0.0)
    backend.store_page(0)
    backend.store_page(1)
    assert not backend.fits(2)
    backend.note_free(0)
    assert backend.fits(2)
    backend.store_page(2)
    assert backend.used_bytes == 2 * PAGE_SIZE


def test_compressed_load_charges_cpu_and_skips_holes():
    backend = _zram()
    backend.store(0, 2)
    stall = backend.load(0, 4)  # slots 2-3 were never stored
    assert stall == pytest.approx(2 * backend.cfg.decompress_page_cost)
    assert backend.stats.cpu_seconds > 0


# ----------------------------------------------------------------------
# remote tier and fault injection
# ----------------------------------------------------------------------


def test_remote_service_is_rtt_plus_transfer():
    clock = Clock()
    cfg = SwapBackendConfig(kind="remote", rtt=10e-6,
                            jitter_fraction=0.0,
                            bandwidth_bytes_per_sec=1e9,
                            queue_depth=16)
    backend = RemoteBackend(clock, cfg)
    stall = backend.load(0, 2)
    assert stall == pytest.approx(10e-6 + 2 * PAGE_SIZE / 1e9)


def test_remote_jitter_is_deterministic_per_fork():
    cfg = SwapBackendConfig.remote()
    one = RemoteBackend(Clock(), cfg,
                        rng=DeterministicRng(3).fork("swapback-remote"))
    two = RemoteBackend(Clock(), cfg,
                        rng=DeterministicRng(3).fork("swapback-remote"))
    assert [one.load(s, 1) for s in range(16)] \
        == [two.load(s, 1) for s in range(16)]


def test_remote_timeout_injection_charges_and_counts():
    fault_cfg = FaultConfig(enabled=True, remote_swap_timeout_rate=1.0,
                            remote_swap_timeout_seconds=0.5)
    plan = FaultPlan(fault_cfg, DeterministicRng(1))
    backend = RemoteBackend(Clock(), SwapBackendConfig.remote(),
                            faults=plan)
    stall = backend.load(0, 1)
    assert stall >= 0.5
    assert backend.stats.remote_timeouts == 1
    assert plan.counters.snapshot().get("remote_swap_timeouts") == 1


def test_compressed_stall_injection_charges_and_counts():
    fault_cfg = FaultConfig(enabled=True, compressed_stall_rate=1.0,
                            compressed_stall_seconds=0.25)
    plan = FaultPlan(fault_cfg, DeterministicRng(1))
    cfg = SwapBackendConfig.zram()
    backend = CompressedBackend(cfg, faults=plan)
    stall = backend.store(0, 1)
    assert stall >= 0.25
    assert backend.stats.compressed_stalls == 1
    assert plan.counters.snapshot().get("compressed_swap_stalls") == 1


def test_disarmed_plan_draws_nothing():
    plan = FaultPlan(FaultConfig(), DeterministicRng(1))
    assert plan.remote_timeout() == 0.0
    assert plan.compressed_stall() == 0.0


# ----------------------------------------------------------------------
# factory
# ----------------------------------------------------------------------


def test_factory_defaults_to_disk_backend():
    from repro.swapback.disk import DiskSwapBackend
    backend = build_swap_backend(None, clock=Clock(), disk=None,
                                 swap_area=None)
    assert isinstance(backend, DiskSwapBackend)


def test_factory_builds_every_registered_kind():
    rng = DeterministicRng(1)
    for kind in ("ssd", "nvme", "zram", "remote", "tiered"):
        backend = build_swap_backend(
            swap_backend_config(kind), clock=Clock(), disk=None,
            swap_area=None, rng=rng)
        assert backend.kind == kind


def test_factory_rejects_unknown_kind():
    cfg = SwapBackendConfig(kind="floppy")
    with pytest.raises(ConfigError):
        build_swap_backend(cfg, clock=Clock(), disk=None, swap_area=None)
