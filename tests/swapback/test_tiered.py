"""Tiering policy: write-to-fast, FIFO spill, hot-page promotion."""

import pytest

from repro.config import SwapBackendConfig, swap_backend_config
from repro.sim.clock import Clock
from repro.sim.rng import DeterministicRng
from repro.swapback.factory import build_swap_backend


def _tiered(fast_capacity=4, *, promote_on_load=True, seed=1,
            clock=None):
    cfg = SwapBackendConfig(
        kind="tiered",
        fast=SwapBackendConfig.zram(capacity_pages=fast_capacity),
        slow=SwapBackendConfig.ssd(),
        promote_on_load=promote_on_load)
    cfg.validate()
    return build_swap_backend(cfg, clock=clock or Clock(), disk=None,
                              swap_area=None,
                              rng=DeterministicRng(seed).fork("host"))


def test_stores_land_in_fast_tier_first():
    backend = _tiered(fast_capacity=64)
    backend.store(0, 4)
    assert all(backend.tier_of[s] == "fast" for s in range(4))
    assert backend.stats.demotes == 0


def test_overflow_demotes_oldest_fast_residents():
    # zram fast tier: 4-page compressed budget; with the default ~0.45
    # ratio roughly 8 pages fit, so storing well past that must demote.
    backend = _tiered(fast_capacity=4)
    backend.store(0, 32)
    assert backend.stats.demotes > 0
    tiers = [backend.tier_of[s] for s in range(32)]
    assert "slow" in tiers and "fast" in tiers
    # FIFO policy: the demoted pages are the *oldest* stores, so the
    # fast tier holds a suffix of the store order.
    first_fast = tiers.index("fast")
    assert all(t == "fast" for t in tiers[first_fast:])


def test_load_promotes_hot_slow_pages():
    backend = _tiered(fast_capacity=4)
    backend.store(0, 32)
    victim = next(s for s in range(32) if backend.tier_of[s] == "slow")
    # Make room so promotion cannot need an eviction, then load.
    for slot in list(backend._fast_order):
        backend.note_free(slot)
    backend.load(victim, 1)
    assert backend.tier_of[victim] == "fast"
    assert backend.stats.promotes == 1


def test_promotion_never_evicts():
    backend = _tiered(fast_capacity=4)
    backend.store(0, 32)
    demotes_before = backend.stats.demotes
    victim = next(s for s in range(32) if backend.tier_of[s] == "slow")
    backend.load(victim, 1)
    # The fast tier was full, so the hot page stays slow rather than
    # triggering a demotion cascade.
    assert backend.stats.demotes == demotes_before
    assert backend.tier_of[victim] == "slow"
    assert backend.stats.promotes == 0


def test_promote_on_load_can_be_disabled():
    backend = _tiered(fast_capacity=4, promote_on_load=False)
    backend.store(0, 32)
    victim = next(s for s in range(32) if backend.tier_of[s] == "slow")
    for slot in list(backend._fast_order):
        backend.note_free(slot)
    backend.load(victim, 1)
    assert backend.tier_of[victim] == "slow"
    assert backend.stats.promotes == 0


def test_note_free_forgets_the_slot_everywhere():
    backend = _tiered(fast_capacity=4)
    backend.store(0, 32)
    for slot in range(32):
        backend.note_free(slot)
    assert backend.tier_of == {}
    assert backend._fast_order == {}
    assert backend.fast.used_bytes == 0
    assert backend.pressure == 0.0


def test_tier_residency_is_deterministic_per_seed():
    def residency(seed):
        backend = _tiered(fast_capacity=4, seed=seed)
        backend.store(0, 48)
        for slot in (3, 17, 40):
            backend.load(slot, 1)
        return (dict(backend.tier_of), backend.stats.promotes,
                backend.stats.demotes, backend.fast.used_bytes)

    assert residency(5) == residency(5)


def test_different_seed_changes_compressed_residency():
    def residency(seed):
        backend = _tiered(fast_capacity=4, seed=seed)
        backend.store(0, 48)
        return dict(backend.tier_of)

    # Compression ratios are seeded, so a different cell seed may place
    # the fast/slow boundary differently (not required to, but the two
    # default seeds here do differ -- a tripwire that the seed actually
    # reaches the ratio model).
    assert residency(1) != residency(2)


def test_default_tiered_config_builds_and_runs():
    backend = build_swap_backend(
        swap_backend_config("tiered"), clock=Clock(), disk=None,
        swap_area=None, rng=DeterministicRng(1))
    backend.store(0, 8)
    stall = backend.load(0, 8)
    assert stall >= 0.0
    occ = backend.occupancy()
    assert occ["fast_pages"] + occ["slow_pages"] == 8
