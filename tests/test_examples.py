"""The shipped examples must run and print their headline claims."""

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str) -> str:
    process = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=300)
    assert process.returncode == 0, process.stderr
    return process.stdout


def test_quickstart_runs_and_orders_configs():
    out = run_example("quickstart.py")
    assert "baseline" in out
    assert "full vswapper" in out
    # Parse runtimes to confirm the headline ordering.
    runtimes = {}
    for line in out.splitlines():
        if "runtime" in line:
            label = line.split("runtime")[0].strip()
            runtimes[label] = float(
                line.split("runtime")[1].split("s")[0])
    baseline = next(v for k, v in runtimes.items() if "baseline" in k
                    and "balloon" not in k)
    vswapper = next(v for k, v in runtimes.items() if "full" in k)
    assert baseline > 2 * vswapper


def test_pathology_inspector_attributes_damage():
    out = run_example("pathology_inspector.py")
    assert "silent swap writes" in out
    assert "false page anonymity" in out
    assert "preventer remaps" in out
