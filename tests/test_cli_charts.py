"""CLI chart integration on a fast figure."""

from repro.cli import main


def test_cli_run_fig3_shows_bars(capsys):
    assert main(["run", "fig3", "--scale", "32"]) == 0
    out = capsys.readouterr().out
    assert "Figure 3" in out
    assert "#" in out            # the ASCII bar chart
    assert "regenerated" in out


def test_cli_run_fig15_table_only_is_fine(capsys):
    assert main(["run", "fig15", "--scale", "32"]) == 0
    out = capsys.readouterr().out
    assert "Figure 15" in out
    assert "mapper tracked" in out
