"""Workload generators: well-formed operation streams."""

import pytest

from repro.errors import ConfigError
from repro.sim.ops import (
    Alloc,
    Compute,
    FileRead,
    FileWrite,
    Free,
    MarkPhase,
    Overwrite,
    Touch,
)
from repro.units import mib_pages
from repro.workloads import (
    AllocTouch,
    BzipCompress,
    EclipseWorkload,
    Kernbench,
    MetisMapReduce,
    PbzipCompress,
    SysbenchFileRead,
    SysbenchThenAlloc,
    page_chunks,
)


def collect(workload):
    return list(workload.operations())


def total_read_pages(ops, file_id):
    return sum(op.npages for op in ops
               if isinstance(op, FileRead) and op.file_id == file_id)


def total_written_pages(ops, file_id):
    return sum(op.npages for op in ops
               if isinstance(op, FileWrite) and op.file_id == file_id)


# -- helpers -------------------------------------------------------------

def test_page_chunks_covers_exactly():
    chunks = list(page_chunks(1000, 256))
    assert sum(n for _off, n in chunks) == 1000
    assert chunks[0] == (0, 256)
    assert chunks[-1] == (768, 232)


def test_page_chunks_zero():
    assert list(page_chunks(0)) == []


def test_page_chunks_rejects_bad_args():
    with pytest.raises(ConfigError):
        list(page_chunks(-1))
    with pytest.raises(ConfigError):
        list(page_chunks(10, 0))


# -- sysbench -------------------------------------------------------------

def test_sysbench_reads_whole_file_each_iteration():
    workload = SysbenchFileRead(file_pages=1000, iterations=3)
    ops = collect(workload)
    assert total_read_pages(ops, workload.file_id) == 3000


def test_sysbench_prepare_writes_file_once():
    workload = SysbenchFileRead(file_pages=1000, iterations=1)
    ops = collect(workload)
    assert total_written_pages(ops, workload.file_id) == 1000


def test_sysbench_iteration_marks_balanced():
    workload = SysbenchFileRead(file_pages=100, iterations=4)
    ops = collect(workload)
    starts = [op for op in ops if isinstance(op, MarkPhase)
              and op.name == "iteration-start"]
    ends = [op for op in ops if isinstance(op, MarkPhase)
            and op.name == "iteration-end"]
    assert len(starts) == len(ends) == 4
    assert [op.payload["iteration"] for op in starts] == [1, 2, 3, 4]


def test_sysbench_no_prepare():
    ops = collect(SysbenchFileRead(file_pages=100, prepare=False))
    assert total_written_pages(ops, "sysbench.dat") == 0


# -- alloc/touch -----------------------------------------------------------

def test_alloctouch_touches_whole_allocation():
    workload = AllocTouch(alloc_pages=500)
    ops = collect(workload)
    allocs = [op for op in ops if isinstance(op, Alloc)]
    assert allocs[0].npages == 500
    touched = sum(op.npages for op in ops
                  if isinstance(op, Touch) and op.region == workload.region)
    assert touched == 500
    assert all(op.write for op in ops if isinstance(op, Touch))


def test_alloctouch_declares_min_resident():
    workload = AllocTouch(alloc_pages=500)
    assert workload.min_resident_pages > 500
    marks = [op for op in collect(workload) if isinstance(op, MarkPhase)]
    assert any("min_resident_pages" in op.payload for op in marks)


def test_sysbench_then_alloc_sequences_phases():
    workload = SysbenchThenAlloc(file_pages=100, alloc_pages=100)
    names = [op.name for op in collect(workload)
             if isinstance(op, MarkPhase)]
    assert names.index("iteration-end") < names.index("fork-allocator")
    assert names.index("fork-allocator") < names.index("alloc-start")


# -- pbzip -------------------------------------------------------------

def test_pbzip_consumes_whole_input():
    workload = PbzipCompress(input_pages=2000)
    ops = collect(workload)
    assert total_read_pages(ops, workload.input_file) == 2000


def test_pbzip_output_ratio():
    workload = PbzipCompress(input_pages=2000, output_ratio=0.25)
    ops = collect(workload)
    assert total_written_pages(ops, workload.output_file) == 500


def test_pbzip_buffers_reused_with_overwrites():
    workload = PbzipCompress(input_pages=2000, threads=4)
    ops = collect(workload)
    overwrites = [op for op in ops if isinstance(op, Overwrite)]
    regions = {op.region for op in overwrites}
    assert len(regions) == 4
    assert len(overwrites) == len([
        op for op in ops
        if isinstance(op, FileRead) and op.file_id == workload.input_file])


def test_pbzip_compute_scales_with_input():
    small = sum(op.seconds for op in collect(PbzipCompress(input_pages=500))
                if isinstance(op, Compute))
    large = sum(op.seconds for op in collect(PbzipCompress(input_pages=1000))
                if isinstance(op, Compute))
    assert large == pytest.approx(2 * small, rel=0.05)


def test_bzip_is_single_threaded():
    assert BzipCompress(input_pages=100).threads == 1


# -- kernbench -------------------------------------------------------------

def test_kernbench_unit_lifecycle():
    workload = Kernbench(compile_units=5, unit_working_set_pages=64,
                         source_pages=1000)
    ops = collect(workload)
    allocs = [op for op in ops if isinstance(op, Alloc)]
    frees = [op for op in ops if isinstance(op, Free)]
    assert len(allocs) == len(frees) == 5
    assert {a.region for a in allocs} == {f.region for f in frees}


def test_kernbench_object_writes_advance():
    workload = Kernbench(compile_units=3, object_write_pages=10,
                         source_pages=1000)
    ops = collect(workload)
    writes = [op for op in ops if isinstance(op, FileWrite)]
    offsets = [op.offset_pages for op in writes]
    assert offsets == [0, 10, 20]
    assert workload.object_file_pages() == 30


def test_kernbench_deterministic_per_seed():
    a = [op for op in collect(Kernbench(compile_units=5, seed=1))
         if isinstance(op, FileRead)]
    b = [op for op in collect(Kernbench(compile_units=5, seed=1))
         if isinstance(op, FileRead)]
    assert [op.offset_pages for op in a] == [op.offset_pages for op in b]


# -- eclipse -------------------------------------------------------------

def test_eclipse_gc_sweeps_touch_whole_heap():
    workload = EclipseWorkload(
        heap_pages=512, jvm_resident_pages=256, workspace_pages=256,
        work_units=6, gc_every_units=3)
    ops = collect(workload)
    gc_marks = [op for op in ops if isinstance(op, MarkPhase)
                and op.name == "gc"]
    assert len(gc_marks) == 2


def test_eclipse_touches_stay_in_bounds():
    workload = EclipseWorkload(
        heap_pages=128, jvm_resident_pages=128, workspace_pages=128,
        work_units=8)
    for op in collect(workload):
        if isinstance(op, Touch):
            bound = {"heap": 128, "jvm": 128}[op.region]
            assert op.start + op.npages <= bound
        if isinstance(op, FileRead):
            assert op.offset_pages + op.npages <= 128


# -- mapreduce -------------------------------------------------------------

def test_mapreduce_builds_whole_table():
    workload = MetisMapReduce(
        input_pages=512, table_pages=1024, output_pages=16)
    ops = collect(workload)
    growth = sum(
        op.npages for op in ops
        if isinstance(op, Touch) and op.region == "tables" and op.write
        and op.npages > 64)
    assert growth == 1024


def test_mapreduce_reads_input_and_writes_output():
    workload = MetisMapReduce(
        input_pages=512, table_pages=1024, output_pages=16)
    ops = collect(workload)
    assert total_read_pages(ops, workload.input_file) == 512
    assert total_written_pages(ops, workload.output_file) == 16


def test_mapreduce_min_resident_scales():
    workload = MetisMapReduce(min_resident_pages=mib_pages(640))
    assert workload.min_resident_pages == mib_pages(640)
