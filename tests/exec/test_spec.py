"""CellSpec/Sweep: validation, canonical JSON, fault capture."""

import pytest

from repro.config import FaultConfig
from repro.errors import ExperimentError
from repro.exec.spec import (
    CellSpec,
    Sweep,
    fault_params,
    faults_from_params,
    sweep_from_configs,
)
from repro.experiments.runner import ConfigName
from repro.faults.plan import set_default_fault_config


def _spec(**overrides) -> CellSpec:
    defaults = dict(experiment_id="exp", cell_id="cell", scale=4)
    defaults.update(overrides)
    return CellSpec(**defaults)


def test_round_trip_preserves_equality():
    spec = _spec(config="baseline", seed=7,
                 params={"actual_mib": 512, "nested": [1, 2.5, None]},
                 faults=fault_params(FaultConfig.chaos()))
    assert CellSpec.from_dict(spec.to_dict()) == spec


def test_canonical_json_is_key_order_independent():
    a = _spec(params={"x": 1, "y": 2})
    b = _spec(params={"y": 2, "x": 1})
    assert a.canonical_json() == b.canonical_json()


def test_missing_ids_rejected():
    with pytest.raises(ExperimentError):
        _spec(experiment_id="")
    with pytest.raises(ExperimentError):
        _spec(cell_id="")


def test_nonpositive_scale_rejected():
    with pytest.raises(ExperimentError):
        _spec(scale=0)


def test_non_json_params_rejected():
    with pytest.raises(ExperimentError):
        _spec(params={"machine": object()})


def test_non_string_param_keys_rejected():
    with pytest.raises(ExperimentError):
        _spec(params={512: "int keys do not survive JSON"})


def test_schema_mismatch_rejected():
    data = _spec().to_dict()
    data["schema"] = 999
    with pytest.raises(ExperimentError):
        CellSpec.from_dict(data)


def test_sweep_rejects_duplicate_cell_ids():
    with pytest.raises(ExperimentError):
        Sweep("exp", (_spec(), _spec()))


def test_sweep_len_and_order():
    cells = tuple(_spec(cell_id=f"c{i}") for i in range(3))
    sweep = Sweep("exp", cells)
    assert len(sweep) == 3
    assert [c.cell_id for c in sweep.cells] == ["c0", "c1", "c2"]


def test_sweep_from_configs_one_cell_per_config():
    sweep = sweep_from_configs(
        "exp", (ConfigName.BASELINE, ConfigName.VSWAPPER), scale=8,
        params={"iterations": 2})
    assert len(sweep) == 2
    assert [c.cell_id for c in sweep.cells] == ["baseline", "vswapper"]
    assert all(c.config == c.cell_id for c in sweep.cells)
    assert all(c.params == {"iterations": 2} for c in sweep.cells)


def test_fault_params_round_trip():
    chaos = FaultConfig.chaos()
    assert faults_from_params(fault_params(chaos)) == chaos
    assert fault_params(None) is None or isinstance(fault_params(None), dict)
    assert faults_from_params(None) is None


def test_fault_params_captures_ambient_default():
    chaos = FaultConfig.chaos()
    set_default_fault_config(chaos)
    try:
        assert faults_from_params(fault_params()) == chaos
    finally:
        set_default_fault_config(None)
    assert fault_params() is None


def test_faults_change_the_cell_identity():
    clean = _spec()
    faulted = _spec(faults=fault_params(FaultConfig.chaos()))
    assert clean.canonical_json() != faulted.canonical_json()
