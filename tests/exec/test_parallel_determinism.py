"""Acceptance property: parallel execution is bit-identical to serial.

Runs the real Figure 9 harness -- cells build their own seeded
machines -- once on the serial executor and once on a four-worker
process pool, with and without the chaos fault plan, and requires the
*exact* same counters, runtimes, phases, and statuses per cell.
"""

import pytest

from repro.config import FaultConfig
from repro.exec.executor import ParallelExecutor, SerialExecutor, run_sweep
from repro.experiments.fig09 import build_fig09_sweep
from repro.faults.plan import set_default_fault_config

SCALE = 8


@pytest.mark.parametrize("fault_config", [None, FaultConfig.chaos()],
                         ids=["clean", "faults"])
def test_parallel_results_bit_identical_to_serial(fault_config):
    set_default_fault_config(fault_config)
    try:
        sweep = build_fig09_sweep(scale=SCALE, iterations=2)
    finally:
        set_default_fault_config(None)

    # The fault plan was captured into the cells at build time: the
    # executors below run with NO ambient config installed, proving a
    # worker process needs nothing but the spec.
    serial = run_sweep(sweep, executor=SerialExecutor())
    parallel = run_sweep(sweep, executor=ParallelExecutor(4))

    assert list(serial.results) == list(parallel.results)
    for cell_id, expected in serial.results.items():
        got = parallel.results[cell_id]
        assert got.counters == expected.counters, cell_id
        assert got.runtime == expected.runtime, cell_id
        assert got.phases == expected.phases, cell_id
        assert got.status == expected.status, cell_id
        assert got.crash_reason == expected.crash_reason, cell_id
