"""Executors and run_sweep: caching, resume, validation."""

import pytest

from repro.errors import ConfigError, ExperimentError
from repro.exec.executor import (
    ParallelExecutor,
    SerialExecutor,
    execute_cell,
    make_executor,
    run_sweep,
)
from repro.exec.spec import CellSpec, Sweep
from repro.exec.store import ResultStore
from repro.experiments import registry
from repro.experiments.runner import ConfigName, RunResult

#: Executions observed by the fake runner (reset per test).
CALLS: list[str] = []


def fake_cell(spec: CellSpec) -> RunResult:
    CALLS.append(spec.cell_id)
    return RunResult(
        config=ConfigName.BASELINE,
        runtime=float(spec.params["value"]),
        crashed=False,
        counters={"value": spec.params["value"]},
    )


@pytest.fixture(autouse=True)
def _fake_harness(monkeypatch):
    monkeypatch.setitem(registry.CELL_RUNNERS, "fake", fake_cell)
    CALLS.clear()


def _sweep(n: int = 3) -> Sweep:
    cells = tuple(
        CellSpec(experiment_id="fake", cell_id=f"c{i}", scale=1,
                 params={"value": i})
        for i in range(n))
    return Sweep("fake", cells)


def test_execute_cell_dispatches_through_the_registry():
    result = execute_cell(_sweep().cells[1])
    assert result.counters == {"value": 1}


def test_unknown_harness_raises_experiment_error():
    spec = CellSpec(experiment_id="no-such-harness", cell_id="c", scale=1)
    with pytest.raises(ExperimentError):
        execute_cell(spec)


def test_run_sweep_serial_order_and_stats():
    outcome = run_sweep(_sweep())
    assert list(outcome.results) == ["c0", "c1", "c2"]
    assert CALLS == ["c0", "c1", "c2"]
    assert outcome.executed == 3
    assert outcome.cached == 0
    stats = outcome.stats
    assert (stats.cells, stats.executed, stats.cached) == (3, 3, 0)
    assert not stats.all_cached


def test_run_sweep_persists_and_resumes(tmp_path):
    store = ResultStore(tmp_path)
    first = run_sweep(_sweep(), store=store)
    assert first.executed == 3

    CALLS.clear()
    second = run_sweep(_sweep(), store=store, resume=True)
    assert CALLS == []
    assert second.executed == 0
    assert second.cached == 3
    assert second.stats.all_cached
    assert second.results == first.results


def test_resume_misses_only_reexecute_missing_cells(tmp_path):
    store = ResultStore(tmp_path)
    run_sweep(_sweep(2), store=store)

    CALLS.clear()
    outcome = run_sweep(_sweep(3), store=store, resume=True)
    assert CALLS == ["c2"]
    assert outcome.executed == 1
    assert outcome.cached == 2


def test_without_resume_the_store_is_write_only(tmp_path):
    store = ResultStore(tmp_path)
    run_sweep(_sweep(), store=store)
    CALLS.clear()
    outcome = run_sweep(_sweep(), store=store)
    assert CALLS == ["c0", "c1", "c2"]  # no silent cache reads
    assert outcome.cached == 0


def test_resume_without_store_raises_config_error():
    with pytest.raises(ConfigError, match="results"):
        run_sweep(_sweep(), resume=True)


def test_parallel_executor_matches_serial_on_fake_cells():
    serial = run_sweep(_sweep(4))
    parallel = run_sweep(_sweep(4), executor=ParallelExecutor(2))
    assert serial.results == parallel.results
    assert list(parallel.results) == ["c0", "c1", "c2", "c3"]


def test_make_executor_validation():
    assert isinstance(make_executor(1), SerialExecutor)
    assert isinstance(make_executor(2), ParallelExecutor)
    with pytest.raises(ConfigError):
        make_executor(0)
    with pytest.raises(ConfigError):
        ParallelExecutor(-1)


def test_single_cell_parallel_falls_back_to_serial():
    outcome = run_sweep(_sweep(1), executor=ParallelExecutor(8))
    assert outcome.executed == 1
    assert CALLS == ["c0"]  # ran in-process, no pool spawned
