"""Multi-process store contention: hammer overlapping keys, read live.

Satellite of the store-durability PR: N writer processes repeatedly
write the *same* set of cells in different orders while a reader
polls lock-free, then the store must hold exactly one live record per
key, no torn read may ever have surfaced (a torn read would
quarantine), and ``store verify`` must exit 0.
"""

import json
import multiprocessing

import pytest

from repro.cli import main
from repro.exec.spec import CellSpec
from repro.exec.store import ResultStore, cell_key
from repro.experiments.runner import ConfigName, RunResult

pytest.importorskip("fcntl")

WRITERS = 4
CELLS = 12
ROUNDS = 3


def _spec(index: int) -> CellSpec:
    return CellSpec(experiment_id="contend", cell_id=f"c{index:02d}",
                    scale=4, config="baseline",
                    params={"actual_mib": 64 * (index + 1)})


def _result(index: int) -> RunResult:
    """Deterministic from the spec, so every writer of a key writes the
    same result payload and any complete record is the right one."""
    return RunResult(config=ConfigName.BASELINE, runtime=float(index),
                     crashed=False, counters={"disk_ops": index * 7})


def _writer(root: str, writer_id: int) -> None:
    store = ResultStore(root)
    order = list(range(CELLS))
    for round_no in range(ROUNDS):
        # Distinct interleavings per (writer, round), no RNG needed.
        shift = (writer_id * 5 + round_no * 3) % CELLS
        for index in order[shift:] + order[:shift]:
            store.store_cell(_spec(index), _result(index),
                             wall_seconds=0.25)


def _reader(root: str, done: multiprocessing.Event) -> None:
    store = ResultStore(root)
    while True:
        finished = done.is_set()  # check *before* the sweep: no lost race
        for index in range(CELLS):
            entry = store.load_cell_entry(_spec(index))
            if entry is not None:
                result, wall = entry
                assert result == _result(index), f"torn read on c{index:02d}"
                assert wall == 0.25
        if finished:
            # One full sweep after every writer exited: all keys present.
            assert all(store.has_cell(_spec(i)) for i in range(CELLS))
            return


def test_concurrent_writers_converge_to_one_valid_record_per_key(tmp_path):
    root = str(tmp_path)
    done = multiprocessing.Event()
    reader = multiprocessing.Process(target=_reader, args=(root, done))
    writers = [multiprocessing.Process(target=_writer, args=(root, i))
               for i in range(WRITERS)]
    reader.start()
    for proc in writers:
        proc.start()
    for proc in writers:
        proc.join(timeout=120)
        assert proc.exitcode == 0, "writer crashed or deadlocked"
    done.set()
    reader.join(timeout=120)
    assert reader.exitcode == 0, "reader saw a torn or wrong record"

    store = ResultStore(root)
    # Exactly one live record per key, nothing quarantined, no leftovers.
    files = sorted((tmp_path / "cells" / "contend").glob("*.json"))
    assert len(files) == CELLS
    for index in range(CELLS):
        record = json.loads(store.cell_path(_spec(index)).read_text())
        assert record["key"] == cell_key(_spec(index))
    assert store.quarantined() == []

    report = store.verify()
    assert report.ok
    assert report.checked == CELLS
    assert report.stale == 0
    assert main(["store", "verify", "--results-dir", root]) == 0
