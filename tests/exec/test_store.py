"""ResultStore: content-addressed caching semantics."""

import json

import pytest

from repro.errors import ConfigError
from repro.exec.spec import CellSpec
from repro.exec.store import ResultStore, cell_key
from repro.experiments.runner import (
    ConfigName,
    FigureResult,
    PhaseMark,
    RunResult,
)


def _spec(**overrides) -> CellSpec:
    defaults = dict(experiment_id="exp", cell_id="cell", scale=4,
                    config="baseline", params={"actual_mib": 512})
    defaults.update(overrides)
    return CellSpec(**defaults)


def _result() -> RunResult:
    return RunResult(
        config=ConfigName.BASELINE,
        runtime=12.5,
        crashed=False,
        counters={"disk_ops": 42},
        phases=[PhaseMark("iteration-start", {}, 1.0, {"disk_ops": 1})],
    )


def test_cell_round_trip(tmp_path):
    store = ResultStore(tmp_path)
    spec = _spec()
    store.store_cell(spec, _result(), wall_seconds=0.5)
    assert store.has_cell(spec)
    assert store.load_cell(spec) == _result()


def test_missing_cell_is_a_miss(tmp_path):
    store = ResultStore(tmp_path)
    assert store.load_cell(_spec()) is None
    assert not store.has_cell(_spec())


def test_any_spec_change_changes_the_key():
    base = _spec()
    variants = [
        _spec(scale=8),
        _spec(seed=2),
        _spec(config="vswapper"),
        _spec(params={"actual_mib": 256}),
        _spec(faults={"enabled": True}),
    ]
    keys = {cell_key(s) for s in [base] + variants}
    assert len(keys) == len(variants) + 1


def test_param_change_is_a_cache_miss(tmp_path):
    store = ResultStore(tmp_path)
    store.store_cell(_spec(), _result(), wall_seconds=0.1)
    assert store.load_cell(_spec(params={"actual_mib": 256})) is None


def test_corrupt_record_reads_as_miss(tmp_path):
    store = ResultStore(tmp_path)
    spec = _spec()
    path = store.store_cell(spec, _result(), wall_seconds=0.1)
    path.write_text("{ not json")
    assert store.load_cell(spec) is None


def test_stale_key_reads_as_miss(tmp_path):
    store = ResultStore(tmp_path)
    spec = _spec()
    path = store.store_cell(spec, _result(), wall_seconds=0.1)
    record = json.loads(path.read_text())
    record["key"] = "0" * 64
    path.write_text(json.dumps(record))
    assert store.load_cell(spec) is None


def test_root_collision_raises_config_error(tmp_path):
    not_a_dir = tmp_path / "occupied"
    not_a_dir.write_text("file, not a directory")
    with pytest.raises(ConfigError):
        ResultStore(not_a_dir)


def test_cell_timings_read_back(tmp_path):
    store = ResultStore(tmp_path)
    store.store_cell(_spec(cell_id="a"), _result(), wall_seconds=1.25)
    store.store_cell(_spec(cell_id="b"), _result(), wall_seconds=0.75)
    assert store.cell_timings("exp") == {"a": 1.25, "b": 0.75}


def test_figure_round_trip(tmp_path):
    store = ResultStore(tmp_path)
    figure = FigureResult("fig99", {"baseline": {"512": 1.5}}, "rendered")
    store.store_figure(figure)
    assert store.load_figure("fig99") == figure
    assert store.load_figure("fig-unknown") is None


def test_awkward_ids_get_sane_file_names(tmp_path):
    store = ResultStore(tmp_path)
    spec = _spec(experiment_id="fig05+fig11",
                 cell_id="balloon+base@512MiB")
    path = store.store_cell(spec, _result(), wall_seconds=0.1)
    assert path.is_file()
    assert store.has_cell(spec)
    figure = FigureResult("sec5.3", {}, "rendered")
    assert store.store_figure(figure).is_file()
