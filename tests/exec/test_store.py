"""ResultStore: content-addressed caching, integrity, and locking."""

import json

import pytest

from repro.errors import ConfigError, StoreContentionError, StoreIntegrityError
from repro.exec.spec import CellSpec
from repro.exec.store import (
    QuarantineReason,
    ResultStore,
    StoreLockConfig,
    _payload_checksum,
    cell_key,
)
from repro.experiments.runner import (
    ConfigName,
    FigureResult,
    PhaseMark,
    RunResult,
)


def _spec(**overrides) -> CellSpec:
    defaults = dict(experiment_id="exp", cell_id="cell", scale=4,
                    config="baseline", params={"actual_mib": 512})
    defaults.update(overrides)
    return CellSpec(**defaults)


def _result() -> RunResult:
    return RunResult(
        config=ConfigName.BASELINE,
        runtime=12.5,
        crashed=False,
        counters={"disk_ops": 42},
        phases=[PhaseMark("iteration-start", {}, 1.0, {"disk_ops": 1})],
    )


def test_cell_round_trip(tmp_path):
    store = ResultStore(tmp_path)
    spec = _spec()
    store.store_cell(spec, _result(), wall_seconds=0.5)
    assert store.has_cell(spec)
    assert store.load_cell(spec) == _result()


def test_missing_cell_is_a_miss(tmp_path):
    store = ResultStore(tmp_path)
    assert store.load_cell(_spec()) is None
    assert not store.has_cell(_spec())


def test_any_spec_change_changes_the_key():
    base = _spec()
    variants = [
        _spec(scale=8),
        _spec(seed=2),
        _spec(config="vswapper"),
        _spec(params={"actual_mib": 256}),
        _spec(faults={"enabled": True}),
    ]
    keys = {cell_key(s) for s in [base] + variants}
    assert len(keys) == len(variants) + 1


def test_param_change_is_a_cache_miss(tmp_path):
    store = ResultStore(tmp_path)
    store.store_cell(_spec(), _result(), wall_seconds=0.1)
    assert store.load_cell(_spec(params={"actual_mib": 256})) is None


def test_corrupt_record_reads_as_miss(tmp_path):
    store = ResultStore(tmp_path)
    spec = _spec()
    path = store.store_cell(spec, _result(), wall_seconds=0.1)
    path.write_text("{ not json")
    assert store.load_cell(spec) is None


def test_stale_key_reads_as_miss(tmp_path):
    store = ResultStore(tmp_path)
    spec = _spec()
    path = store.store_cell(spec, _result(), wall_seconds=0.1)
    record = json.loads(path.read_text())
    record["key"] = "0" * 64
    path.write_text(json.dumps(record))
    assert store.load_cell(spec) is None


def test_root_collision_raises_config_error(tmp_path):
    not_a_dir = tmp_path / "occupied"
    not_a_dir.write_text("file, not a directory")
    with pytest.raises(ConfigError):
        ResultStore(not_a_dir)


def test_cell_timings_read_back(tmp_path):
    store = ResultStore(tmp_path)
    store.store_cell(_spec(cell_id="a"), _result(), wall_seconds=1.25)
    store.store_cell(_spec(cell_id="b"), _result(), wall_seconds=0.75)
    assert store.cell_timings("exp") == {"a": 1.25, "b": 0.75}


def test_figure_round_trip(tmp_path):
    store = ResultStore(tmp_path)
    figure = FigureResult("fig99", {"baseline": {"512": 1.5}}, "rendered")
    store.store_figure(figure)
    assert store.load_figure("fig99") == figure
    assert store.load_figure("fig-unknown") is None


def test_awkward_ids_get_sane_file_names(tmp_path):
    store = ResultStore(tmp_path)
    spec = _spec(experiment_id="fig05+fig11",
                 cell_id="balloon+base@512MiB")
    path = store.store_cell(spec, _result(), wall_seconds=0.1)
    assert path.is_file()
    assert store.has_cell(spec)
    figure = FigureResult("sec5.3", {}, "rendered")
    assert store.store_figure(figure).is_file()


# ----------------------------------------------------------------------
# integrity: checksums and quarantine
# ----------------------------------------------------------------------

def test_records_carry_a_verifiable_checksum(tmp_path):
    store = ResultStore(tmp_path)
    path = store.store_cell(_spec(), _result(), wall_seconds=0.5)
    record = json.loads(path.read_text())
    assert record["checksum"].startswith("sha256:")
    assert record["checksum"] == _payload_checksum(record)


def _quarantine_reasons(store: ResultStore) -> list[str]:
    return [entry["reason"] for entry in store.quarantined()]


def test_torn_record_is_quarantined_as_bad_json(tmp_path):
    store = ResultStore(tmp_path)
    spec = _spec()
    path = store.store_cell(spec, _result(), wall_seconds=0.1)
    path.write_text(path.read_text()[: len(path.read_text()) // 2])
    assert store.load_cell(spec) is None
    assert not path.exists()  # moved, not silently dropped
    assert _quarantine_reasons(store) == [QuarantineReason.BAD_JSON.value]
    [entry] = store.quarantined()
    assert entry["source"].startswith("cells/")
    assert entry["detail"]


def test_bit_rot_is_quarantined_as_checksum_mismatch(tmp_path):
    store = ResultStore(tmp_path)
    spec = _spec()
    path = store.store_cell(spec, _result(), wall_seconds=0.1)
    record = json.loads(path.read_text())
    record["wall_seconds"] = 99.0  # flip payload, keep old checksum
    path.write_text(json.dumps(record))
    assert store.load_cell(spec) is None
    assert _quarantine_reasons(store) == [
        QuarantineReason.CHECKSUM_MISMATCH.value]


def test_legacy_record_without_checksum_is_quarantined(tmp_path):
    store = ResultStore(tmp_path)
    spec = _spec()
    path = store.store_cell(spec, _result(), wall_seconds=0.1)
    record = json.loads(path.read_text())
    del record["checksum"]
    path.write_text(json.dumps(record))
    assert store.load_cell(spec) is None
    assert _quarantine_reasons(store) == [
        QuarantineReason.CHECKSUM_MISSING.value]


def test_non_object_json_is_quarantined_as_not_a_record(tmp_path):
    store = ResultStore(tmp_path)
    spec = _spec()
    path = store.store_cell(spec, _result(), wall_seconds=0.1)
    path.write_text("[1, 2, 3]\n")
    assert store.load_cell(spec) is None
    assert _quarantine_reasons(store) == [
        QuarantineReason.NOT_A_RECORD.value]


def test_undeserializable_result_is_quarantined_as_bad_record(tmp_path):
    store = ResultStore(tmp_path)
    spec = _spec()
    path = store.store_cell(spec, _result(), wall_seconds=0.1)
    record = json.loads(path.read_text())
    record["result"] = {"nonsense": True}
    record["checksum"] = _payload_checksum(record)  # checksum holds
    path.write_text(json.dumps(record))
    assert store.load_cell(spec) is None
    assert _quarantine_reasons(store) == [QuarantineReason.BAD_RECORD.value]


def test_verify_reports_and_optionally_quarantines(tmp_path):
    store = ResultStore(tmp_path)
    good = _spec(cell_id="good")
    bad = _spec(cell_id="bad")
    store.store_cell(good, _result(), wall_seconds=0.1)
    bad_path = store.store_cell(bad, _result(), wall_seconds=0.1)
    bad_path.write_text("{ torn")

    report = store.verify()  # read-only: reports, does not move
    assert not report.ok
    assert report.checked == 1
    assert [reason for _rel, reason, _detail in report.corrupt] == [
        QuarantineReason.BAD_JSON.value]
    assert bad_path.exists()
    assert "CORRUPT" in report.describe()

    report = store.verify(quarantine=True)
    assert not bad_path.exists()
    clean = store.verify()
    assert clean.ok and clean.checked == 1 and clean.quarantined == 1


def test_verify_strict_raises_typed_integrity_error(tmp_path):
    store = ResultStore(tmp_path)
    path = store.store_cell(_spec(), _result(), wall_seconds=0.1)
    path.write_text("{ torn")
    with pytest.raises(StoreIntegrityError):
        store.verify(strict=True)


def test_verify_on_open_quarantines_corrupt_records(tmp_path):
    spec = _spec()
    path = ResultStore(tmp_path).store_cell(spec, _result(), wall_seconds=0.1)
    path.write_text("{ torn")
    store = ResultStore(tmp_path, verify_on_open=True)
    assert not path.exists()
    assert _quarantine_reasons(store) == [QuarantineReason.BAD_JSON.value]


# ----------------------------------------------------------------------
# figures: constituent cell keys
# ----------------------------------------------------------------------

def test_figure_cell_keys_round_trip_order_insensitively(tmp_path):
    store = ResultStore(tmp_path)
    figure = FigureResult("fig99", {"baseline": {"512": 1.5}}, "rendered")
    keys = [cell_key(_spec(cell_id="b")), cell_key(_spec(cell_id="a"))]
    store.store_figure(figure, cell_keys=keys)
    assert store.load_figure("fig99", expected_cell_keys=keys) == figure
    assert store.load_figure(
        "fig99", expected_cell_keys=list(reversed(keys))) == figure
    # Without an expectation the figure still loads.
    assert store.load_figure("fig99") == figure


def test_figure_with_superseded_cells_is_a_miss(tmp_path):
    store = ResultStore(tmp_path)
    figure = FigureResult("fig99", {}, "rendered")
    store.store_figure(figure, cell_keys=[cell_key(_spec())])
    changed = [cell_key(_spec(scale=8))]
    assert store.load_figure("fig99", expected_cell_keys=changed) is None


def test_figure_stored_without_keys_never_matches_an_expectation(tmp_path):
    store = ResultStore(tmp_path)
    store.store_figure(FigureResult("fig99", {}, "rendered"))
    assert store.load_figure(
        "fig99", expected_cell_keys=[cell_key(_spec())]) is None


# ----------------------------------------------------------------------
# timings: live records shadow stale duplicates
# ----------------------------------------------------------------------

def _plant_stale_duplicate(store: ResultStore, spec: CellSpec,
                           wall: float) -> None:
    """A same-cell-id record under a superseded content hash, exactly as
    a schema bump leaves behind."""
    live = store.cell_path(spec)
    record = json.loads(live.read_text())
    record["key"] = "f" * 64  # no spec hashes to this any more
    record["wall_seconds"] = wall
    record["checksum"] = _payload_checksum(record)
    stale = live.with_name(
        live.name.replace(cell_key(spec)[:12], "feedfeedfeed"))
    stale.write_text(json.dumps(record))


def test_cell_timings_prefer_live_over_stale_duplicates(tmp_path):
    store = ResultStore(tmp_path)
    spec = _spec(cell_id="a")
    store.store_cell(spec, _result(), wall_seconds=1.25)
    # Glob order would visit the stale name first; the live key must
    # still win.
    _plant_stale_duplicate(store, spec, wall=77.0)
    assert store.cell_timings("exp") == {"a": 1.25}


def test_cell_timings_fall_back_to_stale_when_no_live_record(tmp_path):
    store = ResultStore(tmp_path)
    spec = _spec(cell_id="a")
    store.store_cell(spec, _result(), wall_seconds=1.25)
    _plant_stale_duplicate(store, spec, wall=77.0)
    store.cell_path(spec).unlink()
    assert store.cell_timings("exp") == {"a": 77.0}


def test_gc_removes_shadowed_stale_duplicates_only(tmp_path):
    store = ResultStore(tmp_path)
    shadowed = _spec(cell_id="a")
    orphaned = _spec(cell_id="b")
    store.store_cell(shadowed, _result(), wall_seconds=1.0)
    store.store_cell(orphaned, _result(), wall_seconds=2.0)
    _plant_stale_duplicate(store, shadowed, wall=77.0)
    _plant_stale_duplicate(store, orphaned, wall=88.0)
    store.cell_path(orphaned).unlink()  # b's only record is now stale

    report = store.gc()
    assert report.stale_removed == 1  # a's duplicate; b's sole record stays
    assert store.cell_timings("exp") == {"a": 1.0, "b": 88.0}


def test_compact_leaves_one_record_per_live_key(tmp_path):
    store = ResultStore(tmp_path)
    spec = _spec(cell_id="a")
    store.store_cell(spec, _result(), wall_seconds=1.0)
    _plant_stale_duplicate(store, spec, wall=77.0)
    torn = store.store_cell(_spec(cell_id="torn"), _result(),
                            wall_seconds=0.1)
    torn.write_text("{ torn")
    store.load_cell(_spec(cell_id="torn"))  # quarantines it
    store.store_figure(FigureResult("fig99", {}, "rendered"),
                       cell_keys=[cell_key(spec)])

    report = store.compact()
    assert report.kept == 2  # the live cell + the figure
    assert report.dropped == 1  # the stale duplicate
    assert report.quarantine_dropped == 2  # record + why sidecar
    assert not store.quarantine_dir.exists()
    assert store.load_cell(spec) == _result()
    assert store.verify().ok


# ----------------------------------------------------------------------
# locking
# ----------------------------------------------------------------------

def test_contended_record_lock_raises_typed_error(tmp_path):
    fcntl = pytest.importorskip("fcntl")
    store = ResultStore(
        tmp_path, lock=StoreLockConfig(timeout=0.05, backoff_base=0.001))
    spec = _spec()
    lock_path = store._record_lock_path(cell_key(spec)[:12])
    lock_path.parent.mkdir(parents=True, exist_ok=True)
    with lock_path.open("a+") as holder:
        # flock is per open file description, so this fd conflicts with
        # the store's own acquisition attempt even in-process.
        fcntl.flock(holder, fcntl.LOCK_EX)
        with pytest.raises(StoreContentionError):
            store.store_cell(spec, _result(), wall_seconds=0.1)
    # Released: the very same write now goes through.
    store.store_cell(spec, _result(), wall_seconds=0.1)
    assert store.has_cell(spec)


def test_lock_backoff_is_capped_exponential():
    config = StoreLockConfig(backoff_base=0.01, backoff_factor=2.0,
                             backoff_cap=0.05)
    waits = [config.backoff(attempt) for attempt in range(1, 6)]
    assert waits == [0.01, 0.02, 0.04, 0.05, 0.05]


def test_lock_config_validates():
    with pytest.raises(ConfigError):
        StoreLockConfig(timeout=0.0).validate()
    with pytest.raises(ConfigError):
        StoreLockConfig(backoff_factor=0.5).validate()


def test_gc_sweeps_tmp_orphans_older_than_the_last_write(tmp_path):
    store = ResultStore(tmp_path)
    spec = _spec(cell_id="a")
    store.store_cell(spec, _result(), wall_seconds=0.1)
    orphan = (tmp_path / "cells" / "exp"
              / ".a-deadbeef.1234-0-abcdef01-cafe.tmp")
    orphan.write_text("{ interrupted")
    assert store.verify().tmp_orphans == 1
    # No write since the orphan appeared: gc must keep it (it could be a
    # write still in flight).
    assert store.gc().tmp_removed == 0
    assert orphan.exists()
    # A later write moves the last-writer stamp past it; now it is junk.
    store.store_cell(_spec(cell_id="b"), _result(), wall_seconds=0.1)
    assert store.gc().tmp_removed == 1
    assert not orphan.exists()
