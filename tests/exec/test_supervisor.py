"""The supervised executor: timeouts, crash recovery, quarantine.

These tests register a test-only cell runner whose behaviour is driven
by the spec (``params["behavior"]``): it can succeed, kill its worker
process outright, hang past any deadline, or raise.  The supervisor
must retry the environmental failures, quarantine the rest as typed
:class:`CellFailure` records, and leave every surviving cell
bit-identical to a serial run.
"""

import os
import time

import pytest

from repro.config import FaultConfig
from repro.errors import ConfigError
from repro.exec.executor import SerialExecutor, make_executor, run_sweep
from repro.exec.spec import CellSpec, Sweep, fault_params
from repro.exec.store import ResultStore
from repro.exec.supervisor import (
    CellFailure,
    CellSupervisor,
    FailureKind,
    SupervisorConfig,
)
from repro.experiments.registry import (
    register_cell_runner,
    unregister_cell_runner,
)
from repro.experiments.runner import ConfigName, RunResult

HARNESS = "supervised-fake"


def _behaving_cell(spec: CellSpec) -> RunResult:
    """Test-only runner: the spec says how this cell (mis)behaves."""
    behavior = spec.params.get("behavior", "ok")
    if behavior == "exit":
        os._exit(1)  # die hard: no exception, no report
    if behavior == "hang":
        time.sleep(60)
    if behavior == "raise":
        raise RuntimeError("deliberate cell error")
    return RunResult(
        config=ConfigName.BASELINE,
        runtime=float(spec.params["value"]),
        crashed=False,
        counters={"value": spec.params["value"]},
    )


@pytest.fixture(autouse=True)
def _harness():
    register_cell_runner(HARNESS, _behaving_cell)
    yield
    unregister_cell_runner(HARNESS)


def _spec(cell_id: str, behavior: str = "ok", value: float = 1.0,
          faults: dict | None = None) -> CellSpec:
    return CellSpec(experiment_id=HARNESS, cell_id=cell_id, scale=1,
                    params={"behavior": behavior, "value": value},
                    faults=faults)


def _fast(**overrides) -> SupervisorConfig:
    """A supervisor config tuned so failing tests stay fast."""
    settings = dict(timeout=10.0, max_retries=1, backoff_base=0.01,
                    backoff_cap=0.05, heartbeat=0.02)
    settings.update(overrides)
    return SupervisorConfig(**settings)


def test_registering_an_existing_harness_is_refused():
    from repro.errors import ExperimentError

    with pytest.raises(ExperimentError, match="already registered"):
        register_cell_runner(HARNESS, _behaving_cell)


def test_healthy_cells_are_bit_identical_to_serial():
    specs = [_spec(f"c{i}", value=float(i)) for i in range(4)]
    serial = SerialExecutor().run_cells(specs)
    supervised = CellSupervisor(2, _fast()).run_cells(specs)
    assert [r.to_dict() for r, _ in serial] \
        == [r.to_dict() for r, _ in supervised]


def test_worker_death_is_retried_then_quarantined():
    supervisor = CellSupervisor(2, _fast(max_retries=1))
    [(outcome, _wall)] = supervisor.run_cells([_spec("dies", "exit")])
    assert isinstance(outcome, CellFailure)
    assert outcome.kind is FailureKind.WORKER_CRASH
    assert outcome.attempts == 2  # first try + one retry
    assert "retries exhausted" in outcome.message
    assert supervisor.retried_cells == ["dies"]


def test_hung_cell_is_terminated_and_quarantined():
    supervisor = CellSupervisor(1, _fast(timeout=0.3, max_retries=0))
    started = time.monotonic()
    [(outcome, _wall)] = supervisor.run_cells([_spec("hangs", "hang")])
    assert time.monotonic() - started < 30  # never waits the full sleep
    assert isinstance(outcome, CellFailure)
    assert outcome.kind is FailureKind.TIMEOUT
    assert outcome.attempts == 1


def test_reported_error_quarantines_without_retry():
    supervisor = CellSupervisor(1, _fast(max_retries=3))
    [(outcome, _wall)] = supervisor.run_cells([_spec("raises", "raise")])
    assert isinstance(outcome, CellFailure)
    assert outcome.kind is FailureKind.FAULT
    assert outcome.attempts == 1  # deterministic: retrying is wasted work
    assert "deliberate cell error" in outcome.message
    assert supervisor.retried_cells == []


def test_worker_kill_chaos_recovers_on_retry():
    chaos = fault_params(FaultConfig(enabled=True, worker_kill_rate=1.0))
    spec = _spec("chaotic", faults=chaos)
    supervisor = CellSupervisor(1, _fast(max_retries=2))
    [(outcome, _wall)] = supervisor.run_cells([spec])
    # Attempt 1 is always killed (rate 1.0); worker_kill_max_attempt=1
    # spares attempt 2, so the retry recovers the cell.
    assert isinstance(outcome, RunResult)
    assert not outcome.crashed
    assert supervisor.retried_cells == ["chaotic"]


def test_mixed_sweep_completes_with_explicit_holes():
    sweep = Sweep(HARNESS, (
        _spec("c0", value=0.0),
        _spec("c1", "exit"),
        _spec("c2", value=2.0),
    ))
    executor = CellSupervisor(2, _fast(max_retries=1))
    outcome = run_sweep(sweep, executor=executor)

    serial = run_sweep(Sweep(HARNESS, (sweep.cells[0], sweep.cells[2])))
    assert outcome.results["c0"] == serial.results["c0"]
    assert outcome.results["c2"] == serial.results["c2"]

    assert list(outcome.failures) == ["c1"]
    failure = outcome.failures["c1"]
    assert failure.kind is FailureKind.WORKER_CRASH
    hole = outcome.results["c1"]
    assert hole.crashed
    assert "CellFailure[worker-crash]" in hole.crash_reason
    stats = outcome.stats
    assert (stats.executed, stats.quarantined, stats.retried) == (2, 1, 1)


def test_completed_cells_are_checkpointed_quarantined_are_not(tmp_path):
    store = ResultStore(tmp_path)
    sweep = Sweep(HARNESS, (
        _spec("good", value=1.0),
        _spec("bad", "exit"),
    ))
    executor = CellSupervisor(2, _fast(max_retries=0))
    run_sweep(sweep, executor=executor, store=store)
    assert store.has_cell(sweep.cells[0])
    assert not store.has_cell(sweep.cells[1])  # a later --resume retries

    # And the resume serves the survivor from cache, retrying the hole.
    outcome = run_sweep(sweep, executor=executor, store=store, resume=True)
    assert outcome.cached == 1
    assert outcome.cached_wall_seconds["good"] >= 0.0
    assert list(outcome.failures) == ["bad"]


def test_empty_sweep_is_a_noop():
    assert CellSupervisor(2, _fast()).run_cells([]) == []


def test_make_executor_selects_supervision():
    assert isinstance(make_executor(1, timeout=5.0), CellSupervisor)
    assert isinstance(make_executor(2, retries=0), CellSupervisor)
    assert isinstance(make_executor(2, supervise=True), CellSupervisor)
    supervisor = make_executor(4, timeout=2.5, retries=7)
    assert supervisor.config.timeout == 2.5
    assert supervisor.config.max_retries == 7


def test_supervisor_config_validation():
    with pytest.raises(ConfigError):
        SupervisorConfig(timeout=0.0).validate()
    with pytest.raises(ConfigError):
        SupervisorConfig(max_retries=-1).validate()
    with pytest.raises(ConfigError):
        SupervisorConfig(backoff_factor=0.5).validate()
    with pytest.raises(ConfigError):
        SupervisorConfig(heartbeat=0.0).validate()
    with pytest.raises(ConfigError):
        CellSupervisor(0)


def test_backoff_is_capped():
    config = SupervisorConfig(backoff_base=1.0, backoff_factor=2.0,
                              backoff_cap=3.0)
    assert config.backoff(1) == 1.0
    assert config.backoff(2) == 2.0
    assert config.backoff(3) == 3.0  # capped, not 4.0
    assert config.backoff(10) == 3.0
