"""The ``--profile`` harness: ambient flag, report placement, and the
results-stay-identical guarantee."""

import pytest

from repro import profiling
from repro.cli import build_parser
from repro.exec.executor import ParallelExecutor, execute_cell
from repro.exec.spec import CellSpec
from repro.exec.store import cell_key
from repro.exec.supervisor import CellSupervisor
from repro.experiments import registry
from repro.experiments.runner import ConfigName, RunResult


def busy_cell(spec: CellSpec) -> RunResult:
    # Enough work for cProfile to have something to report.
    total = sum(i * i for i in range(5000))
    return RunResult(
        config=ConfigName.BASELINE,
        runtime=float(spec.params["value"]),
        crashed=False,
        counters={"value": spec.params["value"], "busy": total},
    )


@pytest.fixture(autouse=True)
def _fake_harness(monkeypatch):
    monkeypatch.setitem(registry.CELL_RUNNERS, "fake-prof", busy_cell)
    yield
    profiling.set_profiling(None)


def _spec(i: int = 0) -> CellSpec:
    return CellSpec(experiment_id="fake-prof", cell_id=f"c{i}", scale=1,
                    params={"value": i})


def test_profiling_is_off_by_default(tmp_path):
    assert profiling.profiling_dir() is None
    execute_cell(_spec())
    assert list(tmp_path.iterdir()) == []


def test_set_profiling_returns_previous_value(tmp_path):
    assert profiling.set_profiling(tmp_path) is None
    assert profiling.profiling_dir() == str(tmp_path)
    assert profiling.set_profiling(None) == str(tmp_path)
    assert profiling.profiling_dir() is None


def test_report_path_mirrors_the_store_record_name(tmp_path):
    profiling.set_profiling(tmp_path)
    spec = _spec(3)
    path = profiling.profile_report_path(spec)
    assert path == tmp_path / "fake-prof" / f"c3-{cell_key(spec)[:12]}.txt"


def test_report_path_requires_profiling_enabled():
    with pytest.raises(RuntimeError):
        profiling.profile_report_path(_spec())


def test_execute_cell_persists_a_report(tmp_path):
    profiling.set_profiling(tmp_path)
    spec = _spec(1)
    result = execute_cell(spec)
    report = profiling.profile_report_path(spec).read_text()
    assert "profile: experiment=fake-prof cell=c1" in report
    assert "busy_cell" in report
    assert "-- by call count --" in report
    assert result.counters["value"] == 1


def test_profiled_results_are_identical(tmp_path):
    spec = _spec(2)
    plain = execute_cell(spec)
    profiling.set_profiling(tmp_path)
    profiled = execute_cell(spec)
    assert profiled.to_dict() == plain.to_dict()


def test_parallel_executor_profiles_every_worker_cell(tmp_path):
    profiling.set_profiling(tmp_path)
    specs = [_spec(i) for i in range(3)]
    results = ParallelExecutor(jobs=2).run_cells(specs)
    assert [r.counters["value"] for r, _ in results] == [0, 1, 2]
    for spec in specs:
        assert profiling.profile_report_path(spec).exists()


def test_supervisor_profiles_every_worker_cell(tmp_path):
    profiling.set_profiling(tmp_path)
    specs = [_spec(i) for i in range(2)]
    results = CellSupervisor(jobs=2).run_cells(specs)
    assert [r.counters["value"] for r, _ in results] == [0, 1]
    for spec in specs:
        assert profiling.profile_report_path(spec).exists()


def test_cli_accepts_the_profile_flag():
    args = build_parser().parse_args(["run", "fig9", "--profile"])
    assert args.profile is True
    args = build_parser().parse_args(["run", "fig9"])
    assert args.profile is False
