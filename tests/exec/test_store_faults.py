"""Injected store crashes: every crash point, ledger convergence, CLI.

The write path's four seeded fault points (crash before rename, crash
after rename, torn record, lock stall) are driven here both directly
through :class:`ResultStore` and end-to-end through the CLI's
``--store-faults``, asserting the recovery contract: a crashed or torn
write never surfaces as a wrong read, the strike ledger makes resume
loops converge, and ``store verify`` / ``gc`` / ``compact`` repair the
debris.
"""

import json
import multiprocessing
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.exec.spec import CellSpec
from repro.exec.store import (
    QuarantineReason,
    ResultStore,
    STORE_CRASH_EXIT,
    cell_key,
)
from repro.experiments.runner import ConfigName, RunResult
from repro.faults.plan import (
    StoreFaultConfig,
    StoreFaultPoint,
    should_strike_store,
)

pytest.importorskip("fcntl")


def _spec(cell_id: str = "cell") -> CellSpec:
    return CellSpec(experiment_id="exp", cell_id=cell_id, scale=4,
                    config="baseline", params={"actual_mib": 512})


def _result() -> RunResult:
    return RunResult(config=ConfigName.BASELINE, runtime=3.5,
                     crashed=False, counters={"disk_ops": 9})


def _faults(**rates) -> StoreFaultConfig:
    return StoreFaultConfig(enabled=True, seed=1, **rates)


def _ledger_lines(root) -> list[str]:
    ledger = Path(root) / "locks" / "strike-ledger.log"
    if not ledger.exists():
        return []
    return ledger.read_text().splitlines()


def _write_with_faults(root: str, rates: dict) -> None:
    """Subprocess target: one faulted cell write (may os._exit(47))."""
    store = ResultStore(root, faults=_faults(**rates))
    store.store_cell(_spec(), _result(), wall_seconds=0.5)


# ----------------------------------------------------------------------
# the strike function
# ----------------------------------------------------------------------

def test_should_strike_is_pure_in_seed_point_and_key():
    config = _faults(torn_write_rate=0.5)
    point = StoreFaultPoint.TORN_WRITE
    draws = {key: should_strike_store(config, point, key, 0)
             for key in (f"{i:064x}" for i in range(64))}
    again = {key: should_strike_store(config, point, key, 0)
             for key in draws}
    assert draws == again  # same (seed, point, key) -> same verdict
    assert any(draws.values()) and not all(draws.values())


def test_strikes_stop_at_max_strikes_and_when_disabled():
    config = _faults(torn_write_rate=1.0)
    point = StoreFaultPoint.TORN_WRITE
    assert should_strike_store(config, point, "k", 0)
    assert not should_strike_store(config, point, "k",
                                   config.max_strikes)
    off = StoreFaultConfig()  # disabled
    assert not should_strike_store(off, point, "k", 0)
    zero = _faults()  # enabled, every rate 0
    assert not should_strike_store(zero, point, "k", 0)


def test_chaos_preset_arms_every_point():
    config = StoreFaultConfig.chaos(rate=0.25, seed=7)
    config.validate()
    assert config.enabled
    assert all(config.rate_for(point) == 0.25
               for point in StoreFaultPoint)


# ----------------------------------------------------------------------
# crash points, one by one
# ----------------------------------------------------------------------

def test_torn_write_is_quarantined_then_the_retry_converges(tmp_path):
    store = ResultStore(tmp_path, faults=_faults(torn_write_rate=1.0))
    spec = _spec()
    path = store.store_cell(spec, _result(), wall_seconds=0.5)
    with pytest.raises(ValueError):
        json.loads(path.read_text())  # the record really landed torn

    assert store.load_cell(spec) is None  # quarantined, not an error
    [entry] = store.quarantined()
    assert entry["reason"] == QuarantineReason.BAD_JSON.value

    # The strike is in the ledger, so the rewrite is not torn again.
    assert _ledger_lines(tmp_path) == [
        f"{StoreFaultPoint.TORN_WRITE.value}\t{cell_key(spec)}"]
    store.store_cell(spec, _result(), wall_seconds=0.5)
    assert store.load_cell(spec) == _result()
    assert len(_ledger_lines(tmp_path)) == 1  # spent, never re-struck


def test_crash_before_rename_leaves_only_a_tmp_orphan(tmp_path):
    root = str(tmp_path)
    proc = multiprocessing.Process(
        target=_write_with_faults,
        args=(root, {"crash_before_rename_rate": 1.0}))
    proc.start()
    proc.join(timeout=60)
    assert proc.exitcode == STORE_CRASH_EXIT

    store = ResultStore(root)
    assert not store.cell_path(_spec()).exists()
    assert store.verify().tmp_orphans == 1
    # The orphan postdates the last write (the dead writer's own lock
    # stamp), so gc conservatively keeps it...
    assert store.gc().tmp_removed == 0

    # ...the resume write (same faults: ledger says the strike is
    # spent) lands the record, and only then is the orphan garbage.
    retry = ResultStore(root, faults=_faults(crash_before_rename_rate=1.0))
    retry.store_cell(_spec(), _result(), wall_seconds=0.5)
    assert retry.load_cell(_spec()) == _result()
    assert store.gc().tmp_removed == 1
    assert store.verify().tmp_orphans == 0


def test_crash_after_rename_still_lands_the_record(tmp_path):
    root = str(tmp_path)
    proc = multiprocessing.Process(
        target=_write_with_faults,
        args=(root, {"crash_after_rename_rate": 1.0}))
    proc.start()
    proc.join(timeout=60)
    assert proc.exitcode == STORE_CRASH_EXIT

    # The rename beat the crash: a fresh store reads the full record.
    store = ResultStore(root)
    assert store.load_cell(_spec()) == _result()
    assert store.verify().ok


def test_lock_stall_delays_but_never_corrupts(tmp_path):
    store = ResultStore(
        tmp_path, faults=_faults(lock_stall_rate=1.0,
                                 lock_stall_seconds=0.01))
    store.store_cell(_spec(), _result(), wall_seconds=0.5)
    assert store.load_cell(_spec()) == _result()
    assert _ledger_lines(tmp_path) == [
        f"{StoreFaultPoint.LOCK_STALL.value}\t{cell_key(_spec())}"]


# ----------------------------------------------------------------------
# the store CLI
# ----------------------------------------------------------------------

def test_store_cli_verify_gc_compact_exit_codes(tmp_path, capsys):
    root = str(tmp_path)
    store = ResultStore(root)
    store.store_cell(_spec("good"), _result(), wall_seconds=0.5)
    bad = store.store_cell(_spec("bad"), _result(), wall_seconds=0.5)
    bad.write_text("{ torn")

    assert main(["store", "verify", "--results-dir", root]) == 1
    assert "CORRUPT" in capsys.readouterr().err
    assert bad.exists()  # plain verify never moves records

    assert main(["store", "verify", "--results-dir", root,
                 "--quarantine"]) == 1
    assert not bad.exists()
    assert main(["store", "verify", "--results-dir", root]) == 0
    out = capsys.readouterr().out
    assert "1 quarantined" in out

    assert main(["store", "gc", "--results-dir", root]) == 0
    assert main(["store", "compact", "--results-dir", root]) == 0
    assert not (tmp_path / "quarantine").exists()
    assert main(["store", "verify", "--results-dir", root]) == 0


def test_run_store_flags_require_a_results_dir():
    assert main(["run", "fig3", "--scale", "32",
                 "--store-faults", "0.5"]) == 1
    assert main(["run", "fig3", "--scale", "32", "--verify-store"]) == 1


def test_cli_crash_injection_loop_recovers_bit_identical(tmp_path):
    """The CI crash-recovery contract, end to end at test scale: sweep
    under ``--store-faults`` until a run survives, repair, and the
    recovered figure must be byte-identical to an uninjected run's."""
    env = dict(os.environ, PYTHONPATH="src")
    ref = str(tmp_path / "ref")
    injected = str(tmp_path / "injected")
    assert main(["run", "fig3", "--scale", "32",
                 "--results-dir", ref]) == 0

    crashes = 0
    for _attempt in range(12):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "run", "fig3",
             "--scale", "32", "--results-dir", injected, "--resume",
             "--store-faults", "0.5"],
            cwd="/root/repo", env=env, capture_output=True, timeout=300)
        assert proc.returncode in (0, STORE_CRASH_EXIT), (
            proc.returncode, proc.stderr.decode()[-500:])
        if proc.returncode == 0:
            break
        crashes += 1
    else:
        pytest.fail("injected sweep never survived within 12 attempts")
    assert crashes > 0, "no crash point ever struck: injection inert"
    assert _ledger_lines(injected)

    # Repair: quarantine what the last (surviving) run may have torn,
    # re-run the now-spent sweep, and the store must verify clean.
    main(["store", "verify", "--results-dir", injected, "--quarantine"])
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "run", "fig3",
         "--scale", "32", "--results-dir", injected, "--resume",
         "--store-faults", "0.5"],
        cwd="/root/repo", env=env, capture_output=True, timeout=300)
    assert proc.returncode == 0, proc.stderr.decode()[-500:]
    assert main(["store", "verify", "--results-dir", injected]) == 0

    ref_record = json.loads((Path(ref) / "figures" / "fig03.json"
                             ).read_text())
    got_record = json.loads((Path(injected) / "figures" / "fig03.json"
                             ).read_text())
    assert got_record["figure"] == ref_record["figure"]
    assert got_record["cell_keys"] == ref_record["cell_keys"]
