"""Versioned JSON round trips for results, phases, figures, timelines."""

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.runner import (
    ConfigName,
    FigureResult,
    PhaseMark,
    RunResult,
    SweepStats,
)
from repro.metrics.timeline import Timeline


def _timeline() -> Timeline:
    timeline = Timeline()
    timeline.record(0.0, "cache", 10.0)
    timeline.record(1.0, "cache", 12.0)
    timeline.record(1.0, "tracked", 5.0)
    return timeline


def _result() -> RunResult:
    return RunResult(
        config=ConfigName.VSWAPPER,
        runtime=3.25,
        crashed=False,
        counters={"disk_ops": 7, "false_reads": 0},
        phases=[
            PhaseMark("iteration-start", {}, 0.0, {"disk_ops": 0}),
            PhaseMark("iteration-end", {"n": 1}, 3.25, {"disk_ops": 7}),
        ],
        timeline=_timeline(),
        degraded=True,
    )


def test_phase_mark_round_trip():
    mark = PhaseMark("alloc-start", {"pages": 100}, 2.5, {"disk_ops": 3})
    assert PhaseMark.from_dict(mark.to_dict()) == mark


def test_run_result_round_trip_equality():
    result = _result()
    assert RunResult.from_dict(result.to_dict()) == result


def test_crashed_result_round_trip():
    result = RunResult(
        config=ConfigName.BASELINE, runtime=None, crashed=True,
        counters={}, crash_reason="FaultError: injected")
    restored = RunResult.from_dict(result.to_dict())
    assert restored == result
    assert restored.status == "crashed"


def test_timeline_opt_out():
    data = _result().to_dict(include_timeline=False)
    assert data["timeline"] is None
    assert RunResult.from_dict(data).timeline is None


def test_timeline_round_trip():
    timeline = _timeline()
    restored = Timeline.from_dict(timeline.to_dict())
    assert restored == timeline
    assert restored.series("cache") == ([0.0, 1.0], [10.0, 12.0])


def test_frozen_timeline_still_round_trips():
    timeline = _timeline()
    timeline.register("cache", lambda: 0.0)
    timeline.freeze()
    assert Timeline.from_dict(timeline.to_dict()) == timeline


def test_figure_result_round_trip():
    figure = FigureResult(
        "fig05+fig11",
        {"baseline": {"512": {"runtime": 2.0, "crashed": False}}},
        "rendered table",
        stats=SweepStats("fig05+fig11", cells=4, executed=4, cached=0),
    )
    restored = FigureResult.from_dict(figure.to_dict())
    assert restored == figure          # stats excluded from equality
    assert restored.stats is None      # ...and from serialization


def test_everything_is_actually_json():
    blob = json.dumps(_result().to_dict())
    assert RunResult.from_dict(json.loads(blob)) == _result()


@pytest.mark.parametrize("cls", [PhaseMark, RunResult, FigureResult])
def test_schema_mismatch_refused(cls):
    with pytest.raises(ExperimentError):
        cls.from_dict({"schema": 999})
