"""Exception hierarchy contracts."""

import pytest

from repro import errors


def test_everything_derives_from_repro_error():
    for name in ("ConfigError", "SimulationError", "DiskError",
                 "MemoryError_", "GuestError", "GuestOomKill",
                 "HostError", "ConsistencyError", "ExperimentError",
                 "FaultError", "DegradedError"):
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError)


def test_degraded_error_is_a_fault_error():
    assert issubclass(errors.DegradedError, errors.FaultError)


def test_full_hierarchy_catchable_via_repro_error():
    """Every public exception class in the module is raisable and
    caught by a single ``except ReproError``."""
    classes = [
        cls for cls in vars(errors).values()
        if isinstance(cls, type) and issubclass(cls, errors.ReproError)
    ]
    assert len(classes) >= 11  # base + 10 concrete kinds
    for cls in classes:
        try:
            raise cls("injected")
        except errors.ReproError as caught:
            assert isinstance(caught, cls)


def test_oom_kill_is_a_guest_error():
    assert issubclass(errors.GuestOomKill, errors.GuestError)


def test_oom_kill_carries_pid():
    exc = errors.GuestOomKill("killed", pid=42)
    assert exc.pid == 42
    assert errors.GuestOomKill("killed").pid is None


def test_memory_error_does_not_shadow_builtin():
    assert errors.MemoryError_ is not MemoryError
    with pytest.raises(errors.ReproError):
        raise errors.MemoryError_("boom")


def test_single_except_catches_library_failures():
    for cls in (errors.DiskError, errors.HostError,
                errors.ConsistencyError):
        try:
            raise cls("x")
        except errors.ReproError:
            pass
