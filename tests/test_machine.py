"""Machine assembly and lifecycle."""

import pytest

from repro.config import MachineConfig, VSwapperConfig
from repro.errors import ConfigError
from repro.machine import Machine, build_latency_model
from repro.disk.latency import HddLatencyModel, SsdLatencyModel
from repro.config import DiskConfig
from tests.conftest import small_machine_config, small_vm_config


def test_default_machine_builds():
    machine = Machine(MachineConfig())
    assert machine.now == 0.0
    assert machine.frames.free > 0


def test_create_vm_wires_guest_and_hypervisor(machine):
    vm = machine.create_vm(small_vm_config())
    assert vm.guest is not None
    assert vm in machine.hypervisor.vms
    assert vm.image.size_blocks > 0


def test_vm_ids_and_regions_distinct(machine):
    a = machine.create_vm(small_vm_config(name="a"))
    b = machine.create_vm(small_vm_config(name="b"))
    assert a.vm_id != b.vm_id
    assert a.image.region.base_sector != b.image.region.base_sector
    assert a.qemu.base_page != b.qemu.base_page


def test_latency_model_selection():
    assert isinstance(build_latency_model(DiskConfig()), HddLatencyModel)
    assert isinstance(
        build_latency_model(DiskConfig(kind="ssd")), SsdLatencyModel)
    with pytest.raises(ConfigError):
        build_latency_model(DiskConfig(kind="tape"))


def test_static_balloon_applied_at_creation(machine):
    config = small_vm_config()
    config = type(config)(**{**config.__dict__,
                             "static_balloon_pages": 256})
    vm = machine.create_vm(config)
    assert vm.guest.balloon_size == 256


def test_boot_guest_resets_measurement_state(machine):
    vm = machine.create_vm(small_vm_config(resident_limit_mib=4))
    machine.boot_guest(vm)
    assert vm.counters.snapshot()["host_evictions"] == 0
    assert vm.costs.total() == 0.0
    assert machine.disk.stats.requests == 0
    # ...but the physical state (stragglers in swap) persists.
    assert len(vm.swap_slots) > 0
    assert len(vm.guest.free_list) > 0


def test_boot_guest_fraction(machine):
    vm_full = machine.create_vm(small_vm_config(name="f"))
    vm_half = machine.create_vm(small_vm_config(name="h"))
    machine.boot_guest(vm_full, fraction=1.0)
    machine.boot_guest(vm_half, fraction=0.3)
    assert len(vm_half.content) < len(vm_full.content)


def test_aggregate_counters(machine):
    a = machine.create_vm(small_vm_config(name="a"))
    b = machine.create_vm(small_vm_config(name="b"))
    a.counters.disk_ops = 3
    b.counters.disk_ops = 4
    assert machine.aggregate_counters()["disk_ops"] == 7


def test_run_until(machine):
    machine.engine.schedule(5.0, lambda: None)
    machine.run(until=2.0)
    assert machine.now == 2.0


def test_host_root_region_bounds_vm_count():
    config = small_machine_config(
        hypervisor_code_pages=Machine.HOST_ROOT_PAGES // 2 + 1)
    machine = Machine(config)
    machine.create_vm(small_vm_config(name="first"))
    with pytest.raises(ConfigError):
        machine.create_vm(small_vm_config(name="second"))


def test_boot_guest_is_repeatable(machine):
    vm = machine.create_vm(small_vm_config(resident_limit_mib=4))
    machine.boot_guest(vm)
    swapped_first = len(vm.swap_slots)
    machine.boot_guest(vm)  # second uptime epoch
    assert len(vm.swap_slots) >= swapped_first // 2
    assert vm.costs.total() == 0.0
