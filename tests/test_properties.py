"""Cross-cutting property-based tests on the integrated stack."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import VSwapperConfig
from repro.core.preventer import FalseReadsPreventer, OverwriteVerdict
from repro.guest.kernel import Transfer
from repro.machine import Machine
from repro.mem.page import ZERO
from repro.sim.engine import Engine
from repro.sim.ops import WritePattern
from tests.conftest import small_machine_config, small_vm_config


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 40),
                          st.sampled_from(list(WritePattern)),
                          st.floats(min_value=0, max_value=0.01)),
                max_size=60))
def test_preventer_state_machine_never_leaks(events):
    """Any interleaving of overwrites keeps the buffer count within
    the cap and every buffer findable/closable."""
    config = VSwapperConfig(enable_preventer=True, preventer_max_pages=8)
    preventer = FalseReadsPreventer(config)
    now = 0.0
    for gpa, pattern, dt in events:
        now += dt
        verdict = preventer.classify_overwrite(gpa, pattern, now)
        assert preventer.pages_under_emulation <= 8
        if verdict is OverwriteVerdict.BUFFERED:
            assert preventer.is_emulated(gpa)
        else:
            assert not preventer.is_emulated(gpa)
        preventer.expired(now)
        assert preventer.pages_under_emulation <= 8
    remaining = preventer.close_all()
    assert preventer.pages_under_emulation == 0
    assert len(set(remaining)) == len(remaining)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=100.0),
                min_size=1, max_size=40))
def test_engine_never_goes_backwards(delays):
    engine = Engine()
    seen = []
    for delay in delays:
        engine.schedule(delay, lambda: seen.append(engine.now))
    engine.run()
    assert seen == sorted(seen)
    assert len(seen) == len(delays)


@settings(max_examples=10, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.integers(0, 511)),
                min_size=1, max_size=200))
def test_hypervisor_access_sequences_conserve_frames(ops):
    """Arbitrary touch/overwrite sequences under pressure keep the
    frame pool consistent with per-VM residency."""
    machine = Machine(small_machine_config())
    vm = machine.create_vm(small_vm_config(resident_limit_mib=1))
    hyp = machine.hypervisor
    from repro.mem.page import AnonContent
    for is_write, page in ops:
        gpa = 0x100 + page
        if is_write:
            hyp.overwrite_page(vm, gpa, AnonContent.fresh(),
                               WritePattern.FULL_SEQUENTIAL)
        else:
            hyp.touch_page(vm, gpa)
        accounted = (vm.ept.resident_pages + len(vm.qemu.resident)
                     + len(vm.swap_cache))
        assert machine.frames.used == accounted
        assert vm.resident_pages <= vm.resident_limit
        # A page is never both resident and swapped.
        assert not (vm.ept.is_present(gpa) and gpa in vm.swap_slots)


@settings(max_examples=10, deadline=None)
@given(st.lists(st.integers(0, 255), min_size=1, max_size=150),
       st.booleans())
def test_mapper_consistency_under_random_io(blocks, use_mapper):
    """Random reads/writes over a small block space never violate the
    tracked-page == image-block invariant (the hypervisor self-checks
    on every refault and raises ConsistencyError if broken)."""
    machine = Machine(small_machine_config())
    vswapper = (VSwapperConfig.mapper_only() if use_mapper
                else VSwapperConfig.off())
    vm = machine.create_vm(small_vm_config(
        vswapper=vswapper, resident_limit_mib=1))
    hyp = machine.hypervisor
    for i, block in enumerate(blocks):
        gpa = 0x100 + (block % 64)
        if i % 3 == 0:
            if not vm.ept.is_present(gpa):
                hyp.touch_page(vm, gpa, write=True)
            hyp.virtio_write(vm, [Transfer(block, gpa)])
        else:
            hyp.virtio_read(vm, [Transfer(block, gpa)])
    if use_mapper:
        # Every still-tracked resident page matches its block.
        for gpa in vm.ept.present_gpas():
            if vm.mapper.is_tracked_resident(gpa):
                assert vm.image.matches(
                    vm.mapper.block_of(gpa), vm.content_of(gpa))


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_fault_injection_preserves_determinism(seed):
    """Same seed + same FaultPlan => bit-identical counters across two
    runs: injection is part of the deterministic schedule, not noise."""
    from repro.config import FaultConfig, MachineConfig
    from repro.errors import ReproError

    def fingerprint():
        base = small_machine_config(swap_writeback_batch_pages=16)
        faults = FaultConfig(
            enabled=True,
            disk_transient_error_rate=0.01,
            disk_latency_spike_rate=0.01,
            disk_torn_write_rate=0.01,
            swap_read_error_rate=0.01,
            swap_slot_corruption_rate=0.001,
            mapper_invalidation_rate=0.05,
            mapper_breaker_threshold=3,
        )
        machine = Machine(MachineConfig(
            host=base.host, disk=base.disk, seed=seed, faults=faults))
        vm = machine.create_vm(small_vm_config(
            vswapper=VSwapperConfig.mapper_only(), resident_limit_mib=1))
        hyp = machine.hypervisor
        trace = []
        for i in range(800):
            try:
                if i % 5 == 0:
                    hyp.virtio_read(
                        vm, [Transfer(i % 128, 0x100 + (i * 7) % 512)])
                else:
                    hyp.touch_page(vm, 0x100 + (i * 7) % 512,
                                   write=(i % 2 == 0))
            except ReproError as error:
                trace.append((i, type(error).__name__))
        return (vm.counters.snapshot(), machine.disk.stats.requests,
                machine.faults.counters.snapshot(), vm.degraded, trace)

    assert fingerprint() == fingerprint()


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_full_stack_determinism_per_seed(seed):
    """Two identical machines given the same seed behave identically."""
    from repro.config import MachineConfig

    def fingerprint():
        base = small_machine_config(reclaim_noise=0.1)
        machine = Machine(MachineConfig(
            host=base.host, disk=base.disk, seed=seed))
        vm = machine.create_vm(small_vm_config(resident_limit_mib=2))
        hyp = machine.hypervisor
        for i in range(1500):
            hyp.touch_page(vm, 0x100 + (i * 7) % 1024, write=(i % 2 == 0))
        return vm.counters.snapshot(), machine.disk.stats.requests

    assert fingerprint() == fingerprint()
