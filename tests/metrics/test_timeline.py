"""Timeline gauges and series extraction."""

import pytest

from repro.errors import ConfigError
from repro.metrics.timeline import Timeline


def test_record_and_series():
    timeline = Timeline()
    timeline.record(1.0, "cache", 10)
    timeline.record(2.0, "cache", 20)
    timeline.record(1.5, "other", 5)
    times, values = timeline.series("cache")
    assert times == [1.0, 2.0]
    assert values == [10, 20]


def test_registered_gauges_sampled():
    timeline = Timeline()
    state = {"v": 1}
    timeline.register("gauge", lambda: state["v"])
    timeline.sample_all(0.0)
    state["v"] = 5
    timeline.sample_all(1.0)
    times, values = timeline.series("gauge")
    assert times == [0.0, 1.0]
    assert values == [1.0, 5.0]


def test_series_names_in_first_appearance_order():
    timeline = Timeline()
    timeline.record(0.0, "b", 1)
    timeline.record(0.0, "a", 1)
    timeline.record(1.0, "b", 2)
    assert timeline.series_names() == ["b", "a"]


def test_missing_series_is_empty():
    times, values = Timeline().series("nope")
    assert times == []
    assert values == []


def test_duplicate_register_different_gauge_raises():
    timeline = Timeline()
    timeline.register("gauge", lambda: 1)
    with pytest.raises(ConfigError, match="already registered"):
        timeline.register("gauge", lambda: 2)


def test_duplicate_register_same_gauge_is_idempotent():
    timeline = Timeline()

    def gauge():
        return 3

    timeline.register("gauge", gauge)
    timeline.register("gauge", gauge)
    timeline.sample_all(0.0)
    _times, values = timeline.series("gauge")
    assert values == [3.0]


def test_register_again_after_freeze_is_allowed():
    timeline = Timeline()
    timeline.register("gauge", lambda: 1)
    timeline.freeze()
    timeline.register("gauge", lambda: 2)
    timeline.sample_all(0.0)
    _times, values = timeline.series("gauge")
    assert values == [2.0]
