"""Plain-text table rendering."""

import pytest

from repro.metrics.report import Table, format_table


def test_render_contains_title_header_and_cells():
    table = Table("My Title", ["col1", "col2"])
    table.add_row("a", 1)
    table.add_row("bb", 2.5)
    text = table.render()
    assert "My Title" in text
    assert "col1" in text
    assert "bb" in text
    assert "2.50" in text  # floats rendered with 2 decimals


def test_columns_align():
    table = Table("t", ["name", "value"])
    table.add_row("short", 1)
    table.add_row("much-longer-name", 2)
    lines = table.render().splitlines()
    data_lines = [l for l in lines if "short" in l or "much-longer" in l]
    value_positions = {l.rstrip()[-1] for l in data_lines}
    assert value_positions == {"1", "2"}
    # Header width accommodates the longest cell.
    assert len(set(len(l) for l in data_lines)) >= 1


def test_row_arity_checked():
    table = Table("t", ["a", "b"])
    with pytest.raises(ValueError):
        table.add_row(1)


def test_format_table_direct():
    text = format_table("title", ["x"], [[1], [2]])
    assert text.count("\n") >= 4
