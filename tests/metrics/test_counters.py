"""Counter snapshots, deltas, and ad-hoc bumps."""

from repro.metrics.counters import Counters


def test_defaults_zero():
    counters = Counters()
    assert counters.stale_reads == 0
    assert counters.disk_ops == 0


def test_snapshot_contains_all_fields():
    counters = Counters()
    snap = counters.snapshot()
    assert "stale_reads" in snap
    assert "swap_sectors_written" in snap
    assert "extra" not in snap


def test_delta_since():
    counters = Counters()
    snap = counters.snapshot()
    counters.stale_reads += 5
    counters.disk_ops += 2
    delta = counters.delta_since(snap)
    assert delta["stale_reads"] == 5
    assert delta["disk_ops"] == 2
    assert delta["false_reads"] == 0


def test_bump_known_field():
    counters = Counters()
    counters.bump("false_reads")
    counters.bump("false_reads", 3)
    assert counters.false_reads == 4


def test_bump_adhoc_goes_to_extra():
    counters = Counters()
    counters.bump("swap_cache_hits", 2)
    assert counters.extra["swap_cache_hits"] == 2
    assert counters.snapshot()["swap_cache_hits"] == 2


def test_delta_tracks_adhoc_counters():
    counters = Counters()
    snap = counters.snapshot()
    counters.bump("weird_metric", 7)
    assert counters.delta_since(snap)["weird_metric"] == 7


def test_merged_with():
    a = Counters()
    b = Counters()
    a.stale_reads = 2
    b.stale_reads = 3
    b.bump("only_in_b", 1)
    merged = a.merged_with(b)
    assert merged["stale_reads"] == 5
    assert merged["only_in_b"] == 1


def test_delta_since_key_missing_from_snapshot_counts_as_zero():
    counters = Counters()
    snap = counters.snapshot()
    counters.bump("appeared_later", 4)
    delta = counters.delta_since(snap)
    assert delta["appeared_later"] == 4


def test_delta_since_key_missing_from_current_is_dropped():
    # A snapshot may carry ad-hoc keys the live counters never bumped
    # (e.g. taken from a different run); delta iterates current keys.
    counters = Counters()
    snap = dict(counters.snapshot(), vanished_key=9)
    delta = counters.delta_since(snap)
    assert "vanished_key" not in delta


def test_delta_since_all_zero_when_nothing_changed():
    counters = Counters()
    counters.stale_reads = 7
    counters.bump("adhoc", 2)
    delta = counters.delta_since(counters.snapshot())
    assert set(delta.values()) == {0}


def test_delta_since_empty_snapshot_equals_current():
    counters = Counters()
    counters.disk_ops = 3
    delta = counters.delta_since({})
    assert delta["disk_ops"] == 3
    assert delta["stale_reads"] == 0


def test_merged_with_extra_only_on_one_side():
    a = Counters()
    a.bump("only_in_a", 5)
    merged = a.merged_with(Counters())
    assert merged["only_in_a"] == 5
    merged_rev = Counters().merged_with(a)
    assert merged_rev["only_in_a"] == 5


def test_merged_with_is_commutative_and_keeps_zero_fields():
    a = Counters()
    b = Counters()
    a.false_reads = 1
    b.bump("adhoc", 2)
    assert a.merged_with(b) == b.merged_with(a)
    assert a.merged_with(b)["silent_swap_writes"] == 0


def test_merged_with_zero_deltas_do_not_vanish():
    a = Counters()
    b = Counters()
    a.bump("adhoc_zero", 0)
    merged = a.merged_with(b)
    assert merged["adhoc_zero"] == 0
