"""Counter snapshots, deltas, and ad-hoc bumps."""

from repro.metrics.counters import Counters


def test_defaults_zero():
    counters = Counters()
    assert counters.stale_reads == 0
    assert counters.disk_ops == 0


def test_snapshot_contains_all_fields():
    counters = Counters()
    snap = counters.snapshot()
    assert "stale_reads" in snap
    assert "swap_sectors_written" in snap
    assert "extra" not in snap


def test_delta_since():
    counters = Counters()
    snap = counters.snapshot()
    counters.stale_reads += 5
    counters.disk_ops += 2
    delta = counters.delta_since(snap)
    assert delta["stale_reads"] == 5
    assert delta["disk_ops"] == 2
    assert delta["false_reads"] == 0


def test_bump_known_field():
    counters = Counters()
    counters.bump("false_reads")
    counters.bump("false_reads", 3)
    assert counters.false_reads == 4


def test_bump_adhoc_goes_to_extra():
    counters = Counters()
    counters.bump("swap_cache_hits", 2)
    assert counters.extra["swap_cache_hits"] == 2
    assert counters.snapshot()["swap_cache_hits"] == 2


def test_delta_tracks_adhoc_counters():
    counters = Counters()
    snap = counters.snapshot()
    counters.bump("weird_metric", 7)
    assert counters.delta_since(snap)["weird_metric"] == 7


def test_merged_with():
    a = Counters()
    b = Counters()
    a.stale_reads = 2
    b.stale_reads = 3
    b.bump("only_in_b", 1)
    merged = a.merged_with(b)
    assert merged["stale_reads"] == 5
    assert merged["only_in_b"] == 1
