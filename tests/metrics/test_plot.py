"""ASCII chart rendering."""

from repro.metrics.plot import ascii_bars, ascii_chart


def test_chart_contains_title_and_legend():
    text = ascii_chart({"a": [1, 2, 3], "b": [3, 2, 1]},
                       title="My Chart", y_label="seconds")
    assert "My Chart" in text
    assert "* a" in text
    assert "o b" in text
    assert "(y: seconds)" in text


def test_chart_bounds_rendered():
    text = ascii_chart({"a": [0.0, 10.0]})
    assert "10.00" in text
    assert "0.00" in text


def test_chart_empty_series():
    assert "(no data)" in ascii_chart({}, title="t")
    assert "(no data)" in ascii_chart({"a": []}, title="t")


def test_chart_constant_series_does_not_crash():
    text = ascii_chart({"flat": [5, 5, 5]})
    assert "flat" in text


def test_chart_single_point():
    text = ascii_chart({"one": [7.0]})
    assert "7.00" in text


def test_chart_mixed_lengths():
    text = ascii_chart({"long": list(range(10)), "short": [1, 2]})
    assert "long" in text and "short" in text


def test_bars_basic():
    text = ascii_bars({"a": 1.0, "bb": 4.0}, title="Bars", unit="s")
    assert "Bars" in text
    lines = text.splitlines()
    bar_a = next(l for l in lines if l.startswith("a "))
    bar_b = next(l for l in lines if l.startswith("bb"))
    assert bar_b.count("#") > bar_a.count("#")
    assert "4.00s" in bar_b


def test_bars_crashed_entry():
    text = ascii_bars({"ok": 2.0, "dead": None})
    assert "(crashed)" in text


def test_bars_all_crashed():
    text = ascii_bars({"dead": None}, title="t")
    assert "(crashed)" in text


def test_chart_for_known_figures():
    from repro.experiments.plots import chart_for
    from repro.experiments.runner import FigureResult
    fig3 = FigureResult("fig03", {"baseline": 10.0, "vswapper": 2.0}, "")
    assert "#" in chart_for(fig3)
    fig9 = FigureResult(
        "fig09",
        {"baseline": {"runtime": [3, 2, 4]},
         "vswapper": {"runtime": [1, 1, 1]}}, "")
    assert "baseline" in chart_for(fig9)
    unknown = FigureResult("table1", {}, "")
    assert chart_for(unknown) is None