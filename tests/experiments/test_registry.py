"""Experiment registry and CLI."""

import pytest

from repro.cli import build_parser, main
from repro.errors import ExperimentError
from repro.experiments.registry import (
    EXPERIMENTS,
    experiment_ids,
    run_experiment,
)

#: Every table/figure in the paper's evaluation must be reproducible.
PAPER_RESULTS = [
    "fig3", "fig4", "fig5", "fig9", "fig10", "fig11", "fig12",
    "fig13", "fig14", "fig15", "table1", "table2",
]


def test_all_paper_results_registered():
    for result_id in PAPER_RESULTS:
        assert result_id in EXPERIMENTS, f"missing {result_id}"


def test_extra_sections_registered():
    assert "sec5.3" in EXPERIMENTS
    assert "sec5.4" in EXPERIMENTS


def test_ablations_registered():
    assert any(k.startswith("ablation-") for k in EXPERIMENTS)


def test_experiment_ids_sorted():
    ids = experiment_ids()
    assert ids == sorted(ids)


def test_unknown_experiment_rejected():
    with pytest.raises(ExperimentError):
        run_experiment("fig99")


def test_run_experiment_table1():
    result = run_experiment("table1")
    assert "Mapper" in result.rendered
    assert result.series["paper"]["sum"][2] == 2383


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig3" in out
    assert "table2" in out


def test_cli_run_table1(capsys):
    assert main(["run", "table1"]) == 0
    out = capsys.readouterr().out
    assert "Preventer" in out
    assert "regenerated" in out


def test_cli_unknown_experiment(capsys):
    assert main(["run", "fig99"]) == 1
    assert "error" in capsys.readouterr().err


def test_cli_parser_defaults():
    args = build_parser().parse_args(["run", "fig3"])
    assert args.scale == 4
