"""Experiment registry and CLI."""

import pytest

from repro.cli import build_parser, main
from repro.errors import ExperimentError
from repro.experiments.registry import (
    CELL_RUNNERS,
    EXPERIMENTS,
    cell_count,
    cell_runner,
    describe,
    experiment_ids,
    run_experiment,
)

#: Every table/figure in the paper's evaluation must be reproducible.
PAPER_RESULTS = [
    "fig3", "fig4", "fig5", "fig9", "fig10", "fig11", "fig12",
    "fig13", "fig14", "fig15", "table1", "table2",
]


def test_all_paper_results_registered():
    for result_id in PAPER_RESULTS:
        assert result_id in EXPERIMENTS, f"missing {result_id}"


def test_extra_sections_registered():
    assert "sec5.3" in EXPERIMENTS
    assert "sec5.4" in EXPERIMENTS


def test_ablations_registered():
    assert any(k.startswith("ablation-") for k in EXPERIMENTS)


def test_experiment_ids_sorted():
    ids = experiment_ids()
    assert ids == sorted(ids)


def test_unknown_experiment_rejected():
    with pytest.raises(ExperimentError):
        run_experiment("fig99")


def test_run_experiment_table1():
    result = run_experiment("table1")
    assert "Mapper" in result.rendered
    assert result.series["paper"]["sum"][2] == 2383


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig3" in out
    assert "table2" in out


def test_cli_run_table1(capsys):
    assert main(["run", "table1"]) == 0
    out = capsys.readouterr().out
    assert "Preventer" in out
    assert "regenerated" in out


def test_cli_unknown_experiment(capsys):
    assert main(["run", "fig99"]) == 1
    assert "error" in capsys.readouterr().err


def test_cli_parser_defaults():
    args = build_parser().parse_args(["run", "fig3"])
    assert args.scale == 4
    assert args.jobs == 1
    assert args.results_dir is None
    assert args.resume is False
    assert args.timeout is None
    assert args.retries is None
    assert args.kill_workers == 0.0
    assert args.paranoid is False


def test_cli_supervision_flag_validation():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "fig3", "--timeout", "0"])
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "fig3", "--retries", "-1"])
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "fig3", "--kill-workers", "1.5"])
    args = parser.parse_args(
        ["run", "fig3", "--timeout", "2.5", "--retries", "0",
         "--kill-workers", "0.25", "--paranoid"])
    assert (args.timeout, args.retries) == (2.5, 0)
    assert args.kill_workers == 0.25 and args.paranoid


def test_every_declared_sweep_has_a_cell_runner():
    for definition in EXPERIMENTS.values():
        if definition.build_sweep is None:
            continue
        sweep = definition.build_sweep(scale=8)
        assert sweep.cells, definition.experiment_id
        assert cell_runner(sweep.experiment_id) is \
            CELL_RUNNERS[sweep.experiment_id]


def test_cell_runner_unknown_harness():
    with pytest.raises(ExperimentError):
        cell_runner("no-such-harness")


def test_descriptions_and_cell_counts():
    assert describe("fig9")
    assert cell_count("fig9", scale=8) == 3   # one cell per config
    assert cell_count("fig3", scale=8) == 4
    assert cell_count("table1") == 0          # cell-less static result
    with pytest.raises(ExperimentError):
        describe("fig99")


def test_shared_harnesses_share_cell_identity():
    fig5 = EXPERIMENTS["fig5"].build_sweep(scale=8)
    fig11 = EXPERIMENTS["fig11"].build_sweep(scale=8)
    assert fig5 == fig11  # identical sweeps -> shared cache entries


def test_cli_list_shows_descriptions_and_cell_counts(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "cells=" in out
    for line_start in ("fig3", "table1", "chaos"):
        assert any(line.startswith(line_start)
                   for line in out.splitlines())
    assert describe("fig9") in out


def test_cli_rejects_nonpositive_jobs():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "fig3", "--jobs", "0"])


def test_cli_resume_requires_results_dir(capsys):
    assert main(["run", "fig3", "--resume"]) == 1
    err = capsys.readouterr().err
    assert "error" in err and "--results-dir" in err


def test_cli_run_persists_and_resumes(tmp_path, capsys):
    results_dir = str(tmp_path / "store")
    scale_args = ["--scale", "16", "--results-dir", results_dir]
    assert main(["run", "fig3", *scale_args]) == 0
    first = capsys.readouterr().out
    assert "executed=4 cached=0" in first

    assert main(["run", "fig3", *scale_args, "--resume"]) == 0
    second = capsys.readouterr().out
    assert "executed=0 cached=4" in second
    # A fully-cached resume is labelled, with the stored wall time the
    # cells originally cost (never a near-zero "run time").
    assert "cached, 0 executed" in second
    assert "originally" in second


def test_cli_summary_reports_supervision_counts(capsys):
    assert main(["run", "fig3", "--scale", "16", "--timeout", "300"]) == 0
    out = capsys.readouterr().out
    assert "retried=0 quarantined=0" in out


def test_run_experiment_accepts_exec_kwargs():
    result = run_experiment("table1", executor=None, store=None)
    assert "Mapper" in result.rendered
