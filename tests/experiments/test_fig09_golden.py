"""Golden determinism fixture for the fig9 cell runner.

Pins the complete observable outcome of every Figure 9 configuration --
final counters, the swap-slot map, swap-area layout, engine event count,
iteration durations, and the ResultStore cache key -- as a checked-in
JSON snapshot.  Any hot-path rewrite (array-backed EPT, batched
dispatch, reclaim coarsening) must leave every one of these values
bit-identical; this test is the tripwire guarding every future perf PR.

The snapshot runs at scale 8 -- the same divisor ``REPRO_BENCH_SCALE``
defaults to -- because scale 1 is the paper-sized run (minutes per
cell) and the determinism argument is scale-independent: every code
path the paper's mechanisms exercise (stale reads, false reads, silent
writes, readahead decay, code refaults) fires at scale 8 too.

Regenerate after an *intentional* behaviour change with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/experiments/test_fig09_golden.py

and justify the diff in the PR description.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import pytest

import repro.experiments.runner as runner_module
from repro.exec.store import cell_key
from repro.experiments.fig09 import build_fig09_sweep, fig09_cell
from repro.machine import Machine

GOLDEN_SCALE = 8
GOLDEN_PATH = Path(__file__).parent / "data" / "fig09_golden_scale8.json"


def _digest(value) -> str:
    """Compact bit-exact fingerprint of a large structure.

    The swap-slot map alone runs to tens of thousands of entries per
    cell; checking in a hash keeps the snapshot reviewable while still
    detecting any single-entry divergence.
    """
    canonical = json.dumps(value, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _capture_cell(spec):
    """Run one fig9 cell while capturing the Machine it builds."""
    captured: list[Machine] = []
    original = runner_module.Machine

    def capturing(config):
        machine = original(config)
        captured.append(machine)
        return machine

    runner_module.Machine = capturing
    try:
        result = fig09_cell(spec)
    finally:
        runner_module.Machine = original
    assert len(captured) == 1, "fig09_cell built more than one machine"
    return result, captured[0]


def _snapshot_cell(spec) -> dict:
    result, machine = _capture_cell(spec)
    vm = machine.vms[0]
    swap_area = machine.swap_area
    return {
        "cell_key": cell_key(spec),
        "config": spec.config,
        "runtime": result.runtime,
        "crashed": result.crashed,
        "iteration_durations": result.iteration_durations(),
        "counters": dict(sorted(result.counters.items())),
        # The swap-slot map is the paper's sequentiality state: any
        # reordering of allocations or evictions shows up first in
        # these fingerprints.
        "swap_slots_len": len(vm.swap_slots),
        "swap_slots_sha256": _digest(sorted(map(list,
                                                vm.swap_slots.items()))),
        "swap_cache_sha256": _digest(sorted(map(list,
                                                vm.swap_cache.items()))),
        "swap_clean_sha256": _digest(sorted(map(list,
                                                vm.swap_clean.items()))),
        "pending_swap_sha256": _digest(sorted(map(list,
                                                  vm.pending_swap.items()))),
        "swap_area_used_len": len(swap_area._allocated),
        "swap_area_used_sha256": _digest(sorted(swap_area._allocated)),
        "swap_area_high_watermark": swap_area.high_watermark,
        "resident_pages": vm.resident_pages,
        "ept_present": len(vm.ept),
        "events_dispatched": machine.engine.events_dispatched,
        "final_virtual_time": machine.engine.now,
    }


def _current_snapshot() -> dict:
    sweep = build_fig09_sweep(scale=GOLDEN_SCALE)
    return {
        "scale": GOLDEN_SCALE,
        "cells": {spec.cell_id: _snapshot_cell(spec)
                  for spec in sweep.cells},
    }


def test_fig09_matches_golden_snapshot():
    current = _current_snapshot()
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(current, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"regenerated {GOLDEN_PATH}")
    assert GOLDEN_PATH.exists(), (
        f"golden snapshot missing; regenerate with REPRO_REGEN_GOLDEN=1 "
        f"({GOLDEN_PATH})")
    golden = json.loads(GOLDEN_PATH.read_text())
    assert current["scale"] == golden["scale"]
    assert sorted(current["cells"]) == sorted(golden["cells"])
    for cell_id, got in current["cells"].items():
        want = golden["cells"][cell_id]
        for field in sorted(set(want) | set(got)):
            assert got.get(field) == want.get(field), (
                f"{cell_id}: {field} diverged from the golden snapshot")
