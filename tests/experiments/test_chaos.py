"""The standing chaos suite: graceful degradation, never stale data."""

from repro.config import FaultConfig
from repro.experiments.chaos import FAULT_COUNTERS, run_chaos
from repro.experiments.runner import ConfigName

#: Small but real: the Fig. 3 workload at 1/8 scale.
SCALE = 8


def test_chaos_sweep_covers_the_five_standard_configs():
    result = run_chaos(scale=SCALE, seed=1)
    assert set(result.series) == {c.value for c in ConfigName}


def test_every_cell_resolves_to_a_terminal_status():
    """Acceptance: zero unhandled exceptions -- every injected fault is
    retried, reported as degraded/crashed, or typed at the boundary."""
    result = run_chaos(scale=SCALE, seed=1)
    for config, cell in result.series.items():
        assert cell["status"] in ("ok", "degraded", "crashed"), config
        if cell["status"] == "crashed":
            # Crashes carry a typed, named reason...
            assert cell["crash_reason"], config
            # ...and none of them is a data-consistency violation: the
            # mapper's fallback keeps stale content unreachable.
            assert not cell["crash_reason"].startswith(
                "ConsistencyError"), cell["crash_reason"]
        else:
            assert cell["runtime"] is not None and cell["runtime"] > 0


def test_chaos_run_is_deterministic():
    a = run_chaos(scale=SCALE, seed=3)
    b = run_chaos(scale=SCALE, seed=3)
    assert a.series == b.series


def test_chaos_seeds_change_the_schedule():
    a = run_chaos(scale=SCALE, seed=1)
    b = run_chaos(scale=SCALE, seed=99)
    faults_a = [cell["faults"] for cell in a.series.values()]
    faults_b = [cell["faults"] for cell in b.series.values()]
    assert faults_a != faults_b


def test_faults_actually_fire_somewhere():
    result = run_chaos(scale=SCALE, seed=1)
    total = sum(sum(cell["faults"].values())
                for cell in result.series.values())
    assert total > 0


def test_fault_free_plan_matches_clean_run_statuses():
    quiet = FaultConfig(enabled=True)  # all rates zero, just watchdogs
    result = run_chaos(scale=SCALE, seed=1, fault_config=quiet)
    for config, cell in result.series.items():
        assert cell["status"] == "ok", (config, cell)
        assert all(v == 0 for v in cell["faults"].values())


def test_rendered_table_names_every_config_and_status():
    result = run_chaos(scale=SCALE, seed=1)
    for config, cell in result.series.items():
        assert config in result.rendered
        assert cell["status"] in result.rendered


def test_fault_counter_vocabulary_is_stable():
    assert "disk_retries" in FAULT_COUNTERS
    assert "mapper_breaker_trips" in FAULT_COUNTERS


def test_figure_harness_tolerates_crashed_cells():
    """A fault-induced crash mid-iteration must become a marker row in
    the figure table, not an IndexError or unbalanced-marks error."""
    from repro.experiments.fig09 import run_fig09
    from repro.faults.plan import set_default_fault_config

    always_corrupt = FaultConfig(
        enabled=True, swap_slot_corruption_rate=1.0)
    set_default_fault_config(always_corrupt)
    try:
        result = run_fig09(scale=SCALE, iterations=2)
    finally:
        set_default_fault_config(None)
    baseline = result.series[ConfigName.BASELINE.value]
    assert baseline["status"] == "crashed"
    assert len(baseline["runtime"]) < 2
    assert "crashed" in result.rendered
