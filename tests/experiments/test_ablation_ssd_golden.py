"""Golden regression fixture for the ablation-ssd cell runner.

Satellite of the swap-backend refactor: the SSD latency numbers moved
from ``DiskConfig`` into the ``SwapBackendConfig`` registry, and the
ablation's disk profile now reads them from there.  This snapshot pins
every ablation-ssd cell's observable outcome -- runtime, counters, and
the ResultStore cache key -- so any drift between the shared
``SsdLatencyModel`` users (the ablation disk profile and the
``--swap-backend ssd`` device) shows up as a diff here.

Regenerate after an *intentional* behaviour change with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/experiments/test_ablation_ssd_golden.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.exec.store import cell_key
from repro.experiments.ablations import build_ssd_sweep, ssd_cell

GOLDEN_SCALE = 8
GOLDEN_PATH = (Path(__file__).parent / "data"
               / "ablation_ssd_golden_scale8.json")


def _snapshot_cell(spec) -> dict:
    result = ssd_cell(spec)
    return {
        "cell_key": cell_key(spec),
        "config": spec.config,
        "disk_kind": spec.params["disk_kind"],
        "runtime": result.runtime,
        "crashed": result.crashed,
        "counters": dict(sorted(result.counters.items())),
    }


def _current_snapshot() -> dict:
    sweep = build_ssd_sweep(scale=GOLDEN_SCALE)
    return {
        "scale": GOLDEN_SCALE,
        "cells": {spec.cell_id: _snapshot_cell(spec)
                  for spec in sweep.cells},
    }


def test_ablation_ssd_matches_golden_snapshot():
    current = _current_snapshot()
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(current, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"regenerated {GOLDEN_PATH}")
    assert GOLDEN_PATH.exists(), (
        f"golden snapshot missing; regenerate with REPRO_REGEN_GOLDEN=1 "
        f"({GOLDEN_PATH})")
    golden = json.loads(GOLDEN_PATH.read_text())
    assert current["scale"] == golden["scale"]
    assert sorted(current["cells"]) == sorted(golden["cells"])
    for cell_id, got in current["cells"].items():
        want = golden["cells"][cell_id]
        for field in sorted(set(want) | set(got)):
            assert got.get(field) == want.get(field), (
                f"{cell_id}: {field} diverged from the golden snapshot")
