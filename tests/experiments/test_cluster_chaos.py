"""Cluster-chaos experiment: sweep shape, determinism, survivor check.

The heavy acceptance properties run on single cells at 1/8 scale: a
seeded crash schedule replays bit-identically, survivors on untouched
hosts match the fault-free twin, and a fleet the survivors cannot
absorb surfaces typed ``VmLost`` holes instead of hanging or dropping
VMs.  The assembler's bit-drift detector is exercised on fabricated
results so the failure path is covered without forcing a real drift.
"""

import pytest

from repro.experiments.cluster_chaos import (
    CHAOS_FLEET_SIZES,
    CHAOS_POLICIES,
    SCHEDULES,
    assemble_cluster_chaos,
    build_cluster_chaos_sweep,
    cluster_chaos_cell,
    schedule_fault_config,
)
from repro.experiments.runner import ConfigName, PhaseMark, RunResult

SCALE = 8


def _spec(sweep, cell_id):
    [spec] = [cell for cell in sweep.cells if cell.cell_id == cell_id]
    return spec


@pytest.fixture(scope="module")
def sweep():
    return build_cluster_chaos_sweep(scale=SCALE)


@pytest.fixture(scope="module")
def baseline_cell(sweep):
    return cluster_chaos_cell(_spec(sweep, "none@balancex4"))


@pytest.fixture(scope="module")
def crash_one_cell(sweep):
    return cluster_chaos_cell(_spec(sweep, "crash-one@balancex4"))


# ----------------------------------------------------------------------
# sweep declaration
# ----------------------------------------------------------------------

def test_sweep_crosses_schedules_policies_and_fleet_sizes(sweep):
    assert len(sweep.cells) == \
        len(SCHEDULES) * len(CHAOS_POLICIES) * len(CHAOS_FLEET_SIZES)
    ids = {cell.cell_id for cell in sweep.cells}
    assert "none@first-fitx4" in ids
    assert "crash-most@balancex8" in ids
    assert all(cell.config == ConfigName.VSWAPPER.value
               for cell in sweep.cells)


def test_cells_are_hermetic_about_their_fault_plan(sweep):
    """The fault-free twin carries no plan at all (never the ambient
    CLI default); injection cells embed theirs in the cache identity."""
    for cell in sweep.cells:
        if cell.params["schedule"] == "none":
            assert cell.faults is None
        else:
            assert cell.faults is not None
            assert cell.faults["enabled"]


def test_schedule_configs_shrink_with_scale():
    cfg = schedule_fault_config("crash-one", scale=SCALE)
    assert cfg.host_fault_horizon == \
        schedule_fault_config("crash-one", scale=1).host_fault_horizon \
        / SCALE
    assert schedule_fault_config("none", scale=SCALE) is None


# ----------------------------------------------------------------------
# cell acceptance at 1/8 scale
# ----------------------------------------------------------------------

def test_crash_cell_replays_bit_identically(sweep, crash_one_cell):
    again = cluster_chaos_cell(_spec(sweep, "crash-one@balancex4"))
    assert again == crash_one_cell
    assert crash_one_cell.counters["host_crashes"] >= 1


def test_survivors_match_the_fault_free_twin(baseline_cell,
                                             crash_one_cell):
    from repro.experiments.cluster_chaos import _chaos_row

    assert not baseline_cell.crashed
    assert baseline_cell.counters["host_crashes"] == 0
    assert baseline_cell.counters["vms_lost"] == 0

    row = _chaos_row(crash_one_cell, baseline_cell)
    assert row["survivors_checked"] > 0
    assert row["survivors_identical"] is True
    assert crash_one_cell.counters["evacuations"] \
        + crash_one_cell.counters["vms_lost"] >= 1


def test_overloaded_crash_surfaces_typed_losses(sweep):
    """crash-most at the admission-capacity fleet: the lone survivor
    node cannot absorb everyone, so VmLost holes must appear -- and
    every VM is still accounted for."""
    result = cluster_chaos_cell(_spec(sweep, "crash-most@first-fitx8"))
    counters = result.counters
    assert not result.crashed
    assert counters["vms_lost"] > 0
    assert counters["vms_placed"] == 8
    holes = [mark for mark in result.phases if mark.name == "vm-lost"]
    assert len(holes) == counters["vms_lost"]
    assert all(mark.payload["reason"] for mark in holes)
    survivors = [mark for mark in result.phases
                 if mark.name == "survivors"][0].payload
    lost_named = {vm for vm, host in survivors["final_hosts"].items()
                  if host == "lost"}
    assert len(lost_named) == counters["vms_lost"]


# ----------------------------------------------------------------------
# assembler
# ----------------------------------------------------------------------

def _fabricated(runtime, fingerprints, *, lost=()):
    phases = [PhaseMark("vm-lost", {
        "schema": 1, "time": 5.0, "vm": vm, "host": "node0",
        "reason": "retries exhausted", "attempts": 5,
    }, 5.0) for vm in lost]
    phases.append(PhaseMark("survivors", {
        "fingerprints": fingerprints,
        "unaffected_hosts": ["node1"],
        "final_hosts": {vm: ("lost" if vm in lost else "node1")
                        for vm in fingerprints},
        "host_states": {}, "evac_latencies": {},
    }, 0.0))
    return RunResult(
        config=ConfigName.VSWAPPER, runtime=runtime, crashed=False,
        counters={"vms_placed": len(fingerprints), "vms_lost": len(lost),
                  "vms_completed": len(fingerprints) - len(lost),
                  "evacuations": 0, "evac_retries": 0,
                  "host_crashes": 1, "host_degrades": 0,
                  "oom_kills": 0},
        phases=phases)


def test_assembler_flags_bit_drift_and_reports_holes():
    sweep = build_cluster_chaos_sweep(
        scale=SCALE, schedules=("none", "crash-one"),
        policies=("first-fit",), fleet_sizes=(4,))
    results = {
        "none@first-fitx4": _fabricated(
            10.0, {"vm0": "aaaa", "vm1": "bbbb"}),
        "crash-one@first-fitx4": _fabricated(
            12.0, {"vm0": "aaaa", "vm1": "DRIFTED"}, lost=("vm0",)),
    }
    figure = assemble_cluster_chaos(sweep, results)
    assert "NO (BIT-DRIFT)" in figure.rendered
    assert "VmLost" in figure.rendered
    assert "Explicit figure holes" in figure.rendered
    row = figure.series["first-fitx4"]["crash-one"]
    assert row["survivors_identical"] is False
    assert row["slowdown"] == pytest.approx(1.2)
    assert row["survival_rate"] == pytest.approx(0.5)


def test_assembler_confirms_identical_survivors():
    sweep = build_cluster_chaos_sweep(
        scale=SCALE, schedules=("none", "crash-one"),
        policies=("first-fit",), fleet_sizes=(4,))
    prints = {"vm0": "aaaa", "vm1": "bbbb"}
    results = {
        "none@first-fitx4": _fabricated(10.0, dict(prints)),
        "crash-one@first-fitx4": _fabricated(10.0, dict(prints)),
    }
    figure = assemble_cluster_chaos(sweep, results)
    assert "yes" in figure.rendered
    assert "BIT-DRIFT" not in figure.rendered
    assert "Explicit figure holes" not in figure.rendered
