"""Experiment runner machinery."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.runner import (
    ConfigName,
    PhaseMark,
    RunResult,
    SingleVmExperiment,
    scaled_guest_config,
    standard_configs,
)
from repro.units import mib_pages
from repro.workloads.sysbench import SysbenchFileRead


def test_standard_configs_order_and_names():
    specs = standard_configs()
    assert [s.name for s in specs] == [
        ConfigName.BASELINE,
        ConfigName.BALLOON_BASELINE,
        ConfigName.MAPPER,
        ConfigName.VSWAPPER,
        ConfigName.BALLOON_VSWAPPER,
    ]
    by_name = {s.name: s for s in specs}
    assert not by_name[ConfigName.BASELINE].vswapper.enable_mapper
    assert by_name[ConfigName.MAPPER].vswapper.enable_mapper
    assert not by_name[ConfigName.MAPPER].vswapper.enable_preventer
    assert by_name[ConfigName.VSWAPPER].vswapper.enable_preventer
    assert by_name[ConfigName.BALLOON_VSWAPPER].ballooned


def test_standard_configs_filter():
    specs = standard_configs([ConfigName.MAPPER])
    assert len(specs) == 1
    assert specs[0].name is ConfigName.MAPPER


def test_scaled_guest_config_scales_everything():
    full = scaled_guest_config(512, 1)
    quarter = scaled_guest_config(512, 4)
    assert quarter.memory_pages == full.memory_pages // 4
    assert quarter.kernel_reserve_pages == full.kernel_reserve_pages // 4
    assert quarter.guest_swap_pages == full.guest_swap_pages // 4


def test_run_result_iteration_helpers():
    result = RunResult(
        ConfigName.BASELINE, 10.0, False, {},
        phases=[
            PhaseMark("iteration-start", {}, 1.0, {"disk_ops": 5}),
            PhaseMark("iteration-end", {}, 3.0, {"disk_ops": 9}),
            PhaseMark("iteration-start", {}, 3.0, {"disk_ops": 9}),
            PhaseMark("iteration-end", {}, 6.0, {"disk_ops": 20}),
        ])
    assert result.iteration_durations() == [2.0, 3.0]
    assert result.iteration_counter_deltas("disk_ops") == [4, 11]


def test_run_result_unbalanced_marks_rejected():
    result = RunResult(
        ConfigName.BASELINE, 10.0, False, {},
        phases=[PhaseMark("iteration-start", {}, 1.0)])
    with pytest.raises(ExperimentError):
        result.iteration_durations()


def test_experiment_rejects_actual_above_guest():
    with pytest.raises(ExperimentError):
        SingleVmExperiment(guest_mib=100, actual_mib=200)


def test_experiment_runs_all_configs_small():
    experiment = SingleVmExperiment(
        guest_mib=16, actual_mib=4,
        guest_config=scaled_guest_config(512, 32),
        files=[("sysbench.dat", mib_pages(6))],
    )
    workload_pages = mib_pages(6)
    for spec in standard_configs():
        result = experiment.run(spec, SysbenchFileRead(
            file_pages=workload_pages, iterations=1,
            min_resident_pages=0))
        assert result.config is spec.name
        assert not result.crashed
        assert result.runtime > 0
        assert result.counters["disk_ops"] > 0


def test_run_result_status_vocabulary():
    ok = RunResult(ConfigName.BASELINE, 1.0, False, {})
    degraded = RunResult(ConfigName.MAPPER, 1.0, False, {}, degraded=True)
    crashed = RunResult(ConfigName.VSWAPPER, None, True, {},
                        crash_reason="FaultError: boom")
    assert ok.status == "ok"
    assert degraded.status == "degraded"
    assert crashed.status == "crashed"


def test_fault_induced_crash_becomes_a_cell_not_an_abort():
    """A configuration killed by injected faults reports as crashed;
    the sweep (and its counters) survive."""
    from repro.config import FaultConfig, MachineConfig

    experiment = SingleVmExperiment(
        guest_mib=16, actual_mib=4,
        guest_config=scaled_guest_config(512, 32),
        machine_config=MachineConfig(faults=FaultConfig(
            enabled=True, swap_slot_corruption_rate=1.0)),
        files=[("sysbench.dat", mib_pages(6))],
    )
    spec = standard_configs([ConfigName.BASELINE])[0]
    result = experiment.run(spec, SysbenchFileRead(
        file_pages=mib_pages(6), iterations=1, min_resident_pages=0))
    assert result.crashed
    assert result.status == "crashed"
    assert result.crash_reason.startswith("HostError")
    assert result.counters  # snapshot captured at the crash point


def test_timeline_sampling():
    experiment = SingleVmExperiment(
        guest_mib=16, actual_mib=8,
        guest_config=scaled_guest_config(512, 32),
        files=[("sysbench.dat", mib_pages(6))],
        sample_interval=0.05,
    )
    spec = standard_configs([ConfigName.VSWAPPER])[0]
    result = experiment.run(spec, SysbenchFileRead(
        file_pages=mib_pages(6), iterations=2, min_resident_pages=0))
    times, values = result.timeline.series("guest_page_cache")
    assert len(times) > 3
    assert max(values) > 0
    assert "mapper_tracked" in result.timeline.series_names()
