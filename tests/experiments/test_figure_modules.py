"""Figure-module helpers and configuration matrices."""

from repro.experiments.dynamic import FIG14_CONFIGS, make_mapreduce
from repro.experiments.fig05_11 import DEFAULT_MEMORY_SWEEP, FIG05_CONFIGS
from repro.experiments.fig09 import FIG03_CONFIGS, FIG09_CONFIGS
from repro.experiments.fig12 import make_kernbench
from repro.experiments.fig13_15 import make_eclipse
from repro.experiments.runner import ConfigName
from repro.experiments.table1 import COMPONENT_FILES, PAPER_LOC, count_loc
from repro.units import mib_pages


def test_fig09_plots_the_papers_three_configs():
    assert set(FIG09_CONFIGS) == {
        ConfigName.BASELINE, ConfigName.VSWAPPER,
        ConfigName.BALLOON_BASELINE}


def test_fig03_adds_the_combination():
    assert ConfigName.BALLOON_VSWAPPER in FIG03_CONFIGS
    assert len(FIG03_CONFIGS) == 4


def test_fig05_sweep_covers_the_papers_axis():
    assert DEFAULT_MEMORY_SWEEP[0] == 512
    assert DEFAULT_MEMORY_SWEEP[-1] == 128
    assert 240 in DEFAULT_MEMORY_SWEEP  # the balloon-kill boundary
    assert ConfigName.MAPPER in FIG05_CONFIGS


def test_fig14_has_four_configs():
    assert len(FIG14_CONFIGS) == 4


def test_make_kernbench_scales():
    full = make_kernbench(1)
    eighth = make_kernbench(8)
    assert eighth.compile_units == full.compile_units // 8
    assert eighth.unit_working_set_pages == mib_pages(1)
    assert eighth.min_resident_pages == mib_pages(12)


def test_make_eclipse_scales():
    workload = make_eclipse(8)
    assert workload.heap_pages == mib_pages(16)
    assert workload.min_resident_pages == mib_pages(52)


def test_make_mapreduce_scales():
    workload = make_mapreduce(8, seed=1)
    assert workload.input_pages == mib_pages(37.5)
    assert workload.table_pages == mib_pages(128)


def test_table1_loc_counter(tmp_path):
    source = tmp_path / "x.py"
    source.write_text("# comment\n\ncode = 1\nmore = 2  # trailing\n")
    assert count_loc(source) == 2


def test_table1_paper_numbers_consistent():
    for component in ("Mapper", "Preventer"):
        user, kernel, total = PAPER_LOC[component]
        assert user + kernel == total
    assert set(COMPONENT_FILES) == {"Mapper", "Preventer", "shared facade"}
