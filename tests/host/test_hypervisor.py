"""Hypervisor fault paths: the five pathologies and their cures."""

import pytest

from repro.config import VSwapperConfig
from repro.errors import HostError
from repro.guest.kernel import Transfer
from repro.machine import Machine
from repro.mem.page import ZERO, AnonContent
from repro.sim.ops import WritePattern
from tests.conftest import small_machine_config, small_vm_config


@pytest.fixture
def hyp(machine):
    return machine.hypervisor


def fill_to_limit(machine, vm, start_gpa=0x100, extra=0):
    """Touch pages until the VM sits at its resident limit + extra."""
    limit = vm.resident_limit
    n = limit + extra
    for i in range(n):
        machine.hypervisor.touch_page(vm, start_gpa + i, write=True)
    return start_gpa, n


# ----------------------------------------------------------------------
# basic mapping
# ----------------------------------------------------------------------

def test_first_touch_maps_fresh_zero_page(hyp, vm):
    hyp.touch_page(vm, 0x10)
    assert vm.ept.is_present(0x10)
    assert vm.content_of(0x10) is ZERO
    assert vm.counters.guest_context_faults == 0  # minor, not major


def test_store_makes_content_anonymous(hyp, vm):
    hyp.touch_page(vm, 0x10, write=True)
    assert isinstance(vm.content_of(0x10), AnonContent)


def test_repeated_store_keeps_token(hyp, vm):
    hyp.touch_page(vm, 0x10, write=True)
    first = vm.content_of(0x10)
    hyp.touch_page(vm, 0x10, write=True)
    assert vm.content_of(0x10) == first


def test_frames_tracked_in_pool(hyp, machine, vm):
    used = machine.frames.used
    hyp.touch_page(vm, 0x10)
    assert machine.frames.used == used + 1


# ----------------------------------------------------------------------
# uncooperative swap-out / swap-in
# ----------------------------------------------------------------------

def test_resident_limit_forces_eviction(machine, tight_vm):
    fill_to_limit(machine, tight_vm, extra=64)
    assert tight_vm.resident_pages <= tight_vm.resident_limit
    assert tight_vm.counters.host_evictions > 0
    assert len(tight_vm.swap_slots) > 0


def test_swap_out_writes_every_page(machine, tight_vm):
    """No dirty bit for guest pages: everything is written."""
    fill_to_limit(machine, tight_vm, extra=512)
    machine.hypervisor._flush_swap_writes(tight_vm)
    written = tight_vm.counters.swap_sectors_written // 8
    swapped = len(tight_vm.swap_slots)
    assert written >= swapped > 0


def test_swap_in_restores_content(machine, tight_vm):
    hyp = machine.hypervisor
    start, n = fill_to_limit(machine, tight_vm, extra=256)
    victim = next(iter(tight_vm.swap_slots))
    content = tight_vm.content_of(victim)
    hyp.touch_page(tight_vm, victim)
    assert tight_vm.ept.is_present(victim)
    assert tight_vm.content_of(victim) == content
    assert tight_vm.counters.guest_context_faults >= 1


def test_swap_cache_hit_avoids_disk(machine, tight_vm):
    """A page whose write-back is still pending refaults for free."""
    hyp = machine.hypervisor
    fill_to_limit(machine, tight_vm, extra=8)
    pending = [g for g in tight_vm.pending_swap]
    assert pending
    reads_before = tight_vm.counters.swap_sectors_read
    hyp.touch_page(tight_vm, pending[0])
    assert tight_vm.counters.swap_sectors_read == reads_before
    assert tight_vm.counters.extra.get("swap_cache_hits", 0) >= 1


def test_silent_swap_writes_detected(machine, tight_vm):
    """Pages identical to their image blocks still get written -- and
    counted as silent."""
    hyp = machine.hypervisor
    transfers = [Transfer(100 + i, 0x100 + i) for i in range(64)]
    hyp.virtio_read(tight_vm, transfers)
    fill_to_limit(machine, tight_vm, start_gpa=0x4000,
                  extra=128)
    assert tight_vm.counters.silent_swap_writes > 0


# ----------------------------------------------------------------------
# stale swap reads
# ----------------------------------------------------------------------

def test_stale_read_on_swapped_dma_destination(machine, tight_vm):
    hyp = machine.hypervisor
    fill_to_limit(machine, tight_vm, extra=512)
    hyp._flush_swap_writes(tight_vm)
    victim = next(iter(tight_vm.swap_slots))
    hyp.virtio_read(tight_vm, [Transfer(500, victim)])
    assert tight_vm.counters.stale_reads == 1
    assert tight_vm.counters.host_context_faults >= 1


def test_no_stale_read_for_resident_destination(machine, vm):
    hyp = machine.hypervisor
    hyp.touch_page(vm, 0x20, write=True)
    hyp.virtio_read(vm, [Transfer(500, 0x20)])
    assert vm.counters.stale_reads == 0


def test_mapper_eliminates_stale_reads(machine):
    vm = machine.create_vm(small_vm_config(
        vswapper=VSwapperConfig.mapper_only(), resident_limit_mib=4))
    hyp = machine.hypervisor
    # Read file blocks (tracked), force discards, then DMA into the
    # discarded destinations: no stale read should occur.
    transfers = [Transfer(100 + i, 0x100 + i) for i in range(2048)]
    hyp.virtio_read(vm, transfers)
    discarded = [g for g in (0x100 + i for i in range(2048))
                 if vm.mapper.is_discarded(g)]
    assert discarded
    hyp.virtio_read(vm, [Transfer(5000, discarded[0])])
    assert vm.counters.stale_reads == 0


# ----------------------------------------------------------------------
# false swap reads and the Preventer
# ----------------------------------------------------------------------

def overwrite(hyp, vm, gpa, pattern=WritePattern.FULL_SEQUENTIAL):
    hyp.overwrite_page(vm, gpa, AnonContent.fresh(), pattern)


def test_false_read_on_swapped_overwrite_baseline(machine, tight_vm):
    hyp = machine.hypervisor
    fill_to_limit(machine, tight_vm, extra=512)
    hyp._flush_swap_writes(tight_vm)
    victim = next(iter(tight_vm.swap_slots))
    overwrite(hyp, tight_vm, victim)
    assert tight_vm.counters.false_reads == 1


def test_preventer_remaps_full_overwrite(machine):
    vm = machine.create_vm(small_vm_config(
        vswapper=VSwapperConfig(enable_preventer=True),
        resident_limit_mib=4))
    hyp = machine.hypervisor
    fill_to_limit(machine, vm, extra=512)
    hyp._flush_swap_writes(vm)
    victim = next(iter(vm.swap_slots))
    reads_before = vm.counters.swap_sectors_read
    overwrite(hyp, vm, victim)
    assert vm.counters.false_reads == 0
    assert vm.counters.preventer_remaps == 1
    assert vm.counters.swap_sectors_read == reads_before
    assert victim not in vm.swap_slots  # old backing dropped


def test_preventer_scattered_pattern_falls_back(machine):
    vm = machine.create_vm(small_vm_config(
        vswapper=VSwapperConfig(enable_preventer=True),
        resident_limit_mib=4))
    hyp = machine.hypervisor
    fill_to_limit(machine, vm, extra=512)
    hyp._flush_swap_writes(vm)
    victim = next(iter(vm.swap_slots))
    overwrite(hyp, vm, victim, WritePattern.SCATTERED)
    assert vm.counters.false_reads == 1
    assert vm.counters.preventer_remaps == 0


def test_preventer_partial_write_buffers_then_merges(machine):
    vm = machine.create_vm(small_vm_config(
        vswapper=VSwapperConfig(enable_preventer=True),
        resident_limit_mib=4))
    hyp = machine.hypervisor
    fill_to_limit(machine, vm, extra=512)
    hyp._flush_swap_writes(vm)
    victim = next(iter(vm.swap_slots))
    overwrite(hyp, vm, victim, WritePattern.PARTIAL)
    assert vm.preventer.is_emulated(victim)
    assert not vm.ept.is_present(victim)
    # Let the 1ms window lapse; the next op polls and merges.
    machine.engine.clock.advance_by(0.002)
    hyp.touch_page(vm, 0x9000)
    assert not vm.preventer.is_emulated(victim)
    assert vm.ept.is_present(victim)
    assert vm.counters.preventer_merges == 1


def test_preventer_read_of_buffered_page_merges_synchronously(machine):
    vm = machine.create_vm(small_vm_config(
        vswapper=VSwapperConfig(enable_preventer=True),
        resident_limit_mib=4))
    hyp = machine.hypervisor
    fill_to_limit(machine, vm, extra=512)
    hyp._flush_swap_writes(vm)
    victim = next(iter(vm.swap_slots))
    overwrite(hyp, vm, victim, WritePattern.PARTIAL)
    hyp.touch_page(vm, victim)   # guest reads unbuffered bytes
    assert vm.ept.is_present(victim)
    assert vm.counters.preventer_merges == 1


# ----------------------------------------------------------------------
# Swap Mapper
# ----------------------------------------------------------------------

def make_mapper_vm(machine, limit_mib=4):
    return machine.create_vm(small_vm_config(
        vswapper=VSwapperConfig.mapper_only(),
        resident_limit_mib=limit_mib))


def test_virtio_read_tracks_pages(machine):
    vm = make_mapper_vm(machine, limit_mib=8)
    machine.hypervisor.virtio_read(vm, [Transfer(100, 0x10)])
    assert vm.mapper.is_tracked_resident(0x10)
    assert vm.mapper.block_of(0x10) == 100
    assert vm.scanner.is_named(0x10)


def test_virtio_write_tracks_after_write(machine):
    vm = make_mapper_vm(machine, limit_mib=8)
    machine.hypervisor.touch_page(vm, 0x10, write=True)
    machine.hypervisor.virtio_write(vm, [Transfer(200, 0x10)])
    assert vm.mapper.is_tracked_resident(0x10)
    # The page equals the block it was just written to.
    assert vm.image.matches(200, vm.content_of(0x10))


def test_guest_store_breaks_cow(machine):
    vm = make_mapper_vm(machine, limit_mib=8)
    hyp = machine.hypervisor
    hyp.virtio_read(vm, [Transfer(100, 0x10)])
    hyp.touch_page(vm, 0x10, write=True)
    assert not vm.mapper.is_tracked(0x10)
    assert vm.counters.mapper_cow_breaks == 1
    assert not vm.scanner.is_named(0x10)


def test_eviction_discards_tracked_pages_without_write(machine):
    vm = make_mapper_vm(machine)
    hyp = machine.hypervisor
    transfers = [Transfer(100 + i, 0x100 + i) for i in range(2048)]
    hyp.virtio_read(vm, transfers)
    assert vm.counters.mapper_discards > 0
    assert vm.counters.swap_sectors_written == 0


def test_refault_reads_from_image_with_readahead(machine):
    vm = make_mapper_vm(machine)
    hyp = machine.hypervisor
    transfers = [Transfer(100 + i, 0x100 + i) for i in range(2048)]
    hyp.virtio_read(vm, transfers)
    discarded = sorted(
        g for g in (0x100 + i for i in range(2048))
        if vm.mapper.is_discarded(g))
    target = discarded[0]
    faults_before = vm.counters.guest_context_faults
    hyp.touch_page(vm, target)
    assert vm.ept.is_present(target)
    assert vm.mapper.is_tracked_resident(target)
    assert vm.counters.guest_context_faults == faults_before + 1
    # Readahead mapped neighbouring discarded blocks too.
    refault_sectors = vm.counters.extra.get("image_refault_sectors", 0)
    assert refault_sectors >= 8


def test_consistency_invalidation_on_block_overwrite(machine):
    vm = make_mapper_vm(machine, limit_mib=8)
    hyp = machine.hypervisor
    hyp.virtio_read(vm, [Transfer(100, 0x10)])
    # Another page writes to block 100 through ordinary I/O.
    hyp.touch_page(vm, 0x20, write=True)
    hyp.virtio_write(vm, [Transfer(100, 0x20)])
    assert not vm.mapper.is_tracked(0x10)  # old association severed
    assert vm.mapper.is_tracked_resident(0x20)


def test_consistency_invalidation_fetches_discarded_content(machine):
    vm = make_mapper_vm(machine)
    hyp = machine.hypervisor
    transfers = [Transfer(100 + i, 0x100 + i) for i in range(2048)]
    hyp.virtio_read(vm, transfers)
    discarded = [g for g in (0x100 + i for i in range(2048))
                 if vm.mapper.is_discarded(g)]
    victim = discarded[0]
    block = vm.mapper.block_of(victim)
    old_content = vm.content_of(victim)
    hyp.touch_page(vm, 0x9000, write=True)
    hyp.virtio_write(vm, [Transfer(block, 0x9000)])
    # C0 was fetched before C1 hit the disk: the page is resident with
    # its old bytes, no longer tracked.
    assert vm.ept.is_present(victim)
    assert vm.content_of(victim) == old_content
    assert not vm.mapper.is_tracked(victim)
    assert vm.counters.mapper_invalidations == 1


def test_unaligned_transfers_not_tracked(machine):
    vm = make_mapper_vm(machine, limit_mib=8)
    machine.hypervisor.virtio_read(
        vm, [Transfer(100, 0x10, aligned=False)])
    assert not vm.mapper.is_tracked(0x10)


# ----------------------------------------------------------------------
# false page anonymity (QEMU code pages)
# ----------------------------------------------------------------------

def test_code_pages_evicted_in_baseline_under_pressure(machine, tight_vm):
    fill_to_limit(machine, tight_vm, extra=2048)
    # Drive more virtual I/O: code refaults should show up.
    hyp = machine.hypervisor
    for i in range(64):
        hyp.virtio_read(tight_vm, [Transfer(3000 + i, 0x8000 + i)])
    assert tight_vm.counters.hypervisor_code_faults > 0


def test_mapper_protects_code_pages(machine):
    vm = make_mapper_vm(machine)
    hyp = machine.hypervisor
    transfers = [Transfer(100 + i, 0x100 + i) for i in range(2048)]
    hyp.virtio_read(vm, transfers)
    for i in range(64):
        hyp.virtio_read(vm, [Transfer(5000 + i, 0x8000 + i)])
    baseline_vm = machine.create_vm(small_vm_config(
        name="vmb", resident_limit_mib=4))
    for i in range(2048):
        hyp.touch_page(baseline_vm, 0x100 + i, write=True)
    for i in range(64):
        hyp.virtio_read(baseline_vm, [Transfer(5000 + i, 0x8000 + i)])
    assert (vm.counters.hypervisor_code_faults
            <= baseline_vm.counters.hypervisor_code_faults)


# ----------------------------------------------------------------------
# double paging, balloon, misc
# ----------------------------------------------------------------------

def test_double_paging_on_guest_writeback_of_swapped_page(
        machine, tight_vm):
    hyp = machine.hypervisor
    fill_to_limit(machine, tight_vm, extra=512)
    hyp._flush_swap_writes(tight_vm)
    victim = next(iter(tight_vm.swap_slots))
    hyp.virtio_write(tight_vm, [Transfer(700, victim)])
    assert tight_vm.counters.double_paging == 1


def test_balloon_pin_releases_everything(machine, tight_vm):
    hyp = machine.hypervisor
    fill_to_limit(machine, tight_vm, extra=512)
    resident_victim = next(iter(tight_vm.ept.present_gpas()))
    swapped_victim = next(iter(tight_vm.swap_slots))
    used_before = machine.frames.used
    hyp.balloon_pin(tight_vm, [resident_victim, swapped_victim])
    assert not tight_vm.ept.is_present(resident_victim)
    assert swapped_victim not in tight_vm.swap_slots
    assert machine.frames.used == used_before - 1
    assert tight_vm.content_of(resident_victim) is ZERO
    hyp.balloon_unpin(tight_vm, [resident_victim])
    assert resident_victim not in tight_vm.ballooned


def test_fault_on_unbacked_page_is_error(machine, vm):
    with pytest.raises(HostError):
        machine.hypervisor._fault_in(vm, 0x999, "guest")


def test_page_needs_zeroing(machine, vm):
    hyp = machine.hypervisor
    assert not hyp.page_needs_zeroing(vm, 0x50)  # untouched => ZERO
    hyp.touch_page(vm, 0x50, write=True)
    assert hyp.page_needs_zeroing(vm, 0x50)


def test_global_pressure_reclaims_biggest_vm():
    machine = Machine(small_machine_config(
        total_memory_pages=3000))
    hyp = machine.hypervisor
    big = machine.create_vm(small_vm_config(name="big"))
    small = machine.create_vm(small_vm_config(name="small"))
    for i in range(2000):
        hyp.touch_page(big, 0x100 + i, write=True)
    for i in range(500):
        hyp.touch_page(small, 0x100 + i, write=True)
    # The next allocations must squeeze the big VM, not the small one.
    for i in range(700):
        hyp.touch_page(small, 0x5000 + i, write=True)
    assert big.counters.host_evictions > 0
    assert machine.frames.used <= machine.frames.total_frames


def test_hardware_dirty_bit_skips_clean_rewrites():
    machine = Machine(small_machine_config(hardware_dirty_bit=True))
    vm = machine.create_vm(small_vm_config(resident_limit_mib=4))
    hyp = machine.hypervisor
    fill_to_limit(machine, vm, extra=512)
    hyp._flush_swap_writes(vm)
    written_before = vm.counters.swap_sectors_written
    # Fault pages back (read-only) and force re-eviction.
    victims = list(vm.swap_slots)[:64]
    for gpa in victims:
        hyp.touch_page(vm, gpa)  # read: stays clean
    for i in range(1024):
        hyp.touch_page(vm, 0x20000 + i, write=True)
    hyp._flush_swap_writes(vm)
    rewritten = vm.counters.swap_sectors_written - written_before
    # Only the genuinely dirty pages (the 1024 new stores, plus a few
    # displaced) get written; the clean refaulted pages reuse their
    # retained slots with no I/O.
    assert rewritten <= (1024 + 64) * 8


def test_windows_unaligned_io_defeats_the_mapper(machine):
    """A guest issuing sub-4KiB transfers gives the Mapper nothing to
    track (Section 5.4's motivation for reporting 4KiB sectors)."""
    from tests.conftest import small_guest_config
    guest_cfg = small_guest_config(unaligned_io_fraction=1.0)
    vm = machine.create_vm(small_vm_config(
        vswapper=VSwapperConfig.mapper_only(), guest=guest_cfg))
    from repro.sim.ops import FileRead
    vm.guest.fs.create_file("f", 64)
    vm.guest.execute(FileRead("f", 0, 64))
    assert vm.mapper.tracked_pages == 0


def test_refault_consistency_self_check_fires(machine):
    """Corrupting a tracked page's content behind the Mapper's back is
    caught by the refault self-check (ConsistencyError)."""
    import pytest as _pytest
    from repro.errors import ConsistencyError
    from repro.mem.page import AnonContent
    vm = make_mapper_vm(machine)
    hyp = machine.hypervisor
    transfers = [Transfer(100 + i, 0x100 + i) for i in range(2048)]
    hyp.virtio_read(vm, transfers)
    discarded = next(g for g in (0x100 + i for i in range(2048))
                     if vm.mapper.is_discarded(g))
    # Sabotage: change the logical content without telling the Mapper.
    vm.set_content(discarded, AnonContent.fresh())
    with _pytest.raises(ConsistencyError):
        hyp.touch_page(vm, discarded)
