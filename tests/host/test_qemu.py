"""QEMU process code-page model."""

import pytest

from repro.disk.geometry import DiskRegion
from repro.errors import HostError
from repro.host.qemu import QemuProcess


def make_qemu(code_pages=16):
    region = DiskRegion("host-root", 0, 10000 * 8)
    return QemuProcess(region, base_page=100, code_pages=code_pages)


def test_cursor_walks_round_robin():
    qemu = make_qemu(4)
    assert qemu.next_touches(3) == [0, 1, 2]
    assert qemu.next_touches(3) == [3, 0, 1]


def test_next_touches_capped_at_code_size():
    qemu = make_qemu(4)
    assert len(qemu.next_touches(10)) == 4


def test_no_code_pages():
    region = DiskRegion("host-root", 0, 80)
    qemu = QemuProcess(region, 0, 0)
    assert qemu.next_touches(5) == []


def test_residency_tracking():
    qemu = make_qemu()
    assert not qemu.is_resident(3)
    qemu.mark_resident(3)
    assert qemu.is_resident(3)
    qemu.evict(3)
    assert not qemu.is_resident(3)


def test_referenced_test_and_clear():
    qemu = make_qemu()
    qemu.accessed.add(5)
    assert qemu.referenced(5)
    assert not qemu.referenced(5)


def test_evict_clears_accessed():
    qemu = make_qemu()
    qemu.mark_resident(2)
    qemu.accessed.add(2)
    qemu.evict(2)
    assert not qemu.referenced(2)


def test_sector_of_uses_base_offset():
    qemu = make_qemu()
    assert qemu.sector_of(0) == 100 * 8
    assert qemu.sector_of(3) == 103 * 8


def test_sector_of_bounds():
    qemu = make_qemu(4)
    with pytest.raises(HostError):
        qemu.sector_of(4)


def test_fault_cluster_skips_resident():
    qemu = make_qemu(16)
    qemu.mark_resident(1)
    cluster = qemu.fault_cluster(0, readahead=4)
    assert cluster == [0, 2, 3]


def test_fault_cluster_clipped_at_end():
    qemu = make_qemu(10)
    cluster = qemu.fault_cluster(9, readahead=8)
    assert cluster == [8, 9]
