"""Per-VM host state."""

from repro.mem.page import ZERO, AnonContent
from tests.conftest import small_vm_config
from repro.config import VSwapperConfig


def test_content_defaults_to_zero(vm):
    assert vm.content_of(0x123) is ZERO


def test_set_content_roundtrip(vm):
    content = AnonContent.fresh()
    vm.set_content(1, content)
    assert vm.content_of(1) == content


def test_set_content_zero_prunes_entry(vm):
    vm.set_content(1, AnonContent.fresh())
    vm.set_content(1, ZERO)
    assert 1 not in vm.content
    assert vm.content_of(1) is ZERO


def test_resident_counts_code_and_swap_cache(machine, vm):
    base = vm.resident_pages
    machine.hypervisor.touch_page(vm, 0x10)
    assert vm.resident_pages == base + 1
    vm.qemu.mark_resident(0)
    assert vm.resident_pages == base + 2
    vm.swap_cache[0x99] = 5
    assert vm.resident_pages == base + 3


def test_mapper_preventer_shortcuts(machine):
    baseline = machine.create_vm(small_vm_config(name="b"))
    assert baseline.mapper is None
    assert baseline.preventer is None
    full = machine.create_vm(small_vm_config(
        name="f", vswapper=VSwapperConfig.full()))
    assert full.mapper is not None
    assert full.preventer is not None


def test_referenced_dispatches_to_code_pages(vm):
    vm.qemu.accessed.add(3)
    key = ("code", 3)
    assert vm._referenced(key)
    assert not vm._referenced(key)


def test_referenced_for_absent_gpa_is_false(vm):
    assert not vm._referenced(0x777)


def test_dma_pin_blocks_eviction(vm):
    vm.io_pinned.add(0x10)
    assert vm._dma_pinned(0x10)
    assert not vm._dma_pinned(("code", 1))


def test_refresh_gauges_tracks_mapper(machine):
    vm = machine.create_vm(small_vm_config(
        vswapper=VSwapperConfig.mapper_only()))
    vm.mapper.track(1, 100)
    vm.refresh_gauges()
    assert vm.counters.mapper_tracked_pages == 1
    assert vm.counters.mapper_tracked_peak == 1
    vm.mapper.drop_gpa(1)
    vm.refresh_gauges()
    assert vm.counters.mapper_tracked_pages == 0
    assert vm.counters.mapper_tracked_peak == 1


def test_hypervisor_satisfies_host_services(machine):
    from repro.host.interface import HostServices
    assert isinstance(machine.hypervisor, HostServices)
