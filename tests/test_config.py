"""Configuration validation and factory helpers."""

import pytest

from repro.config import (
    DiskConfig,
    GuestConfig,
    HostConfig,
    MachineConfig,
    VmConfig,
    VSwapperConfig,
    scaled_pages,
)
from repro.errors import ConfigError
from repro.units import mib_pages


def test_default_machine_config_validates():
    MachineConfig().validate()


def test_disk_kind_checked():
    with pytest.raises(ConfigError):
        DiskConfig(kind="floppy").validate()


def test_disk_bandwidth_checked():
    with pytest.raises(ConfigError):
        DiskConfig(bandwidth_bytes_per_sec=0).validate()


def test_host_fraction_bounds():
    with pytest.raises(ConfigError):
        HostConfig(named_fraction=1.2).validate()
    with pytest.raises(ConfigError):
        HostConfig(reclaim_noise=-0.1).validate()
    with pytest.raises(ConfigError):
        HostConfig(code_cache_hit_rate=1.5).validate()


def test_host_positive_sizes():
    with pytest.raises(ConfigError):
        HostConfig(total_memory_pages=0).validate()
    with pytest.raises(ConfigError):
        HostConfig(swap_cluster_pages=0).validate()
    with pytest.raises(ConfigError):
        HostConfig(reclaim_batch_pages=0).validate()


def test_guest_config_bounds():
    with pytest.raises(ConfigError):
        GuestConfig(memory_pages=0).validate()
    with pytest.raises(ConfigError):
        GuestConfig(unaligned_io_fraction=2.0).validate()


def test_guest_derived_watermarks():
    guest = GuestConfig(memory_pages=mib_pages(512))
    assert 0 < guest.derived_free_min < guest.derived_free_target
    explicit = GuestConfig(free_min_pages=10, free_target_pages=20)
    assert explicit.derived_free_min == 10
    assert explicit.derived_free_target == 20


def test_vswapper_factories():
    assert not VSwapperConfig.off().enable_mapper
    assert VSwapperConfig.mapper_only().enable_mapper
    assert not VSwapperConfig.mapper_only().enable_preventer
    full = VSwapperConfig.full()
    assert full.enable_mapper and full.enable_preventer


def test_vswapper_bounds():
    with pytest.raises(ConfigError):
        VSwapperConfig(preventer_window=0).validate()
    with pytest.raises(ConfigError):
        VSwapperConfig(preventer_max_pages=0).validate()


def test_vm_config_image_must_exceed_guest_swap():
    with pytest.raises(ConfigError):
        VmConfig(
            guest=GuestConfig(guest_swap_pages=mib_pages(100)),
            image_size_pages=mib_pages(50),
        ).validate()


def test_scaled_pages():
    assert scaled_pages(1000, 4) == 250
    assert scaled_pages(1, 100) == 1  # floor of one page
    with pytest.raises(ConfigError):
        scaled_pages(100, 0)


def test_configs_are_frozen():
    config = HostConfig()
    with pytest.raises(AttributeError):
        config.total_memory_pages = 1
