"""Unit conversions."""

import pytest

from repro import units


def test_page_size_is_4k():
    assert units.PAGE_SIZE == 4096


def test_sectors_per_page():
    assert units.SECTORS_PER_PAGE == 8


def test_pages_from_bytes_rounds_up():
    assert units.pages_from_bytes(1) == 1
    assert units.pages_from_bytes(4096) == 1
    assert units.pages_from_bytes(4097) == 2


def test_pages_from_bytes_zero():
    assert units.pages_from_bytes(0) == 0


def test_pages_from_bytes_rejects_negative():
    with pytest.raises(ValueError):
        units.pages_from_bytes(-1)


def test_bytes_from_pages():
    assert units.bytes_from_pages(3) == 3 * 4096


def test_bytes_from_pages_rejects_negative():
    with pytest.raises(ValueError):
        units.bytes_from_pages(-2)


def test_sectors_from_pages():
    assert units.sectors_from_pages(2) == 16


def test_sectors_from_pages_rejects_negative():
    with pytest.raises(ValueError):
        units.sectors_from_pages(-1)


def test_mib():
    assert units.mib(1) == 1024 * 1024


def test_mib_pages():
    assert units.mib_pages(1) == 256
    assert units.mib_pages(0.5) == 128


def test_roundtrip_pages_bytes():
    for n in (0, 1, 7, 256, 100000):
        assert units.pages_from_bytes(units.bytes_from_pages(n)) == n
