"""The VM driver: feeds a workload's operations into its guest.

One driver per (VM, workload) pair.  Each engine step pulls the next
operation, lets the guest kernel interpret it, and converts the charged
costs into a duration -- scaling fault stalls by the workload's
asynchronous-page-fault overlap when the host supports it (KVM's async
page faults let a multithreaded guest run other threads while the host
swaps a page in; Section 5.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.config import GuestOsKind
from repro.errors import GuestOomKill
from repro.host.vm import Vm
from repro.machine import Machine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import Cluster
from repro.sim.ops import MarkPhase
from repro.workloads.base import Workload

#: Called on MarkPhase ops: (phase name, payload, virtual time).
PhaseCallback = Callable[[str, dict, float], None]

#: Floor of the fault-overlap factor: even many threads cannot hide
#: stalls entirely, because they fault too.
MIN_OVERLAP = 0.5

#: Balloon pages a guest moves per workload operation at most, so that
#: inflation interleaves with (rather than preempts) the workload.
BALLOON_STEP_PAGES = 2048

#: Virtual seconds a driver sleeps between polls while its VM is
#: homeless (host crashed, evacuation in flight).  The freeze consumes
#: no workload operations: the VM resumes exactly where the crash
#: interrupted it once recovery re-homes it.
EVAC_POLL_INTERVAL = 0.1


def fault_overlap_for(threads: int, async_faults: bool) -> float:
    """Fraction of fault stall charged to a workload's critical path."""
    if not async_faults or threads <= 1:
        return 1.0
    return max(1.0 / threads, MIN_OVERLAP)


class VmDriver:
    """Runs one workload inside one VM.

    ``machine`` may be a single-host :class:`Machine` or a
    :class:`~repro.cluster.cluster.Cluster`: host-specific state (the
    async-page-fault capability, the phase auditor, the trace view) is
    resolved through ``vm.host``, which placement sets and migration
    rebinds -- a driver follows its VM across hosts.
    """

    def __init__(self, machine: "Machine | Cluster", vm: Vm,
                 workload: Workload, *, start_delay: float = 0.0,
                 phase_callback: Optional[PhaseCallback] = None) -> None:
        self.machine = machine
        self.vm = vm
        self.workload = workload
        self.phase_callback = phase_callback
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.crashed = False

        # KVM's asynchronous page faults need guest-side support, which
        # Windows guests lack.
        guest_supports_async = (
            vm.cfg.guest.os_kind is GuestOsKind.LINUX)
        vm.fault_overlap = fault_overlap_for(
            workload.threads,
            vm.host.cfg.async_page_faults and guest_supports_async)
        self._ops = iter(workload.operations())
        machine.engine.add_process(self._step, start_delay)

    def _step(self) -> float | None:
        now = self.machine.now
        if self.vm.lost:
            # Host-failure recovery gave the VM up: the workload ends
            # as crashed -- a typed hole, never a silent drop.
            if self.started_at is None:
                self.started_at = now
            self.crashed = True
            self.finished_at = now
            return None
        if self.vm.host is None:
            # Homeless mid-evacuation: frozen, not finished.  Poll
            # without consuming an operation.
            return EVAC_POLL_INTERVAL
        if self.started_at is None:
            self.started_at = now
            self.vm.guest.workload_min_resident = \
                self.workload.min_resident_pages
        try:
            op = next(self._ops)
        except StopIteration:
            self.finished_at = now
            return None

        trace = self.vm.host.trace
        if isinstance(op, MarkPhase):
            auditor = self.vm.host.auditor
            if auditor is not None:
                auditor.on_phase(op.name)
            if trace.enabled:
                trace.emit("phase.mark", vm=self.vm.name, name=op.name)
            if self.phase_callback is not None:
                self.phase_callback(op.name, dict(op.payload), now)

        self.vm.costs.reset()
        # Each guest operation opens a causal span: every host-side
        # event it triggers (faults, swap I/O, reclaim scans) is born
        # inside it, linking consequence back to cause.
        sid = (trace.begin_span(type(op).__name__, vm=self.vm.name)
               if trace.enabled else 0)
        try:
            # Balloon work runs on the guest's own time: inflating
            # means reclaiming (and possibly swapping) right here,
            # competing with the workload -- the paper's Section 2.3
            # responsiveness problem.
            if self.vm.guest.balloon_target != self.vm.guest.balloon_size:
                self.vm.guest.apply_balloon(BALLOON_STEP_PAGES)
            self.vm.guest.execute(op)
        except GuestOomKill:
            self.crashed = True
            self.finished_at = now
            return None
        finally:
            if trace.enabled:
                trace.end_span(sid)
        # Migration downtime lands out-of-band on the VM; the freeze is
        # charged to whatever the guest ran next.
        return (self.vm.costs.duration(self.vm.fault_overlap)
                + self.vm.take_pending_stall())

    @property
    def done(self) -> bool:
        """Whether the workload ran to completion or crashed."""
        return self.finished_at is not None

    @property
    def runtime(self) -> float:
        """Virtual seconds from first op to completion."""
        if self.started_at is None or self.finished_at is None:
            raise RuntimeError(
                f"workload {self.workload.name!r} has not finished")
        return self.finished_at - self.started_at
