"""Size and time units used throughout the simulation.

The simulator works in *pages* (4 KiB) for memory and *sectors* (512 B)
for disk transfers, mirroring the granularities the paper reasons in
(Section 4.1 "Page Alignment" discusses the 4 KiB constraint, and the
figures report disk traffic in sectors).

Virtual time is a ``float`` number of seconds.
"""

from __future__ import annotations

#: Bytes per memory page (x86 base page size).
PAGE_SIZE = 4096

#: Bytes per disk sector (legacy 512-byte logical sectors).
SECTOR_SIZE = 512

#: Sectors that make up one page.
SECTORS_PER_PAGE = PAGE_SIZE // SECTOR_SIZE

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


def pages_from_bytes(nbytes: int) -> int:
    """Number of whole pages needed to hold ``nbytes`` (rounds up)."""
    if nbytes < 0:
        raise ValueError(f"negative byte count: {nbytes}")
    return (nbytes + PAGE_SIZE - 1) // PAGE_SIZE


def bytes_from_pages(npages: int) -> int:
    """Byte size of ``npages`` pages."""
    if npages < 0:
        raise ValueError(f"negative page count: {npages}")
    return npages * PAGE_SIZE


def sectors_from_pages(npages: int) -> int:
    """Disk sectors occupied by ``npages`` pages."""
    if npages < 0:
        raise ValueError(f"negative page count: {npages}")
    return npages * SECTORS_PER_PAGE


def mib(n: float) -> int:
    """``n`` mebibytes expressed in bytes (rounded to an int)."""
    return int(n * MIB)


def mib_pages(n: float) -> int:
    """``n`` mebibytes expressed in whole 4 KiB pages."""
    return pages_from_bytes(mib(n))


USEC = 1e-6
MSEC = 1e-3
