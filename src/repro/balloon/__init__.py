"""Host-side balloon management (MOM-like).

The paper's dynamic experiments (Section 5.2) drive balloons with MOM,
"a host daemon which collects host and guest OS statistics and
dynamically inflates and deflates the guest memory balloons".  This
package reproduces that control loop -- including its essential flaw
under changing load: it reacts on a polling cadence and moves memory
at a bounded rate, so demand spikes land on uncooperative swapping.
"""

from repro.balloon.policy import BalloonPolicy, PolicyDecision
from repro.balloon.manager import BalloonManager, ManagerConfig

__all__ = [
    "BalloonPolicy",
    "PolicyDecision",
    "BalloonManager",
    "ManagerConfig",
]
