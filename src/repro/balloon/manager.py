"""The balloon manager control loop.

Runs as a periodic engine task: poll guest and host statistics, let the
policy compute new balloon targets, and hand them to the guests.  Guests
apply targets on their own time (their driver interleaves balloon work
with the workload), so both the polling latency and the guests' reclaim
speed bound how fast memory actually moves -- the paper's Section 2.3
responsiveness problem, and the reason Figure 4/14's balloon
configurations lean on uncooperative swapping under phased load.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.balloon.policy import BalloonPolicy, GuestObservation
from repro.errors import GuestOomKill
from repro.machine import Machine
from repro.units import mib_pages


@dataclass(frozen=True)
class ManagerConfig:
    """Tunables of the manager loop."""

    poll_interval: float = 5.0
    #: Pages one eager deflation may move per tick (inflation is paced
    #: by the guest's driver instead).
    max_step_pages: int = mib_pages(256)
    policy: BalloonPolicy = field(default_factory=BalloonPolicy)


class BalloonManager:
    """MOM-like daemon managing every VM on a machine."""

    def __init__(self, machine: Machine,
                 config: ManagerConfig | None = None) -> None:
        self.machine = machine
        self.cfg = config or ManagerConfig()
        self.ticks = 0
        self.oom_events = 0
        #: (time, vm_id, target) decisions, for experiment forensics.
        self.history: list[tuple[float, int, int]] = []
        self._last_host_evictions = 0
        self._last_guest_swap: dict[int, int] = {}
        machine.engine.add_periodic(self.cfg.poll_interval, self.tick)

    def _host_evictions(self) -> int:
        return sum(vm.counters.host_evictions for vm in self.machine.vms)

    def _observe(self) -> dict[int, GuestObservation]:
        observations: dict[int, GuestObservation] = {}
        for vm in self.machine.vms:
            guest = vm.guest
            if guest is None or guest.oom_killed:
                continue
            swap_now = (vm.counters.guest_swap_sectors_written
                        + vm.counters.guest_swap_faults)
            swap_delta = swap_now - self._last_guest_swap.get(vm.vm_id, 0)
            self._last_guest_swap[vm.vm_id] = swap_now
            observations[vm.vm_id] = GuestObservation(
                guest.memory_stats(), swap_delta)
        return observations

    def tick(self) -> None:
        """One manager cycle: poll, decide, set targets."""
        self.ticks += 1
        observations = self._observe()
        if not observations:
            return
        evictions = self._host_evictions()
        evictions_delta = evictions - self._last_host_evictions
        self._last_host_evictions = evictions
        decision = self.cfg.policy.decide(observations, evictions_delta)

        now = self.machine.now
        for vm in self.machine.vms:
            target = decision.targets.get(vm.vm_id)
            if target is None:
                continue
            guest = vm.guest
            guest.set_balloon_target(target)
            self.history.append((now, vm.vm_id, target))
            # Deflation is applied eagerly: returning memory costs the
            # guest nothing, and an idle guest has no workload steps
            # that would otherwise pick the new target up.
            if target < guest.balloon_size:
                try:
                    guest.apply_balloon(self.cfg.max_step_pages)
                except GuestOomKill:  # pragma: no cover - deflate is safe
                    self.oom_events += 1
