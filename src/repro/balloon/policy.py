"""Balloon sizing policies.

The default :class:`BalloonPolicy` mirrors MOM's rule style: it watches
*pressure signals* (host reclaim activity, guest free memory) and nudges
balloon targets by bounded increments.  That reactive, increment-based
control is exactly why ballooning trails changing demand (paper Section
2.3): by the time a spike is visible in the statistics, the host has
already fallen back on uncooperative swapping.

:class:`ProportionalSharePolicy` is an idealized alternative that
divides host memory in proportion to current demand -- useful as an
upper-bound ablation for how much better a clairvoyant manager would do.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class GuestObservation:
    """Per-guest statistics a manager can actually observe."""

    #: ``memory_stats()`` snapshot from the guest.
    stats: dict[str, int]
    #: Guest-swap activity since the last poll (sectors + faults).
    guest_swap_activity: int


@dataclass(frozen=True)
class PolicyDecision:
    """Balloon targets (pages) per VM index, plus diagnostics."""

    targets: dict[int, int]
    host_pressure: bool
    total_demand: int


class BalloonPolicy:
    """MOM-like reactive policy.

    * Host pressure (uncooperative evictions observed since the last
      poll) => inflate the balloons of guests with idle memory.
    * Guest pressure (low free memory or recent guest swapping)
      => deflate that guest's balloon.
    * Balloons never exceed the classic 65 % bound the paper cites for
      ESX, and moves are bounded per tick.
    """

    def __init__(
        self,
        *,
        balloon_max_fraction: float = 0.65,
        inflate_step_fraction: float = 0.08,
        deflate_step_fraction: float = 0.10,
        guest_free_low_fraction: float = 0.06,
        host_pressure_evictions: int = 256,
        guest_swap_activity_threshold: int = 64,
    ) -> None:
        if not 0.0 <= balloon_max_fraction <= 1.0:
            raise ConfigError("balloon_max_fraction must be in [0, 1]")
        if inflate_step_fraction <= 0 or deflate_step_fraction <= 0:
            raise ConfigError("step fractions must be positive")
        self.balloon_max_fraction = balloon_max_fraction
        self.inflate_step_fraction = inflate_step_fraction
        self.deflate_step_fraction = deflate_step_fraction
        self.guest_free_low_fraction = guest_free_low_fraction
        self.host_pressure_evictions = host_pressure_evictions
        self.guest_swap_activity_threshold = guest_swap_activity_threshold

    def decide(
        self,
        observations: dict[int, GuestObservation],
        host_evictions_since_last: int,
    ) -> PolicyDecision:
        """Compute new balloon targets from observable pressure."""
        host_pressure = (
            host_evictions_since_last >= self.host_pressure_evictions)
        targets: dict[int, int] = {}
        total_demand = 0
        for vm_id, obs in observations.items():
            stats = obs.stats
            total = stats["total"]
            balloon = stats["pinned"]
            free = stats["free"]
            idle = free + stats["cache_clean"]
            total_demand += total - idle
            guest_pressure = (
                free < total * self.guest_free_low_fraction
                or obs.guest_swap_activity
                >= self.guest_swap_activity_threshold)

            target = balloon
            if guest_pressure:
                target = balloon - int(total * self.deflate_step_fraction)
            elif host_pressure and idle > 0:
                step = min(int(total * self.inflate_step_fraction),
                           max(0, idle - total // 50))
                target = balloon + step
            target = max(0, min(target,
                                int(total * self.balloon_max_fraction)))
            targets[vm_id] = target
        return PolicyDecision(targets, host_pressure, total_demand)


class ProportionalSharePolicy:
    """Idealized demand-proportional division (ablation baseline).

    Splits host capacity across guests in proportion to committed
    memory -- what a manager with instant, perfect knowledge would do.
    """

    def __init__(
        self,
        *,
        headroom_fraction: float = 0.08,
        balloon_max_fraction: float = 0.65,
        host_reserve_pages: int = 0,
        host_capacity_pages: int = 0,
    ) -> None:
        if headroom_fraction < 0:
            raise ConfigError("headroom must be non-negative")
        if not 0.0 <= balloon_max_fraction <= 1.0:
            raise ConfigError("balloon_max_fraction must be in [0, 1]")
        if host_capacity_pages <= 0:
            raise ConfigError("host_capacity_pages must be provided")
        self.headroom_fraction = headroom_fraction
        self.balloon_max_fraction = balloon_max_fraction
        self.host_reserve_pages = host_reserve_pages
        self.host_capacity_pages = host_capacity_pages

    def demand_of(self, stats: dict[str, int]) -> int:
        """Estimated pages the guest currently wants resident."""
        committed = (stats["kernel_reserve"] + stats["anon_resident"]
                     + stats["cache_clean"] + stats["cache_dirty"])
        demand = int(committed * (1.0 + self.headroom_fraction))
        return min(demand, stats["total"])

    def decide(
        self,
        observations: dict[int, GuestObservation],
        host_evictions_since_last: int,
    ) -> PolicyDecision:
        del host_evictions_since_last  # clairvoyant: pressure-independent
        capacity = max(
            0, self.host_capacity_pages - self.host_reserve_pages)
        demands = {
            vm_id: self.demand_of(obs.stats)
            for vm_id, obs in observations.items()
        }
        total_demand = sum(demands.values())
        oversubscribed = total_demand > capacity
        targets: dict[int, int] = {}
        for vm_id, obs in observations.items():
            total = obs.stats["total"]
            demand = demands[vm_id]
            if oversubscribed and total_demand > 0:
                granted = int(demand * capacity / total_demand)
            else:
                granted = demand
            balloon = total - granted
            balloon_max = int(total * self.balloon_max_fraction)
            targets[vm_id] = max(0, min(balloon, balloon_max))
        return PolicyDecision(targets, oversubscribed, total_demand)
