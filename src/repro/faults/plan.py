"""The seeded fault schedule consulted by every injection hook.

Each layer draws from its own RNG substream (``disk``, ``swap``,
``mapper``), so adding a hook to one layer never perturbs another
layer's schedule -- the same isolation discipline the simulator uses
for workload randomness.  Machine-wide injection totals accumulate in
:attr:`FaultPlan.counters`, a :class:`repro.metrics.counters.Counters`
instance, alongside the per-VM counters the hooks also bump.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.config import FaultConfig
from repro.errors import ConfigError
from repro.faults.breaker import CircuitBreaker
from repro.metrics.counters import Counters
from repro.sim.rng import DeterministicRng

#: Process-wide fallback consulted by Machine when a MachineConfig
#: carries no FaultConfig; set by the CLI's ``--faults`` flag so
#: experiments that build their own MachineConfig still get injection.
_DEFAULT_FAULT_CONFIG: FaultConfig | None = None


def set_default_fault_config(config: FaultConfig | None) -> None:
    """Install (or clear) the process-wide default fault plan."""
    global _DEFAULT_FAULT_CONFIG
    _DEFAULT_FAULT_CONFIG = config


def default_fault_config() -> FaultConfig | None:
    """The process-wide default fault plan, if any."""
    return _DEFAULT_FAULT_CONFIG


def should_kill_worker(config: FaultConfig, cell_id: str, seed: int,
                       attempt: int) -> bool:
    """Whether a supervised worker kills itself before running a cell.

    The draw is a pure function of (seed, cell id, attempt) -- its RNG
    is forked fresh here, never from the machine's stream -- so the
    chaos fault cannot perturb simulation results: a killed attempt ran
    nothing, and the surviving attempt's machine sees the exact same
    randomness as an unchaosed run.  Attempts past
    ``worker_kill_max_attempt`` are never struck, which is what lets a
    retrying supervisor always recover the cell.
    """
    if (not config.enabled or not config.worker_kill_rate
            or attempt > config.worker_kill_max_attempt):
        return False
    rng = DeterministicRng(seed).fork(f"worker-kill:{cell_id}:{attempt}")
    return rng.chance(config.worker_kill_rate)


class StoreFaultPoint(enum.Enum):
    """Crash/stall points the result-store write path can inject.

    The first two model a process dying (SIGKILL, power loss) at the
    two interesting instants of a write-then-rename: before the rename
    (the record never lands; only a tmp orphan is left) and after the
    rename but before the durability stamp (the record landed but the
    writer never acknowledged).  ``TORN_WRITE`` models reordered disk
    writes surviving a crash: the rename landed but the data blocks did
    not, so the record is truncated at rest and must fail verification.
    ``LOCK_STALL`` holds the per-record write lock longer than needed,
    manufacturing the contention the backoff/retry path exists for.
    """

    BEFORE_RENAME = "crash-before-rename"
    AFTER_RENAME = "crash-after-rename"
    TORN_WRITE = "torn-write"
    LOCK_STALL = "lock-stall"


@dataclass(frozen=True)
class StoreFaultConfig:
    """Deterministic fault plan for the result store's write path.

    Seeded like :class:`FaultPlan`: each strike decision is a pure
    function of ``(seed, point, record key)`` drawn from a substream
    forked per point and key, so the same configuration replays the
    same crashes.  Unlike simulation faults, store crashes leave
    durable evidence (a dead process, a torn file), so every strike is
    also appended to an on-disk ledger *before* it lands and
    ``max_strikes`` bounds strikes per (point, key) across process
    restarts -- which is what lets a crash-then-resume loop always
    converge instead of re-killing the same record forever (the same
    role ``worker_kill_max_attempt`` plays for worker-kill chaos).
    """

    enabled: bool = False
    seed: int = 1
    #: Probability a record write aborts (hard ``os._exit``) after the
    #: tmp file is written but before the rename publishes it.
    crash_before_rename_rate: float = 0.0
    #: Probability a record write aborts right after the rename, before
    #: the store's last-writer stamp is updated.
    crash_after_rename_rate: float = 0.0
    #: Probability a record lands truncated (the write "succeeds" but
    #: the record at rest fails verification).
    torn_write_rate: float = 0.0
    #: Probability a writer stalls while holding its record lock...
    lock_stall_rate: float = 0.0
    #: ...for this long, manufacturing lock contention.
    lock_stall_seconds: float = 0.05
    #: Strikes allowed per (point, key) across all processes sharing
    #: the store (enforced via the store's strike ledger).
    max_strikes: int = 1

    _RATES = {
        StoreFaultPoint.BEFORE_RENAME: "crash_before_rename_rate",
        StoreFaultPoint.AFTER_RENAME: "crash_after_rename_rate",
        StoreFaultPoint.TORN_WRITE: "torn_write_rate",
        StoreFaultPoint.LOCK_STALL: "lock_stall_rate",
    }

    def validate(self) -> None:
        for attr in self._RATES.values():
            rate = getattr(self, attr)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{attr} must be within [0, 1]: {rate}")
        if self.lock_stall_seconds < 0:
            raise ConfigError("lock_stall_seconds must be non-negative")
        if self.max_strikes < 1:
            raise ConfigError("max_strikes must be >= 1")

    def rate_for(self, point: StoreFaultPoint) -> float:
        """The configured strike probability of one crash point."""
        return getattr(self, self._RATES[point])

    @staticmethod
    def chaos(rate: float = 0.25, seed: int = 1) -> "StoreFaultConfig":
        """The standing store-chaos plan: every point armed at ``rate``
        (the CLI's ``--store-faults RATE``)."""
        return StoreFaultConfig(
            enabled=True, seed=seed,
            crash_before_rename_rate=rate,
            crash_after_rename_rate=rate,
            torn_write_rate=rate,
            lock_stall_rate=rate,
        )


def should_strike_store(config: StoreFaultConfig, point: StoreFaultPoint,
                        key: str, strikes_so_far: int) -> bool:
    """Whether a store write suffers ``point`` for record ``key``.

    Pure in ``(seed, point, key)`` -- the RNG is forked fresh per
    decision, so arming one point never perturbs another's schedule.
    ``strikes_so_far`` is the ledger count for this (point, key); at
    ``max_strikes`` the point is spent and recovery can proceed.
    """
    if not config.enabled or strikes_so_far >= config.max_strikes:
        return False
    rate = config.rate_for(point)
    if not rate:
        return False
    rng = DeterministicRng(config.seed).fork(f"store:{point.value}:{key}")
    return rng.chance(rate)


class FaultPlan:
    """Deterministic per-machine fault decisions.

    Hooks return their decision *and* record it in :attr:`counters`;
    when the plan is disabled every hook short-circuits to "no fault"
    without consuming randomness, so enabling faults later cannot
    retroactively change a fault-free run.
    """

    def __init__(self, config: FaultConfig, rng: DeterministicRng) -> None:
        config.validate()
        self.cfg = config
        self.counters = Counters()
        self._disk_rng = rng.fork("disk")
        self._swap_rng = rng.fork("swap")
        self._mapper_rng = rng.fork("mapper")
        # Swap-backend tier faults draw from their own substream
        # (fork() is pure, so adding it perturbs no existing schedule).
        self._backend_rng = rng.fork("swapback")

    @property
    def enabled(self) -> bool:
        """Whether any injection happens at all."""
        return self.cfg.enabled

    @property
    def max_retries(self) -> int:
        """Failed attempts tolerated before an operation aborts."""
        return self.cfg.max_retries

    def retry_backoff(self, attempt: int) -> float:
        """Exponential backoff before retry number ``attempt`` (1-based)."""
        return self.cfg.backoff_base * self.cfg.backoff_factor ** (attempt - 1)

    # ------------------------------------------------------------------
    # disk layer
    # ------------------------------------------------------------------

    def disk_transient_error(self) -> bool:
        """Whether this disk request attempt fails transiently."""
        if not self.enabled or not self.cfg.disk_transient_error_rate:
            return False
        return self._disk_rng.chance(self.cfg.disk_transient_error_rate)

    def disk_latency_spike(self) -> float:
        """Extra service seconds injected into this request (0 = none)."""
        if not self.enabled or not self.cfg.disk_latency_spike_rate:
            return 0.0
        if self._disk_rng.chance(self.cfg.disk_latency_spike_rate):
            return self.cfg.disk_latency_spike_seconds
        return 0.0

    def disk_torn_write(self) -> bool:
        """Whether this write lands torn and must be reissued."""
        if not self.enabled or not self.cfg.disk_torn_write_rate:
            return False
        return self._disk_rng.chance(self.cfg.disk_torn_write_rate)

    # ------------------------------------------------------------------
    # host swap path
    # ------------------------------------------------------------------

    def swap_read_failure(self) -> bool:
        """Whether this swap-in read attempt fails and must be retried."""
        if not self.enabled or not self.cfg.swap_read_error_rate:
            return False
        return self._swap_rng.chance(self.cfg.swap_read_error_rate)

    def swap_slot_corrupted(self) -> bool:
        """Whether the faulting slot fails its checksum (unrecoverable)."""
        if not self.enabled or not self.cfg.swap_slot_corruption_rate:
            return False
        return self._swap_rng.chance(self.cfg.swap_slot_corruption_rate)

    # ------------------------------------------------------------------
    # swap backend tiers (repro.swapback)
    # ------------------------------------------------------------------

    def remote_timeout(self) -> float:
        """Timeout penalty injected into one remote-memory swap request
        (0 = the request goes through cleanly).  The remote backend
        absorbs the penalty as extra stall and retries internally."""
        if not self.enabled or not self.cfg.remote_swap_timeout_rate:
            return 0.0
        if self._backend_rng.chance(self.cfg.remote_swap_timeout_rate):
            return self.cfg.remote_swap_timeout_seconds
        return 0.0

    def compressed_stall(self) -> float:
        """Pool-pressure stall injected into one compressed-tier store
        (0 = no stall)."""
        if not self.enabled or not self.cfg.compressed_stall_rate:
            return 0.0
        if self._backend_rng.chance(self.cfg.compressed_stall_rate):
            return self.cfg.compressed_stall_seconds
        return 0.0

    # ------------------------------------------------------------------
    # mapper
    # ------------------------------------------------------------------

    def mapper_invalidation(self) -> bool:
        """Whether a just-built association is forcibly invalidated."""
        if not self.enabled or not self.cfg.mapper_invalidation_rate:
            return False
        return self._mapper_rng.chance(self.cfg.mapper_invalidation_rate)

    def new_breaker(self) -> CircuitBreaker:
        """A fresh per-VM circuit breaker at the configured threshold."""
        return CircuitBreaker(self.cfg.mapper_breaker_threshold)

    # ------------------------------------------------------------------
    # host lifecycle (cluster-level chaos)
    # ------------------------------------------------------------------
    #
    # Host-fault draws follow the ``should_kill_worker`` discipline: a
    # *fresh* RNG forked from ``host_fault_seed`` per decision, never
    # the machine's streams.  Arming host faults therefore consumes no
    # randomness any simulation component sees, which is what makes a
    # surviving host's VMs bit-identical to an uninjected run.

    def host_crash_time(self, host_name: str) -> float | None:
        """Virtual time at which ``host_name`` hard-crashes, or None.

        Pure in ``(host_fault_seed, host_name)``: the same seed replays
        the same crash schedule across interpreter launches.
        """
        if not self.enabled or not self.cfg.host_crash_rate:
            return None
        rng = DeterministicRng(self.cfg.host_fault_seed).fork(
            f"host-crash:{host_name}")
        if not rng.chance(self.cfg.host_crash_rate):
            return None
        return rng.uniform(0.0, self.cfg.host_fault_horizon)

    def host_degrade_window(
            self, host_name: str) -> tuple[float, float, float] | None:
        """``(start, duration, latency factor)`` of a transient
        degradation window for ``host_name``, or None."""
        if not self.enabled or not self.cfg.host_degrade_rate:
            return None
        rng = DeterministicRng(self.cfg.host_fault_seed).fork(
            f"host-degrade:{host_name}")
        if not rng.chance(self.cfg.host_degrade_rate):
            return None
        start = rng.uniform(0.0, self.cfg.host_fault_horizon)
        return (start, self.cfg.host_degrade_duration,
                self.cfg.host_degrade_factor)

    def migration_fail_point(self, label: str, seq: int) -> str | None:
        """Whether (and how) one migration copy fails mid-transfer.

        Returns ``"rollback"`` (the copy dies before the commit point:
        the VM stays on the source, untouched), ``"complete"`` (it dies
        after: the destination finishes the move), or None.  Pure in
        ``(host_fault_seed, label, seq)`` so a retried copy draws a
        fresh, reproducible decision.
        """
        if not self.enabled or not self.cfg.migration_failure_rate:
            return None
        rng = DeterministicRng(self.cfg.host_fault_seed).fork(
            f"migration-fail:{label}:{seq}")
        if not rng.chance(self.cfg.migration_failure_rate):
            return None
        return "complete" if rng.chance(0.5) else "rollback"
