"""The seeded fault schedule consulted by every injection hook.

Each layer draws from its own RNG substream (``disk``, ``swap``,
``mapper``), so adding a hook to one layer never perturbs another
layer's schedule -- the same isolation discipline the simulator uses
for workload randomness.  Machine-wide injection totals accumulate in
:attr:`FaultPlan.counters`, a :class:`repro.metrics.counters.Counters`
instance, alongside the per-VM counters the hooks also bump.
"""

from __future__ import annotations

from repro.config import FaultConfig
from repro.faults.breaker import CircuitBreaker
from repro.metrics.counters import Counters
from repro.sim.rng import DeterministicRng

#: Process-wide fallback consulted by Machine when a MachineConfig
#: carries no FaultConfig; set by the CLI's ``--faults`` flag so
#: experiments that build their own MachineConfig still get injection.
_DEFAULT_FAULT_CONFIG: FaultConfig | None = None


def set_default_fault_config(config: FaultConfig | None) -> None:
    """Install (or clear) the process-wide default fault plan."""
    global _DEFAULT_FAULT_CONFIG
    _DEFAULT_FAULT_CONFIG = config


def default_fault_config() -> FaultConfig | None:
    """The process-wide default fault plan, if any."""
    return _DEFAULT_FAULT_CONFIG


def should_kill_worker(config: FaultConfig, cell_id: str, seed: int,
                       attempt: int) -> bool:
    """Whether a supervised worker kills itself before running a cell.

    The draw is a pure function of (seed, cell id, attempt) -- its RNG
    is forked fresh here, never from the machine's stream -- so the
    chaos fault cannot perturb simulation results: a killed attempt ran
    nothing, and the surviving attempt's machine sees the exact same
    randomness as an unchaosed run.  Attempts past
    ``worker_kill_max_attempt`` are never struck, which is what lets a
    retrying supervisor always recover the cell.
    """
    if (not config.enabled or not config.worker_kill_rate
            or attempt > config.worker_kill_max_attempt):
        return False
    rng = DeterministicRng(seed).fork(f"worker-kill:{cell_id}:{attempt}")
    return rng.chance(config.worker_kill_rate)


class FaultPlan:
    """Deterministic per-machine fault decisions.

    Hooks return their decision *and* record it in :attr:`counters`;
    when the plan is disabled every hook short-circuits to "no fault"
    without consuming randomness, so enabling faults later cannot
    retroactively change a fault-free run.
    """

    def __init__(self, config: FaultConfig, rng: DeterministicRng) -> None:
        config.validate()
        self.cfg = config
        self.counters = Counters()
        self._disk_rng = rng.fork("disk")
        self._swap_rng = rng.fork("swap")
        self._mapper_rng = rng.fork("mapper")

    @property
    def enabled(self) -> bool:
        """Whether any injection happens at all."""
        return self.cfg.enabled

    @property
    def max_retries(self) -> int:
        """Failed attempts tolerated before an operation aborts."""
        return self.cfg.max_retries

    def retry_backoff(self, attempt: int) -> float:
        """Exponential backoff before retry number ``attempt`` (1-based)."""
        return self.cfg.backoff_base * self.cfg.backoff_factor ** (attempt - 1)

    # ------------------------------------------------------------------
    # disk layer
    # ------------------------------------------------------------------

    def disk_transient_error(self) -> bool:
        """Whether this disk request attempt fails transiently."""
        if not self.enabled or not self.cfg.disk_transient_error_rate:
            return False
        return self._disk_rng.chance(self.cfg.disk_transient_error_rate)

    def disk_latency_spike(self) -> float:
        """Extra service seconds injected into this request (0 = none)."""
        if not self.enabled or not self.cfg.disk_latency_spike_rate:
            return 0.0
        if self._disk_rng.chance(self.cfg.disk_latency_spike_rate):
            return self.cfg.disk_latency_spike_seconds
        return 0.0

    def disk_torn_write(self) -> bool:
        """Whether this write lands torn and must be reissued."""
        if not self.enabled or not self.cfg.disk_torn_write_rate:
            return False
        return self._disk_rng.chance(self.cfg.disk_torn_write_rate)

    # ------------------------------------------------------------------
    # host swap path
    # ------------------------------------------------------------------

    def swap_read_failure(self) -> bool:
        """Whether this swap-in read attempt fails and must be retried."""
        if not self.enabled or not self.cfg.swap_read_error_rate:
            return False
        return self._swap_rng.chance(self.cfg.swap_read_error_rate)

    def swap_slot_corrupted(self) -> bool:
        """Whether the faulting slot fails its checksum (unrecoverable)."""
        if not self.enabled or not self.cfg.swap_slot_corruption_rate:
            return False
        return self._swap_rng.chance(self.cfg.swap_slot_corruption_rate)

    # ------------------------------------------------------------------
    # mapper
    # ------------------------------------------------------------------

    def mapper_invalidation(self) -> bool:
        """Whether a just-built association is forcibly invalidated."""
        if not self.enabled or not self.cfg.mapper_invalidation_rate:
            return False
        return self._mapper_rng.chance(self.cfg.mapper_invalidation_rate)

    def new_breaker(self) -> CircuitBreaker:
        """A fresh per-VM circuit breaker at the configured threshold."""
        return CircuitBreaker(self.cfg.mapper_breaker_threshold)
