"""Circuit breaker: repeated faults flip a subsystem into fallback.

The paper's data-consistency argument (Section 4.1) is that the Swap
Mapper may *always* fall back to ordinary uncooperative swapping when
an association can no longer be trusted.  The breaker decides when
"occasionally untrusted" becomes "systematically untrusted": after
``threshold`` recorded faults it trips, once, and stays open.
"""

from __future__ import annotations


class CircuitBreaker:
    """Counts faults; trips permanently once ``threshold`` is reached."""

    def __init__(self, threshold: int) -> None:
        if threshold <= 0:
            raise ValueError(f"breaker threshold must be positive: {threshold}")
        self.threshold = threshold
        self.count = 0
        self.tripped = False

    def record(self) -> bool:
        """Note one fault.  Returns True exactly once: on the trip."""
        self.count += 1
        if not self.tripped and self.count >= self.threshold:
            self.tripped = True
            return True
        return False

    def reset(self) -> None:
        """Re-close the breaker and forget every recorded fault.

        Nothing inside a run calls this -- a tripped Mapper stays in
        the Section 4.1 fallback for the run's remainder -- but an
        operator acting between runs (or a recovered host) may re-arm
        the mechanism; the next trip needs ``threshold`` fresh faults.
        """
        self.count = 0
        self.tripped = False
