"""Deterministic fault injection (the chaos layer).

A :class:`~repro.faults.plan.FaultPlan` is built from a seeded
:class:`~repro.config.FaultConfig` and consulted by three layers:

* the disk device (transient errors, latency spikes, torn writes),
* the hypervisor's swap path (failed swap-in reads, slot corruption),
* the Swap Mapper (forced consistency invalidations, whose repetition
  trips a per-VM circuit breaker into the paper's Section 4.1 fallback
  to ordinary uncooperative swapping),
* the supervised executor (:func:`should_kill_worker` hard-kills
  worker processes *outside* the simulation, exercising the
  CellSupervisor's crash recovery without perturbing results).

Every decision flows through :class:`repro.sim.rng.DeterministicRng`
substreams, so a (seed, FaultConfig) pair fully determines the fault
schedule and chaos runs are bit-for-bit repeatable.
"""

from repro.faults.breaker import CircuitBreaker
from repro.faults.plan import (
    FaultPlan,
    default_fault_config,
    set_default_fault_config,
    should_kill_worker,
)

__all__ = [
    "CircuitBreaker",
    "FaultPlan",
    "default_fault_config",
    "set_default_fault_config",
    "should_kill_worker",
]
