"""Disk substrate: latency models, shared device, image, swap area.

The paper's testbed stores both the guest disk images and the host swap
area on one 7200 RPM hard drive, so the cost of every swap decision is
a function of *where the head is*.  This package models exactly that:
a single request queue, a head position, and distance-dependent seeks
between the image, swap, and host-root regions.
"""

from repro.disk.latency import HddLatencyModel, LatencyModel, SsdLatencyModel
from repro.disk.geometry import DiskLayout, DiskRegion
from repro.disk.device import DiskDevice, DiskStats
from repro.disk.image import VirtualDiskImage, BlockVersion
from repro.disk.swaparea import HostSwapArea

__all__ = [
    "LatencyModel",
    "HddLatencyModel",
    "SsdLatencyModel",
    "DiskLayout",
    "DiskRegion",
    "DiskDevice",
    "DiskStats",
    "VirtualDiskImage",
    "BlockVersion",
    "HostSwapArea",
]
