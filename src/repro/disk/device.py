"""The shared physical disk: one head, one queue.

All guests' virtual I/O, the host swap traffic, and hypervisor-code
fault-ins funnel through one :class:`DiskDevice`, so contention and
head thrashing between regions emerge naturally (Figures 3 and 14).

Reads are synchronous: the caller stalls for queue wait + service time.
Writes are asynchronous (host swap-out and guest write-back are both
buffered in reality): the caller does not stall, but the request still
occupies the head, delaying subsequent reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.disk.latency import LatencyModel
from repro.errors import DiskError, FaultError
from repro.sim.clock import Clock
from repro.trace.collector import NULL_TRACE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import FaultPlan


@dataclass
class DiskStats:
    """Device-level totals (all guests, all regions)."""

    requests: int = 0
    sectors_read: int = 0
    sectors_written: int = 0
    seeks: int = 0
    busy_time: float = 0.0
    #: Histogram of request counts per region name.
    per_region_requests: dict[str, int] = field(default_factory=dict)
    # --- fault injection (zero unless a FaultPlan is attached) --------
    transient_errors: int = 0
    retries: int = 0
    fault_aborts: int = 0
    latency_spikes: int = 0
    torn_writes: int = 0


class DiskDevice:
    """Single-head disk with distance-dependent service times."""

    def __init__(self, clock: Clock, latency: LatencyModel,
                 *, name: str = "disk0",
                 max_write_backlog: float = 0.25,
                 faults: "FaultPlan | None" = None) -> None:
        self.clock = clock
        self.latency = latency
        self.name = name
        #: Write-back throttling: an async writer stalls until the
        #: device backlog drains below this many seconds (dirty-page
        #: throttling keeps buffered writes from being free).
        self.max_write_backlog = max_write_backlog
        #: Optional deterministic fault schedule (chaos layer).
        self.faults = faults
        #: Service-time multiplier while the owning host is degraded
        #: (host-fault injection); exactly 1.0 means healthy and the
        #: hot path skips the multiply entirely.
        self.latency_scale = 1.0
        #: Trace collector; the machine swaps in a live one under
        #: ``--trace``.
        self.trace = NULL_TRACE
        self.stats = DiskStats()
        self._busy_until = 0.0
        self._head_sector = 0

    @property
    def head_sector(self) -> int:
        """Where the head will rest after the queued work completes."""
        return self._head_sector

    @property
    def busy_until(self) -> float:
        """Virtual time at which all queued requests finish."""
        return self._busy_until

    def _serve(self, start_sector: int, nsectors: int, *, write: bool,
               region: str) -> tuple[float, float]:
        """Queue one request; returns (completion_time, stall_for_reader).

        The stall is measured from *now*: queue wait plus service time.
        """
        if nsectors <= 0:
            raise DiskError(f"non-positive request length: {nsectors}")
        if start_sector < 0:
            raise DiskError(f"negative start sector: {start_sector}")
        now = self.clock.now
        begin = max(now, self._busy_until)
        distance = abs(start_sector - self._head_sector)
        service = self.latency.service_time(distance, nsectors)
        if self.latency_scale != 1.0:
            service *= self.latency_scale
        if self.faults is not None and self.faults.enabled:
            service = self._inject_faults(service, write=write)
        completion = begin + service

        self.stats.requests += 1
        self.stats.busy_time += service
        if distance:
            self.stats.seeks += 1
        if write:
            self.stats.sectors_written += nsectors
        else:
            self.stats.sectors_read += nsectors
        bucket = self.stats.per_region_requests
        bucket[region] = bucket.get(region, 0) + 1

        self._busy_until = completion
        self._head_sector = start_sector + nsectors
        if self.trace.enabled:
            self.trace.emit(
                "disk.submit", sector=start_sector, sectors=nsectors,
                write=write, region=region)
            # The request leaves the head in the virtual future; the
            # completion record is stamped there so span timelines show
            # the device draining after the triggering guest op.
            self.trace.emit(
                "disk.complete", at=completion, sector=start_sector,
                region=region)
        return completion, completion - now

    def _inject_faults(self, service: float, *, write: bool) -> float:
        """Apply the fault plan to one request; returns adjusted service.

        Latency spikes stretch the request; transient errors re-issue it
        after an exponential backoff, up to the plan's retry budget, and
        then abort with :class:`FaultError`; torn writes are detected by
        the block layer and reissued once.  Every decision lands in both
        the device stats and the plan's machine-wide counters.
        """
        plan = self.faults
        base_service = service
        spike = plan.disk_latency_spike()
        if spike:
            service += spike
            self.stats.latency_spikes += 1
            plan.counters.bump("disk_latency_spikes")
        attempt = 1
        while plan.disk_transient_error():
            self.stats.transient_errors += 1
            plan.counters.bump("disk_transient_errors")
            if attempt > plan.max_retries:
                self.stats.fault_aborts += 1
                plan.counters.bump("disk_fault_aborts")
                raise FaultError(
                    f"{self.name}: request failed after {attempt} attempts")
            service += plan.retry_backoff(attempt) + base_service
            self.stats.retries += 1
            plan.counters.bump("disk_retries")
            attempt += 1
        if write and plan.disk_torn_write():
            self.stats.torn_writes += 1
            plan.counters.bump("disk_torn_writes")
            service += base_service  # detected and rewritten in full
        return service

    def read(self, start_sector: int, nsectors: int,
             *, region: str = "?") -> float:
        """Synchronous read; returns the caller's stall time in seconds."""
        _completion, stall = self._serve(
            start_sector, nsectors, write=False, region=region)
        return stall

    def read_async(self, start_sector: int, nsectors: int,
                   *, region: str = "?") -> float:
        """Non-blocking read (Preventer merge path); returns completion.

        The requester is not waiting for the data right now; the request
        still occupies the head like any other.
        """
        completion, _stall = self._serve(
            start_sector, nsectors, write=False, region=region)
        return completion

    def write_async(self, start_sector: int, nsectors: int,
                    *, region: str = "?") -> float:
        """Buffered write; returns the writer's *throttle* stall.

        The request occupies the head (delaying later requests), and
        when the device backlog exceeds :attr:`max_write_backlog` the
        writer is stalled until it drains below the cap -- write-back
        throttling, without which buffered writes would be free.
        """
        completion, _stall = self._serve(
            start_sector, nsectors, write=True, region=region)
        backlog = completion - self.clock.now
        return max(0.0, backlog - self.max_write_backlog)

    def write_sync(self, start_sector: int, nsectors: int,
                   *, region: str = "?") -> float:
        """Synchronous write (fsync/flush paths); returns stall time."""
        _completion, stall = self._serve(
            start_sector, nsectors, write=True, region=region)
        return stall

    def quiesce(self) -> None:
        """Drain the queue instantly and reset statistics.

        Used after untimed setup phases (guest boot history) so the
        measured workload starts with an idle device and clean stats.
        """
        self._busy_until = self.clock.now
        self.stats = DiskStats()

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` the device spent busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.stats.busy_time / elapsed)
