"""Physical layout of the shared drive.

The paper's host keeps everything on one disk: the host root filesystem
(holding the QEMU executable), the host swap partition, and the guests'
raw image files.  Region placement matters because inter-region seeks
are the dominant cost of interleaved swap/image traffic (Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DiskError
from repro.units import SECTORS_PER_PAGE


@dataclass(frozen=True)
class DiskRegion:
    """A contiguous range of physical sectors with a name."""

    name: str
    base_sector: int
    size_sectors: int

    def sector_of_page(self, page_index: int) -> int:
        """Absolute sector of the region-local page ``page_index``."""
        sector = page_index * SECTORS_PER_PAGE
        if sector < 0 or sector + SECTORS_PER_PAGE > self.size_sectors:
            raise DiskError(
                f"page {page_index} outside region {self.name!r} "
                f"({self.size_sectors} sectors)"
            )
        return self.base_sector + sector

    @property
    def size_pages(self) -> int:
        """Whole pages that fit in the region."""
        return self.size_sectors // SECTORS_PER_PAGE

    def contains(self, sector: int) -> bool:
        """Whether the absolute ``sector`` lies inside this region."""
        return self.base_sector <= sector < self.base_sector + self.size_sectors


class DiskLayout:
    """Sequential allocator of named regions on one physical disk.

    Regions are laid out in allocation order with a configurable gap,
    mimicking partitions / large files placed apart on the platter.
    """

    def __init__(self, *, gap_sectors: int = 4 * 1024 * 1024) -> None:
        self._regions: dict[str, DiskRegion] = {}
        self._next_base = 0
        self._gap = gap_sectors

    def add_region(self, name: str, size_sectors: int) -> DiskRegion:
        """Carve out the next ``size_sectors`` as region ``name``."""
        if name in self._regions:
            raise DiskError(f"duplicate region name: {name!r}")
        if size_sectors <= 0:
            raise DiskError(f"region {name!r} must have positive size")
        region = DiskRegion(name, self._next_base, size_sectors)
        self._regions[name] = region
        self._next_base += size_sectors + self._gap
        return region

    def add_region_pages(self, name: str, size_pages: int) -> DiskRegion:
        """Convenience: carve a region sized in whole pages."""
        return self.add_region(name, size_pages * SECTORS_PER_PAGE)

    def region(self, name: str) -> DiskRegion:
        """Look up a region by name."""
        try:
            return self._regions[name]
        except KeyError:
            raise DiskError(f"unknown region: {name!r}") from None

    @property
    def total_sectors(self) -> int:
        """Span of the allocated layout (for seek-distance scaling)."""
        return self._next_base

    def regions(self) -> list[DiskRegion]:
        """All regions in allocation order."""
        return list(self._regions.values())
