"""Disk service-time models.

The default :class:`HddLatencyModel` approximates the paper's Seagate
Constellation 7200 RPM drive: a distance-dependent seek, half-rotation
rotational delay on non-adjacent requests, and a fixed streaming
bandwidth.  Adjacent (head-continuing) requests pay transfer time only,
which is what makes sequential layouts an order of magnitude faster --
the physical fact behind *decayed swap sequentiality*.
"""

from __future__ import annotations

import math
from typing import Protocol

from repro.errors import DiskError
from repro.units import SECTOR_SIZE


class LatencyModel(Protocol):
    """Computes service time for one request, given head movement."""

    def service_time(self, distance_sectors: int, nsectors: int) -> float:
        """Seconds to serve ``nsectors`` after moving ``distance_sectors``.

        ``distance_sectors`` is zero when the request starts exactly
        where the previous one ended (streaming).
        """
        ...


class HddLatencyModel:
    """Seek + rotation + transfer model for a 7200 RPM drive.

    seek(d)  = seek_min + (seek_max - seek_min) * sqrt(d / span)
    rotation = rotation_fraction of one revolution (when the head moved)
    transfer = bytes / bandwidth

    ``rotation_fraction`` defaults below the naive half-revolution
    because queued I/O with an elevator scheduler amortizes rotational
    latency across outstanding requests.
    """

    def __init__(
        self,
        *,
        bandwidth_bytes_per_sec: float = 120e6,
        seek_min: float = 0.8e-3,
        seek_max: float = 9.5e-3,
        rpm: float = 7200.0,
        rotation_fraction: float = 0.25,
        span_sectors: int = 2 * 1024 * 1024 * 1024 * 2,  # 2 TB in sectors
        per_request_overhead: float = 50e-6,
    ) -> None:
        if bandwidth_bytes_per_sec <= 0:
            raise DiskError("bandwidth must be positive")
        if span_sectors <= 0:
            raise DiskError("span must be positive")
        if not 0.0 <= rotation_fraction <= 1.0:
            raise DiskError("rotation_fraction must be in [0, 1]")
        self.bandwidth = bandwidth_bytes_per_sec
        self.seek_min = seek_min
        self.seek_max = seek_max
        self.rotation_half = rotation_fraction * 60.0 / rpm
        self.span_sectors = span_sectors
        self.per_request_overhead = per_request_overhead

    def seek_time(self, distance_sectors: int) -> float:
        """Head-movement time for a seek of the given sector distance."""
        if distance_sectors <= 0:
            return 0.0
        fraction = min(1.0, distance_sectors / self.span_sectors)
        return self.seek_min + (self.seek_max - self.seek_min) * math.sqrt(fraction)

    def service_time(self, distance_sectors: int, nsectors: int) -> float:
        if nsectors <= 0:
            raise DiskError(f"non-positive transfer length: {nsectors}")
        transfer = nsectors * SECTOR_SIZE / self.bandwidth
        if distance_sectors == 0:
            return self.per_request_overhead + transfer
        return (
            self.per_request_overhead
            + self.seek_time(distance_sectors)
            + self.rotation_half
            + transfer
        )


class SsdLatencyModel:
    """Position-independent flash model (used by ablation benches).

    The paper notes VSwapper's write elimination is "beneficial for
    systems that employ solid state drives"; the SSD ablation bench
    quantifies that by swapping this model in.
    """

    def __init__(
        self,
        *,
        bandwidth_bytes_per_sec: float = 450e6,
        read_latency: float = 80e-6,
        write_latency: float = 250e-6,
    ) -> None:
        if bandwidth_bytes_per_sec <= 0:
            raise DiskError("bandwidth must be positive")
        self.bandwidth = bandwidth_bytes_per_sec
        self.read_latency = read_latency
        self.write_latency = write_latency
        #: DiskDevice consults this flag-free interface only through
        #: service_time; reads and writes share the read latency there,
        #: with the write premium applied via service_time_write.
        self.per_request_overhead = read_latency

    def service_time(self, distance_sectors: int, nsectors: int) -> float:
        if nsectors <= 0:
            raise DiskError(f"non-positive transfer length: {nsectors}")
        del distance_sectors  # flash: position independent
        return self.read_latency + nsectors * SECTOR_SIZE / self.bandwidth

    def service_time_write(self, distance_sectors: int,
                           nsectors: int) -> float:
        """Write service time: the flash program premium plus transfer.

        ``DiskDevice`` itself charges reads and writes symmetrically
        through :meth:`service_time`; the dedicated swap backends
        (``repro.swapback``) use this method to apply the write premium.
        """
        if nsectors <= 0:
            raise DiskError(f"non-positive transfer length: {nsectors}")
        del distance_sectors
        return self.write_latency + nsectors * SECTOR_SIZE / self.bandwidth
