"""Virtual disk image with content versioning.

The simulator never stores real bytes.  Instead each image block keeps
a monotonically increasing *version*; a memory page that was filled
from block ``b`` at version ``v`` records the pair ``(b, v)``.  The
page's bytes equal the block's current bytes iff the image still holds
version ``v`` -- which is all the Swap Mapper's correctness and the
silent-swap-write metric need to know.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.disk.geometry import DiskRegion
from repro.errors import DiskError


@dataclass(frozen=True)
class BlockVersion:
    """Identity of one block's contents at some point in time."""

    block: int
    version: int


class VirtualDiskImage:
    """One guest's raw disk image, mapped onto a physical region.

    Blocks are page-sized (the Mapper reports a 4 KiB logical sector
    size to guests precisely so this granularity holds -- Section 4.1
    "Page Alignment").
    """

    def __init__(self, region: DiskRegion) -> None:
        self.region = region
        self.size_blocks = region.size_pages
        # Sparse: blocks never written stay at version 0.
        self._versions: dict[int, int] = {}

    def _check(self, block: int) -> None:
        if not 0 <= block < self.size_blocks:
            raise DiskError(
                f"block {block} outside image of {self.size_blocks} blocks")

    def version_of(self, block: int) -> int:
        """Current content version of ``block`` (0 = never written)."""
        self._check(block)
        return self._versions.get(block, 0)

    def current(self, block: int) -> BlockVersion:
        """The block's current content identity."""
        return BlockVersion(block, self.version_of(block))

    def write(self, block: int) -> BlockVersion:
        """Overwrite ``block`` with new content; returns its new identity."""
        self._check(block)
        version = self._versions.get(block, 0) + 1
        self._versions[block] = version
        return BlockVersion(block, version)

    def matches(self, block: int, content: object) -> bool:
        """Whether ``content`` equals the block's current contents.

        Non-:class:`BlockVersion` contents (None, zero pages, anonymous
        data) never match a disk block.
        """
        if not isinstance(content, BlockVersion):
            return False
        return (content.block == block
                and content.version == self.version_of(block))

    def sector_of(self, block: int) -> int:
        """Absolute physical sector where ``block`` starts."""
        self._check(block)
        return self.region.sector_of_page(block)
