"""Host swap-area slot allocator.

Linux allocates swap slots in *clusters*: a reclaim batch receives a
contiguous run of slots so that related pages land together, which is
what makes swap readahead worthwhile at all.  Freed slots coalesce into
holes and are reused first-fit-by-run.  Decayed swap sequentiality
emerges from the stragglers: pages brought in by readahead but never
touched keep their old slots, so reusable holes fragment over time and
eviction batches are increasingly scattered across slot generations.
"""

from __future__ import annotations

from repro.disk.geometry import DiskRegion
from repro.errors import DiskError


class HostSwapArea:
    """Page-sized swap slots with run (cluster) allocation.

    ``budget_slots`` is a ``memory.swap.max``-style cap: the node may
    never hold more than that many slots at once, however large the
    backing region is.  Exceeding it raises :class:`DiskError` exactly
    like physical exhaustion; a budget of 0 forbids swapping outright.
    """

    def __init__(self, region: DiskRegion, *,
                 budget_slots: int | None = None) -> None:
        self.region = region
        self.size_slots = region.size_pages
        if budget_slots is not None and budget_slots < 0:
            raise DiskError(f"negative swap budget: {budget_slots}")
        self.budget_slots = budget_slots
        #: Holes below the frontier: start -> length, kept coalesced.
        self._holes: dict[int, int] = {}
        #: end (start+length) -> start, for O(1) coalescing.
        self._hole_ends: dict[int, int] = {}
        #: Everything at/after the frontier has never been used.
        self._frontier = 0
        self._allocated: set[int] = set()
        #: Highest slot ever handed out + 1; proxy for swap footprint.
        self.high_watermark = 0

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    @property
    def used_slots(self) -> int:
        """Slots currently holding swapped-out pages."""
        return len(self._allocated)

    @property
    def free_slots(self) -> int:
        """Slots available for allocation."""
        return self.size_slots - len(self._allocated)

    def is_allocated(self, slot: int) -> bool:
        """Whether ``slot`` currently holds swapped content."""
        return slot in self._allocated

    @property
    def budget_pressure(self) -> float:
        """Occupied fraction of the effective cap (budget, else region
        size) -- the node-pressure signal the cluster migrates against."""
        cap = (self.budget_slots if self.budget_slots is not None
               else self.size_slots)
        return self.used_slots / cap if cap else 0.0

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------

    def allocate_run(self, n: int) -> list[int]:
        """Allocate ``n`` slots, contiguous when possible.

        Order of preference (mirroring the kernel's cluster scan):
        the lowest coalesced hole large enough, then fresh space at the
        frontier, then piecemeal hole fragments (the decayed regime).
        """
        if n <= 0:
            raise DiskError(f"non-positive run length: {n}")
        if n > self.free_slots:
            raise DiskError("host swap area exhausted")
        if (self.budget_slots is not None
                and self.used_slots + n > self.budget_slots):
            raise DiskError(
                f"swap budget exceeded: {self.used_slots} used + {n} "
                f"requested > budget of {self.budget_slots} slots")
        best_start = None
        for start, length in self._holes.items():
            if length >= n and (best_start is None or start < best_start):
                best_start = start
        if best_start is not None:
            return self._carve(best_start, n)
        if self._frontier + n <= self.size_slots:
            start = self._frontier
            self._frontier += n
            return self._take(start, n)
        # Fragmented fallback: gather the lowest fragments one by one.
        slots: list[int] = []
        while len(slots) < n:
            slots.extend(self.allocate_run(
                min(n - len(slots), self._largest_fit(n - len(slots)))))
        return slots

    def allocate(self) -> int:
        """Allocate a single slot (lowest hole first, then frontier)."""
        return self.allocate_run(1)[0]

    def _largest_fit(self, want: int) -> int:
        """Largest run length <= want available anywhere."""
        best = 0
        for length in self._holes.values():
            best = max(best, min(length, want))
            if best == want:
                return best
        if self._frontier < self.size_slots:
            best = max(best, min(want, self.size_slots - self._frontier))
        if best == 0:
            raise DiskError("host swap area exhausted")
        return best

    def _carve(self, start: int, n: int) -> list[int]:
        length = self._holes.pop(start)
        del self._hole_ends[start + length]
        if length > n:
            new_start = start + n
            self._holes[new_start] = length - n
            self._hole_ends[start + length] = new_start
        return self._take(start, n)

    def _take(self, start: int, n: int) -> list[int]:
        slots = list(range(start, start + n))
        self._allocated.update(slots)
        self.high_watermark = max(self.high_watermark, start + n)
        return slots

    # ------------------------------------------------------------------
    # freeing
    # ------------------------------------------------------------------

    def free(self, slot: int) -> None:
        """Return ``slot`` to the pool, coalescing with neighbours."""
        try:
            self._allocated.remove(slot)
        except KeyError:
            raise DiskError(f"double free of swap slot {slot}") from None
        start, length = slot, 1
        # Merge with the hole ending exactly where this one starts.
        left_start = self._hole_ends.pop(slot, None)
        if left_start is not None:
            left_len = self._holes.pop(left_start)
            start = left_start
            length += left_len
        # Merge with the hole starting right after.
        right_len = self._holes.pop(slot + 1, None)
        if right_len is not None:
            del self._hole_ends[slot + 1 + right_len]
            length += right_len
        self._holes[start] = length
        self._hole_ends[start + length] = start

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------

    def sector_of(self, slot: int) -> int:
        """Absolute physical sector where ``slot`` starts."""
        if not 0 <= slot < self.size_slots:
            raise DiskError(f"slot {slot} outside swap area")
        return self.region.sector_of_page(slot)

    def cluster_of(self, slot: int, cluster_size: int) -> range:
        """The aligned slot cluster containing ``slot``.

        Swap readahead (Linux ``page-cluster``) reads this whole aligned
        group on a fault; its usefulness depends on whether neighbouring
        slots still hold related pages.
        """
        if cluster_size <= 0:
            raise DiskError(f"non-positive cluster size: {cluster_size}")
        base = (slot // cluster_size) * cluster_size
        end = min(base + cluster_size, self.size_slots)
        return range(base, end)

    def fragmentation(self) -> float:
        """Fraction of free space below the frontier held in holes
        smaller than a typical reclaim batch (diagnostic)."""
        small = sum(v for v in self._holes.values() if v < 32)
        total = sum(self._holes.values())
        return small / total if total else 0.0
