"""The guest's file page cache.

General-purpose OSes keep file content cached "long after the content
is used, in the hope that it will get re-used" (paper, Section 3).
Against an uncooperative host this aggressiveness is the root of the
trouble: the guest happily fills its *believed* memory with cache while
the host silently swaps the excess out underneath it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GuestError


@dataclass
class CachedPage:
    """Guest-side descriptor of one cached file page."""

    block: int
    dirty: bool = False


class GuestPageCache:
    """block => GPA cache with dirty tracking."""

    def __init__(self) -> None:
        self._by_block: dict[int, int] = {}
        self._by_gpa: dict[int, CachedPage] = {}
        self._dirty_gpas: set[int] = set()

    def __len__(self) -> int:
        return len(self._by_gpa)

    @property
    def cached_pages(self) -> int:
        """Total pages in the cache."""
        return len(self._by_gpa)

    @property
    def dirty_pages(self) -> int:
        """Pages awaiting write-back."""
        return len(self._dirty_gpas)

    @property
    def clean_pages(self) -> int:
        """Pages droppable without I/O."""
        return len(self._by_gpa) - len(self._dirty_gpas)

    def lookup(self, block: int) -> int | None:
        """GPA caching ``block``, or None on a miss."""
        return self._by_block.get(block)

    def describe(self, gpa: int) -> CachedPage | None:
        """Cache descriptor for a GPA, or None if not a cache page."""
        return self._by_gpa.get(gpa)

    def insert(self, block: int, gpa: int, *, dirty: bool) -> None:
        """Cache ``block`` at ``gpa``."""
        if block in self._by_block:
            raise GuestError(f"block {block} already cached")
        if gpa in self._by_gpa:
            raise GuestError(f"GPA {gpa:#x} already holds a cache page")
        self._by_block[block] = gpa
        self._by_gpa[gpa] = CachedPage(block, dirty)
        if dirty:
            self._dirty_gpas.add(gpa)

    def mark_dirty(self, gpa: int) -> None:
        """Record an in-memory modification of a cached page."""
        page = self._require(gpa)
        page.dirty = True
        self._dirty_gpas.add(gpa)

    def mark_clean(self, gpa: int) -> None:
        """Record a completed write-back."""
        page = self._require(gpa)
        page.dirty = False
        self._dirty_gpas.discard(gpa)

    def remove(self, gpa: int) -> CachedPage:
        """Evict a page from the cache, returning its descriptor."""
        page = self._by_gpa.pop(gpa, None)
        if page is None:
            raise GuestError(f"GPA {gpa:#x} not in page cache")
        del self._by_block[page.block]
        self._dirty_gpas.discard(gpa)
        return page

    def dirty_gpas_snapshot(self) -> list[int]:
        """Dirty GPAs (write-back candidates), unordered."""
        return list(self._dirty_gpas)

    def clean_gpas_snapshot(self) -> list[int]:
        """Clean GPAs (drop candidates), unordered."""
        return [g for g in self._by_gpa if g not in self._dirty_gpas]

    def _require(self, gpa: int) -> CachedPage:
        page = self._by_gpa.get(gpa)
        if page is None:
            raise GuestError(f"GPA {gpa:#x} not in page cache")
        return page
