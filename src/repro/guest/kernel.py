"""The guest kernel: an unmodified OS as the hypervisor sees one.

This facade interprets workload operations (:mod:`repro.sim.ops`)
against the guest's page cache, anonymous memory, its own LRU reclaim,
its own swap device, and the balloon driver.  All actual memory access
and disk traffic is delegated to the host through a narrow interface
(``touch_page`` / ``overwrite_page`` / ``virtio_read`` /
``virtio_write`` / ``balloon_pin`` / ``balloon_unpin``), because from
the host's perspective those are the *only* observable guest actions --
the semantic gap VSwapper's Mapper bridges by watching exactly this
traffic.
"""

from __future__ import annotations

from typing import Iterable

from repro.config import GuestConfig, GuestOsKind
from repro.errors import GuestError, GuestOomKill
from repro.guest.anon import GuestAnonMemory, PageLocation
from repro.guest.filesystem import GuestFilesystem
from repro.guest.guestswap import GuestSwapDevice
from repro.guest.pagecache import GuestPageCache
from repro.mem.page import ZERO, AnonContent
from repro.mem.reclaim import ReclaimScanner
from repro.sim.ops import (
    Alloc,
    Compute,
    DropCaches,
    FileRead,
    FileSync,
    FileWrite,
    Free,
    MarkPhase,
    Operation,
    Overwrite,
    Touch,
    WritePattern,
)
from repro.sim.rng import DeterministicRng


class Transfer:
    """One page of virtual-disk I/O: image block <-> guest frame.

    ``aligned`` is False for sub-4 KiB transfers (Windows guests before
    reformatting, Section 5.4) which the Mapper cannot track.
    """

    __slots__ = ("block", "gpa", "aligned")

    def __init__(self, block: int, gpa: int, aligned: bool = True) -> None:
        self.block = block
        self.gpa = gpa
        self.aligned = aligned

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Transfer(block={self.block}, gpa={self.gpa:#x})"


class GuestKernel:
    """Guest OS state machine for one VM."""

    def __init__(self, config: GuestConfig, vm, host,
                 image_size_blocks: int, rng: DeterministicRng) -> None:
        config.validate()
        self.cfg = config
        self.vm = vm
        self.host = host
        self.rng = rng

        self.fs = GuestFilesystem(image_size_blocks, config.guest_swap_pages)
        self.gswap = GuestSwapDevice(
            self.fs.swap_start_block, config.guest_swap_pages)
        self.cache = GuestPageCache()
        self.anon = GuestAnonMemory()

        reserve = config.kernel_reserve_pages
        if reserve >= config.memory_pages:
            raise GuestError("kernel reserve exceeds guest memory")
        if config.allocator_window < 1:
            raise GuestError("allocator_window must be >= 1")
        #: GPAs [0, reserve) belong to the guest kernel image itself.
        self.free_list: list[int] = list(range(reserve, config.memory_pages))

        self._accessed: set[int] = set()
        self.scanner = ReclaimScanner(
            self._referenced, named_fraction=config.named_fraction)

        self.balloon_pinned: set[int] = set()
        self.balloon_target = 0
        self.workload_min_resident = 0
        self.oom_killed = False

        self._zero_cursor = 0
        self._windows = config.os_kind is GuestOsKind.WINDOWS
        # Allocation runs once per page of guest activity: hoist the
        # config-derived watermarks and the raw uniform-int primitive
        # (``randint(1, w)`` consumes exactly one ``_randbelow(w)``
        # draw, so binding it keeps the RNG sequence bit-identical).
        self._free_min = config.derived_free_min
        self._free_target = config.derived_free_target
        self._alloc_window = config.allocator_window
        self._dirty_threshold = int(
            config.dirty_threshold_fraction * config.memory_pages)
        self._getrandbits = getattr(
            getattr(rng, "_random", None), "getrandbits", None)

    # ------------------------------------------------------------------
    # operation dispatch
    # ------------------------------------------------------------------

    def execute(self, op: Operation) -> None:
        """Interpret one workload operation, charging ``vm.costs``."""
        if self.oom_killed:
            raise GuestOomKill("workload was killed by the guest OOM killer")
        if self._windows and self.cfg.zero_free_pages:
            self._zero_free_pages_background()

        if isinstance(op, Compute):
            self.vm.costs.cpu(op.seconds)
        elif isinstance(op, FileRead):
            self._file_read(op)
        elif isinstance(op, FileWrite):
            self._file_write(op)
        elif isinstance(op, FileSync):
            self._file_sync(op.file_id)
        elif isinstance(op, Alloc):
            self.anon.commit(op.region, op.npages)
        elif isinstance(op, Touch):
            self._touch_anon(op)
        elif isinstance(op, Overwrite):
            self._overwrite_anon(op)
        elif isinstance(op, Free):
            self._free_region(op.region)
        elif isinstance(op, DropCaches):
            self.drop_caches()
        elif isinstance(op, MarkPhase):
            if "min_resident_pages" in op.payload:
                self.workload_min_resident = int(
                    op.payload["min_resident_pages"])
                self._check_memory_demand()
        else:
            raise GuestError(f"unknown operation: {op!r}")

    # ------------------------------------------------------------------
    # file I/O
    # ------------------------------------------------------------------

    def _file_read(self, op: FileRead) -> None:
        fobj = self.fs.file(op.file_id)
        offset = op.offset_pages
        npages = op.npages
        # Bounds-check the whole span once; the per-page loops below
        # then use plain extent arithmetic instead of a checked
        # ``block_of`` call per page.
        fobj.block_of(offset)
        if npages > 1:
            fobj.block_of(offset + npages - 1)
        base = fobj.start_block + offset
        lookup = self.cache._by_block.get
        touch_page = self.host.touch_page
        note_access = self._accessed.add
        vm = self.vm
        costs = vm.costs
        if op.touch_cost < 0:
            raise GuestError(f"negative touch cost: {op.touch_cost}")
        touch_cost = op.touch_cost
        readahead = self.cfg.readahead_pages
        costs_cpu = costs.cpu
        # A guest load whose GPA is EPT-present never exits to the
        # hypervisor -- the hardware walk sets the accessed bit and the
        # guest carries on.  Model that directly: only non-present
        # pages (or pages under preventer emulation, which must trap)
        # take the ``touch_page`` slow path.
        ept = vm.ept
        present = ept._present
        hw_accessed = ept._accessed
        preventer = vm.preventer
        i = 0
        while i < npages:
            gpa = lookup(base + i)
            if gpa is not None:
                if (gpa < ept._size and present[gpa]
                        and (preventer is None or not preventer._emulated)):
                    hw_accessed[gpa] = 1
                else:
                    touch_page(vm, gpa)
                note_access(gpa)
                if touch_cost:
                    costs.cpu_seconds = costs.cpu_seconds + touch_cost
                i += 1
                continue
            # Miss: read ahead over the contiguous run of missing blocks.
            run_len = 1
            limit = min(readahead, npages - i)
            while (run_len < limit
                   and lookup(base + i + run_len) is None):
                run_len += 1
            transfers = [
                Transfer(base + i + k, self._alloc_gpa(), self._aligned())
                for k in range(run_len)
            ]
            self.host.virtio_read(vm, transfers)
            cache_insert = self.cache.insert
            note_resident = self.scanner.note_resident
            for t in transfers:
                cache_insert(t.block, t.gpa, dirty=False)
                note_resident(t.gpa, named=True)
                note_access(t.gpa)
            if touch_cost:
                costs_cpu(touch_cost * run_len)
            i += run_len

    def _file_write(self, op: FileWrite) -> None:
        fobj = self.fs.file(op.file_id)
        for k in range(op.npages):
            block = fobj.block_of(op.offset_pages + k)
            gpa = self.cache.lookup(block)
            if gpa is not None:
                self.host.touch_page(
                    self.vm, gpa, write=True, new_content=AnonContent.fresh())
                self.cache.mark_dirty(gpa)
            else:
                gpa = self._alloc_gpa()
                self.host.overwrite_page(
                    self.vm, gpa, AnonContent.fresh(),
                    WritePattern.FULL_SEQUENTIAL)
                self.cache.insert(block, gpa, dirty=True)
                self.scanner.note_resident(gpa, named=True)
            self._note_access(gpa)
            if op.touch_cost:
                self.vm.costs.cpu(op.touch_cost)
        self._writeback_if_needed()

    def _file_sync(self, file_id: str) -> None:
        fobj = self.fs.file(file_id)
        in_file = range(fobj.start_block, fobj.start_block + fobj.size_pages)
        dirty = [
            gpa for gpa in self.cache.dirty_gpas_snapshot()
            if self.cache.describe(gpa).block in in_file
        ]
        self._writeback(dirty, sync=True)

    def _writeback_if_needed(self) -> None:
        if self.cache.dirty_pages > self._dirty_threshold:
            dirty = self.cache.dirty_gpas_snapshot()
            dirty.sort(key=lambda g: self.cache.describe(g).block)
            self._writeback(dirty[: max(1, len(dirty) // 2)], sync=False)

    def _writeback(self, gpas: Iterable[int], *, sync: bool) -> None:
        transfers = [
            Transfer(self.cache.describe(gpa).block, gpa, self._aligned())
            for gpa in gpas
        ]
        if not transfers:
            return
        transfers.sort(key=lambda t: t.block)
        self.host.virtio_write(self.vm, transfers, sync=sync)
        for t in transfers:
            self.cache.mark_clean(t.gpa)

    # ------------------------------------------------------------------
    # anonymous memory
    # ------------------------------------------------------------------

    def _touch_anon(self, op: Touch) -> None:
        region = self.anon.region(op.region)
        pages = region.pages
        vm = self.vm
        costs = vm.costs
        if op.touch_cost < 0:
            raise GuestError(f"negative touch cost: {op.touch_cost}")
        touch_cost = op.touch_cost
        write = op.write
        touch_page = self.host.touch_page
        note_access = self._accessed.add
        unmaterialized = PageLocation.UNMATERIALIZED
        guest_swap = PageLocation.GUEST_SWAP
        # Read hits on EPT-present pages stay in "hardware" (no host
        # trap) -- see the matching fast path in ``_file_read``.
        ept = vm.ept
        present = ept._present
        hw_accessed = ept._accessed
        preventer = vm.preventer
        for index in range(op.start, op.start + op.npages, op.stride):
            state = pages[index]
            location = state.location
            if location is unmaterialized:
                # Demand-zero allocation: a whole-page overwrite.
                gpa = self._alloc_gpa()
                content = AnonContent.fresh() if write else ZERO
                self.host.overwrite_page(
                    vm, gpa, content, WritePattern.FULL_SEQUENTIAL)
                costs.cpu_seconds = costs.cpu_seconds + self.cfg.zero_page_cost
                self.anon.place_in_memory(op.region, index, gpa)
                self.scanner.note_resident(gpa, named=False)
            elif location is guest_swap:
                gpa = self._guest_swap_in(op.region, index, state.where)
                if write:
                    touch_page(vm, gpa, True, AnonContent.fresh())
            else:
                gpa = state.where
                if write:
                    touch_page(vm, gpa, True, AnonContent.fresh())
                elif (gpa < ept._size and present[gpa]
                        and (preventer is None or not preventer._emulated)):
                    hw_accessed[gpa] = 1
                else:
                    touch_page(vm, gpa)
            note_access(gpa)
            if touch_cost:
                costs.cpu_seconds = costs.cpu_seconds + touch_cost

    def _overwrite_anon(self, op: Overwrite) -> None:
        region = self.anon.region(op.region)
        for index in range(op.start, op.start + op.npages):
            state = region.pages[index]
            content = AnonContent.fresh()
            if state.location is PageLocation.UNMATERIALIZED:
                gpa = self._alloc_gpa()
                self.host.overwrite_page(self.vm, gpa, content, op.pattern)
                self.anon.place_in_memory(op.region, index, gpa)
                self.scanner.note_resident(gpa, named=False)
            elif state.location is PageLocation.GUEST_SWAP:
                # Overwriting a guest-swapped page: the guest allocates a
                # fresh frame and abandons the swap copy.
                self.gswap.free(state.where)
                state.location = PageLocation.UNMATERIALIZED
                gpa = self._alloc_gpa()
                self.host.overwrite_page(self.vm, gpa, content, op.pattern)
                self.anon.place_in_memory(op.region, index, gpa)
                self.scanner.note_resident(gpa, named=False)
            else:
                gpa = state.where
                self.host.overwrite_page(self.vm, gpa, content, op.pattern)
            self._note_access(gpa)
            self.vm.costs.cpu(self.cfg.zero_page_cost)
            if op.touch_cost:
                self.vm.costs.cpu(op.touch_cost)

    def _guest_swap_in(self, region_name: str, index: int, slot: int) -> int:
        """Fault an anon page back from the guest's own swap device."""
        gpa = self._alloc_gpa()
        block = self.gswap.block_of(slot)
        self.host.virtio_read(self.vm, [Transfer(block, gpa, self._aligned())])
        self.gswap.free(slot)
        state = self.anon.region(region_name).pages[index]
        state.location = PageLocation.UNMATERIALIZED  # re-place below
        state.where = -1
        self.anon.place_in_memory(region_name, index, gpa)
        self.scanner.note_resident(gpa, named=False)
        self.vm.counters.guest_swap_faults += 1
        return gpa

    def _free_region(self, name: str) -> None:
        gpas, slots = self.anon.release_region(name)
        for gpa in gpas:
            self.scanner.note_evicted(gpa)
            self._accessed.discard(gpa)
            self.free_list.append(gpa)
        for slot in slots:
            self.gswap.free(slot)

    # ------------------------------------------------------------------
    # allocation and guest reclaim
    # ------------------------------------------------------------------

    def _alloc_gpa(self) -> int:
        """Take a frame from the guest free list, reclaiming if low.

        Reuse is LIFO-with-a-window: the page comes from a random slot
        among the last ``allocator_window`` freed entries.  Hot (LIFO)
        reuse mirrors Linux's per-CPU page lists -- recently freed
        frames are exactly the ones the host has most likely swapped
        out underneath the guest, which is what turns page recycling
        into stale and false swap reads.  The window adds the buddy
        allocator's coalesce/split disorder, which is what defeats the
        host's swap readahead on those reads.
        """
        free_list = self.free_list
        if len(free_list) <= self._free_min:
            want = self._free_target - len(free_list)
            if want > 0:
                self._guest_reclaim(want)
        if not free_list:
            self._guest_reclaim(1)
        if not free_list:
            self._oom("guest out of memory with nothing reclaimable")
        n = len(free_list)
        window = self._alloc_window
        if window > n:
            window = n
        if window > 1:
            if self._getrandbits is not None:
                # randint(1, w) == 1 + _randbelow(w), and _randbelow is
                # rejection sampling over getrandbits -- replicated
                # inline so the draw sequence is identical.
                k = window.bit_length()
                getrandbits = self._getrandbits
                r = getrandbits(k)
                while r >= window:
                    r = getrandbits(k)
                index = n - 1 - r
            else:
                index = n - self.rng.randint(1, window)
            free_list[index], free_list[-1] = (
                free_list[-1], free_list[index])
        return free_list.pop()

    def _guest_reclaim(self, want: int) -> None:
        result = self.scanner.pick_victims(want)
        swap_victims: list[int] = []
        for gpa, _named in result.victims:
            descriptor = self.cache.describe(gpa)
            if descriptor is not None:
                if descriptor.dirty:
                    self._writeback([gpa], sync=False)
                self.cache.remove(gpa)
                # No note_evicted: pick_victims already popped the
                # victim off its clock list.
                self._accessed.discard(gpa)
                self.free_list.append(gpa)
            elif self.anon.is_anon_gpa(gpa):
                swap_victims.append(gpa)
            self.vm.counters.guest_evictions += 1
        if swap_victims:
            self._guest_swap_out(swap_victims)

    def _guest_swap_out(self, gpas: list[int]) -> None:
        transfers = []
        slots = []
        for gpa in gpas:
            if self.gswap.free_slots == 0:
                self._oom("guest swap device full during reclaim")
            slot = self.gswap.allocate()
            slots.append((gpa, slot))
            transfers.append(
                Transfer(self.gswap.block_of(slot), gpa, self._aligned()))
        self.host.virtio_write(self.vm, transfers, sync=False)
        for gpa, slot in slots:
            self.anon.move_to_swap(gpa, slot)
            self.scanner.note_evicted(gpa)
            self._accessed.discard(gpa)
            self.free_list.append(gpa)
            self.vm.counters.guest_swap_sectors_written += 8

    def drop_caches(self) -> None:
        """Release every clean page-cache page (``drop_caches`` style)."""
        for gpa in self.cache.clean_gpas_snapshot():
            self.cache.remove(gpa)
            self.scanner.note_evicted(gpa)
            self._accessed.discard(gpa)
            self.free_list.append(gpa)

    # ------------------------------------------------------------------
    # balloon driver
    # ------------------------------------------------------------------

    @property
    def balloon_size(self) -> int:
        """Pages currently pinned by the balloon."""
        return len(self.balloon_pinned)

    def set_balloon_target(self, target_pages: int) -> None:
        """Record the size the host-side manager asked for."""
        if target_pages < 0:
            raise GuestError(f"negative balloon target: {target_pages}")
        self.balloon_target = target_pages

    def apply_balloon(self, max_delta: int) -> int:
        """Move toward the target by at most ``max_delta`` pages.

        Returns the signed number of pages actually moved.  Inflation
        can raise :class:`GuestOomKill` when the guest cannot satisfy
        the request (over-ballooning, Section 2.4).
        """
        delta = self.balloon_target - self.balloon_size
        if delta > 0:
            return self.inflate(min(delta, max_delta))
        if delta < 0:
            return -self.deflate(min(-delta, max_delta))
        return 0

    def inflate(self, npages: int) -> int:
        """Pin ``npages`` pages, prompting guest reclaim as needed."""
        if npages <= 0:
            return 0
        available = (self.cfg.memory_pages - self.cfg.kernel_reserve_pages
                     - self.balloon_size - npages)
        if available < self.workload_min_resident:
            self._oom(
                f"over-ballooning: {available} pages left for a workload "
                f"needing {self.workload_min_resident}")
        taken_gpas: list[int] = []
        for _ in range(npages):
            gpa = self._alloc_gpa()
            self.balloon_pinned.add(gpa)
            taken_gpas.append(gpa)
        self.host.balloon_pin(self.vm, taken_gpas)
        self.vm.counters.balloon_inflated_pages += len(taken_gpas)
        return len(taken_gpas)

    def deflate(self, npages: int) -> int:
        """Release up to ``npages`` pinned pages back to the guest."""
        released = []
        for _ in range(min(npages, self.balloon_size)):
            released.append(self.balloon_pinned.pop())
        if released:
            self.host.balloon_unpin(self.vm, released)
            self.free_list.extend(released)
            self.vm.counters.balloon_deflated_pages += len(released)
        return len(released)

    # ------------------------------------------------------------------
    # statistics and helpers
    # ------------------------------------------------------------------

    def memory_stats(self) -> dict[str, int]:
        """Guest-side memory view (consumed by the balloon manager)."""
        return {
            "total": self.cfg.memory_pages,
            "free": len(self.free_list),
            "cache_clean": self.cache.clean_pages,
            "cache_dirty": self.cache.dirty_pages,
            "anon_resident": self.anon.resident_pages(),
            "pinned": self.balloon_size,
            "min_resident": self.workload_min_resident,
            "kernel_reserve": self.cfg.kernel_reserve_pages,
        }

    def committed_pages(self) -> int:
        """Pages the guest is actively using (demand estimate)."""
        return (self.cfg.kernel_reserve_pages + self.cache.cached_pages
                + self.anon.resident_pages())

    def _note_access(self, gpa: int) -> None:
        self._accessed.add(gpa)

    def _referenced(self, gpa: int) -> bool:
        if gpa in self._accessed:
            self._accessed.discard(gpa)
            return True
        return False

    def _aligned(self) -> bool:
        fraction = self.cfg.unaligned_io_fraction
        if fraction <= 0:
            return True
        return not self.rng.chance(fraction)

    def _check_memory_demand(self) -> None:
        """OOM check on a demand spike (Section 2.4 over-ballooning).

        When a workload phase announces a resident-set requirement the
        ballooned-away memory cannot accommodate, the guest's OOM or
        low-memory killer terminates it -- the crashes the paper
        reports for balloon configurations in Figures 5, 10 and 13.
        """
        available = (self.cfg.memory_pages - self.cfg.kernel_reserve_pages
                     - self.balloon_size)
        if self.workload_min_resident > available:
            self._oom(
                f"demand spike: workload needs {self.workload_min_resident} "
                f"resident pages, {available} available under balloon")

    def _oom(self, reason: str) -> None:
        self.oom_killed = True
        self.vm.counters.oom_kills += 1
        raise GuestOomKill(reason)

    def _zero_free_pages_background(self, batch: int = 16) -> None:
        """Windows-profile zero-page thread.

        Windows pre-zeroes free pages in the background; each zeroing of
        a host-swapped frame is a whole-page overwrite -- a false-read
        generator unique to this guest profile.
        """
        n = len(self.free_list)
        if n == 0:
            return
        zeroed = 0
        for _ in range(min(n, 4 * batch)):
            self._zero_cursor = (self._zero_cursor + 1) % n
            gpa = self.free_list[self._zero_cursor]
            if self.host.page_needs_zeroing(self.vm, gpa):
                self.host.overwrite_page(
                    self.vm, gpa, ZERO, WritePattern.FULL_SEQUENTIAL)
                self.vm.costs.cpu(self.cfg.zero_page_cost)
                zeroed += 1
                if zeroed >= batch:
                    break
