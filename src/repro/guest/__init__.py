"""Guest operating-system model.

The guest is an *unmodified* OS from the host's point of view: it
believes it owns ``GuestConfig.memory_pages`` of RAM, caches file
content aggressively, reclaims with its own LRU, and swaps to a region
of its own virtual disk.  Every pathological host interaction the paper
describes (Section 3) arises from this model running over the
:mod:`repro.host` hypervisor with less actual memory than the guest
believes it has.
"""

from repro.guest.filesystem import GuestFile, GuestFilesystem
from repro.guest.guestswap import GuestSwapDevice
from repro.guest.pagecache import CachedPage, GuestPageCache
from repro.guest.anon import AnonRegion, GuestAnonMemory, PageLocation
from repro.guest.kernel import GuestKernel

__all__ = [
    "GuestFile",
    "GuestFilesystem",
    "GuestSwapDevice",
    "CachedPage",
    "GuestPageCache",
    "AnonRegion",
    "GuestAnonMemory",
    "PageLocation",
    "GuestKernel",
]
