"""The guest's own swap device: a slot allocator over its virtual disk.

When ballooning (or plain guest memory pressure) forces the guest to
reclaim anonymous pages, it writes them here -- which from the host's
point of view is ordinary virtual-disk I/O (Figure 2 in the paper).
"""

from __future__ import annotations

import heapq

from repro.errors import GuestError


class GuestSwapDevice:
    """Page-sized swap slots living in the image's swap partition."""

    def __init__(self, start_block: int, size_pages: int) -> None:
        if size_pages < 0:
            raise GuestError(f"negative swap size: {size_pages}")
        self.start_block = start_block
        self.size_pages = size_pages
        self._free: list[int] = list(range(size_pages))
        heapq.heapify(self._free)
        self._used: set[int] = set()

    @property
    def used_slots(self) -> int:
        """Slots holding swapped-out guest pages."""
        return len(self._used)

    @property
    def free_slots(self) -> int:
        """Slots available."""
        return self.size_pages - len(self._used)

    def allocate(self) -> int:
        """Take the lowest free slot; raises when the device is full."""
        while self._free:
            slot = heapq.heappop(self._free)
            if slot not in self._used:
                self._used.add(slot)
                return slot
        raise GuestError("guest swap device full")

    def free(self, slot: int) -> None:
        """Release a slot after swap-in."""
        if slot not in self._used:
            raise GuestError(f"double free of guest swap slot {slot}")
        self._used.remove(slot)
        heapq.heappush(self._free, slot)

    def block_of(self, slot: int) -> int:
        """Image block corresponding to a slot."""
        if not 0 <= slot < self.size_pages:
            raise GuestError(f"slot {slot} outside guest swap device")
        return self.start_block + slot
