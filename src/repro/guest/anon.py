"""Guest anonymous memory: named regions of process heap/stack pages.

Pages materialize lazily: committing a region reserves nothing, and the
first touch performs demand-zero allocation -- a whole-page overwrite,
which is one of the guest behaviours that trigger *false swap reads*
when the underlying frame was swapped out by the host (Section 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import GuestError


class PageLocation(enum.Enum):
    """Where an anonymous page's content currently lives."""

    UNMATERIALIZED = "unmaterialized"
    MEMORY = "memory"
    GUEST_SWAP = "guest_swap"


@dataclass
class AnonPageState:
    """Location of one page of a region."""

    location: PageLocation = PageLocation.UNMATERIALIZED
    #: GPA when in memory, guest swap slot when swapped.
    where: int = -1


class AnonRegion:
    """A committed anonymous mapping, addressed by page index."""

    def __init__(self, name: str, npages: int) -> None:
        if npages <= 0:
            raise GuestError(f"region {name!r} needs at least one page")
        self.name = name
        self.npages = npages
        self.pages = [AnonPageState() for _ in range(npages)]

    def resident_pages(self) -> int:
        """Pages of this region currently held in guest memory."""
        return sum(
            1 for p in self.pages if p.location is PageLocation.MEMORY)


class GuestAnonMemory:
    """All anonymous regions plus the GPA reverse map."""

    def __init__(self) -> None:
        self._regions: dict[str, AnonRegion] = {}
        #: gpa -> (region name, page index) for in-memory anon pages.
        self._by_gpa: dict[int, tuple[str, int]] = {}

    def commit(self, name: str, npages: int) -> AnonRegion:
        """Create a region; committing is free of memory until touched."""
        if name in self._regions:
            raise GuestError(f"region exists: {name!r}")
        region = AnonRegion(name, npages)
        self._regions[name] = region
        return region

    def region(self, name: str) -> AnonRegion:
        """Look up a region by name."""
        try:
            return self._regions[name]
        except KeyError:
            raise GuestError(f"no such region: {name!r}") from None

    def has_region(self, name: str) -> bool:
        """Whether the region exists."""
        return name in self._regions

    def place_in_memory(self, name: str, index: int, gpa: int) -> None:
        """Record that page ``index`` of ``name`` now lives at ``gpa``."""
        state = self.region(name).pages[index]
        if state.location is PageLocation.MEMORY:
            raise GuestError(
                f"page {index} of {name!r} already in memory")
        state.location = PageLocation.MEMORY
        state.where = gpa
        self._by_gpa[gpa] = (name, index)

    def move_to_swap(self, gpa: int, slot: int) -> None:
        """Record guest swap-out of the anon page at ``gpa``."""
        name, index = self.owner_of(gpa)
        state = self._regions[name].pages[index]
        state.location = PageLocation.GUEST_SWAP
        state.where = slot
        del self._by_gpa[gpa]

    def owner_of(self, gpa: int) -> tuple[str, int]:
        """(region, index) owning an in-memory anon GPA."""
        try:
            return self._by_gpa[gpa]
        except KeyError:
            raise GuestError(f"GPA {gpa:#x} is not an anon page") from None

    def is_anon_gpa(self, gpa: int) -> bool:
        """Whether ``gpa`` currently holds an anonymous page."""
        return gpa in self._by_gpa

    def release_region(self, name: str) -> tuple[list[int], list[int]]:
        """Destroy a region; returns (freed GPAs, freed guest-swap slots)."""
        region = self._regions.pop(name, None)
        if region is None:
            raise GuestError(f"no such region: {name!r}")
        gpas: list[int] = []
        slots: list[int] = []
        for state in region.pages:
            if state.location is PageLocation.MEMORY:
                gpas.append(state.where)
                del self._by_gpa[state.where]
            elif state.location is PageLocation.GUEST_SWAP:
                slots.append(state.where)
        return gpas, slots

    def resident_pages(self) -> int:
        """Anon pages currently in guest memory, across regions."""
        return len(self._by_gpa)

    def region_names(self) -> list[str]:
        """All region names."""
        return list(self._regions)
