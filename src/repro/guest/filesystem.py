"""Extent-based layout of guest files inside the virtual disk image.

Files are allocated as single contiguous extents, which is the common
case for freshly written benchmark files on ext4 and what makes guest
readahead (and the Mapper's image refaults) sequential.  The tail of
the image is reserved for the guest's swap partition.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GuestError


@dataclass(frozen=True)
class GuestFile:
    """One guest file: a name and a contiguous block extent."""

    name: str
    start_block: int
    size_pages: int

    def block_of(self, page_index: int) -> int:
        """Image block backing page ``page_index`` of the file."""
        if not 0 <= page_index < self.size_pages:
            raise GuestError(
                f"page {page_index} outside file {self.name!r} "
                f"({self.size_pages} pages)")
        return self.start_block + page_index


class GuestFilesystem:
    """Sequential extent allocator over the guest's image blocks."""

    #: Blocks at the start of the image reserved for the guest OS
    #: installation (kernel, binaries) -- file extents start after it.
    OS_RESERVED_BLOCKS = 2048

    def __init__(self, image_size_blocks: int, swap_pages: int) -> None:
        if swap_pages < 0:
            raise GuestError(f"negative swap size: {swap_pages}")
        if image_size_blocks <= self.OS_RESERVED_BLOCKS + swap_pages:
            raise GuestError(
                "image too small for OS reserve plus swap partition")
        self.image_size_blocks = image_size_blocks
        #: Guest swap partition occupies the image tail.
        self.swap_start_block = image_size_blocks - swap_pages
        self.swap_pages = swap_pages
        self._files: dict[str, GuestFile] = {}
        self._next_block = self.OS_RESERVED_BLOCKS

    def create_file(self, name: str, size_pages: int) -> GuestFile:
        """Allocate a contiguous extent for a new file."""
        if name in self._files:
            raise GuestError(f"file exists: {name!r}")
        if size_pages <= 0:
            raise GuestError(f"file needs at least one page: {size_pages}")
        if self._next_block + size_pages > self.swap_start_block:
            raise GuestError(
                f"filesystem full: cannot place {size_pages} pages")
        fobj = GuestFile(name, self._next_block, size_pages)
        self._files[name] = fobj
        self._next_block += size_pages
        return fobj

    def file(self, name: str) -> GuestFile:
        """Look up a file by name."""
        try:
            return self._files[name]
        except KeyError:
            raise GuestError(f"no such file: {name!r}") from None

    def has_file(self, name: str) -> bool:
        """Whether ``name`` exists."""
        return name in self._files

    def ensure_file(self, name: str, size_pages: int) -> GuestFile:
        """Return the file, creating it on first use."""
        if name in self._files:
            existing = self._files[name]
            if existing.size_pages < size_pages:
                raise GuestError(
                    f"file {name!r} exists with {existing.size_pages} pages, "
                    f"need {size_pages}")
            return existing
        return self.create_file(name, size_pages)

    def files(self) -> list[GuestFile]:
        """All files in creation order."""
        return list(self._files.values())
