"""Live migration of one VM between cluster hosts.

The byte accounting reuses :class:`repro.core.migration.MigrationPlanner`
(paper Section 7): a Mapper-equipped source ships disk-block references
for tracked pages instead of their contents, so VSwapper guests
evacuate with a fraction of the baseline's traffic.  The transfer cost
lands on the VM as a stall (``vm.pending_stall``) charged to its next
operation -- the guest observes migration as a freeze, not as CPU work.

Mechanically the move is a teardown/rebuild: the source host forgets
every frame, swap slot, and slot-ownership record of the VM (exactly
the ``balloon_pin`` discipline, but preserving logical page contents),
then the destination re-admits the VM, re-binds its image region and
QEMU process, and maps every carried page back in -- applying its own
reclaim pressure through ``_make_room`` as it does.  Mapper
associations are block-relative, so they survive the region re-bind;
tracked-resident pages arrive clean ("named") on the destination while
everything else arrives dirty-assumed, as a real pre-copy would leave
it.  Swapped-out pages are carried as resident memory: the wire format
is page contents, not foreign swap slots.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.migration import MigrationPlanner
from repro.host.qemu import QemuProcess
from repro.host.vm import Vm, code_key
from repro.trace.collector import NULL_TRACE

from repro.cluster.host import Host


@dataclass(frozen=True)
class MigrationRecord:
    """One completed migration, as logged by the cluster."""

    time: float
    vm_name: str
    src: str
    dst: str
    #: Guest pages re-materialized on the destination.
    carried_pages: int
    #: Bytes shipped (mapper-aware when the VM runs VSwapper).
    transferred_bytes: int
    #: Freeze charged to the VM's next operation.
    downtime_seconds: float
    #: Source swap pressure at the moment the controller acted.
    src_pressure: float

    def to_dict(self) -> dict:
        return {
            "time": self.time, "vm": self.vm_name,
            "src": self.src, "dst": self.dst,
            "pages": self.carried_pages,
            "bytes": self.transferred_bytes,
            "downtime": self.downtime_seconds,
            "src_pressure": self.src_pressure,
        }


def migrate_vm(vm: Vm, src: Host, dst: Host, *,
               bandwidth_bytes_per_sec: float, region_name: str,
               trace=NULL_TRACE) -> MigrationRecord:
    """Evacuate ``vm`` from ``src`` to ``dst``; returns the record."""
    src_pressure = src.swap_pressure
    hyp = src.hypervisor

    # Open emulation buffers reference source-host swap slots: close
    # and merge them through the source before any accounting.
    preventer = vm.preventer
    if preventer is not None:
        for gpa in preventer.close_all():
            vm.counters.preventer_merges += 1
            hyp._merge_buffered_page(vm, gpa, sync=True, context="host")

    # Byte accounting over live state, before teardown empties it.
    plan = MigrationPlanner().plan(vm)
    transferred = (plan.vswapper_bytes if vm.mapper is not None
                   else plan.baseline_bytes)
    mapper = vm.mapper
    present = sorted(vm.ept.present_gpas())
    carried = sorted(set(present) | set(vm.swap_slots))
    tracked = {gpa for gpa in present
               if mapper is not None and mapper.is_tracked_resident(gpa)}

    # --- source teardown: release every frame, slot, and ownership
    # record (buffered swap-out writes simply vanish -- the contents
    # travel over the wire instead of to the source disk).
    for gpa in carried:
        if vm.ept.is_present(gpa):
            vm.ept.unmap_page(gpa)
            src.frames.release(1)
            vm.scanner.note_evicted(gpa)
        if gpa in vm.swap_cache:
            del vm.swap_cache[gpa]
            src.frames.release(1)
            vm.scanner.note_evicted(gpa)
        slot = vm.swap_slots.pop(gpa, None)
        if slot is not None:
            vm.pending_swap.pop(gpa, None)
            src.swap_area.free(slot)
            hyp.slot_owner.pop(slot, None)
        slot = vm.swap_clean.pop(gpa, None)
        if slot is not None:
            hyp.slot_owner.pop(slot, None)
            src.swap_area.free(slot)
    for index in sorted(vm.qemu.resident):
        src.frames.release(1)
        vm.scanner.note_evicted(code_key(index))
    src.release_vm(vm)

    # --- destination rebind: image region, QEMU text, guest kernel.
    vm.image.region = dst.layout.add_region_pages(
        region_name, vm.cfg.image_size_pages)
    code_pages = dst.cfg.hypervisor_code_pages
    base = dst.claim_code_base(code_pages)
    vm.qemu = QemuProcess(dst._host_root, base, code_pages)
    vm.guest.host = dst.hypervisor
    dst.adopt_vm(vm)

    # --- rebuild: map every carried page, letting the destination's
    # own reclaim make room.  Tracked pages arrive clean and named;
    # the rest is dirty-assumed anonymous memory, as pre-copy leaves it.
    for gpa in carried:
        dst.hypervisor._make_room(vm, 1, "host")
        is_tracked = gpa in tracked
        vm.ept.map_page(gpa, accessed=False, dirty=not is_tracked)
        dst.frames.allocate(1)
        vm.scanner.note_resident(gpa, named=is_tracked)
    vm.refresh_gauges()

    downtime = (transferred / bandwidth_bytes_per_sec
                if bandwidth_bytes_per_sec > 0 else 0.0)
    vm.pending_stall += downtime
    vm.counters.bump("migrations")
    if trace.enabled:
        trace.emit("cluster.migrate", vm=vm.name, src=src.name,
                   dst=dst.name, pages=len(carried), bytes=transferred,
                   downtime=downtime)
    return MigrationRecord(
        time=src.engine.now, vm_name=vm.name, src=src.name, dst=dst.name,
        carried_pages=len(carried), transferred_bytes=transferred,
        downtime_seconds=downtime, src_pressure=src_pressure)
