"""Live migration of one VM between cluster hosts.

The byte accounting reuses :class:`repro.core.migration.MigrationPlanner`
(paper Section 7): a Mapper-equipped source ships disk-block references
for tracked pages instead of their contents, so VSwapper guests
evacuate with a fraction of the baseline's traffic.  The transfer cost
lands on the VM as a stall (``vm.pending_stall``) charged to its next
operation -- the guest observes migration as a freeze, not as CPU work.

Mechanically the move is a teardown/rebuild: the source host forgets
every frame, swap slot, and slot-ownership record of the VM (exactly
the ``balloon_pin`` discipline, but preserving logical page contents),
then the destination re-admits the VM, re-binds its image region and
QEMU process, and maps every carried page back in -- applying its own
reclaim pressure through ``_make_room`` as it does.  Mapper
associations are block-relative, so they survive the region re-bind;
tracked-resident pages arrive clean ("named") on the destination while
everything else arrives dirty-assumed, as a real pre-copy would leave
it.  Swapped-out pages are carried as resident memory: the wire format
is page contents, not foreign swap slots.

Failure semantics (host-fault injection): a copy that dies mid-transfer
either *rolls back* -- the commit point was never reached, the VM keeps
running on the source, no state moved -- or *completes* -- the failure
hit after the commit point, so the destination finishes the move.
Never both: the decision is drawn once, up front, and the two outcomes
touch disjoint state.  The teardown/rebuild halves are exposed as
:func:`teardown_vm_on_host` / :func:`rebuild_vm_on_host` so the
evacuation controller (``repro.cluster.recovery``) can reuse them when
the source host is dead and there is nothing to copy *from*.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Mapping

from repro.core.migration import MigrationPlanner
from repro.errors import ExperimentError
from repro.host.qemu import QemuProcess
from repro.host.vm import Vm, code_key
from repro.trace.collector import NULL_TRACE

from repro.cluster.host import Host

#: Bumped whenever MigrationRecord semantics change such that persisted
#: records (cell phases in the result store) stop being comparable.
MIGRATION_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class MigrationRecord:
    """One migration (or evacuation) attempt, as logged by the cluster."""

    time: float
    vm_name: str
    src: str
    dst: str
    #: Guest pages re-materialized on the destination.
    carried_pages: int
    #: Bytes shipped (mapper-aware when the VM runs VSwapper).
    transferred_bytes: int
    #: Freeze charged to the VM's next operation.
    downtime_seconds: float
    #: Source swap pressure at the moment the controller acted.
    src_pressure: float
    #: What kind of move this was: ``"pressure"`` (the periodic
    #: controller) or ``"evacuation"`` (host-failure recovery).
    kind: str = "pressure"
    #: 1-based attempt number (evacuations retry with backoff).
    attempt: int = 1
    #: ``"completed"`` or ``"rolled-back"`` (mid-copy failure before
    #: the commit point: the VM never left the source).
    outcome: str = "completed"

    def to_dict(self) -> dict:
        return {
            "schema": MIGRATION_SCHEMA_VERSION,
            "time": self.time, "vm": self.vm_name,
            "src": self.src, "dst": self.dst,
            "pages": self.carried_pages,
            "bytes": self.transferred_bytes,
            "downtime": self.downtime_seconds,
            "src_pressure": self.src_pressure,
            "kind": self.kind,
            "attempt": self.attempt,
            "outcome": self.outcome,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "MigrationRecord":
        """Inverse of :meth:`to_dict` (store round-trips)."""
        if data.get("schema") != MIGRATION_SCHEMA_VERSION:
            raise ExperimentError(
                f"migration record schema {data.get('schema')!r} != "
                f"{MIGRATION_SCHEMA_VERSION}")
        return cls(
            time=data["time"], vm_name=data["vm"],
            src=data["src"], dst=data["dst"],
            carried_pages=data["pages"],
            transferred_bytes=data["bytes"],
            downtime_seconds=data["downtime"],
            src_pressure=data["src_pressure"],
            kind=data.get("kind", "pressure"),
            attempt=data.get("attempt", 1),
            outcome=data.get("outcome", "completed"),
        )


def carried_state(vm: Vm) -> tuple[list[int], set[int], list[int]]:
    """``(carried gpas, tracked-resident subset, open buffers)`` of a VM.

    The carried set is every page the VM must re-materialize on a new
    host: EPT-present pages, host-swapped pages, and pages sitting in
    open Preventer emulation buffers (not present, possibly not
    swapped either -- their backing is a retained slot or a discarded
    Mapper association).
    """
    mapper = vm.mapper
    preventer = vm.preventer
    buffered = (sorted(preventer._emulated) if preventer is not None
                else [])
    present = sorted(vm.ept.present_gpas())
    carried = sorted(set(present) | set(vm.swap_slots) | set(buffered))
    tracked = {gpa for gpa in present
               if mapper is not None and mapper.is_tracked_resident(gpa)}
    return carried, tracked, buffered


def teardown_vm_on_host(vm: Vm, host: Host, *,
                        carried: list[int] | None = None) -> list[int]:
    """Strip every host-side resource of ``vm`` from ``host``.

    Pure accounting -- no disk I/O -- shared by the migration source
    half (which merges open emulation buffers through the disk *first*)
    and by crash/evacuation paths (where the host is dead, or the
    rebuild is being rolled back, and buffers are simply discarded:
    their pages travel as dirty anonymous memory like everything else).
    Returns the carried set that was stripped.
    """
    hyp = host.hypervisor
    mapper = vm.mapper
    preventer = vm.preventer
    if preventer is not None:
        for gpa in list(preventer._emulated):
            preventer._emulated.pop(gpa, None)
            # The merged-on-arrival page will not equal any disk block.
            if mapper is not None and mapper.is_discarded(gpa):
                mapper.drop_gpa(gpa)
    if carried is None:
        carried = sorted(set(vm.ept.present_gpas()) | set(vm.swap_slots))
    for gpa in carried:
        if vm.ept.is_present(gpa):
            vm.ept.unmap_page(gpa)
            host.frames.release(1)
            vm.scanner.note_evicted(gpa)
        if gpa in vm.swap_cache:
            del vm.swap_cache[gpa]
            host.frames.release(1)
            vm.scanner.note_evicted(gpa)
        slot = vm.swap_slots.pop(gpa, None)
        if slot is not None:
            vm.pending_swap.pop(gpa, None)
            hyp.free_swap_slot(slot)
            hyp.slot_owner.pop(slot, None)
        slot = vm.swap_clean.pop(gpa, None)
        if slot is not None:
            hyp.slot_owner.pop(slot, None)
            hyp.free_swap_slot(slot)
    for index in sorted(vm.qemu.resident):
        host.frames.release(1)
        vm.scanner.note_evicted(code_key(index))
    host.release_vm(vm)
    return carried


def rebuild_vm_on_host(vm: Vm, dst: Host, *, carried: list[int],
                       tracked: set[int], region_name: str) -> None:
    """The destination half: re-bind and re-materialize ``vm`` on
    ``dst``, letting the destination's own reclaim make room.  Tracked
    pages arrive clean and named; the rest is dirty-assumed anonymous
    memory, as pre-copy leaves it."""
    vm.image.region = dst.layout.add_region_pages(
        region_name, vm.cfg.image_size_pages)
    code_pages = dst.cfg.hypervisor_code_pages
    base = dst.claim_code_base(code_pages)
    vm.qemu = QemuProcess(dst._host_root, base, code_pages)
    vm.guest.host = dst.hypervisor
    dst.adopt_vm(vm)

    # The map-back loop leaves the arriving VM inconsistent between
    # iterations (mapper associations RESIDENT, EPT only partially
    # rebuilt): reclaim-triggered audits must not walk it until the
    # rebuild commits.
    auditor = dst.auditor
    guard = (auditor.suspended() if auditor is not None
             else contextlib.nullcontext())
    with guard:
        for gpa in carried:
            dst.hypervisor._make_room(vm, 1, "host")
            is_tracked = gpa in tracked
            vm.ept.map_page(gpa, accessed=False, dirty=not is_tracked)
            dst.frames.allocate(1)
            vm.scanner.note_resident(gpa, named=is_tracked)
    vm.refresh_gauges()
    if auditor is not None:
        auditor.check(f"rebuild:{vm.name}")


def migrate_vm(vm: Vm, src: Host, dst: Host, *,
               bandwidth_bytes_per_sec: float, region_name: str,
               trace=NULL_TRACE, kind: str = "pressure",
               attempt: int = 1,
               fail_point: str | None = None) -> MigrationRecord:
    """Evacuate ``vm`` from ``src`` to ``dst``; returns the record.

    ``fail_point`` (host-fault injection) is ``"rollback"`` -- the copy
    dies before the commit point, nothing moves, the record reports
    ``outcome="rolled-back"`` -- or ``"complete"`` -- the failure hits
    after the commit, so the destination finishes the move normally.
    """
    src_pressure = src.swap_pressure
    hyp = src.hypervisor

    if fail_point == "rollback":
        # The copy died with the source state untouched: account the
        # wasted wire traffic, change nothing.
        plan = MigrationPlanner().plan(vm)
        transferred = (plan.vswapper_bytes if vm.mapper is not None
                       else plan.baseline_bytes)
        if trace.enabled:
            trace.emit("cluster.migrate", vm=vm.name, src=src.name,
                       dst=dst.name, pages=0, bytes=transferred,
                       downtime=0.0, outcome="rolled-back")
        return MigrationRecord(
            time=src.engine.now, vm_name=vm.name, src=src.name,
            dst=dst.name, carried_pages=0, transferred_bytes=transferred,
            downtime_seconds=0.0, src_pressure=src_pressure,
            kind=kind, attempt=attempt, outcome="rolled-back")

    # Open emulation buffers reference source-host swap slots: close
    # and merge them through the source before any accounting.
    preventer = vm.preventer
    if preventer is not None:
        for gpa in preventer.close_all():
            vm.counters.preventer_merges += 1
            hyp._merge_buffered_page(vm, gpa, sync=True, context="host")

    # Byte accounting over live state, before teardown empties it.
    plan = MigrationPlanner().plan(vm)
    transferred = (plan.vswapper_bytes if vm.mapper is not None
                   else plan.baseline_bytes)
    carried, tracked, _buffered = carried_state(vm)

    # --- source teardown: release every frame, slot, and ownership
    # record (buffered swap-out writes simply vanish -- the contents
    # travel over the wire instead of to the source disk).
    teardown_vm_on_host(vm, src, carried=carried)

    # --- destination rebind + rebuild.
    rebuild_vm_on_host(vm, dst, carried=carried, tracked=tracked,
                       region_name=region_name)

    downtime = (transferred / bandwidth_bytes_per_sec
                if bandwidth_bytes_per_sec > 0 else 0.0)
    vm.pending_stall += downtime
    vm.counters.bump("migrations")
    if trace.enabled:
        trace.emit("cluster.migrate", vm=vm.name, src=src.name,
                   dst=dst.name, pages=len(carried), bytes=transferred,
                   downtime=downtime, outcome="completed")
    return MigrationRecord(
        time=src.engine.now, vm_name=vm.name, src=src.name, dst=dst.name,
        carried_pages=len(carried), transferred_bytes=transferred,
        downtime_seconds=downtime, src_pressure=src_pressure,
        kind=kind, attempt=attempt, outcome="completed")
