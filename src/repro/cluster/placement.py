"""Placement policies: which host receives an incoming VM.

All three policies filter by admission first (overcommit ratio and
host-root code capacity) and break ties by host id, so a placement is
a pure function of cluster state -- no randomness, no wall clock --
and the placement log is bit-deterministic for a given seed and fleet.

* ``first-fit`` -- the lowest-id host that admits the VM (the
  kube-scheduler default bias: fill nodes in order).
* ``balance`` -- the admitting host with the lowest committed
  fraction (spread load; classic least-allocated scoring).
* ``pack`` -- the admitting host with the highest committed fraction
  (consolidate onto few nodes; bin-packing for density).
"""

from __future__ import annotations

from typing import Sequence

from repro.config import PLACEMENT_POLICIES, VmConfig
from repro.errors import ConfigError, PlacementError

from repro.cluster.host import Host


def _describe_candidate(host: Host) -> str:
    """One host's rejection context for the PlacementError message.

    Names the occupancy and pressure numbers an operator needs to see
    *why* the node refused, instead of hunting them through the rollups.
    """
    limit = host.admission_limit_pages
    return (f"{host.name}: state={host.state.value}"
            f" committed={host.committed_guest_pages}"
            f"/{limit if limit is not None else 'unlimited'}"
            f" ({host.committed_fraction:.0%})"
            f" swap_pressure={host.swap_pressure:.0%}")


def choose_host(policy: str, hosts: Sequence[Host],
                vm_config: VmConfig) -> Host:
    """The host ``policy`` places ``vm_config`` on.

    Raises :class:`PlacementError` when no node admits the VM --
    cluster-wide admission capacity is exhausted.
    """
    if policy not in PLACEMENT_POLICIES:
        raise ConfigError(
            f"unknown placement policy {policy!r}; expected one of "
            f"{PLACEMENT_POLICIES}")
    candidates = [host for host in hosts if host.can_admit(vm_config)]
    if not candidates:
        raise PlacementError(
            f"no host admits VM {vm_config.name!r} "
            f"({vm_config.guest.memory_pages} believed pages): cluster "
            f"admission capacity exhausted across {len(hosts)} host(s)"
            f" [{'; '.join(_describe_candidate(host) for host in hosts)}]")
    if policy == "first-fit":
        return min(candidates, key=lambda host: host.host_id)
    if policy == "balance":
        return min(candidates,
                   key=lambda host: (host.committed_fraction, host.host_id))
    # pack: fullest admitting node first.
    return min(candidates,
               key=lambda host: (-host.committed_fraction, host.host_id))
