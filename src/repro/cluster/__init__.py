"""Multi-host topology: hosts, placement, budgets, migration, recovery.

The package splits what ``repro.machine`` used to fuse:

* :class:`~repro.cluster.host.Host` -- the per-host assembly (disk,
  frames, hypervisor, VMs) *without* an engine clock of its own, plus
  a lifecycle (``UP -> DEGRADED -> FAILED``) host-fault injection
  drives.
* :class:`~repro.cluster.cluster.Cluster` -- N hosts wired to one
  shared engine and one seeded RNG, with a placement scheduler,
  per-node overcommit/swap budgets, pressure-driven migration, and
  host-failure recovery (``repro.cluster.recovery``).

``repro.machine.Machine`` remains the single-host facade (a cluster
of one), bit-identical to its pre-cluster behaviour.
"""

from repro.cluster.cluster import Cluster
from repro.cluster.host import Host, HostState, build_latency_model
from repro.cluster.migrate import (
    MIGRATION_SCHEMA_VERSION,
    MigrationRecord,
    carried_state,
    migrate_vm,
    rebuild_vm_on_host,
    teardown_vm_on_host,
)
from repro.cluster.placement import choose_host
from repro.cluster.recovery import (
    EvacuationController,
    EvacuationPolicy,
    VmLost,
)

__all__ = [
    "Cluster",
    "EvacuationController",
    "EvacuationPolicy",
    "Host",
    "HostState",
    "MIGRATION_SCHEMA_VERSION",
    "MigrationRecord",
    "VmLost",
    "build_latency_model",
    "carried_state",
    "choose_host",
    "migrate_vm",
    "rebuild_vm_on_host",
    "teardown_vm_on_host",
]
