"""Multi-host topology: hosts, placement, budgets, migration.

The package splits what ``repro.machine`` used to fuse:

* :class:`~repro.cluster.host.Host` -- the per-host assembly (disk,
  frames, hypervisor, VMs) *without* an engine clock of its own.
* :class:`~repro.cluster.cluster.Cluster` -- N hosts wired to one
  shared engine and one seeded RNG, with a placement scheduler,
  per-node overcommit/swap budgets, and pressure-driven migration.

``repro.machine.Machine`` remains the single-host facade (a cluster
of one), bit-identical to its pre-cluster behaviour.
"""

from repro.cluster.cluster import Cluster
from repro.cluster.host import Host, build_latency_model
from repro.cluster.migrate import MigrationRecord, migrate_vm
from repro.cluster.placement import choose_host

__all__ = [
    "Cluster",
    "Host",
    "MigrationRecord",
    "build_latency_model",
    "choose_host",
    "migrate_vm",
]
