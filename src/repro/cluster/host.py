"""One node of a cluster: disk, memory, hypervisor, and VMs.

:class:`Host` is the per-host assembly that used to live inside
``repro.machine.Machine``, minus the engine clock: a host *shares* the
cluster's :class:`~repro.sim.engine.Engine` and draws its randomness
from a fork of the cluster's root RNG, so cross-host event ordering is
a pure function of the cluster seed.  A cluster of one host built from
the root RNG itself reproduces the old single-host ``Machine``
bit-for-bit (same fork labels, same construction order).

On top of the extraction, a host enforces its node budgets: the
overcommit ratio caps admission (believed guest memory over physical
frames) and the swap budget caps :class:`HostSwapArea` occupancy,
whose fill fraction is the node-pressure signal the cluster's
migration controller acts on.
"""

from __future__ import annotations

import enum

from repro.audit import InvariantAuditor, paranoid_enabled
from repro.config import (
    DiskConfig,
    HostNodeConfig,
    SwapBackendConfig,
    VmConfig,
)
from repro.disk.device import DiskDevice
from repro.disk.geometry import DiskLayout
from repro.disk.image import VirtualDiskImage
from repro.disk.latency import HddLatencyModel, LatencyModel, SsdLatencyModel
from repro.disk.swaparea import HostSwapArea
from repro.errors import ConfigError
from repro.guest.kernel import GuestKernel
from repro.host.hypervisor import Hypervisor
from repro.host.qemu import QemuProcess
from repro.host.vm import Vm
from repro.mem.frames import FramePool
from repro.mem.page import AnonContent
from repro.metrics.counters import Counters
from repro.sim.engine import Engine
from repro.sim.ops import WritePattern
from repro.swapback.base import default_swap_backend
from repro.swapback.factory import build_swap_backend
from repro.trace.collector import NULL_TRACE
from repro.units import mib_pages


def build_latency_model(cfg: DiskConfig) -> LatencyModel:
    """Instantiate the latency model the disk config asks for."""
    cfg.validate()
    if cfg.kind == "ssd":
        # One SSD device model: the read/write latencies come from the
        # swap-backend registry so the ablation disk profile and
        # ``--swap-backend ssd`` can never drift apart.
        ssd = SwapBackendConfig.ssd()
        return SsdLatencyModel(
            bandwidth_bytes_per_sec=cfg.bandwidth_bytes_per_sec,
            read_latency=ssd.read_latency,
            write_latency=ssd.write_latency,
        )
    return HddLatencyModel(
        bandwidth_bytes_per_sec=cfg.bandwidth_bytes_per_sec,
        seek_min=cfg.seek_min,
        seek_max=cfg.seek_max,
        rpm=cfg.rpm,
        rotation_fraction=cfg.rotation_fraction,
        per_request_overhead=cfg.per_request_overhead,
    )


class HostState(enum.Enum):
    """Host lifecycle: ``UP -> DEGRADED -> UP`` and ``* -> FAILED``.

    DEGRADED hosts keep running and admitting VMs -- only their disk
    (and therefore swap) is slower.  FAILED is terminal: the host
    admits nothing, holds nothing, and its VMs are the evacuation
    controller's problem.
    """

    UP = "up"
    DEGRADED = "degraded"
    FAILED = "failed"


class Host:
    """One simulated physical host inside a cluster."""

    #: Host-root region size: holds the QEMU executables of all VMs.
    HOST_ROOT_PAGES = mib_pages(256)

    def __init__(self, node: HostNodeConfig, *, host_id: int,
                 engine: Engine, rng, faults=None, trace=NULL_TRACE,
                 audit_label: str | None = None) -> None:
        node.validate()
        self.node = node
        self.name = node.name
        self.host_id = host_id
        #: The host-kernel config (reclaim, costs, swap geometry).
        self.cfg = node.host
        self.engine = engine
        self.rng = rng
        self.faults = faults

        self.layout = DiskLayout()
        self._host_root = self.layout.add_region_pages(
            "host-root", self.HOST_ROOT_PAGES)
        swap_region = self.layout.add_region_pages(
            "host-swap", node.host.swap_size_pages)
        self.swap_area = HostSwapArea(
            swap_region, budget_slots=node.swap_budget_pages)

        self.disk = DiskDevice(
            engine.clock, build_latency_model(node.disk),
            max_write_backlog=node.disk.max_write_backlog_seconds,
            faults=faults)
        self.frames = FramePool(node.host.total_memory_pages)
        backend_cfg = (node.swap_backend if node.swap_backend is not None
                       else default_swap_backend())
        self.swapback = build_swap_backend(
            backend_cfg, clock=engine.clock, disk=self.disk,
            swap_area=self.swap_area, rng=rng, faults=faults)
        self.hypervisor = Hypervisor(
            engine.clock, self.disk, self.frames,
            self.swap_area, node.host, rng=rng.fork("hypervisor"),
            faults=faults, swapback=self.swapback)
        self.hypervisor.host_name = node.name

        self.vms: list[Vm] = []
        self._next_code_base = 0
        #: Believed guest memory placed here (admission accounting).
        self.committed_guest_pages = 0
        #: Lifecycle state (host-fault injection drives transitions).
        self.state = HostState.UP
        #: Whether this host was ever degraded -- experiments use it to
        #: decide which hosts' VMs count as fault-unaffected survivors.
        self.ever_degraded = False

        self.trace = trace
        self.disk.trace = trace
        self.hypervisor.trace = trace
        self.swapback.trace = trace

        #: Runtime invariant auditor; installed only under --paranoid
        #: (the ambient flag), so ordinary runs pay nothing.
        self.auditor: InvariantAuditor | None = (
            InvariantAuditor(self, label=audit_label)
            if paranoid_enabled() else None)
        self.hypervisor.auditor = self.auditor

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time (the shared cluster clock)."""
        return self.engine.now

    # ------------------------------------------------------------------
    # budgets
    # ------------------------------------------------------------------

    @property
    def admission_limit_pages(self) -> int | None:
        """Believed guest memory this node may host (None = unlimited)."""
        if self.node.overcommit_ratio is None:
            return None
        return int(self.node.overcommit_ratio
                   * self.node.host.total_memory_pages)

    def can_admit(self, vm_config: VmConfig) -> bool:
        """Whether placement may put ``vm_config`` on this node."""
        if self.state is HostState.FAILED:
            return False
        code_pages = self.cfg.hypervisor_code_pages
        if self._next_code_base + code_pages > self._host_root.size_pages:
            return False
        limit = self.admission_limit_pages
        return (limit is None
                or self.committed_guest_pages
                + vm_config.guest.memory_pages <= limit)

    @property
    def committed_fraction(self) -> float:
        """Fill fraction of the admission budget (placement signal);
        falls back to physical memory when admission is unlimited."""
        denominator = (self.admission_limit_pages
                       if self.admission_limit_pages is not None
                       else self.node.host.total_memory_pages)
        return (self.committed_guest_pages / denominator
                if denominator else 1.0)

    @property
    def swap_pressure(self) -> float:
        """Occupied fraction of the node's swap budget, or of the
        backend's own capacity when that is tighter (a nearly-full
        compressed tier is pressure even with slots to spare)."""
        return max(self.swap_area.budget_pressure, self.swapback.pressure)

    @property
    def over_pressure(self) -> bool:
        """Whether the node crossed its configured pressure threshold."""
        return self.swap_pressure >= self.node.pressure_threshold

    # ------------------------------------------------------------------
    # host lifecycle
    # ------------------------------------------------------------------

    @property
    def alive(self) -> bool:
        """Whether the host still runs (UP or DEGRADED)."""
        return self.state is not HostState.FAILED

    def fail(self) -> None:
        """Hard crash: terminal, from any state.

        Only flips the state (and clears any degradation); stripping
        the resident VMs' host-side resources is the cluster's job --
        see ``Cluster._fail_host``.
        """
        self.state = HostState.FAILED
        self.disk.latency_scale = 1.0

    def degrade(self, factor: float) -> None:
        """Enter a degradation window: disk service times scale up."""
        if self.state is not HostState.UP:
            return
        self.state = HostState.DEGRADED
        self.ever_degraded = True
        self.disk.latency_scale = factor

    def recover(self) -> None:
        """Leave the degradation window (no-op unless DEGRADED)."""
        if self.state is not HostState.DEGRADED:
            return
        self.state = HostState.UP
        self.disk.latency_scale = 1.0

    # ------------------------------------------------------------------
    # VM lifecycle
    # ------------------------------------------------------------------

    def create_vm(self, vm_config: VmConfig, *, vm_id: int) -> Vm:
        """Instantiate a VM: image region, QEMU process, guest kernel."""
        region = self.layout.add_region_pages(
            f"image-{vm_config.name}", vm_config.image_size_pages)
        image = VirtualDiskImage(region)

        code_pages = self.cfg.hypervisor_code_pages
        if (self._next_code_base + code_pages
                > self._host_root.size_pages):
            raise ConfigError("host-root region exhausted; too many VMs")
        qemu = QemuProcess(self._host_root, self._next_code_base, code_pages)
        self._next_code_base += code_pages

        vm = Vm(vm_config, vm_id, image, qemu,
                named_fraction=self.cfg.named_fraction,
                reclaim_noise=self.cfg.reclaim_noise,
                rng=self.rng.fork(f"reclaim-{vm_config.name}"))
        vm.guest = GuestKernel(
            vm_config.guest, vm, self.hypervisor,
            image.size_blocks, self.rng.fork(f"guest-{vm_config.name}"))
        self.adopt_vm(vm)

        if vm_config.static_balloon_pages:
            self.apply_static_balloon(vm, vm_config.static_balloon_pages)
        return vm

    def adopt_vm(self, vm: Vm) -> None:
        """Attach an existing VM (creation and migration arrivals)."""
        vm.host = self
        self.hypervisor.register_vm(vm)
        self.vms.append(vm)
        self.committed_guest_pages += vm.cfg.guest.memory_pages
        vm.scanner.trace = self.trace
        vm.scanner.trace_vm = vm.name
        if vm.mapper is not None:
            vm.mapper.trace = self.trace
            vm.mapper.trace_vm = vm.name

    def release_vm(self, vm: Vm) -> None:
        """Detach a VM that migrated away (state already torn down)."""
        self.vms.remove(vm)
        self.hypervisor.vms.remove(vm)
        self.committed_guest_pages -= vm.cfg.guest.memory_pages

    def claim_code_base(self, code_pages: int) -> int:
        """Reserve host-root space for an arriving QEMU process."""
        if self._next_code_base + code_pages > self._host_root.size_pages:
            raise ConfigError("host-root region exhausted; too many VMs")
        base = self._next_code_base
        self._next_code_base += code_pages
        return base

    def boot_guest(self, vm: Vm, *, fraction: float = 1.0) -> None:
        """Model the guest's uptime history before the experiment.

        A real guest has touched essentially all of its believed memory
        by the time a benchmark runs (boot, daemons, earlier jobs), so
        under uncooperative swapping the host swap area holds a large
        population of dead-but-swapped pages.  Those stragglers are the
        persistent state that fragments swap-slot runs over time --
        without them, decayed swap sequentiality cannot accumulate.

        The phase is untimed: costs, counters, and disk state reset.
        """
        guest = vm.guest
        keep_free = guest.cfg.derived_free_target
        touch_pages = int(max(0, len(guest.free_list) - keep_free) * fraction)
        if touch_pages > 0:
            guest.anon.commit("boot-history", touch_pages)
            for index in range(touch_pages):
                gpa = guest._alloc_gpa()
                self.hypervisor.overwrite_page(
                    vm, gpa, AnonContent.fresh(),
                    WritePattern.FULL_SEQUENTIAL)
                guest.anon.place_in_memory("boot-history", index, gpa)
                guest.scanner.note_resident(gpa, named=False)
            released, slots = guest.anon.release_region("boot-history")
            for gpa in released:
                guest.scanner.note_evicted(gpa)
                guest.free_list.append(gpa)
            for slot in slots:
                guest.gswap.free(slot)
        vm.costs.reset()
        vm.counters = Counters()
        self.disk.quiesce()
        # Boot history is untimed setup: drop its events too, so the
        # analyzer's counts line up with the reset counters bit-exactly.
        self.trace.reset()

    def apply_static_balloon(self, vm: Vm, pages: int) -> None:
        """Pre-inflate the balloon before the workload starts.

        Controlled experiments (Section 5.1) configure the balloon once
        and leave it; inflation on a freshly booted guest is pure
        free-list allocation, so no cost accrues.
        """
        guest = vm.guest
        guest.set_balloon_target(pages)
        guest.apply_balloon(pages)
        vm.costs.reset()

    def aggregate_counters(self) -> dict[str, int]:
        """Host-wide sum of every VM's counters."""
        totals: dict[str, int] = {}
        for vm in self.vms:
            for name, value in vm.counters.snapshot().items():
                totals[name] = totals.get(name, 0) + value
        return totals
