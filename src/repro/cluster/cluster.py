"""The cluster: N hosts, one engine clock, one seeded RNG.

Determinism is the design constraint everything here serves.  All
hosts share a single :class:`~repro.sim.engine.Engine`, so cross-host
event ordering is total and reproducible; every random stream is a
labelled fork of one root :class:`~repro.sim.rng.DeterministicRng`
(forks are pure functions of ``(seed, label)``, independent of fork
order); and placement, victim selection, and destination choice are
pure functions of cluster state with host-id/vm-id tie-breaks.  Same
seed, same fleet => bit-identical placements, migration log, and
per-VM counters, serial or parallel.

A cluster of exactly one host hands the *root* RNG to that host --
its fork labels (``"hypervisor"``, ``"reclaim-<vm>"``,
``"guest-<vm>"``) are then identical to what the pre-cluster
``Machine`` drew, which is what keeps every existing figure
bit-identical through the ``Machine`` facade.  Multi-host clusters
fork per host (``"host-<name>"``) so each node gets an independent
stream.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.audit import ClusterInvariantAuditor, paranoid_enabled
from repro.config import ClusterConfig, VmConfig
from repro.core.migration import MigrationPlanner
from repro.faults.plan import FaultPlan, default_fault_config
from repro.host.vm import Vm
from repro.sim.engine import Engine
from repro.sim.rng import DeterministicRng
from repro.trace import tracing_mode
from repro.trace.collector import (
    HostTaggedTrace,
    NULL_TRACE,
    TraceCollector,
)

from repro.cluster.host import Host, HostState
from repro.cluster.migrate import (
    MigrationRecord,
    carried_state,
    migrate_vm,
    teardown_vm_on_host,
)
from repro.cluster.placement import choose_host
from repro.cluster.recovery import (
    EvacuationController,
    EvacuationPolicy,
    VmLost,
)


class Cluster:
    """N simulated hosts wired to one shared engine."""

    def __init__(self, config: ClusterConfig) -> None:
        config.validate()
        self.cfg = config
        # The config's explicit FaultConfig wins; otherwise the
        # process-wide default (the CLI's --faults flag) applies.
        fault_cfg = (config.faults if config.faults is not None
                     else default_fault_config())
        if fault_cfg is not None:
            fault_cfg.validate()
        self.engine = Engine(
            max_events=(fault_cfg.watchdog_max_events
                        if fault_cfg else None),
            max_virtual_time=(fault_cfg.watchdog_max_virtual_time
                              if fault_cfg else None))
        self.rng = DeterministicRng(config.seed)
        #: Deterministic fault schedule; None when injection is off.
        #: One plan serves the whole cluster, as one served the machine.
        self.faults: FaultPlan | None = (
            FaultPlan(fault_cfg, self.rng.fork("faults"))
            if fault_cfg is not None and fault_cfg.enabled else None)

        #: Trace collector; live only under --trace (the ambient mode).
        #: One shared ring: cross-host ordering is the point.
        mode = tracing_mode()
        self.trace = (TraceCollector(self.engine.clock, mode=mode)
                      if mode is not None else NULL_TRACE)
        self.engine.trace = self.trace

        multi = len(config.hosts) > 1
        self.hosts: list[Host] = []
        for host_id, node in enumerate(config.hosts):
            # One host draws from the root RNG itself: fork labels then
            # match the pre-cluster Machine exactly (bit-compat).
            host_rng = (self.rng.fork(f"host-{node.name}") if multi
                        else self.rng)
            host_trace = self.trace
            if multi and self.trace.enabled:
                host_trace = HostTaggedTrace(self.trace, node.name)
            self.hosts.append(Host(
                node, host_id=host_id, engine=self.engine, rng=host_rng,
                faults=self.faults, trace=host_trace,
                audit_label=node.name if multi else None))

        #: Every VM ever placed, in placement (vm_id) order.
        self.vms: list[Vm] = []
        #: Placement log: (vm name, host name), in placement order.
        self.placements: list[tuple[str, str]] = []
        #: Completed migrations, in execution order.
        self.migrations: list[MigrationRecord] = []
        self._region_seq = 0

        #: VMs recovery could not re-home (typed figure holes), in
        #: loss order.
        self.lost: list[VmLost] = []
        #: Host-failure recovery; idle (and free) unless a host fails.
        self.evac = EvacuationController(
            self, EvacuationPolicy.from_fault_config(fault_cfg))

        #: Cross-host invariant auditor; --paranoid only.
        self.auditor: ClusterInvariantAuditor | None = (
            ClusterInvariantAuditor(self) if paranoid_enabled() else None)

        if config.migration.enabled:
            self.engine.add_periodic(
                config.migration.check_interval, self.pressure_tick)
        if self.faults is not None:
            self._schedule_host_faults()

    # ------------------------------------------------------------------
    # clock and rollups
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.engine.now

    def run(self, until: float | None = None) -> float:
        """Run the engine until all work completes (or ``until``)."""
        return self.engine.run(until)

    def aggregate_counters(self) -> dict[str, int]:
        """Cluster-wide sum of every VM's counters."""
        totals: dict[str, int] = {}
        for vm in self.vms:
            for name, value in vm.counters.snapshot().items():
                totals[name] = totals.get(name, 0) + value
        return totals

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------

    def create_vm(self, vm_config: VmConfig, *,
                  host: Host | None = None) -> Vm:
        """Place and instantiate a VM (``host`` overrides the policy)."""
        target = (host if host is not None
                  else choose_host(self.cfg.placement, self.hosts,
                                   vm_config))
        vm = target.create_vm(vm_config, vm_id=len(self.vms))
        self.vms.append(vm)
        self.placements.append((vm_config.name, target.name))
        if len(self.hosts) > 1 and self.trace.enabled:
            self.trace.emit("cluster.place", vm=vm_config.name,
                            host=target.name)
        if self.auditor is not None:
            self.auditor.check(f"place:{vm_config.name}")
        return vm

    def deploy(self, fleet: Iterable[VmConfig]) -> list[Vm]:
        """Place a declarative fleet spec, in order."""
        return [self.create_vm(vm_config) for vm_config in fleet]

    # ------------------------------------------------------------------
    # pressure-driven migration
    # ------------------------------------------------------------------

    def pressure_tick(self) -> list[MigrationRecord]:
        """One controller pass: evacuate every over-pressure host.

        Runs periodically when migration is enabled; callable directly
        from tests.  Hosts are visited in id order; each is relieved
        until it drops below its threshold or no move is possible.
        """
        done: list[MigrationRecord] = []
        for src in self.hosts:
            if not src.alive:
                continue
            while src.over_pressure:
                vm = self._pick_migration_victim(src)
                if vm is None:
                    break
                dst = self._pick_destination(vm, src)
                if dst is None:
                    break
                record = self.migrate(vm, dst)
                done.append(record)
                if record.outcome != "completed":
                    # The copy rolled back: the VM stayed put, so
                    # retrying this tick would spin.  Next tick retries.
                    break
        return done

    def migrate(self, vm: Vm, dst: Host) -> MigrationRecord:
        """Evacuate ``vm`` to ``dst`` and log the move (or rollback)."""
        src = vm.host
        self._region_seq += 1
        fail_point = (self.faults.migration_fail_point(
                          vm.name, self._region_seq)
                      if self.faults is not None else None)
        record = migrate_vm(
            vm, src, dst,
            bandwidth_bytes_per_sec=(
                self.cfg.migration.bandwidth_bytes_per_sec),
            region_name=f"image-{vm.name}@m{self._region_seq}",
            trace=self.trace, fail_point=fail_point)
        self.migrations.append(record)
        if record.outcome != "completed" and self.faults is not None:
            self.faults.counters.bump("migration_rollbacks")
        if self.auditor is not None:
            self.auditor.check(f"migrate:{vm.name}")
        return record

    def _pick_migration_victim(self, src: Host) -> Vm | None:
        """The VM whose evacuation frees the most source swap.

        Largest swap footprint wins, lowest vm_id breaks ties; VMs
        with in-flight DMA or no swap footprint are never moved.
        """
        candidates = [vm for vm in src.vms
                      if vm.swap_slots and not vm.io_pinned]
        if not candidates:
            return None
        return max(candidates,
                   key=lambda vm: (len(vm.swap_slots), -vm.vm_id))

    def _pick_destination(self, vm: Vm, src: Host) -> Host | None:
        """The least-pressured admitting host (never the source)."""
        candidates = [host for host in self.hosts
                      if host is not src and host.can_admit(vm.cfg)]
        if not candidates:
            return None
        return min(candidates,
                   key=lambda host: (host.swap_pressure,
                                     host.committed_fraction,
                                     host.host_id))

    # ------------------------------------------------------------------
    # host faults: crash, degradation, evacuation
    # ------------------------------------------------------------------

    def _schedule_host_faults(self) -> None:
        """Arm the fault plan's host schedule on the engine.

        Crash and degradation times come from fresh forks of the plan's
        ``host_fault_seed`` (never the simulation streams), so hosts the
        schedule leaves alone run bit-identically to an uninjected
        cluster -- arming costs nothing but these engine events.
        """
        plan = self.faults
        for host in self.hosts:
            window = plan.host_degrade_window(host.name)
            if window is not None:
                start, duration, factor = window
                self.engine.schedule_at(
                    start,
                    lambda h=host, f=factor: self._degrade_host(h, f))
                self.engine.schedule_at(
                    start + duration,
                    lambda h=host: self._recover_host(h))
            crash = plan.host_crash_time(host.name)
            if crash is not None:
                self.engine.schedule_at(
                    crash, lambda h=host: self._fail_host(h))

    def _degrade_host(self, host: Host, factor: float) -> None:
        """Enter a transient degradation window (slow disk, still UP
        for admission); no-op if the host already failed."""
        if host.state is not HostState.UP:
            return
        host.degrade(factor)
        if self.faults is not None:
            self.faults.counters.bump("host_degrades")
        if self.trace.enabled:
            self.trace.emit("host.degrade", host=host.name, factor=factor)

    def _recover_host(self, host: Host) -> None:
        """Close the degradation window (no-op unless DEGRADED --
        a crash inside the window wins)."""
        if host.state is not HostState.DEGRADED:
            return
        host.recover()
        if self.trace.enabled:
            self.trace.emit("host.recover", host=host.name)

    def _fail_host(self, host: Host) -> None:
        """Hard-crash ``host``: strip its VMs and hand each to the
        evacuation controller.

        The host's memory and swap die with it, so there is nothing to
        copy *from*: each victim's carried set (logical page contents,
        surviving Mapper associations) is captured first, its restore
        traffic priced, and then every host-side resource is torn down
        before recovery begins re-homing the VM elsewhere.
        """
        if not host.alive:
            return
        src_pressure = host.swap_pressure
        victims = list(host.vms)
        host.fail()
        if self.faults is not None:
            self.faults.counters.bump("host_crashes")
        if self.trace.enabled:
            self.trace.emit("host.fail", host=host.name,
                            vms=len(victims))
        for vm in victims:
            plan = MigrationPlanner().plan(vm)
            transferred = (plan.vswapper_bytes if vm.mapper is not None
                           else plan.baseline_bytes)
            carried, tracked, _buffered = carried_state(vm)
            teardown_vm_on_host(vm, host, carried=carried)
            vm.host = None
            self.evac.begin(
                vm, host.name, carried=carried, tracked=tracked,
                transferred_bytes=transferred, src_pressure=src_pressure)
        if self.auditor is not None:
            self.auditor.check(f"host-fail:{host.name}")
