"""Host-failure recovery: VM evacuation with retry/backoff, or loss.

When a host hard-crashes, its VMs' host-side state (frames, swap
slots, QEMU text) dies with it; only the logical guest state -- page
contents, EPT shape, Mapper associations (block-relative), the guest
kernel -- survives, captured at crash time as the *carried set*.  The
:class:`EvacuationController` then tries to re-home each victim:

1. Pick a destination through the cluster's own placement policy
   (``choose_host``); FAILED hosts never admit.
2. Rebuild the VM there (:func:`~repro.cluster.migrate.rebuild_vm_on_host`),
   charging restore traffic as migration-style downtime.
3. On failure -- no host admits, the destination's swap budget cannot
   absorb the rebuild, or the copy itself dies mid-transfer -- roll any
   partial destination state back and retry after a capped exponential
   backoff, until ``evac_max_retries`` attempts or the per-VM
   ``evac_deadline`` (virtual time since the crash) is exhausted.
4. A VM that cannot be re-homed becomes a typed :class:`VmLost` record
   -- an explicit figure hole, like ``CellFailure`` -- never a silent
   drop; the ``--paranoid`` evacuation-conservation invariant enforces
   exactly that.

While homeless a VM is frozen: its driver polls without consuming
workload operations, so the workload resumes exactly where the crash
interrupted it (or never, if the VM is lost).

Determinism: the controller draws no randomness of its own.  Crash
times and mid-copy failures are pure functions of the fault plan's
``host_fault_seed`` (see ``FaultPlan.host_crash_time``), placement is
a pure function of cluster state, and retry timing is fixed by config
-- so the same seed replays the same crash/evacuation/loss sequence,
and survivors on unaffected hosts stay bit-identical to an uninjected
run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.config import FaultConfig
from repro.errors import (
    ConfigError,
    DiskError,
    ExperimentError,
    HostError,
    PlacementError,
)
from repro.host.vm import Vm

from repro.cluster.host import Host
from repro.cluster.migrate import (
    MigrationRecord,
    rebuild_vm_on_host,
    teardown_vm_on_host,
)
from repro.cluster.placement import choose_host

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import Cluster

#: Bumped whenever VmLost semantics change such that persisted records
#: stop being comparable.
VMLOST_SCHEMA_VERSION = 1

#: Rebuild failures an evacuation attempt survives by retrying: no host
#: admits, the destination cannot absorb the swap footprint, host-root
#: code space is exhausted, or the copy itself died mid-transfer.
EVACUATION_RETRYABLE = (PlacementError, HostError, DiskError, ConfigError)


@dataclass(frozen=True)
class VmLost:
    """A VM the cluster could not re-home after its host failed.

    The typed figure hole of host-fault injection: sweeps keep running
    and report these explicitly, exactly as ``CellFailure`` reports a
    quarantined cell.
    """

    time: float
    vm_name: str
    #: The host whose failure orphaned the VM.
    host: str
    #: Why recovery gave up (retries exhausted, deadline exceeded).
    reason: str
    #: Evacuation attempts made before giving up.
    attempts: int

    def to_dict(self) -> dict:
        return {
            "schema": VMLOST_SCHEMA_VERSION,
            "time": self.time, "vm": self.vm_name, "host": self.host,
            "reason": self.reason, "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "VmLost":
        """Inverse of :meth:`to_dict` (store round-trips)."""
        if data.get("schema") != VMLOST_SCHEMA_VERSION:
            raise ExperimentError(
                f"VmLost schema {data.get('schema')!r} != "
                f"{VMLOST_SCHEMA_VERSION}")
        return cls(time=data["time"], vm_name=data["vm"],
                   host=data["host"], reason=data["reason"],
                   attempts=data["attempts"])


@dataclass(frozen=True)
class EvacuationPolicy:
    """Retry/backoff/deadline knobs of the evacuation controller."""

    max_retries: int = 4
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    backoff_cap: float = 8.0
    deadline: float = 60.0

    def backoff(self, attempt: int) -> float:
        """Capped exponential wait before retrying after ``attempt``."""
        return min(self.backoff_cap,
                   self.backoff_base * self.backoff_factor ** (attempt - 1))

    @classmethod
    def from_fault_config(cls,
                          cfg: FaultConfig | None) -> "EvacuationPolicy":
        """The policy a cluster's fault config asks for (or defaults)."""
        if cfg is None:
            return cls()
        return cls(
            max_retries=cfg.evac_max_retries,
            backoff_base=cfg.evac_backoff_base,
            backoff_factor=cfg.evac_backoff_factor,
            backoff_cap=cfg.evac_backoff_cap,
            deadline=cfg.evac_deadline,
        )


@dataclass
class Evacuation:
    """In-flight recovery state of one orphaned VM."""

    vm: Vm
    #: Name of the failed host the VM came off.
    src: str
    #: Virtual time the host failed (the deadline's epoch).
    started: float
    #: Carried set captured at crash time (teardown empties the live
    #: structures, so it must be remembered here).
    carried: list[int]
    tracked: set[int] = field(default_factory=set)
    #: Restore traffic (mapper-aware), priced at crash time.
    transferred_bytes: float = 0.0
    #: Source swap pressure when the host died (for the record).
    src_pressure: float = 0.0
    attempts: int = 0


class EvacuationController:
    """Re-homes the VMs of failed hosts, one retry loop per VM.

    Owned by the :class:`~repro.cluster.cluster.Cluster`; attempt
    scheduling runs on the cluster engine, so evacuation interleaves
    deterministically with the surviving hosts' work.
    """

    def __init__(self, cluster: "Cluster",
                 policy: EvacuationPolicy) -> None:
        self.cluster = cluster
        self.policy = policy
        #: vm_id -> in-flight evacuation (the auditor's "limbo" roster).
        self.active: dict[int, Evacuation] = {}
        #: Retries performed across all evacuations (figure counter).
        self.retries = 0
        #: vm name -> virtual seconds from host failure to re-home.
        self.latencies: dict[str, float] = {}

    def begin(self, vm: Vm, src: str, *, carried: list[int],
              tracked: set[int], transferred_bytes: float,
              src_pressure: float) -> None:
        """Register an orphaned VM and schedule its first attempt."""
        cluster = self.cluster
        evac = Evacuation(
            vm=vm, src=src, started=cluster.now, carried=carried,
            tracked=tracked, transferred_bytes=transferred_bytes,
            src_pressure=src_pressure)
        self.active[vm.vm_id] = evac
        if cluster.trace.enabled:
            cluster.trace.emit("evac.start", vm=vm.name, src=src,
                               pages=len(carried))
        cluster.engine.schedule(0.0, lambda: self._attempt(evac))

    # ------------------------------------------------------------------

    def _attempt(self, evac: Evacuation) -> None:
        vm = evac.vm
        cluster = self.cluster
        if vm.lost or vm.host is not None:
            return  # stale event: already resolved
        now = cluster.now
        if now - evac.started > self.policy.deadline:
            self._lose(evac, f"deadline exceeded after {evac.attempts} "
                             f"attempt(s) ({self.policy.deadline:.1f}s)")
            return
        evac.attempts += 1
        fail_point = None
        if cluster.faults is not None:
            fail_point = cluster.faults.migration_fail_point(
                f"evac:{vm.name}", evac.attempts)
        dst: Host | None = None
        try:
            if fail_point == "rollback":
                raise HostError(
                    f"evacuation copy of {vm.name} died mid-transfer")
            dst = choose_host(cluster.cfg.placement, cluster.hosts,
                              vm.cfg)
            cluster._region_seq += 1
            rebuild_vm_on_host(
                vm, dst, carried=evac.carried, tracked=evac.tracked,
                region_name=f"image-{vm.name}@e{cluster._region_seq}")
        except EVACUATION_RETRYABLE as error:
            # Roll partial destination state back: rollback-or-complete
            # holds for evacuations too.
            if vm.host is not None:
                teardown_vm_on_host(vm, vm.host)
                vm.host = None
            self._retry(evac, error)
            return
        self._succeed(evac, dst)

    def _retry(self, evac: Evacuation, error: Exception) -> None:
        vm = evac.vm
        cluster = self.cluster
        if evac.attempts > self.policy.max_retries:
            self._lose(evac, f"retries exhausted after {evac.attempts} "
                             f"attempt(s): {type(error).__name__}: {error}")
            return
        delay = self.policy.backoff(evac.attempts)
        self.retries += 1
        if cluster.trace.enabled:
            cluster.trace.emit(
                "evac.retry", vm=vm.name, attempt=evac.attempts,
                backoff=delay, error=type(error).__name__)
        cluster.engine.schedule(delay, lambda: self._attempt(evac))

    def _succeed(self, evac: Evacuation, dst: Host) -> None:
        vm = evac.vm
        cluster = self.cluster
        bandwidth = cluster.cfg.migration.bandwidth_bytes_per_sec
        downtime = (evac.transferred_bytes / bandwidth
                    if bandwidth > 0 else 0.0)
        vm.pending_stall += downtime
        vm.counters.bump("evacuations")
        record = MigrationRecord(
            time=cluster.now, vm_name=vm.name, src=evac.src,
            dst=dst.name, carried_pages=len(evac.carried),
            transferred_bytes=evac.transferred_bytes,
            downtime_seconds=downtime, src_pressure=evac.src_pressure,
            kind="evacuation", attempt=evac.attempts,
            outcome="completed")
        cluster.migrations.append(record)
        self.latencies[vm.name] = cluster.now - evac.started
        del self.active[vm.vm_id]
        if cluster.trace.enabled:
            cluster.trace.emit(
                "evac.done", vm=vm.name, src=evac.src, dst=dst.name,
                attempt=evac.attempts, downtime=downtime)
        if cluster.auditor is not None:
            cluster.auditor.check(f"evac-done:{vm.name}")

    def _lose(self, evac: Evacuation, reason: str) -> None:
        vm = evac.vm
        cluster = self.cluster
        vm.lost = True
        record = VmLost(
            time=cluster.now, vm_name=vm.name, host=evac.src,
            reason=reason, attempts=evac.attempts)
        cluster.lost.append(record)
        del self.active[vm.vm_id]
        if cluster.trace.enabled:
            cluster.trace.emit("evac.lost", vm=vm.name, src=evac.src,
                               reason=reason, attempts=evac.attempts)
        if cluster.auditor is not None:
            cluster.auditor.check(f"evac-lost:{vm.name}")
