"""Machine: the single-host facade over a cluster of one.

Historically this module assembled the engine, disk, frame pool,
hypervisor, and VMs itself; that per-host assembly now lives in
:class:`repro.cluster.host.Host`, and a :class:`Machine` is a thin
facade over a one-host :class:`repro.cluster.cluster.Cluster`.  The
facade is *bit-identical* to the old assembly: the single host draws
from the cluster's root RNG with unchanged fork labels, no budgets
gate its swap area, and no migration controller is scheduled -- so
every existing experiment, figure, and cached store key is untouched.

Experiments construct a machine from a
:class:`repro.config.MachineConfig`, add VMs and workloads, and run
the engine, exactly as before.
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.cluster.host import Host, build_latency_model  # noqa: F401
# build_latency_model is re-exported: it predates the cluster package
# and callers import it from here.
from repro.config import MachineConfig, VmConfig
from repro.host.vm import Vm


class Machine:
    """One simulated physical host (a cluster of one)."""

    #: Host-root region size: holds the QEMU executables of all VMs.
    HOST_ROOT_PAGES = Host.HOST_ROOT_PAGES

    def __init__(self, config: MachineConfig) -> None:
        config.validate()
        self.cfg = config
        self.cluster = Cluster(config.as_cluster())
        self._host = self.cluster.hosts[0]

    # ------------------------------------------------------------------
    # the single host's parts, at their historical names
    # ------------------------------------------------------------------

    @property
    def engine(self):
        return self.cluster.engine

    @property
    def rng(self):
        return self.cluster.rng

    @property
    def faults(self):
        return self.cluster.faults

    @property
    def trace(self):
        return self.cluster.trace

    @property
    def layout(self):
        return self._host.layout

    @property
    def swap_area(self):
        return self._host.swap_area

    @property
    def disk(self):
        return self._host.disk

    @property
    def frames(self):
        return self._host.frames

    @property
    def hypervisor(self):
        return self._host.hypervisor

    @property
    def vms(self) -> list[Vm]:
        return self._host.vms

    @property
    def auditor(self):
        return self._host.auditor

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.engine.now

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def create_vm(self, vm_config: VmConfig) -> Vm:
        """Instantiate a VM: image region, QEMU process, guest kernel."""
        return self.cluster.create_vm(vm_config, host=self._host)

    def boot_guest(self, vm: Vm, *, fraction: float = 1.0) -> None:
        """Model the guest's uptime history before the experiment.

        See :meth:`repro.cluster.host.Host.boot_guest` -- the phase is
        untimed: costs, counters, and disk state reset.
        """
        self._host.boot_guest(vm, fraction=fraction)

    def apply_static_balloon(self, vm: Vm, pages: int) -> None:
        """Pre-inflate the balloon before the workload starts."""
        self._host.apply_static_balloon(vm, pages)

    def run(self, until: float | None = None) -> float:
        """Run the engine until all work completes (or ``until``)."""
        return self.engine.run(until)

    def aggregate_counters(self) -> dict[str, int]:
        """Machine-wide sum of every VM's counters."""
        return self._host.aggregate_counters()
