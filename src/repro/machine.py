"""Machine assembly: one physical host with disk, memory, and VMs.

A :class:`Machine` wires the engine, the shared disk, the frame pool,
the hypervisor, and any number of VMs (each with its own guest kernel,
image region, and QEMU process).  Experiments construct a machine from
a :class:`repro.config.MachineConfig`, add VMs and workloads, and run
the engine.
"""

from __future__ import annotations

from repro.audit import InvariantAuditor, paranoid_enabled
from repro.config import DiskConfig, MachineConfig, VmConfig
from repro.disk.device import DiskDevice
from repro.disk.geometry import DiskLayout
from repro.disk.image import VirtualDiskImage
from repro.disk.latency import HddLatencyModel, LatencyModel, SsdLatencyModel
from repro.disk.swaparea import HostSwapArea
from repro.errors import ConfigError
from repro.faults.plan import FaultPlan, default_fault_config
from repro.guest.kernel import GuestKernel
from repro.host.hypervisor import Hypervisor
from repro.host.qemu import QemuProcess
from repro.host.vm import Vm
from repro.mem.frames import FramePool
from repro.mem.page import AnonContent
from repro.metrics.counters import Counters
from repro.sim.engine import Engine
from repro.sim.ops import WritePattern
from repro.sim.rng import DeterministicRng
from repro.trace import tracing_mode
from repro.trace.collector import NULL_TRACE, TraceCollector
from repro.units import mib_pages


def build_latency_model(cfg: DiskConfig) -> LatencyModel:
    """Instantiate the latency model the disk config asks for."""
    cfg.validate()
    if cfg.kind == "ssd":
        return SsdLatencyModel(
            bandwidth_bytes_per_sec=cfg.bandwidth_bytes_per_sec,
            read_latency=cfg.ssd_read_latency,
            write_latency=cfg.ssd_write_latency,
        )
    return HddLatencyModel(
        bandwidth_bytes_per_sec=cfg.bandwidth_bytes_per_sec,
        seek_min=cfg.seek_min,
        seek_max=cfg.seek_max,
        rpm=cfg.rpm,
        rotation_fraction=cfg.rotation_fraction,
        per_request_overhead=cfg.per_request_overhead,
    )


class Machine:
    """One simulated physical host."""

    #: Host-root region size: holds the QEMU executables of all VMs.
    HOST_ROOT_PAGES = mib_pages(256)

    def __init__(self, config: MachineConfig) -> None:
        config.validate()
        self.cfg = config
        # The config's explicit FaultConfig wins; otherwise the
        # process-wide default (the CLI's --faults flag) applies.
        fault_cfg = (config.faults if config.faults is not None
                     else default_fault_config())
        if fault_cfg is not None:
            fault_cfg.validate()
        self.engine = Engine(
            max_events=(fault_cfg.watchdog_max_events
                        if fault_cfg else None),
            max_virtual_time=(fault_cfg.watchdog_max_virtual_time
                              if fault_cfg else None))
        self.rng = DeterministicRng(config.seed)
        #: Deterministic fault schedule; None when injection is off.
        self.faults: FaultPlan | None = (
            FaultPlan(fault_cfg, self.rng.fork("faults"))
            if fault_cfg is not None and fault_cfg.enabled else None)

        self.layout = DiskLayout()
        self._host_root = self.layout.add_region_pages(
            "host-root", self.HOST_ROOT_PAGES)
        swap_region = self.layout.add_region_pages(
            "host-swap", config.host.swap_size_pages)
        self.swap_area = HostSwapArea(swap_region)

        self.disk = DiskDevice(
            self.engine.clock, build_latency_model(config.disk),
            max_write_backlog=config.disk.max_write_backlog_seconds,
            faults=self.faults)
        self.frames = FramePool(config.host.total_memory_pages)
        self.hypervisor = Hypervisor(
            self.engine.clock, self.disk, self.frames,
            self.swap_area, config.host, rng=self.rng.fork("hypervisor"),
            faults=self.faults)

        self.vms: list[Vm] = []
        self._next_code_base = 0

        #: Trace collector; live only under --trace (the ambient mode),
        #: so ordinary runs keep the no-op emit path.
        mode = tracing_mode()
        self.trace = (TraceCollector(self.engine.clock, mode=mode)
                      if mode is not None else NULL_TRACE)
        self.engine.trace = self.trace
        self.disk.trace = self.trace
        self.hypervisor.trace = self.trace

        #: Runtime invariant auditor; installed only under --paranoid
        #: (the ambient flag), so ordinary runs pay nothing.
        self.auditor: InvariantAuditor | None = (
            InvariantAuditor(self) if paranoid_enabled() else None)
        self.hypervisor.auditor = self.auditor

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.engine.now

    def create_vm(self, vm_config: VmConfig) -> Vm:
        """Instantiate a VM: image region, QEMU process, guest kernel."""
        vm_id = len(self.vms)
        region = self.layout.add_region_pages(
            f"image-{vm_config.name}", vm_config.image_size_pages)
        image = VirtualDiskImage(region)

        code_pages = self.cfg.host.hypervisor_code_pages
        if (self._next_code_base + code_pages
                > self._host_root.size_pages):
            raise ConfigError("host-root region exhausted; too many VMs")
        qemu = QemuProcess(self._host_root, self._next_code_base, code_pages)
        self._next_code_base += code_pages

        vm = Vm(vm_config, vm_id, image, qemu,
                named_fraction=self.cfg.host.named_fraction,
                reclaim_noise=self.cfg.host.reclaim_noise,
                rng=self.rng.fork(f"reclaim-{vm_config.name}"))
        vm.guest = GuestKernel(
            vm_config.guest, vm, self.hypervisor,
            image.size_blocks, self.rng.fork(f"guest-{vm_config.name}"))
        self.hypervisor.register_vm(vm)
        self.vms.append(vm)
        vm.scanner.trace = self.trace
        vm.scanner.trace_vm = vm_config.name
        if vm.mapper is not None:
            vm.mapper.trace = self.trace
            vm.mapper.trace_vm = vm_config.name

        if vm_config.static_balloon_pages:
            self.apply_static_balloon(vm, vm_config.static_balloon_pages)
        return vm

    def boot_guest(self, vm: Vm, *, fraction: float = 1.0) -> None:
        """Model the guest's uptime history before the experiment.

        A real guest has touched essentially all of its believed memory
        by the time a benchmark runs (boot, daemons, earlier jobs), so
        under uncooperative swapping the host swap area holds a large
        population of dead-but-swapped pages.  Those stragglers are the
        persistent state that fragments swap-slot runs over time --
        without them, decayed swap sequentiality cannot accumulate.

        The phase is untimed: costs, counters, and disk state reset.
        """
        guest = vm.guest
        keep_free = guest.cfg.derived_free_target
        touch_pages = int(max(0, len(guest.free_list) - keep_free) * fraction)
        if touch_pages > 0:
            region = guest.anon.commit("boot-history", touch_pages)
            for index in range(touch_pages):
                gpa = guest._alloc_gpa()
                self.hypervisor.overwrite_page(
                    vm, gpa, AnonContent.fresh(),
                    WritePattern.FULL_SEQUENTIAL)
                guest.anon.place_in_memory("boot-history", index, gpa)
                guest.scanner.note_resident(gpa, named=False)
            released, slots = guest.anon.release_region("boot-history")
            for gpa in released:
                guest.scanner.note_evicted(gpa)
                guest.free_list.append(gpa)
            for slot in slots:
                guest.gswap.free(slot)
        vm.costs.reset()
        vm.counters = Counters()
        self.disk.quiesce()
        # Boot history is untimed setup: drop its events too, so the
        # analyzer's counts line up with the reset counters bit-exactly.
        self.trace.reset()

    def apply_static_balloon(self, vm: Vm, pages: int) -> None:
        """Pre-inflate the balloon before the workload starts.

        Controlled experiments (Section 5.1) configure the balloon once
        and leave it; inflation on a freshly booted guest is pure
        free-list allocation, so no cost accrues.
        """
        guest = vm.guest
        guest.set_balloon_target(pages)
        guest.apply_balloon(pages)
        vm.costs.reset()

    def run(self, until: float | None = None) -> float:
        """Run the engine until all work completes (or ``until``)."""
        return self.engine.run(until)

    def aggregate_counters(self) -> dict[str, int]:
        """Machine-wide sum of every VM's counters."""
        totals: dict[str, int] = {}
        for vm in self.vms:
            for name, value in vm.counters.snapshot().items():
                totals[name] = totals.get(name, 0) + value
        return totals
