"""Memory substrate: frames, EPT, LRU lists, reclaim scanning."""

from repro.mem.page import AnonContent, PageContent, ZERO, ZeroContent, content_repr
from repro.mem.frames import FramePool
from repro.mem.lru import ClockList
from repro.mem.ept import Ept, EptEntry
from repro.mem.reclaim import ReclaimScanner, ScanResult

__all__ = [
    "AnonContent",
    "PageContent",
    "ZERO",
    "ZeroContent",
    "content_repr",
    "FramePool",
    "ClockList",
    "Ept",
    "EptEntry",
    "ReclaimScanner",
    "ScanResult",
]
