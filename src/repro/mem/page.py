"""Logical page-content identities.

The simulator never stores page bytes; it stores *what the bytes are*:

* :data:`ZERO` -- the page is all zeroes (never written, or freshly
  zeroed by the guest).
* :class:`repro.disk.image.BlockVersion` -- the page equals disk block
  ``b`` at content version ``v``.  This identity powers the
  silent-swap-write metric and every Swap Mapper consistency check.
* :class:`AnonContent` -- opaque program data; each distinct write
  burst mints a fresh token so accidental aliasing is impossible.

Content identity is orthogonal to *residency*: a page keeps its content
whether it lives in a host frame, the host swap area, or (for tracked
pages) only in the disk image.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.disk.image import BlockVersion


class ZeroContent:
    """Singleton identity of an all-zero page."""

    _instance: "ZeroContent | None" = None

    def __new__(cls) -> "ZeroContent":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ZERO"


#: The all-zeroes content identity.
ZERO = ZeroContent()

_anon_tokens = itertools.count(1)


@dataclass(frozen=True)
class AnonContent:
    """Opaque anonymous data (heap/stack bytes) with a unique token."""

    token: int

    @staticmethod
    def fresh() -> "AnonContent":
        """Mint a new, globally unique anonymous content identity."""
        return AnonContent(next(_anon_tokens))


#: Everything a page may logically contain.
PageContent = ZeroContent | AnonContent | BlockVersion


def content_repr(content: PageContent | None) -> str:
    """Compact human-readable form of a content identity."""
    if content is None or isinstance(content, ZeroContent):
        return "ZERO"
    if isinstance(content, AnonContent):
        return f"anon#{content.token}"
    return f"blk{content.block}v{content.version}"
