"""Clock-style LRU approximation.

Both the host and the guest kernels reclaim with a clock hand over an
ordered list of resident pages, giving referenced pages a second chance
-- the same approximation Linux's active/inactive lists implement.  The
number of entries the hand *examines* is the paper's "pages scanned"
metric (Figure 11c).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Hashable, Iterator, Optional, TypeVar

K = TypeVar("K", bound=Hashable)


class ClockList:
    """Ordered set of keys with clock-hand scanning.

    Keys enter at the tail (most recently added).  The scan examines
    keys from the head; a key whose ``referenced`` callback returns True
    is rotated to the tail (second chance), otherwise it is evicted.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._entries: OrderedDict[Hashable, None] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._entries)

    def add(self, key: Hashable) -> None:
        """Insert ``key`` at the tail; re-adding refreshes its position."""
        if key in self._entries:
            self._entries.move_to_end(key)
        else:
            self._entries[key] = None

    def add_front(self, key: Hashable) -> None:
        """Insert ``key`` at the head -- first in line for eviction.

        Models inactive-list insertion of speculative pages (swap
        readahead) that have earned no recency credit yet.
        """
        self._entries[key] = None
        self._entries.move_to_end(key, last=False)

    def remove(self, key: Hashable) -> None:
        """Remove ``key``; missing keys are ignored (already evicted)."""
        self._entries.pop(key, None)

    def peek_head(self) -> Optional[Hashable]:
        """Key the clock hand would examine next, or None when empty."""
        for key in self._entries:
            return key
        return None

    def scan(
        self,
        want: int,
        referenced: Callable[[Hashable], bool],
        *,
        max_examined: Optional[int] = None,
    ) -> tuple[list[Hashable], int]:
        """Find up to ``want`` eviction victims.

        Returns ``(victims, examined)`` where ``examined`` counts every
        key the hand looked at (the pages-scanned metric).  Referenced
        keys get their bit cleared (the callback is expected to clear
        it) and rotate to the tail.  The scan gives up after
        ``max_examined`` examinations (default: twice the list length,
        mirroring reclaim priority escalation) and returns what it has.
        """
        victims: list[Hashable] = []
        entries = self._entries
        take = victims.append
        pop_head = entries.popitem
        set_tail = entries.__setitem__
        examined = 0
        if max_examined is None:
            max_examined = 2 * len(entries)
        while len(victims) < want and entries and examined < max_examined:
            key, _ = pop_head(last=False)
            examined += 1
            if referenced(key):
                set_tail(key, None)  # second chance: rotate to tail
            else:
                take(key)
        return victims, examined

    def keys_in_order(self) -> list[Hashable]:
        """Snapshot of keys from head (coldest) to tail (hottest)."""
        return list(self._entries)
