"""Host physical frame accounting.

Frames are fungible in this simulation -- no per-frame identity is
needed, only conservation: the pool refuses to go negative, and the
hypervisor must reclaim before mapping when the pool is dry.
"""

from __future__ import annotations

from repro.errors import MemoryError_


class FramePool:
    """Counting allocator for host physical page frames."""

    __slots__ = ("total_frames", "_used")

    def __init__(self, total_frames: int) -> None:
        if total_frames <= 0:
            raise MemoryError_(f"pool needs at least one frame: {total_frames}")
        self.total_frames = total_frames
        self._used = 0

    @property
    def used(self) -> int:
        """Frames currently handed out."""
        return self._used

    @property
    def free(self) -> int:
        """Frames available for allocation."""
        return self.total_frames - self._used

    def allocate(self, n: int = 1) -> None:
        """Take ``n`` frames; raises if the pool would go negative.

        Callers (the hypervisor) must free up frames via reclaim first;
        failing to do so is a simulation bug, not a recoverable state.
        """
        used = self._used + n
        if n < 0:
            raise MemoryError_(f"negative allocation: {n}")
        if used > self.total_frames:
            raise MemoryError_(
                f"frame pool exhausted: want {n}, free {self.free}")
        self._used = used

    def release(self, n: int = 1) -> None:
        """Return ``n`` frames to the pool."""
        if n < 0:
            raise MemoryError_(f"negative release: {n}")
        if n > self._used:
            raise MemoryError_(
                f"releasing {n} frames but only {self._used} in use")
        self._used -= n

    def can_allocate(self, n: int) -> bool:
        """Whether ``n`` frames are currently available."""
        return self.total_frames - self._used >= n

    def audit_error(self) -> str | None:
        """Conservation self-check for the invariant auditor.

        Returns a description of the breach, or None when the pool is
        sound.  ``free`` is derived, so the only way conservation can
        break is the used count escaping ``[0, total]``.
        """
        if not 0 <= self._used <= self.total_frames:
            return (f"frame pool out of bounds: used={self._used} "
                    f"total={self.total_frames}")
        return None
