"""Generic named/anon reclaim scanning, shared by host and guest models.

Linux reclaim keeps file-backed ("named") and anonymous pages on
separate LRU lists and prefers to take file pages: they can be dropped
without write-back and re-read with effective prefetching.  The paper's
*false page anonymity* problem is precisely that in the baseline the
named list contains nothing but the hypervisor executable, so this
preference repeatedly victimizes QEMU's own code (Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable

from repro.errors import MemoryError_
from repro.mem.lru import ClockList
from repro.trace.collector import NULL_TRACE


@dataclass
class ScanResult:
    """Outcome of one victim-selection pass."""

    #: Chosen victims, as (key, was_named) pairs in eviction order.
    victims: list[tuple[Hashable, bool]] = field(default_factory=list)
    #: Entries the clock hand examined (the pages-scanned metric).
    examined: int = 0


class ReclaimScanner:
    """Two-list clock reclaim with a tunable named-page preference.

    ``referenced`` is probed (and cleared) per examined key -- wire it
    to :meth:`repro.mem.ept.Ept.test_and_clear_accessed` on the host or
    the guest's own accessed bookkeeping.
    """

    def __init__(
        self,
        referenced: Callable[[Hashable], bool],
        *,
        named_fraction: float = 0.75,
        unevictable: Callable[[Hashable], bool] | None = None,
        noise: float = 0.0,
        noise_rng=None,
        probe: Callable[[Hashable], bool] | None = None,
        scan: Callable[[ClockList, int], tuple[list, int]] | None = None,
    ) -> None:
        if not 0.0 <= named_fraction <= 1.0:
            raise MemoryError_(
                f"named_fraction must be in [0, 1]: {named_fraction}")
        if not 0.0 <= noise <= 1.0:
            raise MemoryError_(f"noise must be in [0, 1]: {noise}")
        if noise > 0.0 and noise_rng is None:
            raise MemoryError_("noise requires a noise_rng")
        self.named_list = ClockList("named")
        self.anon_list = ClockList("anon")
        self.named_fraction = named_fraction
        self._unevictable = unevictable or (lambda key: False)
        self._referenced_raw = referenced
        self._noise = noise
        self._noise_rng = noise_rng
        #: ``probe`` is an optional caller-fused referenced predicate
        #: that already implements the unevictable -> noise -> raw layer
        #: order (one closure, no chained calls).  It runs once per
        #: clock-hand examination, so hosts that can flatten the layers
        #: into a single function (see ``Vm._build_scan_probe``) shave
        #: two Python frames off every examination.  It must consume
        #: exactly the same RNG draws as the composed equivalent.
        self._referenced = probe if probe is not None \
            else self._compose_probe(unevictable)
        #: Optional caller-fused scan loop: ``scan(clock_list, want)``
        #: must behave exactly like ``clock_list.scan(want, probe)``
        #: but with the probe body inlined into the loop, so an
        #: examination costs no Python frame at all (see
        #: ``Vm._build_scan_fused``).  The escalation pass still goes
        #: through ``ClockList.scan`` with the unevictable predicate.
        self._scan = scan
        #: Trace collector plus the VM name scans are attributed to;
        #: wired by the machine for host-side scanners under ``--trace``.
        self.trace = NULL_TRACE
        self.trace_vm: str | None = None

    def _compose_probe(self, unevictable) -> Callable[[Hashable], bool]:
        """Build the referenced probe with DMA protection and noise.

        Pages pinned for in-flight DMA are treated as permanently
        referenced.  The noise term randomly grants extra rotations,
        modelling the disorder of real referenced-bit sampling -- the
        seed of decayed swap sequentiality (see HostConfig.reclaim_noise).

        The probe runs once per examined key, so the layers the caller
        did not ask for (no pin predicate, zero noise) are compiled out
        here instead of branched over per call.  Layer order is fixed:
        unevictable, then noise (one RNG draw, same sequence as
        ``noise_rng.chance``), then the real referenced bit.
        """
        raw = self._referenced_raw
        noise = self._noise
        if noise > 0.0:
            inner = getattr(self._noise_rng, "_random", None)
            if inner is not None:
                rand = inner.random
            else:  # non-standard rng double: fall back to its public API
                chance = self._noise_rng.chance

                def rand() -> float:
                    return 0.0 if chance(noise) else 1.0

            if unevictable is None:
                def probe(key: Hashable) -> bool:
                    return True if rand() < noise else raw(key)
            else:
                def probe(key: Hashable) -> bool:
                    if unevictable(key):
                        return True
                    return True if rand() < noise else raw(key)
        elif unevictable is None:
            probe = raw
        else:
            def probe(key: Hashable) -> bool:
                return True if unevictable(key) else raw(key)
        return probe

    # -- membership maintenance --------------------------------------------

    def note_resident(self, key: Hashable, *, named: bool,
                      cold: bool = False) -> None:
        """Register a newly resident page on the appropriate list.

        ``cold=True`` queues the page at the eviction end (speculative
        readahead pages that have not yet been used).
        """
        target = self.named_list if named else self.anon_list
        if cold:
            target.add_front(key)
        else:
            target.add(key)

    def note_evicted(self, key: Hashable) -> None:
        """Drop a page from whichever list holds it."""
        self.named_list.remove(key)
        self.anon_list.remove(key)

    def change_kind(self, key: Hashable, *, named: bool) -> None:
        """Move a resident page between lists (e.g. a Mapper COW break
        turns a named page anonymous)."""
        self.note_evicted(key)
        self.note_resident(key, named=named)

    def is_named(self, key: Hashable) -> bool:
        """Whether the resident page currently sits on the named list."""
        return key in self.named_list

    @property
    def resident(self) -> int:
        """Pages on either list."""
        return len(self.named_list) + len(self.anon_list)

    # -- victim selection ----------------------------------------------------

    def pick_victims(self, want: int) -> ScanResult:
        """Select up to ``want`` victims, preferring named pages.

        The named list is scanned for ``named_fraction`` of the batch
        (all of it if the anon list is empty) and the anon list covers
        the remainder; any shortfall falls back to the other list.
        """
        if want <= 0:
            return ScanResult()
        result = ScanResult()

        from_named = want if not len(self.anon_list) else max(
            1, int(round(want * self.named_fraction)))
        from_named = min(from_named, want)

        victims = result.victims
        scan = self._scan
        if scan is not None:
            named_victims, examined = scan(
                self.named_list, min(from_named, len(self.named_list)))
        else:
            named_victims, examined = self.named_list.scan(
                min(from_named, len(self.named_list)), self._referenced)
        result.examined += examined
        victims += [(key, True) for key in named_victims]

        remaining = want - len(victims)
        if remaining > 0 and len(self.anon_list):
            if scan is not None:
                anon_victims, examined = scan(self.anon_list, remaining)
            else:
                anon_victims, examined = self.anon_list.scan(
                    remaining, self._referenced)
            result.examined += examined
            victims += [(key, False) for key in anon_victims]

        # Shortfall: escalate back to the named list without the
        # second-chance courtesy (reclaim priority escalation).  Only
        # unevictable (DMA-pinned) pages keep their protection.
        remaining = want - len(victims)
        if remaining > 0 and len(self.named_list):
            forced, examined = self.named_list.scan(
                remaining, self._unevictable)
            result.examined += examined
            victims += [(key, True) for key in forced]
        if self.trace.enabled:
            self.trace.emit(
                "reclaim.scan", vm=self.trace_vm,
                examined=result.examined, victims=len(result.victims))
        return result
