"""Extended page table: the host-controlled GPA => HPA level.

Only presence and the accessed bit matter to the paper's effects (see
Figure 1 in the paper): a non-present entry turns a guest memory access
into an EPT violation the host must service, and accessed bits feed the
host reclaim clock.  Frames are fungible, so entries do not record a
physical frame number -- the :class:`repro.mem.frames.FramePool` keeps
conservation honest.

Page state is array-backed for speed: three ``bytearray`` bitmaps
indexed by GPA hold the present/accessed/dirty bits, so the fault and
reclaim hot paths poke C-level byte arrays instead of allocating and
chasing per-page entry objects.  The arrays grow *in place* (their
identity is stable), so hot callers -- the hypervisor fault path, the
reclaim probe -- may bind them once and index directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MemoryError_

#: Initial capacity of an unsized table (tests build bare ``Ept()``s
#: and map arbitrary GPAs); wired VMs size the table to the guest's
#: ``memory_pages`` up front so it never grows.
_MIN_PAGES = 64


@dataclass
class EptEntry:
    """Snapshot of one present GPA mapping's bits.

    The live state lives in the table's bitmaps; an ``EptEntry`` is the
    *copy* handed out by :meth:`Ept.entry` and :meth:`Ept.unmap_page`
    for inspection.  Mutating a snapshot does not write back -- use
    :meth:`Ept.mark_accessed` / :meth:`Ept.set_dirty`.
    """

    accessed: bool = True
    #: Host-side dirty approximation.  The paper stresses that 2013-era
    #: hardware had *no* EPT dirty bit, so baseline swap-out must assume
    #: dirty; the table still tracks truth so the silent-write metric
    #: and the hardware-dirty-bit ablation can read it.
    dirty: bool = False


class Ept:
    """GPA => HPA mapping for one VM (present entries only)."""

    __slots__ = ("_present", "_accessed", "_dirty", "_size", "_resident")

    def __init__(self, size_pages: int = 0) -> None:
        size = size_pages if size_pages > _MIN_PAGES else _MIN_PAGES
        self._present = bytearray(size)
        self._accessed = bytearray(size)
        self._dirty = bytearray(size)
        self._size = size
        self._resident = 0

    def _ensure(self, gpa: int) -> None:
        """Grow the bitmaps (in place) to cover ``gpa``."""
        if gpa < 0:
            raise MemoryError_(f"negative GPA: {gpa:#x}")
        size = self._size
        grown = max(gpa + 1, 2 * size) - size
        pad = bytes(grown)
        self._present.extend(pad)
        self._accessed.extend(pad)
        self._dirty.extend(pad)
        self._size = size + grown

    def __len__(self) -> int:
        return self._resident

    def __contains__(self, gpa: int) -> bool:
        return 0 <= gpa < self._size and self._present[gpa] != 0

    @property
    def resident_pages(self) -> int:
        """Number of present mappings (the VM's resident set)."""
        return self._resident

    def map_page(self, gpa: int, *, accessed: bool = True,
                 dirty: bool = False) -> None:
        """Install a mapping for ``gpa``; it must not already be present."""
        if gpa < 0 or gpa >= self._size:
            self._ensure(gpa)
        if self._present[gpa]:
            raise MemoryError_(f"GPA {gpa:#x} already mapped")
        self._present[gpa] = 1
        self._accessed[gpa] = 1 if accessed else 0
        self._dirty[gpa] = 1 if dirty else 0
        self._resident += 1

    def unmap_page(self, gpa: int) -> EptEntry:
        """Remove the mapping for ``gpa``, returning its final state."""
        if gpa < 0 or gpa >= self._size or not self._present[gpa]:
            raise MemoryError_(f"GPA {gpa:#x} not mapped")
        self._present[gpa] = 0
        self._resident -= 1
        return EptEntry(accessed=self._accessed[gpa] != 0,
                        dirty=self._dirty[gpa] != 0)

    def entry(self, gpa: int) -> EptEntry:
        """Snapshot of the bits of a present ``gpa``."""
        if gpa < 0 or gpa >= self._size or not self._present[gpa]:
            raise MemoryError_(f"GPA {gpa:#x} not mapped")
        return EptEntry(accessed=self._accessed[gpa] != 0,
                        dirty=self._dirty[gpa] != 0)

    def is_present(self, gpa: int) -> bool:
        """Whether a guest access to ``gpa`` would hit without a fault."""
        return 0 <= gpa < self._size and self._present[gpa] != 0

    def mark_accessed(self, gpa: int, *, write: bool = False) -> None:
        """Set the accessed (and optionally dirty) bit of a present entry."""
        if gpa < 0 or gpa >= self._size or not self._present[gpa]:
            raise MemoryError_(f"GPA {gpa:#x} not mapped")
        self._accessed[gpa] = 1
        if write:
            self._dirty[gpa] = 1

    def set_dirty(self, gpa: int, dirty: bool = True) -> None:
        """Set or clear the dirty bit of a present entry."""
        if gpa < 0 or gpa >= self._size or not self._present[gpa]:
            raise MemoryError_(f"GPA {gpa:#x} not mapped")
        self._dirty[gpa] = 1 if dirty else 0

    def test_and_clear_accessed(self, gpa: int) -> bool:
        """Read and clear the accessed bit (the reclaim clock's probe)."""
        if gpa < 0 or gpa >= self._size or not self._present[gpa]:
            raise MemoryError_(f"GPA {gpa:#x} not mapped")
        was = self._accessed[gpa]
        self._accessed[gpa] = 0
        return was != 0

    def present_gpas(self) -> list[int]:
        """Snapshot of all present GPAs, ascending (test/debug helper)."""
        present = self._present
        return [gpa for gpa in range(self._size) if present[gpa]]

    def iter_present(self):
        """Iterate present GPAs (ascending) without copying (the
        invariant auditor walks every VM's EPT on each full audit)."""
        present = self._present
        return (gpa for gpa in range(self._size) if present[gpa])
