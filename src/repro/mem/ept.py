"""Extended page table: the host-controlled GPA => HPA level.

Only presence and the accessed bit matter to the paper's effects (see
Figure 1 in the paper): a non-present entry turns a guest memory access
into an EPT violation the host must service, and accessed bits feed the
host reclaim clock.  Frames are fungible, so entries do not record a
physical frame number -- the :class:`repro.mem.frames.FramePool` keeps
conservation honest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MemoryError_


@dataclass
class EptEntry:
    """State of one present GPA mapping."""

    accessed: bool = True
    #: Host-side dirty approximation.  The paper stresses that 2013-era
    #: hardware had *no* EPT dirty bit, so baseline swap-out must assume
    #: dirty; the entry still tracks truth so the silent-write metric
    #: and the hardware-dirty-bit ablation can read it.
    dirty: bool = False


class Ept:
    """GPA => HPA mapping for one VM (present entries only)."""

    def __init__(self) -> None:
        self._entries: dict[int, EptEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, gpa: int) -> bool:
        return gpa in self._entries

    @property
    def resident_pages(self) -> int:
        """Number of present mappings (the VM's resident set)."""
        return len(self._entries)

    def map_page(self, gpa: int, *, accessed: bool = True,
                 dirty: bool = False) -> None:
        """Install a mapping for ``gpa``; it must not already be present."""
        if gpa in self._entries:
            raise MemoryError_(f"GPA {gpa:#x} already mapped")
        self._entries[gpa] = EptEntry(accessed=accessed, dirty=dirty)

    def unmap_page(self, gpa: int) -> EptEntry:
        """Remove the mapping for ``gpa``, returning its final state."""
        try:
            return self._entries.pop(gpa)
        except KeyError:
            raise MemoryError_(f"GPA {gpa:#x} not mapped") from None

    def entry(self, gpa: int) -> EptEntry:
        """The entry for a present ``gpa``."""
        try:
            return self._entries[gpa]
        except KeyError:
            raise MemoryError_(f"GPA {gpa:#x} not mapped") from None

    def is_present(self, gpa: int) -> bool:
        """Whether a guest access to ``gpa`` would hit without a fault."""
        return gpa in self._entries

    def mark_accessed(self, gpa: int, *, write: bool = False) -> None:
        """Set the accessed (and optionally dirty) bit of a present entry."""
        entry = self.entry(gpa)
        entry.accessed = True
        if write:
            entry.dirty = True

    def test_and_clear_accessed(self, gpa: int) -> bool:
        """Read and clear the accessed bit (the reclaim clock's probe)."""
        entry = self.entry(gpa)
        was = entry.accessed
        entry.accessed = False
        return was

    def present_gpas(self) -> list[int]:
        """Snapshot of all present GPAs (test/debug helper)."""
        return list(self._entries)

    def iter_present(self):
        """Iterate present GPAs without copying (the invariant auditor
        walks every VM's EPT on each full audit)."""
        return iter(self._entries)
