"""zswap/zram-style compressed-RAM swap tier.

Pages stay in host memory, compressed: a store costs CPU (compress), a
load costs CPU (decompress), and there is no device queue at all.  The
tier's capacity is counted in *compressed bytes* -- the configured
``capacity_pages`` is a budget of ``capacity_pages * PAGE_SIZE``
compressed bytes, so how many pages actually fit depends on how well
each one compresses.

Each slot's compression ratio is a pure function of ``(cell seed,
slot)``: the draw forks a fresh RNG per slot from a seed captured at
construction, never consuming the backend's (or anyone else's) stream.
Same seed -> same ratio per slot regardless of store order, which is
what makes tier residency reproducible across runs.
"""

from __future__ import annotations

from repro.config import SwapBackendConfig
from repro.errors import DiskError
from repro.sim.rng import DeterministicRng
from repro.units import PAGE_SIZE

from repro.swapback.base import SwapBackend


class CompressedBackend(SwapBackend):
    """Compressed-RAM tier with capacity in compressed bytes."""

    kind = "zram"
    tracks_slots = True

    def __init__(self, cfg: SwapBackendConfig, *, rng=None,
                 faults=None) -> None:
        super().__init__()
        self.cfg = cfg
        self.faults = faults
        #: Seed of the per-slot ratio substream (pure fork).
        self._ratio_seed = (rng.fork("swapback-zram").seed
                            if rng is not None else 1)
        #: slot -> compressed size in bytes.
        self._sizes: dict[int, int] = {}
        self.used_bytes = 0
        self.capacity_bytes = (None if cfg.capacity_pages is None
                               else cfg.capacity_pages * PAGE_SIZE)

    # ------------------------------------------------------------------
    # compression model
    # ------------------------------------------------------------------

    def compressed_size(self, slot: int) -> int:
        """Compressed bytes of the page stored in ``slot``.

        Pure in (seed, slot): a fresh RNG is forked per draw, so the
        same seed reproduces the same size whatever order slots are
        stored or probed in.
        """
        cfg = self.cfg
        rng = DeterministicRng(self._ratio_seed).fork(f"ratio:{slot}")
        ratio = rng.uniform(
            cfg.compression_ratio_mean - cfg.compression_ratio_jitter,
            cfg.compression_ratio_mean + cfg.compression_ratio_jitter)
        # An incompressible page is stored verbatim, never inflated.
        ratio = min(1.0, max(ratio, 1 / PAGE_SIZE))
        return max(1, int(PAGE_SIZE * ratio))

    # ------------------------------------------------------------------
    # per-page hooks (TieredBackend composition)
    # ------------------------------------------------------------------

    def fits(self, slot: int) -> bool:
        """Whether ``slot``'s page fits in the remaining byte budget.

        A re-store of a resident slot replaces its old bytes, so those
        count as free for the check.
        """
        if self.capacity_bytes is None:
            return True
        used = self.used_bytes - self._sizes.get(slot, 0)
        return used + self.compressed_size(slot) <= self.capacity_bytes

    def store_page(self, slot: int) -> float:
        size = self.compressed_size(slot)
        old = self._sizes.pop(slot, None)
        if old is not None:
            self.used_bytes -= old
        if (self.capacity_bytes is not None
                and self.used_bytes + size > self.capacity_bytes):
            if old is not None:
                # Undo the eviction: a failed re-store keeps the old copy.
                self._sizes[slot] = old
                self.used_bytes += old
            raise DiskError(
                f"compressed swap tier full: {self.used_bytes} + {size} "
                f"bytes > capacity of {self.capacity_bytes}")
        self._sizes[slot] = size
        self.used_bytes += size
        cost = self.cfg.compress_page_cost
        stats = self.stats
        stats.stores += 1
        stats.pages_stored += 1
        stats.cpu_seconds += cost
        stats.store_seconds += cost
        return cost

    def load_page(self, slot: int) -> float:
        cost = self.cfg.decompress_page_cost
        stats = self.stats
        stats.loads += 1
        stats.pages_loaded += 1
        stats.cpu_seconds += cost
        stats.load_seconds += cost
        return cost

    def drop(self, slot: int) -> None:
        size = self._sizes.pop(slot, None)
        if size is not None:
            self.used_bytes -= size

    # ------------------------------------------------------------------
    # the hypervisor contract
    # ------------------------------------------------------------------

    def _pressure_stall(self) -> float:
        plan = self.faults
        if plan is None:
            return 0.0
        stall = plan.compressed_stall()
        if stall:
            self.stats.compressed_stalls += 1
            plan.counters.bump("compressed_swap_stalls")
        return stall

    def store(self, first_slot: int, npages: int) -> float:
        cost = self._pressure_stall()
        for slot in range(first_slot, first_slot + npages):
            cost += self.store_page(slot)
        if self.trace.enabled:
            self.trace.emit("swapback.store", tier=self.kind,
                            slot=first_slot, pages=npages, throttle=cost)
        return cost

    def load(self, first_slot: int, npages: int) -> float:
        cost = 0.0
        sizes = self._sizes
        for slot in range(first_slot, first_slot + npages):
            # Spanning reads cover holes (slots owned by other VMs or
            # already freed); only slots that actually hold data cost.
            if slot in sizes:
                cost += self.load_page(slot)
        if self.trace.enabled:
            self.trace.emit("swapback.load", tier=self.kind,
                            slot=first_slot, pages=npages, stall=cost)
        return cost

    def note_free(self, slot: int) -> None:
        self.drop(slot)

    # ------------------------------------------------------------------
    # signals
    # ------------------------------------------------------------------

    @property
    def pressure(self) -> float:
        if not self.capacity_bytes:
            return 0.0
        return self.used_bytes / self.capacity_bytes

    def occupancy(self) -> dict:
        return {
            "pages_held": len(self._sizes),
            "used_bytes": self.used_bytes,
            "capacity_bytes": self.capacity_bytes,
        }
