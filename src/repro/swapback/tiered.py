"""Two-level tiered swap: a fast tier spilling into a slow one.

Policy rules (the common zswap deployment shape):

* **write-to-fast** -- every store lands in the fast tier when it
  fits;
* **spill-to-slow** -- when it does not, the *oldest* fast-tier
  residents are demoted (read out of fast, written to slow) until it
  does; a page that can never fit goes straight to slow;
* **hot-page promotion** -- a slow-tier page that gets swapped back in
  is promoted to the fast tier (``promote_on_load``), but only when it
  fits without evicting anyone -- promotion must never trigger a
  demotion cascade.

Demotion order is FIFO over store order (a clock-less approximation of
LRU: the hypervisor's own reclaim already sorts pages by coldness
before they arrive here).  All policy state is keyed by slot, so with
a fixed seed the tier residency of every page is reproducible.
"""

from __future__ import annotations

from repro.config import SwapBackendConfig

from repro.swapback.base import SwapBackend


class TieredBackend(SwapBackend):
    """Composite backend delegating to a fast and a slow tier."""

    kind = "tiered"
    tracks_slots = True

    def __init__(self, cfg: SwapBackendConfig, fast: SwapBackend,
                 slow: SwapBackend) -> None:
        super().__init__()
        self.cfg = cfg
        self.fast = fast
        self.slow = slow
        #: slot -> tier name ("fast" | "slow") for every stored slot.
        self.tier_of: dict[int, str] = {}
        #: Fast-tier residents in store order (FIFO demotion victims);
        #: insertion-ordered dict used as an ordered set.
        self._fast_order: dict[int, None] = {}

    # ------------------------------------------------------------------
    # policy
    # ------------------------------------------------------------------

    def _demote_until_fits(self, slot: int) -> float:
        """Demote oldest fast residents until ``slot`` fits (or fast is
        empty); returns the accumulated device cost."""
        cost = 0.0
        fast, slow = self.fast, self.slow
        trace_on = self.trace.enabled
        while self._fast_order and not fast.fits(slot):
            victim = next(iter(self._fast_order))
            del self._fast_order[victim]
            cost += fast.load_page(victim)
            fast.drop(victim)
            cost += slow.store_page(victim)
            self.tier_of[victim] = "slow"
            self.stats.demotes += 1
            if trace_on:
                self.trace.emit("swapback.demote", tier="fast->slow",
                                slot=victim)
        return cost

    def _store_one(self, slot: int) -> float:
        cost = 0.0
        fast = self.fast
        if not fast.fits(slot):
            cost += self._demote_until_fits(slot)
        if fast.fits(slot):
            cost += fast.store_page(slot)
            self.tier_of[slot] = "fast"
            self._fast_order[slot] = None
        else:
            # Even an empty fast tier cannot hold it: straight to slow.
            cost += self.slow.store_page(slot)
            self.tier_of[slot] = "slow"
        return cost

    def _promote(self, slot: int) -> float:
        """Move a just-loaded slow-tier slot up; returns the write cost."""
        cost = self.fast.store_page(slot)
        self.slow.drop(slot)
        self.tier_of[slot] = "fast"
        self._fast_order[slot] = None
        self.stats.promotes += 1
        if self.trace.enabled:
            self.trace.emit("swapback.promote", tier="slow->fast",
                            slot=slot)
        return cost

    # ------------------------------------------------------------------
    # the hypervisor contract
    # ------------------------------------------------------------------

    def store(self, first_slot: int, npages: int) -> float:
        cost = 0.0
        for slot in range(first_slot, first_slot + npages):
            cost += self._store_one(slot)
        stats = self.stats
        stats.stores += 1
        stats.pages_stored += npages
        stats.store_seconds += cost
        if self.trace.enabled:
            self.trace.emit("swapback.store", tier=self.kind,
                            slot=first_slot, pages=npages, throttle=cost)
        return cost

    def load(self, first_slot: int, npages: int) -> float:
        cost = 0.0
        tier_of = self.tier_of
        promote = (self.cfg.promote_on_load
                   if self.cfg is not None else True)
        fast, slow = self.fast, self.slow
        for slot in range(first_slot, first_slot + npages):
            tier = tier_of.get(slot)
            if tier is None:
                continue  # hole in the spanning read: no data, no cost
            if tier == "fast":
                cost += fast.load_page(slot)
            else:
                cost += slow.load_page(slot)
                if promote and fast.fits(slot):
                    cost += self._promote(slot)
        stats = self.stats
        stats.loads += 1
        stats.pages_loaded += npages
        stats.load_seconds += cost
        if self.trace.enabled:
            self.trace.emit("swapback.load", tier=self.kind,
                            slot=first_slot, pages=npages, stall=cost)
        return cost

    def note_free(self, slot: int) -> None:
        tier = self.tier_of.pop(slot, None)
        if tier == "fast":
            self._fast_order.pop(slot, None)
            self.fast.drop(slot)
        elif tier == "slow":
            self.slow.drop(slot)

    # ------------------------------------------------------------------
    # signals
    # ------------------------------------------------------------------

    @property
    def pressure(self) -> float:
        """Fast-tier fill fraction: the spill imminence signal."""
        return self.fast.pressure

    def occupancy(self) -> dict:
        return {
            "fast": self.fast.occupancy(),
            "slow": self.slow.occupancy(),
            "fast_pages": len(self._fast_order),
            "slow_pages": len(self.tier_of) - len(self._fast_order),
        }
