"""Pluggable swap backends: where host-swapped pages actually go.

The hypervisor's swap path is slot-addressed; a :class:`SwapBackend`
decides what a slot-run store/load costs.  ``DiskSwapBackend`` (the
default) reproduces the paper's shared-HDD path bit-for-bit; the other
backends answer ROADMAP item 3 -- which of the paper's root causes
survive when swap is served by flash, compressed RAM, or far memory.

See DESIGN.md section 14 for the interface contract, the tiering
policy rules, and the compressed-capacity unit conventions.
"""

from repro.swapback.base import (
    SwapBackend,
    SwapBackendStats,
    default_swap_backend,
    set_default_swap_backend,
)
from repro.swapback.devices import FlashBackend, RemoteBackend
from repro.swapback.disk import DiskSwapBackend
from repro.swapback.factory import build_swap_backend
from repro.swapback.tiered import TieredBackend
from repro.swapback.zram import CompressedBackend

__all__ = [
    "CompressedBackend",
    "DiskSwapBackend",
    "FlashBackend",
    "RemoteBackend",
    "SwapBackend",
    "SwapBackendStats",
    "TieredBackend",
    "build_swap_backend",
    "default_swap_backend",
    "set_default_swap_backend",
]
