"""The default backend: swap through the host's own disk.

This is the paper's setup extracted behind the interface.  Every
method reproduces the exact :class:`~repro.disk.device.DiskDevice`
call the hypervisor used to make inline -- same sectors, same region
tag, same call order -- so a host built with this backend is
bit-identical to pre-backend builds (the fig9 golden fixture pins it).
"""

from __future__ import annotations

from repro.disk.device import DiskDevice
from repro.disk.swaparea import HostSwapArea
from repro.units import SECTORS_PER_PAGE

from repro.swapback.base import SwapBackend


class DiskSwapBackend(SwapBackend):
    """Swap slots live on the shared host disk ("host-swap" region)."""

    kind = "disk"
    tracks_slots = False

    def __init__(self, disk: DiskDevice, swap_area: HostSwapArea) -> None:
        super().__init__()
        self.disk = disk
        self.swap_area = swap_area

    def store(self, first_slot: int, npages: int) -> float:
        nsectors = npages * SECTORS_PER_PAGE
        throttle = self.disk.write_async(
            self.swap_area.sector_of(first_slot), nsectors,
            region="host-swap")
        stats = self.stats
        stats.stores += 1
        stats.pages_stored += npages
        stats.store_seconds += throttle
        return throttle

    def load(self, first_slot: int, npages: int) -> float:
        nsectors = npages * SECTORS_PER_PAGE
        stall = self.disk.read(
            self.swap_area.sector_of(first_slot), nsectors,
            region="host-swap")
        stats = self.stats
        stats.loads += 1
        stats.pages_loaded += npages
        stats.load_seconds += stall
        return stall

    def load_async(self, first_slot: int, npages: int) -> None:
        self.disk.read_async(
            self.swap_area.sector_of(first_slot),
            npages * SECTORS_PER_PAGE, region="host-swap")
        stats = self.stats
        stats.loads += 1
        stats.pages_loaded += npages
