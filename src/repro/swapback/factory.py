"""Backend construction: config -> device instance."""

from __future__ import annotations

from repro.config import SwapBackendConfig
from repro.errors import ConfigError

from repro.swapback.base import SwapBackend
from repro.swapback.devices import FlashBackend, RemoteBackend
from repro.swapback.disk import DiskSwapBackend
from repro.swapback.tiered import TieredBackend
from repro.swapback.zram import CompressedBackend


def build_swap_backend(cfg: SwapBackendConfig | None, *, clock, disk,
                       swap_area, rng=None, faults=None) -> SwapBackend:
    """Instantiate the backend ``cfg`` asks for.

    ``cfg=None`` (or ``kind="disk"``) yields the default
    :class:`DiskSwapBackend` over the host's own disk -- the
    bit-identical pre-backend path.  ``rng`` is the owning host's RNG;
    backends that need randomness take pure forks of it, so building
    any backend perturbs no existing stream.
    """
    if cfg is None or cfg.kind == "disk":
        return DiskSwapBackend(disk, swap_area)
    cfg.validate()
    if cfg.kind in ("ssd", "nvme"):
        return FlashBackend(clock, cfg)
    if cfg.kind == "zram":
        return CompressedBackend(cfg, rng=rng, faults=faults)
    if cfg.kind == "remote":
        return RemoteBackend(
            clock, cfg,
            rng=rng.fork("swapback-remote") if rng is not None else None,
            faults=faults)
    if cfg.kind == "tiered":
        fast = build_swap_backend(cfg.fast, clock=clock, disk=disk,
                                  swap_area=swap_area, rng=rng,
                                  faults=faults)
        slow = build_swap_backend(cfg.slow, clock=clock, disk=disk,
                                  swap_area=swap_area, rng=rng,
                                  faults=faults)
        return TieredBackend(cfg, fast, slow)
    raise ConfigError(f"unknown swap backend kind: {cfg.kind!r}")
