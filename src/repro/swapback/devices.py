"""Dedicated swap devices: fixed-latency flash and remote memory.

Unlike :class:`~repro.swapback.disk.DiskSwapBackend`, these devices do
not share the host disk's head -- swap traffic stops competing with
image and code reads, which is itself part of what "faster swap"
means.  Service is position-independent (no seek, no rotation): a
fixed per-request latency plus transfer time, served through a bounded
queue of ``queue_depth`` concurrent requests.
"""

from __future__ import annotations

import heapq

from repro.config import SwapBackendConfig
from repro.disk.latency import SsdLatencyModel
from repro.sim.clock import Clock
from repro.units import PAGE_SIZE, SECTORS_PER_PAGE

from repro.swapback.base import SwapBackend

#: Async store backlog tolerated before the writer throttles (the same
#: dirty-throttling horizon the disk device defaults to).
DEFAULT_WRITE_BACKLOG = 0.25


class QueuedBackend(SwapBackend):
    """Shared service discipline: a depth-bounded completion queue.

    A request entering a full queue starts when the earliest in-flight
    request completes; with ``queue_depth=1`` this degenerates to the
    strictly serial busy-until model a SATA device presents.
    """

    def __init__(self, clock: Clock, *, queue_depth: int,
                 capacity_pages: int | None = None,
                 max_write_backlog: float = DEFAULT_WRITE_BACKLOG) -> None:
        super().__init__()
        self.clock = clock
        self.queue_depth = queue_depth
        self.max_write_backlog = max_write_backlog
        #: Min-heap of in-flight completion times.
        self._inflight: list[float] = []
        #: Optional page budget (a bounded fast tier); slot occupancy
        #: is only tracked when the budget is finite.
        self.capacity_pages = capacity_pages
        self._held: set[int] = set()
        self.tracks_slots = capacity_pages is not None

    def _complete_at(self, service: float) -> float:
        """Admit one request of ``service`` seconds; returns completion."""
        now = self.clock.now
        inflight = self._inflight
        while inflight and inflight[0] <= now:
            heapq.heappop(inflight)
        if len(inflight) >= self.queue_depth:
            start = max(heapq.heappop(inflight), now)
        else:
            start = now
        completion = start + service
        heapq.heappush(inflight, completion)
        return completion

    # Per-page hooks for TieredBackend composition -------------------

    def fits(self, slot: int) -> bool:
        """Whether ``slot`` fits (always, unless a page budget is set)."""
        if self.capacity_pages is None:
            return True
        return slot in self._held or len(self._held) < self.capacity_pages

    def drop(self, slot: int) -> None:
        if self.capacity_pages is not None:
            self._held.discard(slot)

    def note_free(self, slot: int) -> None:
        self.drop(slot)

    def _read_service(self, npages: int) -> float:
        raise NotImplementedError

    def _write_service(self, npages: int) -> float:
        raise NotImplementedError

    def store_page(self, slot: int) -> float:
        """One-page store for the tiering policy (no trace, raw cost)."""
        if self.capacity_pages is not None:
            self._held.add(slot)
        completion = self._complete_at(self._write_service(1))
        throttle = max(0.0, completion - self.clock.now
                       - self.max_write_backlog)
        stats = self.stats
        stats.stores += 1
        stats.pages_stored += 1
        stats.store_seconds += throttle
        return throttle

    def load_page(self, slot: int) -> float:
        """One-page load for the tiering policy (no trace, raw cost)."""
        completion = self._complete_at(self._read_service(1))
        stall = completion - self.clock.now
        stats = self.stats
        stats.loads += 1
        stats.pages_loaded += 1
        stats.load_seconds += stall
        return stall

    # The run-level hypervisor contract ------------------------------

    def store(self, first_slot: int, npages: int) -> float:
        if self.capacity_pages is not None:
            self._held.update(range(first_slot, first_slot + npages))
        completion = self._complete_at(self._write_service(npages))
        throttle = max(0.0, completion - self.clock.now
                       - self.max_write_backlog)
        stats = self.stats
        stats.stores += 1
        stats.pages_stored += npages
        stats.store_seconds += throttle
        if self.trace.enabled:
            self.trace.emit("swapback.store", tier=self.kind,
                            slot=first_slot, pages=npages,
                            throttle=throttle)
        return throttle

    def load(self, first_slot: int, npages: int) -> float:
        completion = self._complete_at(self._read_service(npages))
        stall = completion - self.clock.now
        stats = self.stats
        stats.loads += 1
        stats.pages_loaded += npages
        stats.load_seconds += stall
        if self.trace.enabled:
            self.trace.emit("swapback.load", tier=self.kind,
                            slot=first_slot, pages=npages, stall=stall)
        return stall

    def load_async(self, first_slot: int, npages: int) -> None:
        self._complete_at(self._read_service(npages))
        stats = self.stats
        stats.loads += 1
        stats.pages_loaded += npages
        if self.trace.enabled:
            self.trace.emit("swapback.load", tier=self.kind,
                            slot=first_slot, pages=npages, stall=0.0)

    # ------------------------------------------------------------------
    # signals
    # ------------------------------------------------------------------

    @property
    def pressure(self) -> float:
        if not self.capacity_pages:
            return 0.0
        return len(self._held) / self.capacity_pages

    def occupancy(self) -> dict:
        return {
            "pages_held": len(self._held),
            "capacity_pages": self.capacity_pages,
        }


class FlashBackend(QueuedBackend):
    """SSD or NVMe swap device (``kind`` comes from the config).

    Service times come from the shared
    :class:`~repro.disk.latency.SsdLatencyModel` -- the same model the
    ``kind="ssd"`` disk profile of the ablation experiment uses, so the
    two paths cannot drift apart.
    """

    def __init__(self, clock: Clock, cfg: SwapBackendConfig) -> None:
        super().__init__(clock, queue_depth=cfg.queue_depth,
                         capacity_pages=cfg.capacity_pages)
        self.kind = cfg.kind
        self.cfg = cfg
        self.model = SsdLatencyModel(
            bandwidth_bytes_per_sec=cfg.bandwidth_bytes_per_sec,
            read_latency=cfg.read_latency,
            write_latency=cfg.write_latency)

    def _read_service(self, npages: int) -> float:
        return self.model.service_time(0, npages * SECTORS_PER_PAGE)

    def _write_service(self, npages: int) -> float:
        return self.model.service_time_write(0, npages * SECTORS_PER_PAGE)


class RemoteBackend(QueuedBackend):
    """Disaggregated far memory reached over a network fabric.

    Service = RTT (optionally jittered from the cell's RNG fork) plus
    transfer time.  Injected timeouts (``remote_swap_timeout_rate``)
    are absorbed as extra stall -- the backend retries internally and
    the guest just waits longer, mirroring how a reliable transport
    hides fabric hiccups.
    """

    kind = "remote"

    def __init__(self, clock: Clock, cfg: SwapBackendConfig, *,
                 rng=None, faults=None) -> None:
        super().__init__(clock, queue_depth=cfg.queue_depth,
                         capacity_pages=cfg.capacity_pages)
        self.cfg = cfg
        #: Jitter substream (fork of the cell RNG; pure, so taking it
        #: perturbs nothing else).
        self.rng = rng
        self.faults = faults

    def _wire_time(self, npages: int) -> float:
        cfg = self.cfg
        rtt = cfg.rtt
        if cfg.jitter_fraction and self.rng is not None:
            rtt *= 1.0 + self.rng.uniform(-cfg.jitter_fraction,
                                          cfg.jitter_fraction)
        transfer = npages * PAGE_SIZE / cfg.bandwidth_bytes_per_sec
        return rtt + transfer

    def _read_service(self, npages: int) -> float:
        return self._wire_time(npages)

    def _write_service(self, npages: int) -> float:
        return self._wire_time(npages)

    def _timeout_penalty(self) -> float:
        plan = self.faults
        if plan is None:
            return 0.0
        penalty = plan.remote_timeout()
        if penalty:
            self.stats.remote_timeouts += 1
            plan.counters.bump("remote_swap_timeouts")
        return penalty

    def store(self, first_slot: int, npages: int) -> float:
        return super().store(first_slot, npages) + self._timeout_penalty()

    def load(self, first_slot: int, npages: int) -> float:
        return super().load(first_slot, npages) + self._timeout_penalty()

    def store_page(self, slot: int) -> float:
        return super().store_page(slot) + self._timeout_penalty()

    def load_page(self, slot: int) -> float:
        return super().load_page(slot) + self._timeout_penalty()
