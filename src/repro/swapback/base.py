"""The swap-backend interface and its ambient default.

A :class:`SwapBackend` is *where swapped pages go*: the device (or
memory tier) behind the host's swap-slot address space.  The slot
allocator (:class:`~repro.disk.swaparea.HostSwapArea`) stays the
hypervisor's -- backends only receive slot-addressed store/load/free
requests and answer with stalls, so the paper's slot-layout effects
(decayed sequentiality) are preserved no matter what device serves the
traffic.

The contract, in the hypervisor's own call order:

* :meth:`~SwapBackend.store` -- a flushed write-back run of ``npages``
  contiguous slots; returns the *throttle* (write-back backlog) stall.
* :meth:`~SwapBackend.load` -- a synchronous swap-in read spanning
  ``npages`` contiguous slots; returns the stall the faulting guest
  waits out.
* :meth:`~SwapBackend.load_async` -- the window-expiry merge read: the
  request occupies the device but nobody waits.
* :meth:`~SwapBackend.note_free` -- a slot was released.  Only
  capacity-tracking backends care; ``tracks_slots`` is False for
  slot-oblivious devices so the reclaim hot path can skip the call.

Ambient default: like the fault layer's ``set_default_fault_config``,
``set_default_swap_backend`` installs a process-wide backend choice
that hosts consult when their node config leaves ``swap_backend``
unset.  The executor installs it around each cell from the cell spec,
so pool workers rebuild the same backend a serial run would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import SwapBackendConfig, swap_backend_config
from repro.trace.collector import NULL_TRACE


@dataclass
class SwapBackendStats:
    """Per-backend operation counters (one instance per backend)."""

    stores: int = 0
    loads: int = 0
    pages_stored: int = 0
    pages_loaded: int = 0
    #: Device-time totals (seconds of stall handed back to callers).
    store_seconds: float = 0.0
    load_seconds: float = 0.0
    #: CPU charged by the compressed tier (compress/decompress).
    cpu_seconds: float = 0.0
    #: Tiering policy actions (TieredBackend only).
    promotes: int = 0
    demotes: int = 0
    #: Injected backend faults absorbed (remote timeouts, zram stalls).
    remote_timeouts: int = 0
    compressed_stalls: int = 0
    #: Extra per-backend gauges (occupancy snapshots etc.).
    extra: dict = field(default_factory=dict)

    def snapshot(self) -> dict:
        """JSON-ready copy of every non-zero counter."""
        doc = {
            "stores": self.stores, "loads": self.loads,
            "pages_stored": self.pages_stored,
            "pages_loaded": self.pages_loaded,
            "store_seconds": self.store_seconds,
            "load_seconds": self.load_seconds,
            "cpu_seconds": self.cpu_seconds,
            "promotes": self.promotes, "demotes": self.demotes,
            "remote_timeouts": self.remote_timeouts,
            "compressed_stalls": self.compressed_stalls,
        }
        doc.update(self.extra)
        return doc


class SwapBackend:
    """Base class: the slot-addressed store/load interface."""

    #: Backend kind tag (matches ``SwapBackendConfig.kind``).
    kind: str = "?"
    #: Whether the backend keeps per-slot state and therefore needs
    #: :meth:`note_free` calls.  False lets the hypervisor's reclaim
    #: hot path skip the notification entirely.
    tracks_slots: bool = False

    def __init__(self) -> None:
        self.stats = SwapBackendStats()
        #: Trace collector; the owning Host swaps in a live one under
        #: ``--trace``.
        self.trace = NULL_TRACE

    # ------------------------------------------------------------------
    # the hypervisor-facing contract
    # ------------------------------------------------------------------

    def store(self, first_slot: int, npages: int) -> float:
        """Write ``npages`` contiguous slots; returns the throttle stall."""
        raise NotImplementedError

    def load(self, first_slot: int, npages: int) -> float:
        """Read ``npages`` contiguous slots; returns the sync stall."""
        raise NotImplementedError

    def load_async(self, first_slot: int, npages: int) -> None:
        """Read without a waiter (merge-on-expiry path)."""
        self.load(first_slot, npages)

    def note_free(self, slot: int) -> None:
        """A slot was released.  Must tolerate slots that were never
        stored: buffered swap-outs can be cancelled before any flush
        reaches the backend."""

    # ------------------------------------------------------------------
    # per-page hooks (how TieredBackend composes tiers)
    # ------------------------------------------------------------------

    def fits(self, slot: int) -> bool:
        """Whether ``slot``'s page fits right now (unbounded: always)."""
        return True

    def store_page(self, slot: int) -> float:
        """One-page store, raw cost, no trace (tier-internal traffic)."""
        return self.store(slot, 1)

    def load_page(self, slot: int) -> float:
        """One-page load, raw cost, no trace (tier-internal traffic)."""
        return self.load(slot, 1)

    def drop(self, slot: int) -> None:
        """Forget a slot without I/O (demotion/promotion source side)."""

    # ------------------------------------------------------------------
    # signals
    # ------------------------------------------------------------------

    @property
    def pressure(self) -> float:
        """Occupied fraction of the backend's own capacity (0 for
        unbounded devices).  Feeds the node-pressure signal next to the
        swap-slot budget."""
        return 0.0

    def occupancy(self) -> dict:
        """Diagnostic occupancy snapshot (per-tier for composites)."""
        return {}


# ----------------------------------------------------------------------
# ambient default (the executor/CLI-facing process-wide switch)
# ----------------------------------------------------------------------

_DEFAULT_BACKEND: SwapBackendConfig | None = None


def set_default_swap_backend(
        backend: SwapBackendConfig | str | None) -> None:
    """Install the process-wide default swap backend.

    Accepts a config, a registry kind string, or None (= route swap
    through the host disk exactly as before the backend layer).
    """
    global _DEFAULT_BACKEND
    if isinstance(backend, str):
        backend = swap_backend_config(backend)
    _DEFAULT_BACKEND = backend


def default_swap_backend() -> SwapBackendConfig | None:
    """The ambient backend config hosts fall back to (None = disk)."""
    return _DEFAULT_BACKEND
