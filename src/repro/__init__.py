"""repro: a full-system reproduction of VSwapper (ASPLOS 2014).

VSwapper is a guest-agnostic memory swapper for virtualized
environments (Amit, Tsafrir, Schuster).  This package reproduces the
paper as a discrete-event simulation of the whole stack: guests,
hypervisor, disk, uncooperative swapping, ballooning, and the paper's
two mechanisms -- the Swap Mapper and the False Reads Preventer.

Quickstart::

    from repro import (Machine, MachineConfig, VmConfig, GuestConfig,
                       VSwapperConfig, VmDriver)
    from repro.workloads import SysbenchFileRead
    from repro.units import mib_pages

    machine = Machine(MachineConfig())
    vm = machine.create_vm(VmConfig(
        guest=GuestConfig(memory_pages=mib_pages(512)),
        vswapper=VSwapperConfig.full(),
        resident_limit_pages=mib_pages(100),
    ))
    vm.guest.fs.create_file("sysbench.dat", mib_pages(200))
    driver = VmDriver(machine, vm, SysbenchFileRead())
    machine.run()
    print(driver.runtime, vm.counters.snapshot())
"""

from repro.config import (
    DiskConfig,
    GuestConfig,
    GuestOsKind,
    HostConfig,
    HypervisorKind,
    MachineConfig,
    VSwapperConfig,
    VmConfig,
)
from repro.driver import VmDriver
from repro.errors import (
    ConfigError,
    ConsistencyError,
    DiskError,
    GuestError,
    GuestOomKill,
    HostError,
    ReproError,
    SimulationError,
)
from repro.machine import Machine

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Machine",
    "MachineConfig",
    "DiskConfig",
    "HostConfig",
    "GuestConfig",
    "GuestOsKind",
    "HypervisorKind",
    "VmConfig",
    "VSwapperConfig",
    "VmDriver",
    "ReproError",
    "ConfigError",
    "SimulationError",
    "DiskError",
    "GuestError",
    "GuestOomKill",
    "HostError",
    "ConsistencyError",
]
