"""Terminal line/bar charts for regenerated figures.

The experiment harnesses produce numeric series; these helpers render
them as ASCII so `vswapper-repro run fig9` can show the paper's curve
*shapes* directly in a terminal, alongside the numeric tables.
"""

from __future__ import annotations

from typing import Mapping, Sequence

#: Glyphs assigned to series, in order.
SERIES_GLYPHS = "*o+x#@%&"


def _scale(value: float, lo: float, hi: float, width: int) -> int:
    if hi <= lo:
        return 0
    position = (value - lo) / (hi - lo)
    return min(width - 1, max(0, int(round(position * (width - 1)))))


def ascii_chart(
    series: Mapping[str, Sequence[float]],
    *,
    title: str = "",
    height: int = 12,
    width: int = 64,
    y_label: str = "",
) -> str:
    """Render one or more equally-indexed series as an ASCII chart.

    Each series is a sequence of y-values over an implicit x of
    0..n-1; series may have different lengths (shorter ones just end
    earlier).  Returns a multi-line string.
    """
    populated = {name: list(vals) for name, vals in series.items() if vals}
    if not populated:
        return f"{title}\n(no data)"
    all_values = [v for vals in populated.values() for v in vals]
    lo = min(0.0, min(all_values))
    hi = max(all_values)
    if hi == lo:
        hi = lo + 1.0
    max_len = max(len(vals) for vals in populated.values())

    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(populated.items()):
        glyph = SERIES_GLYPHS[index % len(SERIES_GLYPHS)]
        for i, value in enumerate(values):
            x = _scale(i, 0, max(1, max_len - 1), width)
            y = _scale(value, lo, hi, height)
            grid[height - 1 - y][x] = glyph

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{hi:>10.2f} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{lo:>10.2f} +" + "-" * width)
    legend = "   ".join(
        f"{SERIES_GLYPHS[i % len(SERIES_GLYPHS)]} {name}"
        for i, name in enumerate(populated))
    lines.append(" " * 12 + legend)
    if y_label:
        lines.append(" " * 12 + f"(y: {y_label})")
    return "\n".join(lines)


def ascii_bars(
    values: Mapping[str, float],
    *,
    title: str = "",
    width: int = 48,
    unit: str = "",
) -> str:
    """Render a labelled horizontal bar chart (Figure 3/4 style)."""
    numeric = {k: v for k, v in values.items() if v is not None}
    lines = [title] if title else []
    if not values:
        lines.append("(no data)")
        return "\n".join(lines)
    if not numeric:
        label_width = max(len(k) for k in values)
        lines.extend(f"{name:<{label_width}}  (crashed)"
                     for name in values)
        return "\n".join(lines)
    hi = max(numeric.values())
    label_width = max(len(k) for k in values)
    for name, value in values.items():
        if value is None:
            lines.append(f"{name:<{label_width}}  (crashed)")
            continue
        bar = "#" * max(1, _scale(value, 0, hi, width) + 1)
        lines.append(f"{name:<{label_width}}  {bar} {value:.2f}{unit}")
    return "\n".join(lines)
