"""Plain-text result tables, printed by the benchmark harnesses.

Each benchmark regenerates one of the paper's tables or figures as rows
of text; :func:`format_table` renders them with aligned columns so the
output reads like the paper's own presentation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass
class Table:
    """A titled grid of rows with a header."""

    title: str
    header: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append one row; cell count must match the header."""
        if len(cells) != len(self.header):
            raise ValueError(
                f"row has {len(cells)} cells, header has {len(self.header)}"
            )
        self.rows.append(cells)

    def render(self) -> str:
        """The table as aligned plain text."""
        return format_table(self.title, self.header, self.rows)


def _cell_text(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(title: str, header: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Render ``rows`` under ``header`` with aligned columns."""
    text_rows = [[_cell_text(c) for c in row] for row in rows]
    widths = [len(h) for h in header]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(widths[i]) for i, c in enumerate(cells))

    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    body = [title, rule, line(list(header)), rule]
    body.extend(line(row) for row in text_rows)
    body.append(rule)
    return "\n".join(body)
