"""Event counters mirroring the quantities the paper's figures report.

One :class:`Counters` instance is attached to each VM; a second,
host-global instance aggregates machine-wide activity.  Counter names
follow the figure vocabulary (see DESIGN.md Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class Counters:
    """Named integer counters with snapshot/delta support.

    Figures 9--12 report *per-iteration* quantities, so experiments take
    a :meth:`snapshot` before each iteration and compute a
    :meth:`delta_since` after it.
    """

    # --- fault accounting -------------------------------------------------
    #: EPT violations taken while the *guest* was executing (Fig. 9c);
    #: growth over iterations is the signature of decayed sequentiality.
    guest_context_faults: int = 0
    #: Page faults taken while *host* code was executing on behalf of the
    #: guest (Fig. 9b): stale swap reads plus false-page-anonymity
    #: faults on evicted hypervisor code pages.
    host_context_faults: int = 0
    #: Subset of host-context faults caused by explicit guest I/O whose
    #: destination frame had been swapped out (stale swap reads).
    stale_reads: int = 0
    #: Host reads of swapped-out content that the guest immediately
    #: overwrote in full (false swap reads, Fig. 10).
    false_reads: int = 0
    #: Host-context faults on evicted hypervisor executable pages
    #: (false page anonymity).
    hypervisor_code_faults: int = 0
    #: Guest-internal page faults serviced by the guest's own swap.
    guest_swap_faults: int = 0

    # --- disk accounting --------------------------------------------------
    #: Total requests issued to the physical disk (Fig. 10, 11a).
    disk_ops: int = 0
    #: Sectors written to the host swap area (Fig. 9d, 11b).
    swap_sectors_written: int = 0
    #: Sectors read from the host swap area.
    swap_sectors_read: int = 0
    #: Swap writes whose page content equalled its backing image block
    #: (the paper's *silent swap writes*).
    silent_swap_writes: int = 0
    #: Sectors moved for the guest's own virtual-disk I/O.
    virtual_io_sectors: int = 0
    #: Sectors written by the guest's own swap device.
    guest_swap_sectors_written: int = 0

    # --- reclaim accounting -------------------------------------------------
    #: Pages examined by the host reclaim clock hand (Fig. 11c).
    pages_scanned: int = 0
    #: Guest pages evicted by host reclaim (swap-out or discard).
    host_evictions: int = 0
    #: Evictions satisfied by discarding a Mapper-tracked page.
    mapper_discards: int = 0
    #: Pages the guest's own reclaim evicted.
    guest_evictions: int = 0
    #: Double-paging events: guest swap-out of a page the host had
    #: already swapped out (Section 2.1).
    double_paging: int = 0

    # --- VSwapper component accounting -------------------------------------
    #: Whole-page write buffers the Preventer promoted to frames
    #: (Fig. 12b "preventer remaps").
    preventer_remaps: int = 0
    #: Preventer emulations that timed out / overflowed and fell back to
    #: reading the old content and merging.
    preventer_merges: int = 0
    #: Writes emulated by the Preventer.
    preventer_emulated_writes: int = 0
    #: Mapper associations invalidated for consistency when their disk
    #: blocks were overwritten through ordinary I/O (Section 4.1).
    mapper_invalidations: int = 0
    #: COW breaks: guest stores to tracked pages that severed the
    #: page<->block association.
    mapper_cow_breaks: int = 0
    #: Pages currently tracked by the Mapper (gauge, Fig. 15).
    mapper_tracked_pages: int = 0
    #: Peak pages simultaneously tracked by the Mapper (Section 5.3).
    mapper_tracked_peak: int = 0

    # --- fault injection accounting -----------------------------------------
    #: Transient disk errors injected (each is retried or aborts).
    disk_transient_errors: int = 0
    #: Disk request attempts retried after a transient error.
    disk_retries: int = 0
    #: Disk requests that exhausted their retry budget (FaultError).
    disk_fault_aborts: int = 0
    #: Latency spikes injected into disk requests.
    disk_latency_spikes: int = 0
    #: Torn writes detected and reissued.
    disk_torn_writes: int = 0
    #: Host swap-in reads retried after an injected failure.
    swap_read_retries: int = 0
    #: Swap slots whose checksum failed on swap-in (HostError).
    swap_slot_corruptions: int = 0
    #: Mapper associations forcibly invalidated by the fault plan.
    mapper_forced_invalidations: int = 0
    #: Circuit-breaker trips that degraded a VM to baseline swapping.
    mapper_breaker_trips: int = 0

    # --- balloon accounting -------------------------------------------------
    #: Pages moved into the balloon (inflations).
    balloon_inflated_pages: int = 0
    #: Pages released from the balloon (deflations).
    balloon_deflated_pages: int = 0
    #: Workload processes killed by the guest OOM killer.
    oom_kills: int = 0

    extra: dict[str, int] = field(default_factory=dict)

    def snapshot(self) -> dict[str, int]:
        """Copy of all counter values, for later delta computation."""
        values = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name != "extra"
        }
        values.update(self.extra)
        return values

    def delta_since(self, snapshot: dict[str, int]) -> dict[str, int]:
        """Per-counter change since ``snapshot`` (missing keys count as 0)."""
        current = self.snapshot()
        return {
            name: current.get(name, 0) - snapshot.get(name, 0)
            for name in current
        }

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment a counter by name (ad-hoc counters land in ``extra``)."""
        if hasattr(self, name) and name != "extra":
            setattr(self, name, getattr(self, name) + amount)
        else:
            self.extra[name] = self.extra.get(name, 0) + amount

    def merged_with(self, other: "Counters") -> dict[str, int]:
        """Sum of this and another counter set (for machine-wide totals)."""
        mine = self.snapshot()
        theirs = other.snapshot()
        return {
            name: mine.get(name, 0) + theirs.get(name, 0)
            for name in set(mine) | set(theirs)
        }
