"""Measurement infrastructure: counters, timelines, and report tables."""

from repro.metrics.counters import Counters
from repro.metrics.timeline import Timeline
from repro.metrics.report import Table, format_table

__all__ = ["Counters", "Timeline", "Table", "format_table"]
