"""Time-series sampling for gauges (Figure 15 style plots)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigError


@dataclass
class Sample:
    """One (time, value) observation of a named series."""

    time: float
    series: str
    value: float


@dataclass
class Timeline:
    """Append-only store of gauge samples, grouped by series name.

    Experiments register gauge callables with :meth:`register` and call
    :meth:`sample_all` periodically (e.g. from an engine periodic task);
    figure harnesses then pull each series out with :meth:`series`.
    """

    samples: list[Sample] = field(default_factory=list)
    _gauges: dict[str, Callable[[], float]] = field(default_factory=dict)

    def register(self, series: str, gauge: Callable[[], float]) -> None:
        """Attach a gauge callable whose value is read on each sweep.

        Re-registering the same callable is an idempotent no-op;
        registering a *different* callable under an existing name would
        silently replace the series' meaning, so it raises instead.
        """
        existing = self._gauges.get(series)
        if existing is not None and existing is not gauge:
            raise ConfigError(
                f"gauge series {series!r} is already registered with a "
                f"different callable")
        self._gauges[series] = gauge

    def record(self, time: float, series: str, value: float) -> None:
        """Record one explicit observation."""
        self.samples.append(Sample(time, series, value))

    def sample_all(self, time: float) -> None:
        """Read every registered gauge once at virtual time ``time``."""
        for series, gauge in self._gauges.items():
            self.samples.append(Sample(time, series, float(gauge())))

    def series(self, name: str) -> tuple[list[float], list[float]]:
        """(times, values) of one series, in recording order."""
        times = [s.time for s in self.samples if s.series == name]
        values = [s.value for s in self.samples if s.series == name]
        return times, values

    def series_names(self) -> list[str]:
        """All distinct series names, in first-appearance order."""
        seen: dict[str, None] = {}
        for s in self.samples:
            seen.setdefault(s.series, None)
        return list(seen)

    def freeze(self) -> None:
        """Drop the gauge callables, keeping only the recorded samples.

        Gauges close over live simulation state (VMs, machines) and are
        neither picklable nor JSON-serializable; a finished run freezes
        its timeline before crossing a process or storage boundary.
        """
        self._gauges.clear()

    def to_dict(self) -> dict:
        """Plain-data form: the samples only (gauges never serialize)."""
        return {
            "samples": [[s.time, s.series, s.value] for s in self.samples],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Timeline":
        """Inverse of :meth:`to_dict` (the result is frozen)."""
        return cls(samples=[
            Sample(time, series, value)
            for time, series, value in data["samples"]
        ])
