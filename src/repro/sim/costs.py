"""Per-operation cost accounting.

The guest kernel and hypervisor charge virtual time into one mutable
accumulator while interpreting a workload operation; the VM driver then
turns the three buckets into an operation duration.  Buckets are kept
separate because KVM's *asynchronous page faults* let multithreaded
guests overlap host swap-in stalls (``fault``) but not their own
explicit I/O waits (``io``) or CPU time.
"""

from __future__ import annotations

from repro.errors import SimulationError


class CostAccumulator:
    """Mutable (cpu, io, fault) time sink for the current operation.

    Disk stalls need care: all synchronous requests of one operation
    are serialized on the same device queue while the virtual clock is
    frozen at the operation's start, so each request's reported stall
    *already contains* every earlier request's time.  :meth:`io` and
    :meth:`fault` therefore charge only the increment beyond the
    operation's disk high-water mark.
    """

    __slots__ = ("cpu_seconds", "io_seconds", "fault_seconds", "_disk_mark")

    def __init__(self) -> None:
        self.cpu_seconds = 0.0
        self.io_seconds = 0.0
        self.fault_seconds = 0.0
        self._disk_mark = 0.0

    def reset(self) -> None:
        """Zero all buckets (called by the driver before each op)."""
        self.cpu_seconds = 0.0
        self.io_seconds = 0.0
        self.fault_seconds = 0.0
        self._disk_mark = 0.0

    def cpu(self, seconds: float) -> None:
        """Charge CPU time."""
        if seconds < 0:
            raise SimulationError(f"negative cost: {seconds}")
        self.cpu_seconds += seconds

    def _disk_increment(self, stall: float) -> float:
        if stall < 0:
            raise SimulationError(f"negative cost: {stall}")
        increment = stall - self._disk_mark
        if increment <= 0:
            return 0.0
        self._disk_mark = stall
        return increment

    def io(self, stall: float) -> None:
        """Charge a synchronous explicit-I/O stall (incremental)."""
        self.io_seconds += self._disk_increment(stall)

    def fault(self, stall: float) -> None:
        """Charge a host page-fault stall (incremental)."""
        self.fault_seconds += self._disk_increment(stall)

    def duration(self, fault_overlap: float = 1.0) -> float:
        """Operation duration with fault stalls scaled by ``fault_overlap``.

        ``fault_overlap`` < 1 models asynchronous page faults hiding
        part of the stall behind other runnable guest threads.
        """
        if not 0.0 <= fault_overlap <= 1.0:
            raise SimulationError(
                f"fault_overlap must be in [0, 1]: {fault_overlap}")
        return self.cpu_seconds + self.io_seconds + self.fault_seconds * fault_overlap

    def total(self) -> float:
        """Un-overlapped sum of all buckets."""
        return self.cpu_seconds + self.io_seconds + self.fault_seconds
