"""Workload operation vocabulary.

A workload is a generator yielding these operations; the VM driver
interprets each one against the guest-kernel model.  The vocabulary is
deliberately behavioural -- it describes *what the program does to
memory and files*, which is the only aspect of the paper's benchmarks
(Sysbench, pbzip2, kernbench, Eclipse, Metis) that the evaluation
depends on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class WritePattern(enum.Enum):
    """How a memory overwrite proceeds, as seen by the Preventer.

    The False Reads Preventer (Section 4.2) distinguishes sequential
    whole-page overwrites (zeroing, ``REP MOVS`` copies) -- which it can
    short-circuit -- from partial or scattered writes, which force it to
    read the old contents and merge.
    """

    #: The whole page is overwritten front-to-back (memset/COW/zeroing).
    FULL_SEQUENTIAL = "full_sequential"
    #: Only part of the page is written, starting at offset zero.
    PARTIAL = "partial"
    #: Bytes are written in a scattered, non-sequential order.
    SCATTERED = "scattered"


@dataclass(frozen=True)
class Compute:
    """Pure CPU work for ``seconds`` of virtual time."""

    seconds: float


@dataclass(frozen=True)
class FileRead:
    """Read ``npages`` pages of ``file_id`` starting at ``offset_pages``.

    Served from the guest page cache when possible; misses become
    explicit virtual disk I/O (with guest readahead).
    ``touch_cost`` is the per-page CPU cost of consuming the data.
    """

    file_id: str
    offset_pages: int
    npages: int
    touch_cost: float = 0.0


@dataclass(frozen=True)
class FileWrite:
    """Dirty ``npages`` pages of ``file_id`` in the guest page cache."""

    file_id: str
    offset_pages: int
    npages: int
    touch_cost: float = 0.0


@dataclass(frozen=True)
class FileSync:
    """Flush the file's dirty pages to the virtual disk (fsync)."""

    file_id: str


@dataclass(frozen=True)
class Alloc:
    """Commit ``npages`` anonymous pages under the name ``region``.

    Committing does not touch the pages; first access (Touch/Overwrite)
    allocates and zeroes them, which is exactly the whole-page-overwrite
    event the Preventer targets.
    """

    region: str
    npages: int


@dataclass(frozen=True)
class Touch:
    """Access anon pages ``[start, start + npages)`` of ``region``.

    ``write=True`` dirties the pages (a partial write from the
    Preventer's point of view -- it does not overwrite whole pages).
    ``stride`` > 1 touches every ``stride``-th page.
    """

    region: str
    start: int
    npages: int
    write: bool = False
    stride: int = 1
    touch_cost: float = 0.0


@dataclass(frozen=True)
class Overwrite:
    """Overwrite whole anon pages, discarding their old content.

    This models page zeroing on (re)allocation, copy-on-write, and page
    migration -- the guest activities that cause *false swap reads*
    (Section 3).
    """

    region: str
    start: int
    npages: int
    pattern: WritePattern = WritePattern.FULL_SEQUENTIAL
    touch_cost: float = 0.0


@dataclass(frozen=True)
class Free:
    """Release the anon region; its pages return to the guest free list."""

    region: str


@dataclass(frozen=True)
class DropCaches:
    """Guest drops its clean page cache (``echo 3 > drop_caches``)."""


@dataclass(frozen=True)
class MarkPhase:
    """Record a named phase boundary in the metrics timeline."""

    name: str
    payload: dict = field(default_factory=dict)


#: Union of every operation a workload may yield.
Operation = (
    Compute
    | FileRead
    | FileWrite
    | FileSync
    | Alloc
    | Touch
    | Overwrite
    | Free
    | DropCaches
    | MarkPhase
)
