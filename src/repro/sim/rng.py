"""Deterministic randomness for reproducible simulations.

All stochastic choices in the simulator (workload access jitter, hash
bucket spreads, scheduling noise) must flow through one
:class:`DeterministicRng` seeded from the experiment configuration, so
that every run of an experiment is bit-for-bit repeatable.
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """A seeded random stream with the handful of draws the models need.

    This thin wrapper around :class:`random.Random` exists so the rest
    of the codebase never touches the global :mod:`random` state, and so
    substreams can be forked per component without correlation.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._random = random.Random(seed)

    @property
    def seed(self) -> int:
        """Seed this stream was created with."""
        return self._seed

    def fork(self, label: str) -> "DeterministicRng":
        """Derive an independent substream identified by ``label``.

        Forking with the same (seed, label) pair always yields the same
        substream, so components can be created in any order without
        perturbing each other's randomness.  The child seed must not
        come from :func:`hash`: string hashing is salted per process
        (PYTHONHASHSEED), which would make "the same seed" produce a
        different schedule on every interpreter launch.
        """
        digest = hashlib.sha256(f"{self._seed}\x00{label}".encode()).digest()
        child_seed = int.from_bytes(digest[:4], "big") & 0x7FFFFFFF
        return DeterministicRng(child_seed)

    def uniform(self, lo: float, hi: float) -> float:
        """Uniform float in ``[lo, hi)``."""
        return self._random.uniform(lo, hi)

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in ``[lo, hi]`` inclusive."""
        return self._random.randint(lo, hi)

    def choice(self, seq: Sequence[T]) -> T:
        """Uniformly pick one element of a non-empty sequence."""
        return self._random.choice(seq)

    def shuffle(self, items: list) -> None:
        """Shuffle ``items`` in place."""
        self._random.shuffle(items)

    def sample(self, seq: Sequence[T], k: int) -> list[T]:
        """``k`` distinct elements sampled without replacement."""
        return self._random.sample(seq, k)

    def expovariate(self, rate: float) -> float:
        """Exponentially distributed value with the given rate."""
        return self._random.expovariate(rate)

    def chance(self, probability: float) -> bool:
        """True with the given probability."""
        return self._random.random() < probability
