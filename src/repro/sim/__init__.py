"""Discrete-event simulation substrate.

The engine is deliberately small: the interesting behaviour of this
reproduction lives in the memory/disk/guest/host models, and they only
need a shared virtual clock, an ordered event queue, and deterministic
randomness.
"""

from repro.sim.clock import Clock
from repro.sim.engine import Engine
from repro.sim.rng import DeterministicRng

__all__ = ["Clock", "Engine", "DeterministicRng"]
