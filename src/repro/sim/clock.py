"""Virtual clock shared by every component of one simulation."""

from __future__ import annotations

from repro.errors import SimulationError


class Clock:
    """Monotonically advancing virtual time, in seconds.

    The clock is owned by the :class:`repro.sim.engine.Engine`; other
    components hold a reference and read :attr:`now`.  Only the engine
    (or a test) should call :meth:`advance_to`.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start before zero: {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to absolute time ``t``.

        Raises :class:`SimulationError` on attempts to move backwards,
        which would indicate a broken event ordering.
        """
        if t < self._now:
            raise SimulationError(
                f"clock would move backwards: {self._now} -> {t}"
            )
        self._now = t

    def advance_by(self, dt: float) -> None:
        """Move the clock forward by ``dt`` seconds (``dt >= 0``)."""
        if dt < 0:
            raise SimulationError(f"negative time delta: {dt}")
        self._now += dt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(now={self._now:.6f})"
