"""Conservative discrete-event engine.

Guests are modelled as *step processes*: callables invoked by the engine
that perform some work against shared simulation state and return the
virtual duration that work took.  The engine reschedules the process at
``now + duration``.  Because all shared resources (the disk queue, the
host frame pool) are mutated synchronously inside a step, ordering steps
by start time gives a conservative but consistent interleaving -- good
enough for the coarse contention effects the paper measures (multiple
guests queueing on one disk, Figure 14).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from repro.errors import SimulationError
from repro.sim.clock import Clock

#: An engine callback; receives no arguments, returns nothing.
Callback = Callable[[], None]


class Engine:
    """Event loop driving one simulation to completion."""

    def __init__(self) -> None:
        self.clock = Clock()
        self._heap: list[tuple[float, int, Callback]] = []
        self._sequence = itertools.count()
        self._stopped = False

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self.clock.now

    def schedule(self, delay: float, callback: Callback) -> None:
        """Run ``callback`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        at = self.clock.now + delay
        heapq.heappush(self._heap, (at, next(self._sequence), callback))

    def schedule_at(self, at: float, callback: Callback) -> None:
        """Run ``callback`` at absolute virtual time ``at``."""
        if at < self.clock.now:
            raise SimulationError(
                f"cannot schedule in the past: {at} < {self.clock.now}"
            )
        heapq.heappush(self._heap, (at, next(self._sequence), callback))

    def add_process(self, step: Callable[[], Optional[float]],
                    start_delay: float = 0.0) -> None:
        """Register a step process.

        ``step`` is invoked repeatedly; each call returns the virtual
        seconds consumed, or ``None`` to indicate the process finished.
        """

        def run_step() -> None:
            duration = step()
            if duration is None:
                return
            if duration < 0:
                raise SimulationError(f"step returned negative time: {duration}")
            self.schedule(duration, run_step)

        self.schedule(start_delay, run_step)

    def add_periodic(self, interval: float, callback: Callback,
                     start_delay: Optional[float] = None) -> None:
        """Run ``callback`` every ``interval`` seconds until stopped."""
        if interval <= 0:
            raise SimulationError(f"non-positive period: {interval}")

        def tick() -> None:
            callback()
            if not self._stopped:
                self.schedule(interval, tick)

        self.schedule(interval if start_delay is None else start_delay, tick)

    def stop(self) -> None:
        """Ask the engine to wind down: periodic tasks stop rescheduling."""
        self._stopped = True

    def run(self, until: Optional[float] = None) -> float:
        """Process events until the queue drains (or ``until`` passes).

        Returns the final virtual time.
        """
        while self._heap:
            at, _seq, callback = self._heap[0]
            if until is not None and at > until:
                self.clock.advance_to(until)
                break
            heapq.heappop(self._heap)
            self.clock.advance_to(at)
            callback()
        return self.clock.now

    def pending_events(self) -> int:
        """Number of events still queued (useful in tests)."""
        return len(self._heap)
