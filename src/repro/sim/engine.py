"""Conservative discrete-event engine.

Guests are modelled as *step processes*: callables invoked by the engine
that perform some work against shared simulation state and return the
virtual duration that work took.  The engine reschedules the process at
``now + duration``.  Because all shared resources (the disk queue, the
host frame pool) are mutated synchronously inside a step, ordering steps
by start time gives a conservative but consistent interleaving -- good
enough for the coarse contention effects the paper measures (multiple
guests queueing on one disk, Figure 14).
"""

from __future__ import annotations

import itertools
from heapq import heappop, heappush, nsmallest
from typing import Callable, Optional

from repro.errors import SimulationError
from repro.sim.clock import Clock
from repro.trace.collector import NULL_TRACE

#: An engine callback; receives no arguments, returns nothing.
Callback = Callable[[], None]


class Engine:
    """Event loop driving one simulation to completion.

    The optional watchdog limits (``max_events`` dispatched,
    ``max_virtual_time`` reached) turn a wedged simulation -- a buggy
    workload that reschedules forever, a process that stops advancing
    time -- into a :class:`SimulationError` carrying a dump of the
    pending event queue, instead of a silent hang.
    """

    def __init__(self, *, max_events: int | None = None,
                 max_virtual_time: float | None = None) -> None:
        self.clock = Clock()
        self._heap: list[tuple[float, int, Callback]] = []
        self._sequence = itertools.count()
        self._stopped = False
        self.max_events = max_events
        self.max_virtual_time = max_virtual_time
        self.events_dispatched = 0
        #: Trace collector; the machine swaps in a live one under
        #: ``--trace``.
        self.trace = NULL_TRACE

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self.clock.now

    def schedule(self, delay: float, callback: Callback) -> None:
        """Run ``callback`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        heappush(self._heap,
                 (self.clock._now + delay, next(self._sequence), callback))

    def schedule_at(self, at: float, callback: Callback) -> None:
        """Run ``callback`` at absolute virtual time ``at``."""
        if at < self.clock.now:
            raise SimulationError(
                f"cannot schedule in the past: {at} < {self.clock.now}"
            )
        heappush(self._heap, (at, next(self._sequence), callback))

    def add_process(self, step: Callable[[], Optional[float]],
                    start_delay: float = 0.0) -> None:
        """Register a step process.

        ``step`` is invoked repeatedly; each call returns the virtual
        seconds consumed, or ``None`` to indicate the process finished.
        """

        def run_step() -> None:
            duration = step()
            if duration is None:
                return
            if duration < 0:
                raise SimulationError(f"step returned negative time: {duration}")
            self.schedule(duration, run_step)

        self.schedule(start_delay, run_step)

    def add_periodic(self, interval: float, callback: Callback,
                     start_delay: Optional[float] = None) -> None:
        """Run ``callback`` every ``interval`` seconds until stopped."""
        if interval <= 0:
            raise SimulationError(f"non-positive period: {interval}")

        def tick() -> None:
            callback()
            if not self._stopped:
                self.schedule(interval, tick)

        self.schedule(interval if start_delay is None else start_delay, tick)

    def stop(self) -> None:
        """Halt the engine: the run loop dispatches no further events
        and periodic tasks stop rescheduling.  Sticky."""
        if not self._stopped and self.trace.enabled:
            self.trace.emit("engine.stop",
                            pending=len(self._heap),
                            dispatched=self.events_dispatched)
        self._stopped = True

    @property
    def stopped(self) -> bool:
        """Whether :meth:`stop` was called."""
        return self._stopped

    def run(self, until: Optional[float] = None) -> float:
        """Process events until the queue drains (or ``until`` passes,
        or :meth:`stop` is called, or a watchdog limit is exceeded).

        Returns the final virtual time.
        """
        heap = self._heap
        clock = self.clock
        max_vt = self.max_virtual_time
        max_events = self.max_events
        while heap and not self._stopped:
            at = heap[0][0]
            if until is not None and at > until:
                clock.advance_to(until)
                break
            if max_vt is not None and at > max_vt:
                if self.trace.enabled:
                    self.trace.emit("engine.watchdog", limit="virtual-time")
                raise SimulationError(
                    f"watchdog: virtual time {at:.3f}s exceeds limit "
                    f"{max_vt:.3f}s; {self._dump_pending()}")
            if (max_events is not None
                    and self.events_dispatched >= max_events):
                if self.trace.enabled:
                    self.trace.emit("engine.watchdog", limit="events")
                raise SimulationError(
                    f"watchdog: dispatched {self.events_dispatched} events "
                    f"(limit {max_events}); {self._dump_pending()}")
            # Heap pops are nondecreasing in `at` and the schedule
            # guards refuse past events, so this direct store is the
            # monotonic advance Clock.advance_to would have validated.
            clock._now = at
            # Batched dispatch: drain every event stamped `at` without
            # re-running the until/virtual-time guards -- both depend
            # only on `at`, which cannot change within the batch.  The
            # event-count guard and stop() still apply per event, so
            # tripping either hands control back to the outer loop.
            while True:
                self.events_dispatched += 1
                heappop(heap)[2]()
                if not heap or heap[0][0] != at or self._stopped:
                    break
                if (max_events is not None
                        and self.events_dispatched >= max_events):
                    break
        return clock._now

    def pending_events(self) -> int:
        """Number of events still queued (useful in tests)."""
        return len(self._heap)

    def earliest_pending(self) -> float | None:
        """Virtual time of the earliest queued event (None when empty).

        The scheduling guards make an event in the past impossible, so
        the invariant auditor treats ``earliest_pending() < now`` as a
        corrupted heap rather than a race.
        """
        return self._heap[0][0] if self._heap else None

    def _dump_pending(self, limit: int = 8) -> str:
        """Diagnostic summary of the earliest pending events."""
        head = nsmallest(limit, self._heap)
        lines = ", ".join(
            f"t={at:.6f} {getattr(cb, '__qualname__', repr(cb))}"
            for at, _seq, cb in head)
        extra = len(self._heap) - len(head)
        suffix = f" (+{extra} more)" if extra > 0 else ""
        return f"{len(self._heap)} pending: [{lines}]{suffix}"
