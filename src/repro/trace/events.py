"""Typed trace records: events, causal spans, and the frozen trace.

The vocabulary mirrors the paper's mechanisms one-to-one so the
analyzer can re-derive its figures from the stream alone:

=====================  =====================================================
kind                   emitted by / meaning
=====================  =====================================================
``fault.major``        hypervisor major fault (args: gpa, context, stale)
``fault.false_read``   old content read only to be fully overwritten
``fault.code``         fault on an evicted QEMU executable page
``swap.out``           one page queued for swap write (args: silent)
``swap.in``            swap-in cluster read (args: pages, sectors)
``mapper.name``        Mapper built a gpa<->block association
``mapper.discard``     reclaim discarded a tracked page instead of swapping
``mapper.reread``      discarded page re-read from the disk image
``mapper.drop``        an association was severed (COW, consistency, ...)
``reclaim.scan``       one victim-selection pass (args: examined, victims)
``balloon.pin``        balloon inflation pinned pages (args: pages)
``balloon.unpin``      balloon deflation released pages (args: pages)
``disk.submit``        request queued at the device (args: sector, write)
``disk.complete``      the same request leaving the head (time = completion)
``swapback.store``     non-disk backend absorbed a swap write-back run
                       (args: tier, slot, pages, throttle)
``swapback.load``      non-disk backend served a swap-in (args: tier,
                       slot, pages, stall; 0.0 for async merge reads)
``swapback.promote``   tiering policy pulled a hot page fast-ward
                       (args: tier=``slow->fast``, slot)
``swapback.demote``    tiering policy evicted a fast-tier page
                       (args: tier=``fast->slow``, slot)
``preventer.emulate``  Preventer classified a whole-page overwrite
``preventer.merge``    an emulation buffer was merged back (args: sync)
``phase.mark``         workload phase boundary (args: name)
``cluster.place``      scheduler placed a VM on a host (args: host)
``cluster.migrate``    a migration attempt ran (args: src, dst, pages,
                       bytes, downtime, outcome -- ``completed`` or
                       ``rolled-back`` on mid-copy failure)
``host.fail``          a host hard-crashed (args: host, vms orphaned)
``host.degrade``       a degradation window opened (args: host, factor)
``host.recover``       the degradation window closed (args: host)
``evac.start``         recovery took charge of an orphaned VM (args:
                       src, pages)
``evac.retry``         an evacuation attempt failed; backing off (args:
                       attempt, backoff, error)
``evac.done``          the VM was re-homed (args: src, dst, attempt,
                       downtime)
``evac.lost``          recovery gave the VM up (args: src, reason,
                       attempts)
``engine.stop``        the engine was halted
``engine.watchdog``    a watchdog limit fired (the run is about to abort)
=====================  =====================================================

Multi-host cluster runs share one collector; each host-side event then
additionally carries ``host=<name>`` in its args (single-host runs
omit it, keeping their event bytes identical to the pre-cluster
``Machine``).

A *span* brackets one guest operation (``FileRead``, ``Touch``, ...);
every event emitted while it is open carries its id, which is the
causal link from a triggering guest op to its host-side consequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError

#: Version of the persisted trace schema.  Folded into serialization
#: checks so a stale stored trace reads as an explicit error, never as
#: silently misinterpreted data.
TRACE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped, typed occurrence."""

    #: Emission order (dense over *recorded* events, per collector).
    seq: int
    #: Virtual time of the occurrence (may lie in the future relative
    #: to emission for completion-style events like ``disk.complete``).
    time: float
    kind: str
    #: Name of the VM involved, or None for machine-wide events.
    vm: str | None = None
    #: Id of the innermost open span at emission, or None.
    span: int | None = None
    args: dict = field(default_factory=dict)


@dataclass
class Span:
    """One causal interval: a guest operation and everything it caused."""

    sid: int
    name: str
    vm: str | None
    begin: float
    #: None while the span is open; :meth:`TraceCollector.finish`
    #: closes stragglers at the final clock reading.
    end: float | None = None

    @property
    def duration(self) -> float:
        """Seconds the span covered (0 while still open)."""
        return 0.0 if self.end is None else self.end - self.begin


@dataclass
class TraceData:
    """A finished, immutable trace: what one cell's run recorded.

    Plain data only -- it crosses worker pipes (pickle) and the result
    store (JSON) exactly like a :class:`~repro.metrics.timeline.Timeline`.
    """

    #: Collector mode that produced the trace: ``"full"`` or ``"sampled"``.
    mode: str
    events: list[TraceEvent] = field(default_factory=list)
    spans: list[Span] = field(default_factory=list)
    #: Events recorded over the trace's lifetime (>= len(events) when
    #: the ring evicted old entries).
    emitted: int = 0
    #: Events evicted by the capacity cap.
    dropped: int = 0
    #: Top-level spans skipped by sampling (with all their events).
    sampled_out: int = 0

    @property
    def complete(self) -> bool:
        """Whether every emitted event survived into the trace (the
        precondition for the analyzer's exact cross-check)."""
        return self.mode == "full" and self.dropped == 0 \
            and self.sampled_out == 0

    def events_of_kind(self, kind: str) -> list[TraceEvent]:
        """All recorded events of one kind, in emission order."""
        return [e for e in self.events if e.kind == kind]

    def to_dict(self) -> dict:
        """Compact JSON-ready form (events and spans as flat lists)."""
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "mode": self.mode,
            "events": [
                [e.seq, e.time, e.kind, e.vm, e.span, e.args]
                for e in self.events
            ],
            "spans": [
                [s.sid, s.name, s.vm, s.begin, s.end] for s in self.spans
            ],
            "emitted": self.emitted,
            "dropped": self.dropped,
            "sampled_out": self.sampled_out,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceData":
        """Inverse of :meth:`to_dict`."""
        found = data.get("schema")
        if found != TRACE_SCHEMA_VERSION:
            raise ReproError(
                f"trace schema version {found!r} != {TRACE_SCHEMA_VERSION} "
                f"(refusing to deserialize)")
        return cls(
            mode=data["mode"],
            events=[
                TraceEvent(seq, time, kind, vm, span, dict(args))
                for seq, time, kind, vm, span, args in data["events"]
            ],
            spans=[
                Span(sid, name, vm, begin, end)
                for sid, name, vm, begin, end in data["spans"]
            ],
            emitted=data["emitted"],
            dropped=data["dropped"],
            sampled_out=data["sampled_out"],
        )
