"""The trace collector: a bounded ring of events plus causal spans.

Two implementations share one interface:

* :data:`NULL_TRACE` -- the module-level default every instrumented
  layer starts with.  ``enabled`` is False, every method is a no-op,
  and hot paths guard their emits with ``if trace.enabled:`` so a
  disabled run pays one attribute read per site, nothing more.
* :class:`TraceCollector` -- installed by the machine when the ambient
  tracing mode (:func:`repro.trace.set_tracing`) is on.  Events land in
  a ``deque`` ring capped at ``capacity`` (old events are evicted and
  counted, never an error), and ``"sampled"`` mode keeps only every
  ``sample_every``-th top-level span -- events inside a sampled-out
  span are suppressed wholesale, while events outside any span (disk
  completions from earlier requests, engine marks) always record.

The collector mutates nothing in the simulation and only *reads* the
clock, so a traced run is bit-identical to an untraced one -- a
property the test suite asserts.
"""

from __future__ import annotations

from collections import deque

from repro.errors import ConfigError
from repro.trace.events import Span, TraceData, TraceEvent

#: Modes a live collector accepts.
COLLECTOR_MODES = ("full", "sampled")

#: Default event/span ring capacity.
DEFAULT_CAPACITY = 1_000_000

#: Default sampling stride: ``"sampled"`` keeps one top-level span in
#: this many.
DEFAULT_SAMPLE_EVERY = 8

#: Span id returned for suppressed (sampled-out) spans; real ids start
#: at 1 so a 0 is always safe to pass back to :meth:`end_span`.
NULL_SPAN = 0


class NullTraceCollector:
    """The do-nothing collector: the zero-cost-when-disabled default."""

    enabled = False

    def emit(self, kind: str, *, vm: str | None = None,
             at: float | None = None, **args) -> None:
        """Discard the event."""

    def begin_span(self, name: str, *, vm: str | None = None) -> int:
        """No span is opened; returns :data:`NULL_SPAN`."""
        return NULL_SPAN

    def end_span(self, sid: int) -> None:
        """Nothing to close."""

    def reset(self) -> None:
        """Nothing to clear."""

    def finish(self) -> None:
        """No trace was recorded."""
        return None


#: The shared no-op collector every instrumented layer defaults to.
NULL_TRACE = NullTraceCollector()


class HostTaggedTrace:
    """A per-host view of a shared collector.

    A multi-host cluster records into *one* ring (cross-host ordering
    is the point), but every event must say which host produced it.
    Hosts therefore get this thin wrapper, which stamps ``host=<name>``
    into each event's args; single-host runs keep the raw collector so
    their event bytes stay identical to the pre-cluster ``Machine``.
    """

    def __init__(self, collector: TraceCollector, host: str) -> None:
        self._collector = collector
        self.host = host

    @property
    def enabled(self) -> bool:
        return self._collector.enabled

    def emit(self, kind: str, *, vm: str | None = None,
             at: float | None = None, **args) -> None:
        self._collector.emit(kind, vm=vm, at=at, host=self.host, **args)

    def begin_span(self, name: str, *, vm: str | None = None) -> int:
        return self._collector.begin_span(name, vm=vm)

    def end_span(self, sid: int) -> None:
        self._collector.end_span(sid)

    def reset(self) -> None:
        self._collector.reset()

    def finish(self):
        return self._collector.finish()


class TraceCollector:
    """Record typed events and causal spans against a virtual clock."""

    enabled = True

    def __init__(self, clock, *, mode: str = "full",
                 capacity: int = DEFAULT_CAPACITY,
                 sample_every: int = DEFAULT_SAMPLE_EVERY) -> None:
        if mode not in COLLECTOR_MODES:
            raise ConfigError(
                f"unknown trace mode {mode!r}; expected one of "
                f"{COLLECTOR_MODES}")
        if capacity < 1:
            raise ConfigError(f"trace capacity must be positive: {capacity}")
        if sample_every < 1:
            raise ConfigError(
                f"sample_every must be positive: {sample_every}")
        self.clock = clock
        self.mode = mode
        self.capacity = capacity
        self.sample_every = sample_every
        self.reset()

    def reset(self) -> None:
        """Discard everything recorded so far.

        The machine calls this after untimed setup (guest boot history)
        at the same moment it resets counters and quiesces the disk, so
        the trace and the counters describe exactly the same window --
        the precondition for the analyzer's bit-exact cross-check.
        """
        self._events: deque[TraceEvent] = deque(maxlen=self.capacity)
        self._spans: deque[Span] = deque(maxlen=self.capacity)
        self._open: dict[int, Span] = {}
        self._stack: list[int] = []
        self._seq = 0
        self._next_sid = NULL_SPAN + 1
        self._span_seen = 0
        #: Depth of nesting inside a sampled-out top-level span.
        self._suppress = 0
        self._sampled_out = 0
        self._spans_recorded = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def emit(self, kind: str, *, vm: str | None = None,
             at: float | None = None, **args) -> None:
        """Record one event.

        ``at`` overrides the timestamp for completion-style events whose
        occurrence lies in the virtual future (``disk.complete``).
        Inside a sampled-out span the event is suppressed.
        """
        if self._suppress:
            return
        self._events.append(TraceEvent(
            self._seq,
            self.clock.now if at is None else at,
            kind, vm,
            self._stack[-1] if self._stack else None,
            args))
        self._seq += 1

    def begin_span(self, name: str, *, vm: str | None = None) -> int:
        """Open a causal span; subsequent events carry its id.

        In ``"sampled"`` mode only every ``sample_every``-th *top-level*
        span is kept; a skipped span returns :data:`NULL_SPAN` and
        suppresses everything until its matching :meth:`end_span`.
        """
        if self._suppress:
            self._suppress += 1
            return NULL_SPAN
        if self.mode == "sampled" and not self._stack:
            self._span_seen += 1
            if (self._span_seen - 1) % self.sample_every:
                self._suppress = 1
                self._sampled_out += 1
                return NULL_SPAN
        sid = self._next_sid
        self._next_sid += 1
        self._open[sid] = Span(sid, name, vm, self.clock.now)
        self._stack.append(sid)
        return sid

    def end_span(self, sid: int) -> None:
        """Close a span opened by :meth:`begin_span`."""
        if sid == NULL_SPAN:
            if self._suppress:
                self._suppress -= 1
            return
        span = self._open.pop(sid, None)
        if span is None:
            return  # closed twice, or cleared by an interleaved reset
        span.end = self.clock.now
        if sid in self._stack:
            # Normally the top of the stack; an exception unwinding out
            # of nested spans may close them out of order.
            self._stack.remove(sid)
        self._spans.append(span)
        self._spans_recorded += 1

    # ------------------------------------------------------------------
    # extraction
    # ------------------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Events evicted from the ring so far."""
        return self._seq - len(self._events)

    def finish(self) -> TraceData:
        """Freeze the recording into an immutable :class:`TraceData`.

        Spans still open (a crashed run abandoned mid-operation) are
        closed at the current clock reading.
        """
        for sid in list(self._stack):
            self.end_span(sid)
        for sid in list(self._open):
            self.end_span(sid)
        return TraceData(
            mode=self.mode,
            events=list(self._events),
            spans=sorted(self._spans, key=lambda s: s.sid),
            emitted=self._seq,
            dropped=self.dropped + (self._spans_recorded
                                    - len(self._spans)),
            sampled_out=self._sampled_out,
        )
