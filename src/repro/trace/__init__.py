"""Structured event tracing, causal spans, and root-cause analysis.

The subsystem has four parts:

* :mod:`repro.trace.collector` -- the recording side.  Every
  instrumented layer (engine, hypervisor, mapper, reclaim, disk,
  driver) holds a collector reference that defaults to the module-level
  no-op :data:`~repro.trace.collector.NULL_TRACE`; hot paths guard each
  emit with ``if trace.enabled:`` so disabled runs pay essentially
  nothing.  A :class:`~repro.machine.Machine` installs a live
  :class:`~repro.trace.collector.TraceCollector` when the ambient mode
  says so.
* :mod:`repro.trace.events` -- the typed data model
  (:class:`TraceEvent`, :class:`Span`, frozen :class:`TraceData`)
  that rides worker pipes and the result store.
* :mod:`repro.trace.analyzer` -- re-derives the paper's five
  root-cause counts from the event stream alone and cross-checks them
  against :class:`~repro.metrics.counters.Counters`.
* :mod:`repro.trace.export` / :mod:`repro.trace.tools` -- the Chrome
  trace-event exporter and the store-backed ``trace`` CLI tooling.

Like the fault layer's default config and the audit layer's paranoid
flag, the tracing *mode* is ambient process-wide state: the CLI sets it
once (``run --trace[=sampled]``), executors re-install it inside worker
processes, and every machine built afterwards records.
"""

from repro.errors import ConfigError
from repro.trace.analyzer import ROOT_CAUSES, TraceAnalyzer
from repro.trace.collector import NULL_TRACE, TraceCollector
from repro.trace.events import TRACE_SCHEMA_VERSION, Span, TraceData, TraceEvent

#: Ambient tracing mode: None (off), ``"full"``, or ``"sampled"``.
_TRACE_MODE: str | None = None

#: Values :func:`set_tracing` accepts.
TRACE_MODES = (None, "full", "sampled")


def set_tracing(mode: str | None) -> str | None:
    """Set the process-wide tracing mode; returns the previous value."""
    global _TRACE_MODE
    if mode not in TRACE_MODES:
        raise ConfigError(
            f"unknown trace mode {mode!r}; expected one of {TRACE_MODES}")
    previous = _TRACE_MODE
    _TRACE_MODE = mode
    return previous


def tracing_mode() -> str | None:
    """The mode machines should build their collectors with (None = off)."""
    return _TRACE_MODE


__all__ = [
    "NULL_TRACE",
    "ROOT_CAUSES",
    "Span",
    "TRACE_MODES",
    "TRACE_SCHEMA_VERSION",
    "TraceAnalyzer",
    "TraceCollector",
    "TraceData",
    "TraceEvent",
    "set_tracing",
    "tracing_mode",
]
