"""Store-backed trace tooling behind the ``trace`` CLI subcommand.

All three tools reconstruct the experiment's sweep from the registry
(same scale => same cell specs => same store keys) and pull each cell's
stored :class:`~repro.experiments.runner.RunResult` back out of the
:class:`~repro.exec.store.ResultStore`.  Cells whose stored result
carries no trace -- typically cache hits recorded by an untraced run --
are reported as ``trace unavailable (cached)`` and skipped; a tool
never fabricates an empty trace for them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigError, ExperimentError
from repro.exec.spec import CellSpec, Sweep
from repro.exec.store import ResultStore
from repro.metrics.report import Table
from repro.trace.analyzer import ROOT_CAUSES, TraceAnalyzer
from repro.trace.events import TraceData
from repro.trace.export import write_chrome_trace


@dataclass
class TracedCells:
    """Stored cells of one experiment, split by trace availability."""

    sweep: Sweep
    #: (spec, result) for every stored cell that carries a trace, in
    #: sweep (presentation) order.
    traced: list[tuple] = field(default_factory=list)
    #: Human-readable skip reasons for the rest, in sweep order.
    notes: list[str] = field(default_factory=list)


def load_traced_cells(store: ResultStore, experiment_id: str, *,
                      scale: int) -> TracedCells:
    """Resolve one experiment's stored, traced cells."""
    # Deferred: the registry imports the experiment modules, which
    # reach back into exec/ (and would cycle at import time).
    from repro.experiments.registry import EXPERIMENTS

    definition = EXPERIMENTS.get(experiment_id)
    if definition is None:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {known}")
    if definition.build_sweep is None:
        raise ConfigError(
            f"experiment {experiment_id!r} declares no cells; "
            f"there is nothing to trace")
    sweep = definition.build_sweep(scale=scale)
    cells = TracedCells(sweep)
    for spec in sweep.cells:
        result = store.load_cell(spec)
        if result is None:
            cells.notes.append(
                f"cell {spec.cell_id}: not in store (run "
                f"'run {experiment_id} --trace --results-dir ...' first)")
        elif result.trace is None:
            cells.notes.append(
                f"cell {spec.cell_id}: trace unavailable (cached)")
        else:
            cells.traced.append((spec, result))
    return cells


def _require_traced(cells: TracedCells, experiment_id: str) -> None:
    if not cells.traced:
        detail = "; ".join(cells.notes) or "store is empty"
        raise ConfigError(
            f"no stored traces for {experiment_id!r} at this scale "
            f"({detail}); refusing to write an empty trace")


def export_experiment(store: ResultStore, experiment_id: str, *,
                      scale: int, out: str | Path) -> tuple[Path, list[str]]:
    """Merge every stored trace of one experiment into a Chrome trace.

    Returns the written path plus the per-cell skip notes.  Raises
    :class:`~repro.errors.ConfigError` when *no* cell has a trace --
    an empty export would read as "nothing happened", which is wrong.
    """
    cells = load_traced_cells(store, experiment_id, scale=scale)
    _require_traced(cells, experiment_id)
    path = write_chrome_trace(out, [
        (spec.cell_id, result.trace) for spec, result in cells.traced])
    return path, cells.notes


@dataclass
class AnalysisReport:
    """Outcome of ``trace analyze``: per-cell counts and mismatches."""

    experiment_id: str
    rendered: str
    #: Cross-check disagreement lines, per cell id (empty = all exact).
    mismatches: dict[str, list[str]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every traced cell cross-checked exactly."""
        return not self.mismatches


def analyze_experiment(store: ResultStore, experiment_id: str, *,
                       scale: int) -> AnalysisReport:
    """Re-derive the five root-cause counts per cell and cross-check
    them against the stored counters."""
    cells = load_traced_cells(store, experiment_id, scale=scale)
    _require_traced(cells, experiment_id)
    table = Table(
        f"{experiment_id}: root causes re-derived from the trace",
        ["cell", *ROOT_CAUSES, "vs counters"])
    mismatches: dict[str, list[str]] = {}
    for spec, result in cells.traced:
        analyzer = TraceAnalyzer(result.trace)
        counts = analyzer.root_causes()
        issues = analyzer.cross_check(result.counters)
        if issues:
            mismatches[spec.cell_id] = issues
        table.add_row(
            spec.cell_id, *(counts[name] for name in ROOT_CAUSES),
            "exact" if not issues else f"{len(issues)} mismatch(es)")
    lines = [table.render()]
    for cell_id, issues in mismatches.items():
        lines.extend(f"  {cell_id}: {issue}" for issue in issues)
    return AnalysisReport(experiment_id, "\n".join(lines),
                          mismatches, cells.notes)


def top_spans_report(store: ResultStore, experiment_id: str, *,
                     scale: int, limit: int = 10) -> tuple[str, list[str]]:
    """Rank the spans that caused the most host-side events."""
    cells = load_traced_cells(store, experiment_id, scale=scale)
    _require_traced(cells, experiment_id)
    table = Table(
        f"{experiment_id}: guest operations causing the most host work",
        ["cell", "span", "op", "begin[s]", "dur[s]", "events"])
    for spec, result in cells.traced:
        analyzer = TraceAnalyzer(result.trace)
        for span, caused in analyzer.top_spans(limit):
            table.add_row(
                spec.cell_id, span.sid, span.name,
                round(span.begin, 4), round(span.duration, 4), caused)
    return table.render(), cells.notes


#: Re-exported for callers that only need the data-model types.
__all__ = [
    "AnalysisReport",
    "TracedCells",
    "analyze_experiment",
    "export_experiment",
    "load_traced_cells",
    "top_spans_report",
    "TraceData",
    "CellSpec",
]
