"""Chrome trace-event JSON export (loadable in Perfetto / about:tracing).

One exported document merges any number of per-cell traces: each cell
becomes one *process* (``pid`` = its index in sweep order, named by a
metadata record), spans become complete events (``ph: "X"``) and point
events become thread-scoped instants (``ph: "i"``).  Timestamps are
microseconds of virtual time.

Determinism: the document is built purely from the (deterministic)
per-cell :class:`~repro.trace.events.TraceData` in the caller-given
cell order and serialized with sorted keys, so a parallel sweep's
merged export is byte-identical to a serial one's -- the property the
acceptance tests assert.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from repro.trace.events import TraceData


def _us(seconds: float) -> float:
    """Virtual seconds -> Chrome's microsecond timebase."""
    return round(seconds * 1e6, 3)


def chrome_trace(cells: Sequence[tuple[str, TraceData]]) -> dict:
    """The Chrome trace-event document for named per-cell traces."""
    records: list[dict] = []
    for pid, (label, trace) in enumerate(cells):
        records.append({
            "ph": "M", "pid": pid, "tid": 0,
            "name": "process_name", "args": {"name": label},
        })
        for span in trace.spans:
            end = span.begin if span.end is None else span.end
            records.append({
                "ph": "X", "pid": pid, "tid": 0,
                "name": span.name,
                "cat": "span",
                "ts": _us(span.begin),
                "dur": _us(end - span.begin),
                "args": {"sid": span.sid, "vm": span.vm},
            })
        for event in trace.events:
            args = dict(event.args)
            args["seq"] = event.seq
            if event.vm is not None:
                args["vm"] = event.vm
            if event.span is not None:
                args["sid"] = event.span
            records.append({
                "ph": "i", "s": "t", "pid": pid, "tid": 0,
                "name": event.kind,
                "cat": event.kind.split(".", 1)[0],
                "ts": _us(event.time),
                "args": args,
            })
    return {"displayTimeUnit": "ms", "traceEvents": records}


def render_chrome_trace(cells: Sequence[tuple[str, TraceData]]) -> str:
    """The document as canonical JSON text (sorted keys, stable floats)."""
    return json.dumps(chrome_trace(cells), sort_keys=True,
                      separators=(",", ":")) + "\n"


def write_chrome_trace(path: str | Path,
                       cells: Sequence[tuple[str, TraceData]]) -> Path:
    """Serialize the merged trace to ``path``."""
    path = Path(path)
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_chrome_trace(cells))
    return path


def validate_chrome_trace(document: dict) -> list[str]:
    """Structural problems in a Chrome trace document (empty = valid).

    Checks the subset of the trace-event format the exporter relies on
    being loadable: a ``traceEvents`` array whose records carry a
    phase, a name, and (for non-metadata phases) a numeric timestamp --
    with durations on complete events.
    """
    problems: list[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    for index, record in enumerate(events):
        if not isinstance(record, dict):
            problems.append(f"record {index}: not an object")
            continue
        phase = record.get("ph")
        if phase not in ("M", "X", "i"):
            problems.append(f"record {index}: unexpected phase {phase!r}")
            continue
        if not isinstance(record.get("name"), str):
            problems.append(f"record {index}: missing name")
        if phase == "M":
            continue
        if not isinstance(record.get("ts"), (int, float)):
            problems.append(f"record {index}: missing numeric ts")
        if phase == "X" and not isinstance(
                record.get("dur"), (int, float)):
            problems.append(f"record {index}: complete event without dur")
        if phase == "i" and record.get("s") not in ("t", "p", "g"):
            problems.append(f"record {index}: instant without scope")
    return problems
