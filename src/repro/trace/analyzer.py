"""Root-cause analysis over the event stream.

The paper attributes uncooperative swapping's slowdown to five concrete
pathologies.  Each has a dedicated event signature, so the analyzer can
re-derive the counts *from the trace alone* and cross-check them
against the independently maintained :class:`~repro.metrics.counters.
Counters` -- a disagreement means either the instrumentation or the
counter accounting is lying, which turns the trace into correctness
tooling rather than logging.

=============================  ========================================
root cause                     event signature
=============================  ========================================
``silent_swap_writes``         ``swap.out`` with ``silent=True``
``stale_reads``                ``fault.major`` with ``stale=True``
``false_reads``                ``fault.false_read``
``guest_context_faults``       ``fault.major`` with ``context="guest"``
                               (growth across iterations = decayed
                               swap sequentiality, Fig. 9c)
``hypervisor_code_faults``     ``fault.code`` (false page anonymity)
=============================  ========================================

The exact cross-check requires a *complete* trace: ``"full"`` mode and
no ring evictions.  A sampled or clipped trace still yields counts,
but :meth:`TraceAnalyzer.cross_check` refuses to call them exact.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.errors import TraceError
from repro.trace.events import Span, TraceData, TraceEvent

#: The five root causes, in the paper's presentation order.
ROOT_CAUSES = (
    "silent_swap_writes",
    "stale_reads",
    "false_reads",
    "guest_context_faults",
    "hypervisor_code_faults",
)


def _count(events: Iterable[TraceEvent]) -> dict[str, int]:
    counts = dict.fromkeys(ROOT_CAUSES, 0)
    for event in events:
        if event.kind == "swap.out":
            if event.args.get("silent"):
                counts["silent_swap_writes"] += 1
        elif event.kind == "fault.major":
            if event.args.get("stale"):
                counts["stale_reads"] += 1
            if event.args.get("context") == "guest":
                counts["guest_context_faults"] += 1
        elif event.kind == "fault.false_read":
            counts["false_reads"] += 1
        elif event.kind == "fault.code":
            counts["hypervisor_code_faults"] += 1
    return counts


class TraceAnalyzer:
    """Derive the paper's root-cause counts from one or more traces."""

    def __init__(self, traces: Sequence[TraceData] | TraceData) -> None:
        if isinstance(traces, TraceData):
            traces = [traces]
        self.traces = list(traces)
        if not self.traces:
            raise TraceError("no traces to analyze")

    # ------------------------------------------------------------------
    # root causes
    # ------------------------------------------------------------------

    def root_causes(self) -> dict[str, int]:
        """The five pathology counts, summed over all traces."""
        totals = dict.fromkeys(ROOT_CAUSES, 0)
        for trace in self.traces:
            for name, value in _count(trace.events).items():
                totals[name] += value
        return totals

    def completeness_issues(self) -> list[str]:
        """Why the counts cannot be exact (empty when they can)."""
        issues: list[str] = []
        for index, trace in enumerate(self.traces):
            if trace.mode != "full":
                issues.append(
                    f"trace {index}: recorded in {trace.mode!r} mode "
                    f"({trace.sampled_out} spans sampled out)")
            if trace.dropped:
                issues.append(
                    f"trace {index}: ring evicted {trace.dropped} "
                    f"records (capacity cap)")
        return issues

    def cross_check(self, counters: Mapping[str, int]) -> list[str]:
        """Compare trace-derived counts against ``counters``.

        Returns one human-readable line per disagreement (empty when
        the counts match bit-exactly).  An incomplete trace is itself a
        disagreement: its counts are lower bounds, not the truth.
        """
        issues = self.completeness_issues()
        if issues:
            return [f"exact cross-check impossible: {issue}"
                    for issue in issues]
        derived = self.root_causes()
        return [
            f"{name}: trace says {derived[name]}, "
            f"counters say {counters.get(name, 0)}"
            for name in ROOT_CAUSES
            if derived[name] != counters.get(name, 0)
        ]

    def verify(self, counters: Mapping[str, int]) -> dict[str, int]:
        """Exact cross-check that raises instead of reporting.

        Returns the derived counts on success; raises
        :class:`~repro.errors.TraceError` listing every mismatch.
        """
        mismatches = self.cross_check(counters)
        if mismatches:
            raise TraceError(
                "trace/counter cross-check failed: "
                + "; ".join(mismatches))
        return self.root_causes()

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------

    def top_spans(self, limit: int = 10) -> list[tuple[Span, int]]:
        """The costliest spans: ``(span, caused_events)`` pairs ranked
        by how many events they caused, then by duration.

        This is the "which guest read triggered which host work"
        question the aggregate counters cannot answer.
        """
        ranked: list[tuple[Span, int]] = []
        for trace in self.traces:
            caused: dict[int, int] = {}
            for event in trace.events:
                if event.span is not None:
                    caused[event.span] = caused.get(event.span, 0) + 1
            ranked.extend(
                (span, caused.get(span.sid, 0)) for span in trace.spans)
        ranked.sort(key=lambda pair: (-pair[1], -pair[0].duration,
                                      pair[0].begin, pair[0].sid))
        return ranked[:max(0, limit)]
