"""The invariant auditor installed by ``--paranoid`` runs.

One auditor per host -- the single-host :class:`~repro.machine.Machine`
or each :class:`~repro.cluster.host.Host` of a cluster, both exposing
the same ``engine``/``frames``/``vms``/``hypervisor`` surface (cluster
runs add :class:`~repro.audit.cluster.ClusterInvariantAuditor` for the
cross-host checks).  Hooks fire it at
operation boundaries, where the simulator's state is supposed to be
consistent: the hypervisor calls :meth:`InvariantAuditor.on_reclaim`
after every eviction batch and the VM driver calls
:meth:`InvariantAuditor.on_phase` at every workload phase mark.  The
cheap O(1) checks (pool bounds, clock monotonicity) run on every hook;
the full structural walk over EPTs, swap slots, and mapper associations
is O(resident + tracked) per VM, so reclaim hooks sample it on a
stride while phase boundaries always get the full walk.

Any breach raises :class:`~repro.errors.InvariantViolation`
immediately -- there is no "log and continue" mode, because a single
violated invariant already means every number downstream of it is
untrustworthy.
"""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING

from repro.core.mapper import TrackState
from repro.errors import InvariantViolation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.host.vm import Vm
    from repro.machine import Machine

#: Reclaim events between full structural walks.  Reclaim fires every
#: batch (32 pages), so a stride keeps paranoid runs from turning
#: O(pages) sweeps into O(pages^2); phase boundaries always walk.
DEFAULT_RECLAIM_STRIDE = 64


class InvariantAuditor:
    """Re-checks machine-wide invariants at operation boundaries."""

    def __init__(self, machine: "Machine", *,
                 reclaim_stride: int = DEFAULT_RECLAIM_STRIDE,
                 label: str | None = None) -> None:
        self.machine = machine
        #: Host name prefixed to violation sites on multi-host clusters
        #: (None on a single host, keeping messages byte-identical).
        self.label = label
        self.reclaim_stride = max(1, reclaim_stride)
        self._last_time = machine.engine.now
        self._reclaims_seen = 0
        #: Full structural walks performed (tests assert coverage).
        self.audits = 0
        #: Cheap per-hook checks performed.
        self.quick_checks = 0
        self._suspensions = 0

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------

    @contextlib.contextmanager
    def suspended(self):
        """Silence the hooks across a multi-step state transition.

        A migration/evacuation rebuild maps the carried set back one
        page at a time; reclaim triggered partway through would audit a
        VM that is inconsistent *by construction* (mapper associations
        still RESIDENT, EPT not yet rebuilt).  The caller re-checks
        explicitly once the transition commits.
        """
        self._suspensions += 1
        try:
            yield
        finally:
            self._suspensions -= 1

    def on_reclaim(self, vm: "Vm") -> None:
        """End of one eviction batch: quick checks, sampled full walk."""
        if self._suspensions:
            return
        self._quick(f"reclaim:{vm.name}")
        self._reclaims_seen += 1
        if self._reclaims_seen % self.reclaim_stride == 0:
            self.check(f"reclaim:{vm.name}")

    def on_phase(self, name: str) -> None:
        """A workload phase boundary: always the full walk."""
        if self._suspensions:
            return
        self.check(f"phase:{name}")

    # ------------------------------------------------------------------
    # the checks
    # ------------------------------------------------------------------

    def check(self, where: str) -> None:
        """Run every invariant; raise on the first breach."""
        self._quick(where)
        self.audits += 1
        self._check_frame_conservation(where)
        for vm in self.machine.vms:
            self._check_vm(vm, where)

    def _quick(self, where: str) -> None:
        self.quick_checks += 1
        self._check_clock(where)
        problem = self.machine.frames.audit_error()
        if problem is not None:
            self._fail(where, problem)

    def _check_clock(self, where: str) -> None:
        engine = self.machine.engine
        now = engine.now
        if now < self._last_time:
            self._fail(where, f"engine clock moved backwards: "
                              f"{now} < {self._last_time}")
        self._last_time = now
        earliest = engine.earliest_pending()
        if earliest is not None and earliest < now:
            self._fail(where, f"pending event scheduled in the past: "
                              f"{earliest} < now {now}")

    def _check_frame_conservation(self, where: str) -> None:
        pool = self.machine.frames
        attributed = sum(vm.resident_pages for vm in self.machine.vms)
        if attributed != pool.used:
            self._fail(where, f"frame accounting drift: VMs hold "
                              f"{attributed} frames, pool says {pool.used}")

    def _check_vm(self, vm: "Vm", where: str) -> None:
        self._check_swap_state(vm, where)
        self._check_mapper(vm, where)

    def _check_swap_state(self, vm: "Vm", where: str) -> None:
        slot_owner = self.machine.hypervisor.slot_owner
        for gpa, slot in vm.swap_slots.items():
            if vm.ept.is_present(gpa):
                self._fail(where, f"{vm.name}: page {gpa:#x} is both "
                                  f"swapped out (slot {slot}) and EPT-mapped")
            owner = slot_owner.get(slot)
            if owner is None or owner[0] is not vm or owner[1] != gpa:
                self._fail(where, f"{vm.name}: swap slot {slot} of page "
                                  f"{gpa:#x} has owner {owner!r}")
        for gpa in vm.swap_cache:
            if gpa not in vm.swap_slots:
                self._fail(where, f"{vm.name}: swap-cache page {gpa:#x} "
                                  f"retains no swap slot")
        for gpa in vm.pending_swap:
            if gpa not in vm.swap_slots:
                self._fail(where, f"{vm.name}: pending swap-out of "
                                  f"{gpa:#x} has no swap slot")
        for gpa in vm.ept.iter_present():
            if gpa in vm.ballooned:
                self._fail(where, f"{vm.name}: ballooned page {gpa:#x} is "
                                  f"still EPT-mapped")
        for gpa, slot in vm.swap_clean.items():
            if not vm.ept.is_present(gpa):
                self._fail(where, f"{vm.name}: clean swap copy of "
                                  f"{gpa:#x} but the page is not mapped")
            if gpa in vm.swap_slots:
                self._fail(where, f"{vm.name}: page {gpa:#x} is both "
                                  f"swap-clean and swapped out")
            owner = slot_owner.get(slot)
            if owner is None or owner[0] is not vm or owner[1] != gpa:
                self._fail(where, f"{vm.name}: clean slot {slot} of page "
                                  f"{gpa:#x} has owner {owner!r}")

    def _check_mapper(self, vm: "Vm", where: str) -> None:
        mapper = vm.mapper
        if mapper is None:
            return
        size_blocks = vm.image.size_blocks
        count = 0
        for assoc in mapper.associations():
            count += 1
            if not 0 <= assoc.block < size_blocks:
                self._fail(where, f"{vm.name}: tracked page {assoc.gpa:#x} "
                                  f"names block {assoc.block} outside the "
                                  f"image ({size_blocks} blocks)")
            if mapper.owner_of_block(assoc.block) is not assoc:
                self._fail(where, f"{vm.name}: mapper indices disagree on "
                                  f"block {assoc.block}")
            present = vm.ept.is_present(assoc.gpa)
            if assoc.state is TrackState.RESIDENT and not present:
                self._fail(where, f"{vm.name}: tracked-resident page "
                                  f"{assoc.gpa:#x} is not EPT-mapped")
            if assoc.state is TrackState.DISCARDED:
                if present:
                    self._fail(where, f"{vm.name}: discarded page "
                                      f"{assoc.gpa:#x} is still EPT-mapped")
                if assoc.gpa in vm.swap_slots:
                    self._fail(where, f"{vm.name}: page {assoc.gpa:#x} is "
                                      f"both mapper-discarded and swapped "
                                      f"out")
        if count != mapper.tracked_pages or count != mapper.tracked_blocks:
            self._fail(where, f"{vm.name}: mapper index sizes diverge: "
                              f"{count} walked, {mapper.tracked_pages} by "
                              f"gpa, {mapper.tracked_blocks} by block")

    def _fail(self, where: str, message: str) -> None:
        site = f"{self.label}:{where}" if self.label else where
        raise InvariantViolation(
            f"invariant violated at {site} (t={self.machine.now:.6f}): "
            f"{message}")
