"""Cluster-wide invariants layered over the per-host auditors.

Each :class:`~repro.cluster.host.Host` already runs its own
:class:`~repro.audit.auditor.InvariantAuditor` (frame conservation,
swap-slot ownership, mapper bijection) under ``--paranoid``.  This
auditor checks the properties only the *cluster* can violate: every
VM it ever placed is in exactly one of three states -- held by a live
host, in flight with the evacuation controller, or recorded lost (no
silent drops, no double placement); FAILED hosts hold nothing; host
rosters agree with their hypervisors'; and ownership backrefs survive
migration and evacuation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import InvariantViolation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import Cluster


class ClusterInvariantAuditor:
    """Re-checks cross-host invariants at placement/migration/failure
    points."""

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster
        #: Full cluster walks performed (tests assert coverage).
        self.audits = 0

    def check(self, where: str) -> None:
        """Run every cluster invariant; raise on the first breach."""
        self.audits += 1
        cluster = self.cluster
        seen: dict[int, str] = {}
        for host in cluster.hosts:
            if not host.alive and host.vms:
                self._fail(where, f"FAILED host {host.name} still holds "
                                  f"{len(host.vms)} VM(s)")
            if list(host.vms) != list(host.hypervisor.vms):
                self._fail(where, f"host {host.name}: host roster and "
                                  f"hypervisor roster disagree")
            for vm in host.vms:
                if vm.vm_id in seen:
                    self._fail(where, f"VM {vm.name} (id {vm.vm_id}) is "
                                      f"placed on both {seen[vm.vm_id]} "
                                      f"and {host.name}")
                seen[vm.vm_id] = host.name
                if vm.host is not host:
                    owner = getattr(vm.host, "name", vm.host)
                    self._fail(where, f"VM {vm.name} sits on {host.name} "
                                      f"but believes it lives on {owner!r}")
        # Evacuation conservation: placed XOR in-flight XOR lost.
        evacuating = set(cluster.evac.active)
        for vm in cluster.vms:
            states = [name for name, holds in (
                ("placed", vm.vm_id in seen),
                ("evacuating", vm.vm_id in evacuating),
                ("lost", vm.lost),
            ) if holds]
            if len(states) != 1:
                self._fail(where, f"VM {vm.name} (id {vm.vm_id}) must be "
                                  f"in exactly one of placed/evacuating/"
                                  f"lost; is in {states or ['none']}")
        accounted = len(seen) + len(evacuating) + len(cluster.lost)
        if accounted != len(cluster.vms):
            self._fail(where, f"hosts hold {len(seen)}, evacuation holds "
                              f"{len(evacuating)}, lost {len(cluster.lost)}"
                              f"; cluster placed {len(cluster.vms)}")
        for host in cluster.hosts:
            committed = sum(vm.cfg.guest.memory_pages for vm in host.vms)
            if committed != host.committed_guest_pages:
                self._fail(where, f"host {host.name}: admission ledger "
                                  f"says {host.committed_guest_pages} "
                                  f"pages, VMs sum to {committed}")

    def _fail(self, where: str, message: str) -> None:
        raise InvariantViolation(
            f"invariant violated at cluster:{where} "
            f"(t={self.cluster.now:.6f}): {message}")
