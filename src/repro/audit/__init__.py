"""Runtime invariant auditing (the ``--paranoid`` flag).

The simulator's failure mode of last resort is not a crash but a wrong
figure: an accounting bug that leaks frames or maps a swapped-out page
produces plausible-looking numbers with nothing to flag them.  The
auditor turns that silence into an error.  When the process-wide
paranoid flag is set (:func:`set_paranoid`, mirroring the fault layer's
ambient default config), every host -- the single-host
:class:`~repro.machine.Machine` as well as each
:class:`~repro.cluster.host.Host` of a cluster, which additionally
installs a :class:`~repro.audit.cluster.ClusterInvariantAuditor` for
the cross-host placement invariants -- installs
an :class:`~repro.audit.auditor.InvariantAuditor` that re-checks the
core invariants at operation boundaries -- the end of every reclaim
batch and every workload phase mark -- and raises
:class:`~repro.errors.InvariantViolation` on the first breach.

The invariant families (see DESIGN.md, "The invariant auditor"):

* **Frame conservation** -- the frame pool never goes negative or over
  total, and its ``used`` count equals the sum of every VM's resident
  pages (EPT mappings + QEMU text + swap-cache pages).
* **EPT / swap / mapper consistency** -- no page is simultaneously
  swapped-out and EPT-mapped; swap-cache and pending-swap entries are
  backed by owned swap slots; ``slot_owner`` and the per-VM slot maps
  agree both ways; every Mapper association's block lies within the
  VM's disk-image geometry, the gpa->assoc and block->assoc indices
  stay a bijection, and residency states match the EPT.
* **Clock monotonicity** -- virtual time never moves backwards between
  audits and the engine never holds an event scheduled in the past.
"""

from repro.audit.auditor import InvariantAuditor
from repro.audit.cluster import ClusterInvariantAuditor

#: Process-wide paranoid flag.  Like the fault layer's default config
#: this is ambient state: the CLI sets it once and every machine built
#: afterwards (including in worker processes, where the executors
#: re-install it explicitly) self-checks.
_PARANOID = False


def set_paranoid(enabled: bool) -> bool:
    """Set the process-wide paranoid flag; returns the previous value."""
    global _PARANOID
    previous = _PARANOID
    _PARANOID = bool(enabled)
    return previous


def paranoid_enabled() -> bool:
    """Whether machines should install the invariant auditor."""
    return _PARANOID


__all__ = [
    "ClusterInvariantAuditor",
    "InvariantAuditor",
    "paranoid_enabled",
    "set_paranoid",
]
