"""VSwapper facade: per-VM bundle of Mapper and Preventer."""

from __future__ import annotations

from repro.config import VSwapperConfig
from repro.core.mapper import SwapMapper
from repro.core.preventer import FalseReadsPreventer


class VSwapper:
    """The per-VM VSwapper instance the hypervisor consults.

    Either component can be disabled independently, matching the
    paper's evaluated configurations: "baseline" (both off), "mapper"
    (Mapper only), and "vswapper" (both on).
    """

    def __init__(self, config: VSwapperConfig) -> None:
        config.validate()
        self.cfg = config
        self.mapper: SwapMapper | None = (
            SwapMapper() if config.enable_mapper else None)
        self.preventer: FalseReadsPreventer | None = (
            FalseReadsPreventer(config) if config.enable_preventer else None)

    @property
    def active(self) -> bool:
        """Whether any component is enabled."""
        return self.mapper is not None or self.preventer is not None

    def describe(self) -> str:
        """The paper's name for this configuration."""
        if self.mapper and self.preventer:
            return "vswapper"
        if self.mapper:
            return "mapper"
        if self.preventer:
            return "preventer-only"
        return "baseline"
