"""Live-migration traffic planning (paper Section 7, future work).

The paper suggests VSwapper's techniques "may be used to enhance live
migration of guests and reduce the migration time and network traffic
by avoiding the transfer of free and clean guest pages": a hypervisor
that knows which guest pages equal which disk-image blocks can migrate
*mappings* (a few bytes each) instead of page contents, and the target
can refill them from shared storage.

:class:`MigrationPlanner` turns a VM's current state into that
accounting.  A baseline hypervisor must ship every page it cannot prove
empty; a Mapper-equipped one ships only genuinely private bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.mapper import METADATA_BYTES_PER_PAGE
from repro.mem.page import ZERO
from repro.units import PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import
    # cycle: host.vm composes core.vswapper)
    from repro.host.vm import Vm


@dataclass(frozen=True)
class MigrationPlan:
    """Byte accounting for migrating one VM's memory."""

    #: Pages whose full contents must cross the wire either way
    #: (dirty/anonymous data).
    private_pages: int
    #: Pages a Mapper-equipped source ships as disk-block references.
    mapped_pages: int
    #: Tracked-but-discarded pages: the reference is all that exists.
    discarded_pages: int
    #: Host-swapped pages: the baseline reads them back from swap just
    #: to ship them.
    swapped_private_pages: int
    #: All-zero pages (both sides skip these; KVM detects zeros).
    zero_pages: int

    @property
    def baseline_bytes(self) -> int:
        """Traffic for a hypervisor without mapping knowledge.

        Everything that holds (or may hold) data travels in full:
        private resident pages, swapped pages, and tracked pages --
        the baseline cannot tell the latter are clean file content.
        """
        pages = (self.private_pages + self.swapped_private_pages
                 + self.mapped_pages + self.discarded_pages)
        return pages * PAGE_SIZE

    @property
    def vswapper_bytes(self) -> int:
        """Traffic when mappings replace clean file-backed contents."""
        data = (self.private_pages + self.swapped_private_pages) * PAGE_SIZE
        references = (self.mapped_pages + self.discarded_pages) \
            * METADATA_BYTES_PER_PAGE
        return data + references

    @property
    def savings_fraction(self) -> float:
        """Fraction of baseline traffic the Mapper knowledge removes."""
        baseline = self.baseline_bytes
        if baseline == 0:
            return 0.0
        return 1.0 - self.vswapper_bytes / baseline


class MigrationPlanner:
    """Builds a :class:`MigrationPlan` from live VM state."""

    def plan(self, vm: "Vm") -> MigrationPlan:
        """Account for every guest page that holds state right now."""
        mapper = vm.mapper
        private = 0
        mapped = 0
        discarded = 0
        zero = 0

        for gpa in vm.ept.present_gpas():
            content = vm.content_of(gpa)
            if content is ZERO:
                zero += 1
            elif mapper is not None and mapper.is_tracked_resident(gpa):
                mapped += 1
            else:
                private += 1

        swapped_private = 0
        for gpa in vm.swap_slots:
            if vm.content_of(gpa) is ZERO:
                zero += 1
            else:
                swapped_private += 1

        if mapper is not None:
            # Discarded tracked pages are not EPT-present and hold no
            # swap slot; only the association exists.
            discarded = (mapper.tracked_pages
                         - mapper.tracked_resident_pages)

        return MigrationPlan(
            private_pages=private,
            mapped_pages=mapped,
            discarded_pages=discarded,
            swapped_private_pages=swapped_private,
            zero_pages=zero,
        )
