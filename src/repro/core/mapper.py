"""The Swap Mapper (paper Section 4.1).

Maintains the guest-page <-> disk-block association for pages whose
bytes are identical to their backing block.  The association is built
by interposing on virtual disk I/O (reads map after the DMA fills the
page; writes map after the data reaches the disk) and is severed by:

* a guest CPU store to the page (the mmap "private mapping" COW),
* ordinary I/O overwriting the backing block (consistency
  invalidation -- the paper's modified ``open`` flag), or
* the balloon pinning the page.

While associated, the page is *named* from the host's point of view:
reclaim discards it instead of writing swap, and a later fault re-reads
it from the image with sequential readahead.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConsistencyError, DegradedError
from repro.trace.collector import NULL_TRACE


class TrackState(enum.Enum):
    """Residency of a tracked page."""

    RESIDENT = "resident"
    DISCARDED = "discarded"


#: Host metadata bytes per tracked mapping.  The paper measures 200
#: bytes per vm_area_struct-based association (Section 5.3).
METADATA_BYTES_PER_PAGE = 200


@dataclass
class Association:
    """One gpa <-> block link and its residency."""

    gpa: int
    block: int
    state: TrackState


class SwapMapper:
    """Tracking state for one VM."""

    def __init__(self) -> None:
        self._by_gpa: dict[int, Association] = {}
        self._by_block: dict[int, Association] = {}
        self.peak_tracked = 0
        #: Circuit-breaker fallback (Section 4.1): once disabled, no new
        #: associations are built and the VM swaps like the baseline.
        self.disabled = False
        #: Trace collector plus the owning VM's name; wired by the
        #: machine under ``--trace``.
        self.trace = NULL_TRACE
        self.trace_vm: str | None = None

    # ------------------------------------------------------------------
    # building and breaking associations
    # ------------------------------------------------------------------

    def track(self, gpa: int, block: int) -> None:
        """Associate ``gpa`` with ``block`` (page is resident and clean).

        Latest-wins on both keys: a page can only match one block and a
        block is only claimed by the most recent page that read it.
        No-op once the mapper is :attr:`disabled`.
        """
        if self.disabled:
            return
        self.drop_gpa(gpa)
        old = self._by_block.pop(block, None)
        if old is not None:
            del self._by_gpa[old.gpa]
        assoc = Association(gpa, block, TrackState.RESIDENT)
        self._by_gpa[gpa] = assoc
        self._by_block[block] = assoc
        self.peak_tracked = max(self.peak_tracked, len(self._by_gpa))
        if self.trace.enabled:
            self.trace.emit("mapper.name", vm=self.trace_vm,
                            gpa=gpa, block=block)

    def drop_gpa(self, gpa: int) -> bool:
        """Remove any association of ``gpa``; True if one existed."""
        assoc = self._by_gpa.pop(gpa, None)
        if assoc is None:
            return False
        del self._by_block[assoc.block]
        if self.trace.enabled:
            self.trace.emit("mapper.drop", vm=self.trace_vm,
                            gpa=gpa, block=assoc.block)
        return True

    def break_cow(self, gpa: int) -> bool:
        """Guest store hit a tracked resident page: sever the link.

        Returns True when a link existed (the caller charges the COW
        exit cost and reclassifies the page as anonymous).
        """
        assoc = self._by_gpa.get(gpa)
        if assoc is None:
            return False
        if assoc.state is not TrackState.RESIDENT:
            raise ConsistencyError(
                f"guest store reached non-resident tracked page {gpa:#x}")
        return self.drop_gpa(gpa)

    def disable(self) -> list[int]:
        """Fall back to baseline swapping (the Section 4.1 escape hatch).

        Resident associations are dropped -- their pages become ordinary
        anonymous memory that host reclaim will swap instead of discard.
        *Discarded* associations are kept: their only copy lives in the
        image, so the fault path must still be able to refault them (the
        refault self-check verifies the bytes, so no stale data can slip
        through).  Returns the GPAs whose associations were dropped so
        the caller can reclassify them on the reclaim lists.
        """
        self.disabled = True
        dropped = [gpa for gpa, assoc in self._by_gpa.items()
                   if assoc.state is TrackState.RESIDENT]
        for gpa in dropped:
            self.drop_gpa(gpa)
        return dropped

    # ------------------------------------------------------------------
    # reclaim / refault transitions
    # ------------------------------------------------------------------

    def mark_discarded(self, gpa: int) -> int:
        """Reclaim discarded the page; returns its backing block."""
        if self.disabled:
            # Post-fallback no page may be discarded on the mapper's
            # say-so: an untrusted association could lose the only copy.
            raise DegradedError(
                f"mapper is disabled; cannot discard page {gpa:#x}")
        assoc = self._require(gpa)
        if assoc.state is TrackState.DISCARDED:
            raise ConsistencyError(f"double discard of page {gpa:#x}")
        assoc.state = TrackState.DISCARDED
        if self.trace.enabled:
            self.trace.emit("mapper.discard", vm=self.trace_vm,
                            gpa=gpa, block=assoc.block)
        return assoc.block

    def mark_refaulted(self, gpa: int) -> int:
        """A discarded page was re-read from the image; now resident."""
        assoc = self._require(gpa)
        if assoc.state is not TrackState.DISCARDED:
            raise ConsistencyError(
                f"refault of page {gpa:#x} that was not discarded")
        assoc.state = TrackState.RESIDENT
        if self.trace.enabled:
            self.trace.emit("mapper.reread", vm=self.trace_vm,
                            gpa=gpa, block=assoc.block)
        return assoc.block

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def is_tracked(self, gpa: int) -> bool:
        """Whether ``gpa`` has any association."""
        return gpa in self._by_gpa

    def is_tracked_resident(self, gpa: int) -> bool:
        """Tracked and currently in memory."""
        assoc = self._by_gpa.get(gpa)
        return assoc is not None and assoc.state is TrackState.RESIDENT

    def is_discarded(self, gpa: int) -> bool:
        """Tracked but discarded (recoverable only from the image)."""
        assoc = self._by_gpa.get(gpa)
        return assoc is not None and assoc.state is TrackState.DISCARDED

    def block_of(self, gpa: int) -> int:
        """Backing block of a tracked page."""
        return self._require(gpa).block

    def owner_of_block(self, block: int) -> Association | None:
        """The association claiming ``block``, if any."""
        return self._by_block.get(block)

    def discarded_gpa_for_block(self, block: int) -> int | None:
        """GPA of the *discarded* page backed by ``block`` (readahead)."""
        assoc = self._by_block.get(block)
        if assoc is not None and assoc.state is TrackState.DISCARDED:
            return assoc.gpa
        return None

    def associations(self):
        """Snapshot of every association (the invariant auditor walks
        these to re-verify geometry, state, and index agreement)."""
        return list(self._by_gpa.values())

    @property
    def tracked_pages(self) -> int:
        """All associations, resident or discarded (Figure 15 gauge)."""
        return len(self._by_gpa)

    @property
    def tracked_blocks(self) -> int:
        """Size of the block-side index; always equals
        :attr:`tracked_pages` unless the bijection broke."""
        return len(self._by_block)

    @property
    def tracked_resident_pages(self) -> int:
        """Resident tracked pages only."""
        return sum(1 for a in self._by_gpa.values()
                   if a.state is TrackState.RESIDENT)

    @property
    def metadata_bytes(self) -> int:
        """Host metadata footprint (Section 5.3 reports <= 14 MB)."""
        return METADATA_BYTES_PER_PAGE * len(self._by_gpa)

    def _require(self, gpa: int) -> Association:
        assoc = self._by_gpa.get(gpa)
        if assoc is None:
            raise ConsistencyError(f"page {gpa:#x} is not tracked")
        return assoc
