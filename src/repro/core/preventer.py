"""The False Reads Preventer (paper Section 4.2).

When the guest writes to a swapped-out page, the Preventer emulates the
write into a page-sized buffer instead of faulting the old content in.
If the whole page is overwritten, the buffer is remapped as the page
and the disk read is elided.  Emulation is abandoned -- and the old
content read and merged -- when:

* the write pattern is not sequential,
* a window (the paper's empirically chosen 1 ms) elapses after the
  page's first emulated write, or
* more than a cap (the paper's 32) of pages are under emulation.

``REP``-prefixed whole-page writes are recognized outright and skip
byte-granular emulation entirely (the paper's short-circuit).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.config import VSwapperConfig
from repro.sim.ops import WritePattern


class OverwriteVerdict(enum.Enum):
    """What the Preventer decided about one overwrite event."""

    #: Whole page buffered; promote the buffer, no disk read needed.
    REMAP = "remap"
    #: Partial write buffered; old content will be read asynchronously
    #: and merged when the window expires.
    BUFFERED = "buffered"
    #: Not emulatable (scattered pattern or cap exceeded); the caller
    #: must fault the old content in synchronously.
    FALLBACK = "fallback"


@dataclass
class EmulatedPage:
    """State of one page under write emulation."""

    gpa: int
    first_write_time: float
    bytes_buffered: int = 0
    sequential: bool = True


class FalseReadsPreventer:
    """Emulation bookkeeping for one VM."""

    def __init__(self, config: VSwapperConfig) -> None:
        self.cfg = config
        self._emulated: dict[int, EmulatedPage] = {}

    @property
    def pages_under_emulation(self) -> int:
        """Pages currently being emulated."""
        return len(self._emulated)

    def is_emulated(self, gpa: int) -> bool:
        """Whether ``gpa`` has an open write buffer."""
        return gpa in self._emulated

    def classify_overwrite(self, gpa: int, pattern: WritePattern,
                           now: float) -> OverwriteVerdict:
        """Decide how to handle an overwrite of a swapped-out page.

        The caller performs the actual frame/disk work according to the
        verdict; on REMAP or FALLBACK any open buffer for the page is
        closed.
        """
        if pattern is WritePattern.SCATTERED:
            # Non-sequential pattern: stop emulating (Section 4.2).
            self._emulated.pop(gpa, None)
            return OverwriteVerdict.FALLBACK

        if pattern is WritePattern.FULL_SEQUENTIAL:
            # A whole page arrives; the cap only matters for pages that
            # would *stay* buffered, so a full overwrite always wins
            # unless the emulator is saturated by other open pages.
            if (gpa not in self._emulated
                    and len(self._emulated) >= self.cfg.preventer_max_pages):
                return OverwriteVerdict.FALLBACK
            self._emulated.pop(gpa, None)
            return OverwriteVerdict.REMAP

        # PARTIAL: open (or extend) an emulation buffer.
        page = self._emulated.get(gpa)
        if page is None:
            if len(self._emulated) >= self.cfg.preventer_max_pages:
                return OverwriteVerdict.FALLBACK
            self._emulated[gpa] = EmulatedPage(gpa, now)
        return OverwriteVerdict.BUFFERED

    def emulation_cost(self, pattern: WritePattern) -> float:
        """CPU cost of emulating the writes of one overwrite event."""
        if (pattern is WritePattern.FULL_SEQUENTIAL
                and self.cfg.rep_prefix_detection):
            # REP-detected: recognized outright, no per-byte emulation.
            return self.cfg.emulation_page_cost / 8
        return self.cfg.emulation_page_cost

    def expired(self, now: float) -> list[int]:
        """GPAs whose emulation window lapsed; their buffers close.

        The caller schedules the asynchronous read-and-merge for each.
        """
        lapsed = [
            gpa for gpa, page in self._emulated.items()
            if now - page.first_write_time >= self.cfg.preventer_window
        ]
        for gpa in lapsed:
            del self._emulated[gpa]
        return lapsed

    def force_close(self, gpa: int) -> bool:
        """Close an open buffer (guest read of unbuffered data, or
        QEMU-side access -- the ``h`` handler in the paper).

        Returns True if a buffer was open; the caller must read the old
        content synchronously and merge.
        """
        return self._emulated.pop(gpa, None) is not None

    def close_all(self) -> list[int]:
        """Drain every open buffer (VM teardown)."""
        gpas = list(self._emulated)
        self._emulated.clear()
        return gpas
