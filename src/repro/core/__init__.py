"""VSwapper: the paper's contribution (Section 4).

Two guest-agnostic mechanisms grafted onto the hypervisor:

* :class:`repro.core.mapper.SwapMapper` -- tracks which guest pages are
  byte-identical to which virtual-disk blocks by interposing on virtual
  I/O, letting host reclaim *discard* instead of swap and refault from
  the (sequential) image instead of the (decayed) swap area.
* :class:`repro.core.preventer.FalseReadsPreventer` -- buffers guest
  writes to swapped-out pages, eliminating the read when the whole page
  is overwritten.

Both classes are pure bookkeeping + policy; every frame and disk
manipulation stays in :mod:`repro.host.hypervisor`, mirroring how the
real implementation splits QEMU/kernel responsibilities (paper Table 1).
"""

from repro.core.mapper import SwapMapper
from repro.core.migration import MigrationPlan, MigrationPlanner
from repro.core.preventer import EmulatedPage, FalseReadsPreventer, OverwriteVerdict
from repro.core.vswapper import VSwapper

__all__ = [
    "SwapMapper",
    "FalseReadsPreventer",
    "EmulatedPage",
    "OverwriteVerdict",
    "VSwapper",
    "MigrationPlan",
    "MigrationPlanner",
]
