"""Exception hierarchy for the VSwapper reproduction.

Every error raised by the library derives from :class:`ReproError` so
applications can catch library failures with a single ``except`` clause
while letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(ReproError):
    """A configuration value is missing, inconsistent, or out of range."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class InvariantViolation(SimulationError):
    """A runtime self-check caught the simulator in an impossible state.

    Raised by the invariant auditor (:mod:`repro.audit`) when a
    ``--paranoid`` run finds frame-conservation drift, an EPT/mapper
    inconsistency, or a non-monotonic engine clock.  Unlike the fault
    family this always means a simulator bug: the supervisor quarantines
    the cell instead of retrying, and an unsupervised run aborts.
    """


class DiskError(ReproError):
    """An invalid disk request (out-of-range sector, bad length...)."""


class MemoryError_(ReproError):
    """Host or guest memory accounting was violated.

    Named with a trailing underscore to avoid shadowing the builtin
    ``MemoryError`` while staying greppable.
    """


class GuestError(ReproError):
    """The guest kernel model was driven into an invalid state."""


class GuestOomKill(GuestError):
    """The guest out-of-memory killer terminated the running workload.

    The paper observes this under over-ballooning (Section 2.4): the
    balloon manager inflates beyond what the guest can reclaim and the
    guest kills the benchmark process.  Experiments catch this exception
    and report the configuration as *crashed* (missing bars in the
    paper's figures).
    """

    def __init__(self, message: str, *, pid: int | None = None) -> None:
        super().__init__(message)
        self.pid = pid


class HostError(ReproError):
    """The hypervisor model was driven into an invalid state."""


class PlacementError(HostError):
    """The cluster scheduler could not place a VM on any host.

    Admission control (per-node overcommit ratios and host-root code
    capacity) rejected the VM everywhere.  Deriving from
    :class:`HostError` keeps the sweep semantics of other capacity
    failures: the cell reports as *crashed* instead of aborting the
    sweep.
    """


class FaultError(ReproError):
    """An injected fault exhausted its retry budget.

    Raised by the fault-injection layer (:mod:`repro.faults`) when a
    transient failure persists past the retry-with-backoff policy --
    e.g. a disk request that keeps failing.  Experiments catch this at
    the runner boundary and report the configuration as *crashed*.
    """


class DegradedError(FaultError):
    """An operation was refused because a subsystem degraded itself.

    After repeated faults trip a circuit breaker (the Swap Mapper's
    Section 4.1 fallback to uncooperative swapping), requests that
    *require* the disabled mechanism raise this instead of silently
    returning untrustworthy state.
    """


class ConsistencyError(ReproError):
    """A data-consistency invariant of the Swap Mapper was violated.

    Raised by the self-checking consistency layer when the simulated
    guest would have observed stale data -- e.g. a tracked page whose
    backing blocks were overwritten without invalidation (Section 4.1,
    "Data Consistency").
    """


class ExperimentError(ReproError):
    """An experiment harness was misconfigured or produced no data."""


class StoreError(ReproError):
    """The result store could not complete a read or write safely."""


class StoreContentionError(StoreError):
    """A store lock stayed contended past the retry deadline.

    Raised by the :class:`~repro.exec.store.ResultStore` after its
    capped-exponential-backoff acquisition loop (the same retry
    discipline the cell supervisor applies to workers) gives up on a
    ``flock``-held lock file.  The store on disk is untouched: the
    caller may retry, raise, or fall back to running without a cache.
    """


class StoreIntegrityError(StoreError):
    """A store record failed its integrity check and could not be used.

    Most integrity failures never surface as exceptions -- corrupt
    records are quarantined and read as cache misses -- but repair
    tooling (``store verify``) raises this when asked to treat any
    failure as fatal.
    """


class TraceError(ReproError):
    """The trace subsystem caught an inconsistency.

    Raised by the :class:`~repro.trace.analyzer.TraceAnalyzer` when the
    root-cause counts it re-derives from the event stream disagree with
    the independently maintained counters -- either the instrumentation
    or the accounting is wrong, and both claim to describe the same run.
    """
