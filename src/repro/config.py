"""Configuration dataclasses for machines, guests, and VSwapper.

Every tunable of the simulation lives here, with defaults calibrated so
that plentiful-memory runtimes land near the paper's testbed numbers
(Dell R420, 7200 RPM disk).  Experiments construct these explicitly, so
a figure's parameters are always visible in its harness.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.errors import ConfigError
from repro.units import USEC, mib_pages


class GuestOsKind(enum.Enum):
    """Guest operating-system profile (Section 5.4 runs Windows too)."""

    LINUX = "linux"
    WINDOWS = "windows"


class HypervisorKind(enum.Enum):
    """Host profile: KVM-like (default) or the VMware-like profile used
    to reproduce Table 2."""

    KVM = "kvm"
    VMWARE = "vmware"


@dataclass(frozen=True)
class DiskConfig:
    """Physical disk characteristics (HDD by default, SSD for ablation).

    SSD latency parameters live in the swap-backend registry
    (:meth:`SwapBackendConfig.ssd`): ``kind="ssd"`` disks share the
    registry's device model rather than carrying a private copy.
    """

    kind: str = "hdd"
    bandwidth_bytes_per_sec: float = 120e6
    seek_min: float = 0.5e-3
    seek_max: float = 9.5e-3
    rpm: float = 7200.0
    #: Effective average rotational latency as a fraction of one
    #: revolution (queued I/O + elevator amortize the naive half turn).
    rotation_fraction: float = 0.20
    per_request_overhead: float = 50e-6
    #: Async writers stall until the device backlog drains below this
    #: (write-back / dirty throttling).
    max_write_backlog_seconds: float = 0.25

    def validate(self) -> None:
        if self.kind not in DISK_KINDS:
            raise ConfigError(
                f"unknown disk kind: {self.kind!r}; expected one of "
                f"{DISK_KINDS}")
        if self.bandwidth_bytes_per_sec <= 0:
            raise ConfigError("disk bandwidth must be positive")


#: Disk kinds the device layer understands.  ``hdd`` uses the seek +
#: rotation model; ``ssd`` reuses the swap-backend registry's SSD
#: latency parameters (one model, shared with ``--swap-backend ssd``).
DISK_KINDS = ("hdd", "ssd")


@dataclass(frozen=True)
class SwapBackendConfig:
    """One swap destination: where host-swapped pages live and what a
    store/load costs (ROADMAP item 3: which of the paper's root causes
    survive when swap is 100x faster than a 7200 RPM disk).

    A flat parameter record shared by every backend kind; each factory
    below fills in the fields its device model reads and leaves the
    rest at defaults.  ``kind="disk"`` (the default when no backend is
    configured at all) routes swap through the host's own
    :class:`DiskConfig` device, bit-identical to the pre-backend code.

    Unit conventions: latencies and RTT are seconds, bandwidth is
    bytes/second, and the compressed tier's ``capacity_pages`` counts
    *uncompressed page equivalents* -- the tier holds
    ``capacity_pages * PAGE_SIZE`` compressed bytes, so the number of
    pages that actually fit depends on the drawn compression ratios.
    """

    kind: str = "disk"
    # --- fixed-latency device models (ssd, nvme) ----------------------
    #: Per-request read latency (device service floor, no seek).
    read_latency: float = 80e-6
    #: Per-request write latency (flash program / remote commit).
    write_latency: float = 250e-6
    bandwidth_bytes_per_sec: float = 450e6
    #: Requests the device services concurrently (NVMe queue depth;
    #: 1 = strictly serial like a SATA SSD).
    queue_depth: int = 1
    # --- capacity (tiering) -------------------------------------------
    #: Slots this backend can hold, in uncompressed page equivalents
    #: (None = unbounded).  For the compressed tier this is the
    #: compressed-byte budget divided by PAGE_SIZE.
    capacity_pages: int | None = None
    # --- compressed-RAM tier (zram) -----------------------------------
    #: Mean of the per-page compressed-size ratio draw...
    compression_ratio_mean: float = 0.45
    #: ...drawn uniformly within +/- this jitter, clipped to (0, 1].
    compression_ratio_jitter: float = 0.20
    #: CPU seconds to compress one page on store...
    compress_page_cost: float = 2.5 * USEC
    #: ...and to decompress it on load.
    decompress_page_cost: float = 1.0 * USEC
    # --- remote / disaggregated-memory tier ---------------------------
    #: Network round-trip added to every remote request.
    rtt: float = 5e-6
    #: Uniform jitter as a fraction of the RTT, drawn per request from
    #: the cell's RNG fork (0 = deterministic wire).
    jitter_fraction: float = 0.0
    # --- tiered composite ---------------------------------------------
    fast: "SwapBackendConfig | None" = None
    slow: "SwapBackendConfig | None" = None
    #: Promote slow-tier pages to the fast tier when swapped back in.
    promote_on_load: bool = True

    def validate(self) -> None:
        if self.kind not in SWAP_BACKEND_KINDS:
            raise ConfigError(
                f"unknown swap backend kind: {self.kind!r}; expected one "
                f"of {tuple(SWAP_BACKEND_KINDS)}")
        if self.read_latency < 0 or self.write_latency < 0:
            raise ConfigError("swap backend latencies must be non-negative")
        if self.bandwidth_bytes_per_sec <= 0:
            raise ConfigError("swap backend bandwidth must be positive")
        if self.queue_depth < 1:
            raise ConfigError("swap backend queue_depth must be >= 1")
        if self.capacity_pages is not None and self.capacity_pages < 0:
            raise ConfigError("capacity_pages must be non-negative")
        if not 0.0 < self.compression_ratio_mean <= 1.0:
            raise ConfigError("compression_ratio_mean must be in (0, 1]")
        if self.compression_ratio_jitter < 0:
            raise ConfigError("compression_ratio_jitter must be >= 0")
        if self.compress_page_cost < 0 or self.decompress_page_cost < 0:
            raise ConfigError("compression CPU costs must be non-negative")
        if self.rtt < 0:
            raise ConfigError("rtt must be non-negative")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ConfigError("jitter_fraction must be within [0, 1]")
        if self.kind == "tiered":
            if self.fast is None or self.slow is None:
                raise ConfigError(
                    "tiered backend needs both fast and slow tiers")
            if "tiered" in (self.fast.kind, self.slow.kind):
                raise ConfigError("tiers cannot nest another tiered backend")
            if self.fast.capacity_pages is None:
                raise ConfigError(
                    "tiered fast tier needs a finite capacity_pages")
            self.fast.validate()
            self.slow.validate()
        elif self.fast is not None or self.slow is not None:
            raise ConfigError(
                f"{self.kind!r} backend does not take fast/slow tiers")

    @staticmethod
    def disk() -> "SwapBackendConfig":
        """Swap through the host disk (the paper's setup; the default)."""
        return SwapBackendConfig(kind="disk")

    @staticmethod
    def ssd() -> "SwapBackendConfig":
        """A dedicated SATA-class SSD swap device (serial queue).

        The latency numbers here are *the* SSD parameters: the
        ``kind="ssd"`` disk profile of the ablation experiment builds
        its :class:`~repro.disk.latency.SsdLatencyModel` from them too.
        """
        return SwapBackendConfig(
            kind="ssd", read_latency=80e-6, write_latency=250e-6,
            bandwidth_bytes_per_sec=450e6, queue_depth=1)

    @staticmethod
    def nvme() -> "SwapBackendConfig":
        """An NVMe swap device: lower fixed latency, deep queue."""
        return SwapBackendConfig(
            kind="nvme", read_latency=10e-6, write_latency=20e-6,
            bandwidth_bytes_per_sec=3e9, queue_depth=32)

    @staticmethod
    def zram(capacity_pages: int | None = None) -> "SwapBackendConfig":
        """A zswap/zram-style compressed-RAM tier."""
        return SwapBackendConfig(kind="zram", capacity_pages=capacity_pages)

    @staticmethod
    def remote() -> "SwapBackendConfig":
        """Disaggregated far memory over an RDMA-class fabric."""
        return SwapBackendConfig(
            kind="remote", rtt=5e-6, jitter_fraction=0.1,
            bandwidth_bytes_per_sec=12.5e9, queue_depth=16)

    @staticmethod
    def tiered(fast: "SwapBackendConfig | None" = None,
               slow: "SwapBackendConfig | None" = None,
               capacity_pages: int = mib_pages(64),
               ) -> "SwapBackendConfig":
        """Fast tier backed by a slow spill tier (zram over SSD by
        default, the common zswap deployment shape)."""
        if fast is None:
            fast = replace(SwapBackendConfig.zram(),
                           capacity_pages=capacity_pages)
        if slow is None:
            slow = SwapBackendConfig.ssd()
        return SwapBackendConfig(kind="tiered", fast=fast, slow=slow)


#: Swap-backend kind -> zero-argument config factory.  The CLI's
#: ``--swap-backend`` choices and the ``swaptier`` experiment's sweep
#: both come from this table, so adding a backend is one entry here
#: plus its device model in ``repro.swapback``.
SWAP_BACKEND_KINDS: dict = {
    "disk": SwapBackendConfig.disk,
    "ssd": SwapBackendConfig.ssd,
    "nvme": SwapBackendConfig.nvme,
    "zram": SwapBackendConfig.zram,
    "remote": SwapBackendConfig.remote,
    "tiered": SwapBackendConfig.tiered,
}


def swap_backend_config(kind: str) -> SwapBackendConfig:
    """Default :class:`SwapBackendConfig` for ``kind``.

    Raises :class:`ConfigError` for unknown kinds (the typed error the
    CLI surfaces for a bad ``--swap-backend``).
    """
    try:
        factory = SWAP_BACKEND_KINDS[kind]
    except KeyError:
        known = ", ".join(sorted(SWAP_BACKEND_KINDS))
        raise ConfigError(
            f"unknown swap backend kind: {kind!r}; known: {known}"
        ) from None
    config = factory()
    config.validate()
    return config


@dataclass(frozen=True)
class HostConfig:
    """Hypervisor/host-kernel parameters."""

    #: Physical frames available to guests (host reserve already taken).
    total_memory_pages: int = mib_pages(16 * 1024)
    #: Host swap partition size.
    swap_size_pages: int = mib_pages(16 * 1024)
    #: Linux ``page-cluster``-style swap readahead (pages per fault).
    swap_cluster_pages: int = 8
    #: Readahead window when the Mapper refaults from the disk image.
    image_readahead_pages: int = 32
    #: Victims reclaimed per pressure episode (SWAP_CLUSTER_MAX-like).
    reclaim_batch_pages: int = 32
    #: Swap-out writes are buffered (the page sits in the swap cache)
    #: and flushed to disk in batches of this many pages, mirroring how
    #: write-back coalesces swap traffic into large requests.
    swap_writeback_batch_pages: int = 256
    #: Fraction of each reclaim batch drawn from the named-page list.
    named_fraction: float = 0.75
    #: CPU cost of servicing one EPT violation (exit + map).
    ept_fault_cost: float = 4 * USEC
    #: CPU cost of a COW break exit on a Mapper-tracked page (5.3).
    cow_exit_cost: float = 6 * USEC
    #: Extra per-page cost of the Mapper's mmap-based virtio read path
    #: versus plain preadv (5.3 attributes its ~3.5% overhead to this).
    mmap_page_cost: float = 2.5 * USEC
    #: Resident footprint of the hypervisor (QEMU) executable per VM.
    hypervisor_code_pages: int = 192
    #: Code pages touched when QEMU services one virtual I/O request.
    code_pages_per_io: int = 16
    #: Code pages touched per guest-fault episode (timer ticks, exits).
    code_pages_per_fault: int = 2
    #: Readahead used when faulting hypervisor code pages back in.
    code_readahead_pages: int = 8
    #: Probability a reclaimed QEMU code page is still in the host page
    #: cache when refaulted (the binary is shared with other processes),
    #: making the refault minor instead of a disk read.
    code_cache_hit_rate: float = 0.97
    #: CPU cost of a minor fault (page present in host cache).
    minor_fault_cost: float = 3 * USEC
    #: Referenced-bit sampling noise of the reclaim clock: probability
    #: an eviction candidate gets an extra rotation.  This models the
    #: aggregate disorder of real LRU approximation (active/inactive
    #: promotions, timing) and is the seed of *decayed swap
    #: sequentiality* -- with zero noise the simulation stays in
    #: deterministic lockstep and slot order never degrades.
    reclaim_noise: float = 0.06
    #: KVM asynchronous page faults: guests with spare threads overlap
    #: host swap-in stalls (Section 5.1, pbzip2).
    async_page_faults: bool = True
    #: Which hypervisor profile this host models.
    kind: HypervisorKind = HypervisorKind.KVM
    #: Ablation: model a hardware dirty bit for guest pages (the
    #: paper's Haswell discussion) letting the host skip rewriting
    #: swap-clean pages.
    hardware_dirty_bit: bool = False

    def validate(self) -> None:
        if self.total_memory_pages <= 0:
            raise ConfigError("host memory must be positive")
        if self.swap_cluster_pages <= 0:
            raise ConfigError("swap cluster must be positive")
        if not 0.0 <= self.named_fraction <= 1.0:
            raise ConfigError("named_fraction must be within [0, 1]")
        if self.reclaim_batch_pages <= 0:
            raise ConfigError("reclaim batch must be positive")
        if not 0.0 <= self.code_cache_hit_rate <= 1.0:
            raise ConfigError("code_cache_hit_rate must be within [0, 1]")
        if not 0.0 <= self.reclaim_noise <= 1.0:
            raise ConfigError("reclaim_noise must be within [0, 1]")


@dataclass(frozen=True)
class GuestConfig:
    """Guest kernel parameters (what the guest *believes* it has)."""

    memory_pages: int = mib_pages(512)
    os_kind: GuestOsKind = GuestOsKind.LINUX
    #: Guest file readahead window (pages).
    readahead_pages: int = 32
    #: Reclaim kicks in below this many free pages...
    free_min_pages: int = 0  # 0 -> derived (2% of memory)
    #: ...and restores free memory up to this level.
    free_target_pages: int = 0  # 0 -> derived (4% of memory)
    #: Dirty page-cache pages allowed before background write-back.
    dirty_threshold_fraction: float = 0.10
    #: Guest swap device capacity (area inside the virtual disk).
    guest_swap_pages: int = mib_pages(1024)
    #: Pages the guest kernel itself needs to stay alive.
    kernel_reserve_pages: int = mib_pages(16)
    #: CPU cost of zeroing one page on allocation.
    zero_page_cost: float = 1.0 * USEC
    #: CPU cost of copying one page (COW, pipes).
    copy_page_cost: float = 1.2 * USEC
    #: Page-allocator scramble window: a fresh page is drawn uniformly
    #: from the last this-many free-list entries, modelling buddy
    #: coalescing/splitting disorder.  1 = strict LIFO.  The disorder
    #: decides how scattered recycled (host-swapped) frames are, i.e.
    #: how badly stale/false reads defeat host swap readahead.
    allocator_window: int = 64
    #: Windows-profile: background thread zeroes free-list pages,
    #: which is a whole-page overwrite (a false-read generator).
    zero_free_pages: bool = False
    #: Fraction of virtual I/O issued below 4 KiB alignment; the Mapper
    #: cannot track those transfers (Section 5.4's Windows caveat).
    unaligned_io_fraction: float = 0.0
    #: Fraction of the guest's own reclaim drawn from named pages.
    named_fraction: float = 0.75

    def validate(self) -> None:
        if self.memory_pages <= 0:
            raise ConfigError("guest memory must be positive")
        if not 0.0 <= self.unaligned_io_fraction <= 1.0:
            raise ConfigError("unaligned_io_fraction must be in [0, 1]")

    @property
    def derived_free_min(self) -> int:
        """Low watermark triggering guest reclaim."""
        return self.free_min_pages or max(64, self.memory_pages // 50)

    @property
    def derived_free_target(self) -> int:
        """High watermark guest reclaim restores."""
        return self.free_target_pages or max(128, self.memory_pages // 25)


@dataclass(frozen=True)
class VSwapperConfig:
    """Configuration of the paper's two mechanisms (Section 4)."""

    enable_mapper: bool = False
    enable_preventer: bool = False
    #: Emulation window: give up this long after a page's first
    #: emulated write (the paper's empirically chosen 1 ms).
    preventer_window: float = 1e-3
    #: Concurrent pages under emulation (the paper's 32).
    preventer_max_pages: int = 32
    #: CPU cost of emulating the writes that fill one page.
    emulation_page_cost: float = 12 * USEC
    #: Recognize REP-prefixed whole-page writes outright and skip
    #: byte-by-byte emulation (Section 4.2, last paragraph).
    rep_prefix_detection: bool = True

    def validate(self) -> None:
        if self.preventer_window <= 0:
            raise ConfigError("preventer window must be positive")
        if self.preventer_max_pages <= 0:
            raise ConfigError("preventer page cap must be positive")

    @staticmethod
    def off() -> "VSwapperConfig":
        """Baseline: no VSwapper mechanism active."""
        return VSwapperConfig()

    @staticmethod
    def mapper_only() -> "VSwapperConfig":
        """The paper's "mapper" configuration."""
        return VSwapperConfig(enable_mapper=True)

    @staticmethod
    def full() -> "VSwapperConfig":
        """The paper's "vswapper" configuration (Mapper + Preventer)."""
        return VSwapperConfig(enable_mapper=True, enable_preventer=True)


@dataclass(frozen=True)
class VmConfig:
    """One virtual machine: guest, image, limits, VSwapper state."""

    name: str = "vm0"
    guest: GuestConfig = field(default_factory=GuestConfig)
    vswapper: VSwapperConfig = field(default_factory=VSwapperConfig)
    #: Virtual disk image size.
    image_size_pages: int = mib_pages(20 * 1024)
    #: cgroup-style cap on the VM's host-resident pages (None = only
    #: global pressure applies).
    resident_limit_pages: int | None = None
    #: Statically inflated balloon (controlled experiments).  None means
    #: no balloon; a manager may still drive the balloon dynamically.
    static_balloon_pages: int | None = None
    #: Number of vCPUs (drives async-fault overlap potential).
    vcpus: int = 1

    def validate(self) -> None:
        self.guest.validate()
        self.vswapper.validate()
        if self.image_size_pages <= self.guest.guest_swap_pages:
            raise ConfigError("image must be larger than the guest swap area")


@dataclass(frozen=True)
class FaultConfig:
    """Deterministic fault-injection plan (chaos testing).

    All rates are per-opportunity probabilities drawn from seeded
    substreams of the machine RNG, so a (seed, FaultConfig) pair fully
    determines every injected fault.  ``enabled=False`` (the default)
    makes every hook a no-op that consumes no randomness, keeping
    fault-free runs bit-identical to pre-fault-layer builds.
    """

    enabled: bool = False
    # --- disk layer ---------------------------------------------------
    #: Probability one disk request attempt fails transiently.
    disk_transient_error_rate: float = 0.0
    #: Probability a request suffers a latency spike...
    disk_latency_spike_rate: float = 0.0
    #: ...of this many extra seconds (a stalled head, a deep queue).
    disk_latency_spike_seconds: float = 0.05
    #: Probability an async/sync write is torn and must be reissued.
    disk_torn_write_rate: float = 0.0
    # --- retry policy (shared by disk and host swap path) -------------
    #: Failed attempts allowed before the request aborts with FaultError.
    max_retries: int = 3
    #: First retry waits this long...
    backoff_base: float = 1e-3
    #: ...and each further retry multiplies the wait by this factor.
    backoff_factor: float = 2.0
    # --- host swap path -----------------------------------------------
    #: Probability a host swap-in read fails and must be retried.
    swap_read_error_rate: float = 0.0
    #: Probability a swap slot's content fails its checksum on swap-in
    #: (unrecoverable: surfaces as HostError, never silent stale data).
    swap_slot_corruption_rate: float = 0.0
    # --- swap backend tiers (repro.swapback) --------------------------
    #: Probability one remote-memory swap request times out and is
    #: internally retried after the timeout penalty...
    remote_swap_timeout_rate: float = 0.0
    #: ...of this many seconds (far-memory fabric hiccup).
    remote_swap_timeout_seconds: float = 0.01
    #: Probability a compressed-tier store stalls on pool pressure
    #: (zsmalloc fragmentation / allocator contention)...
    compressed_stall_rate: float = 0.0
    #: ...costing this many seconds.
    compressed_stall_seconds: float = 0.002
    # --- mapper --------------------------------------------------------
    #: Probability a freshly built page<->block association is forcibly
    #: invalidated (modelling lost trust per Section 4.1).
    mapper_invalidation_rate: float = 0.0
    #: Forced invalidations a VM tolerates before its circuit breaker
    #: trips and tracking falls back to baseline swapping.
    mapper_breaker_threshold: int = 8
    # --- executor (chaos outside the simulation) ----------------------
    #: Probability a supervised worker process kills itself (hard
    #: ``os._exit``) before running its cell.  Exercises the
    #: CellSupervisor's crash recovery; plain executors ignore it.
    worker_kill_rate: float = 0.0
    #: Kills only strike attempts up to this number (1 = first attempt
    #: only), so a retrying supervisor always recovers the cell.
    worker_kill_max_attempt: int = 1
    # --- host lifecycle (cluster-level chaos) -------------------------
    #: Probability a cluster host suffers a hard crash somewhere inside
    #: the fault horizon.  Crash times are drawn from a *fresh* RNG
    #: seeded by ``host_fault_seed`` (pure in (seed, host name)), never
    #: from the cluster's streams, so arming host faults cannot perturb
    #: the simulation of surviving hosts.
    host_crash_rate: float = 0.0
    #: Probability a host suffers a transient degradation window...
    host_degrade_rate: float = 0.0
    #: ...during which its disk (and therefore swap) latency is scaled
    #: by this factor...
    host_degrade_factor: float = 8.0
    #: ...for this many virtual seconds.
    host_degrade_duration: float = 30.0
    #: Host crash/degradation onsets land uniformly in [0, horizon).
    host_fault_horizon: float = 120.0
    #: Probability one migration or evacuation copy fails mid-transfer
    #: (rolled back on the source or completed on the destination --
    #: never both; see ``repro.cluster.migrate``).
    migration_failure_rate: float = 0.0
    #: Seed of the host-fault substream (crashes, degradations, and
    #: mid-copy failures all fork fresh from it).
    host_fault_seed: int = 1
    # --- evacuation (host-crash recovery policy) ----------------------
    #: Re-placement attempts per evacuating VM after the first fails.
    evac_max_retries: int = 4
    #: First evacuation retry waits this long (virtual seconds)...
    evac_backoff_base: float = 0.5
    #: ...each further retry multiplies the wait by this factor...
    evac_backoff_factor: float = 2.0
    #: ...capped at this many seconds (capped exponential backoff).
    evac_backoff_cap: float = 8.0
    #: A VM still homeless this many virtual seconds after its host
    #: failed is declared lost (per-VM evacuation deadline).
    evac_deadline: float = 60.0
    # --- simulation watchdogs (honoured even when ``enabled=False``) --
    #: Abort the run after dispatching this many engine events.
    watchdog_max_events: int | None = None
    #: Abort the run once virtual time passes this many seconds.
    watchdog_max_virtual_time: float | None = None

    def validate(self) -> None:
        for name in ("disk_transient_error_rate", "disk_latency_spike_rate",
                     "disk_torn_write_rate", "swap_read_error_rate",
                     "swap_slot_corruption_rate", "mapper_invalidation_rate",
                     "worker_kill_rate", "host_crash_rate",
                     "host_degrade_rate", "migration_failure_rate",
                     "remote_swap_timeout_rate", "compressed_stall_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{name} must be within [0, 1]: {rate}")
        if self.remote_swap_timeout_seconds < 0:
            raise ConfigError(
                "remote_swap_timeout_seconds must be non-negative")
        if self.compressed_stall_seconds < 0:
            raise ConfigError("compressed_stall_seconds must be non-negative")
        if self.max_retries < 0:
            raise ConfigError("max_retries must be non-negative")
        if self.backoff_base < 0:
            raise ConfigError("backoff_base must be non-negative")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff_factor must be >= 1")
        if self.disk_latency_spike_seconds < 0:
            raise ConfigError("latency spike must be non-negative")
        if self.mapper_breaker_threshold <= 0:
            raise ConfigError("mapper_breaker_threshold must be positive")
        if self.worker_kill_max_attempt < 1:
            raise ConfigError("worker_kill_max_attempt must be >= 1")
        if self.host_degrade_factor < 1.0:
            raise ConfigError("host_degrade_factor must be >= 1")
        if self.host_degrade_duration <= 0:
            raise ConfigError("host_degrade_duration must be positive")
        if self.host_fault_horizon <= 0:
            raise ConfigError("host_fault_horizon must be positive")
        if self.evac_max_retries < 0:
            raise ConfigError("evac_max_retries must be non-negative")
        if self.evac_backoff_base < 0:
            raise ConfigError("evac_backoff_base must be non-negative")
        if self.evac_backoff_factor < 1.0:
            raise ConfigError("evac_backoff_factor must be >= 1")
        if self.evac_backoff_cap < self.evac_backoff_base:
            raise ConfigError(
                "evac_backoff_cap must be >= evac_backoff_base")
        if self.evac_deadline <= 0:
            raise ConfigError("evac_deadline must be positive")
        if (self.watchdog_max_events is not None
                and self.watchdog_max_events <= 0):
            raise ConfigError("watchdog_max_events must be positive")
        if (self.watchdog_max_virtual_time is not None
                and self.watchdog_max_virtual_time <= 0):
            raise ConfigError("watchdog_max_virtual_time must be positive")

    @staticmethod
    def chaos() -> "FaultConfig":
        """The standing chaos-suite plan: every layer faulted at rates a
        healthy configuration should survive (retried or degraded), with
        a generous watchdog so a wedged run aborts instead of hanging."""
        return FaultConfig(
            enabled=True,
            disk_transient_error_rate=0.002,
            disk_latency_spike_rate=0.001,
            disk_torn_write_rate=0.001,
            swap_read_error_rate=0.002,
            swap_slot_corruption_rate=0.0002,
            mapper_invalidation_rate=0.01,
            mapper_breaker_threshold=4,
            watchdog_max_events=50_000_000,
            watchdog_max_virtual_time=1e6,
        )


#: Placement policies the cluster scheduler understands.
PLACEMENT_POLICIES = ("first-fit", "balance", "pack")


@dataclass(frozen=True)
class HostNodeConfig:
    """One node of a cluster: host kernel, disk, and node-level budgets.

    The per-node budgets mirror how cluster memory overcommit is
    deployed in practice (KubeVirt's wasp-agent): admission is governed
    by an overcommit *ratio* over believed guest memory, swapping by a
    ``memory.swap.max``-style cap, and the cap's occupancy is the
    node-pressure signal the control plane migrates against.
    """

    name: str = "host0"
    host: HostConfig = field(default_factory=HostConfig)
    disk: DiskConfig = field(default_factory=DiskConfig)
    #: Admission control: the sum of believed guest memory placed on
    #: this node may reach this multiple of its physical frames
    #: (None = unlimited, the single-host ``Machine`` behaviour).
    overcommit_ratio: float | None = None
    #: ``memory.swap.max``-style cap on host swap slots this node may
    #: fill (None = the whole swap area; 0 = swapping forbidden).
    swap_budget_pages: int | None = None
    #: Fraction of the swap budget in use at which the node reports
    #: pressure and the cluster starts evacuating VMs.
    pressure_threshold: float = 0.9
    #: Where this node's swapped pages go.  None = the node's own disk
    #: (bit-identical to the pre-backend swap path); anything else
    #: builds a ``repro.swapback`` device for the host.
    swap_backend: SwapBackendConfig | None = None

    def validate(self) -> None:
        self.host.validate()
        self.disk.validate()
        if self.swap_backend is not None:
            self.swap_backend.validate()
        if not self.name:
            raise ConfigError("host node needs a name")
        if self.overcommit_ratio is not None and self.overcommit_ratio <= 0:
            raise ConfigError("overcommit_ratio must be positive")
        if (self.swap_budget_pages is not None
                and self.swap_budget_pages < 0):
            raise ConfigError("swap_budget_pages must be non-negative")
        if not 0.0 < self.pressure_threshold <= 1.0:
            raise ConfigError("pressure_threshold must be within (0, 1]")


@dataclass(frozen=True)
class ClusterMigrationConfig:
    """Pressure-driven live migration knobs."""

    enabled: bool = False
    #: Virtual seconds between node-pressure evaluations.
    check_interval: float = 5.0
    #: Migration network bandwidth (pre-copy transfer + downtime model).
    bandwidth_bytes_per_sec: float = 1.25e9

    def validate(self) -> None:
        if self.check_interval <= 0:
            raise ConfigError("migration check_interval must be positive")
        if self.bandwidth_bytes_per_sec <= 0:
            raise ConfigError("migration bandwidth must be positive")


@dataclass(frozen=True)
class ClusterConfig:
    """N hosts sharing one engine clock and one seeded RNG."""

    hosts: tuple[HostNodeConfig, ...] = (HostNodeConfig(),)
    #: Which placement policy chooses a host per incoming VM.
    placement: str = "first-fit"
    migration: ClusterMigrationConfig = field(
        default_factory=ClusterMigrationConfig)
    seed: int = 1
    #: Fault-injection plan; None means no fault layer at all (not even
    #: watchdogs).  See :class:`FaultConfig`.
    faults: FaultConfig | None = None

    def validate(self) -> None:
        if not self.hosts:
            raise ConfigError("a cluster needs at least one host")
        names = [node.name for node in self.hosts]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate host names: {names}")
        for node in self.hosts:
            node.validate()
        if self.placement not in PLACEMENT_POLICIES:
            raise ConfigError(
                f"unknown placement policy {self.placement!r}; expected "
                f"one of {PLACEMENT_POLICIES}")
        self.migration.validate()
        if self.faults is not None:
            self.faults.validate()


@dataclass(frozen=True)
class MachineConfig:
    """The whole physical host (one-host alias of :class:`ClusterConfig`)."""

    host: HostConfig = field(default_factory=HostConfig)
    disk: DiskConfig = field(default_factory=DiskConfig)
    seed: int = 1
    #: Fault-injection plan; None means no fault layer at all (not even
    #: watchdogs).  See :class:`FaultConfig`.
    faults: FaultConfig | None = None
    #: Swap destination; None = the machine's own disk (bit-identical
    #: to the pre-backend swap path).  See :class:`SwapBackendConfig`.
    swap_backend: SwapBackendConfig | None = None

    def validate(self) -> None:
        self.host.validate()
        self.disk.validate()
        if self.faults is not None:
            self.faults.validate()
        if self.swap_backend is not None:
            self.swap_backend.validate()

    def as_cluster(self) -> ClusterConfig:
        """The equivalent cluster of one unbudgeted node.

        A cluster built from this config is bit-identical to the
        pre-cluster ``Machine``: the single node draws from the root
        RNG with unchanged fork labels, no budgets gate its swap area,
        and no migration controller is scheduled.
        """
        return ClusterConfig(
            hosts=(HostNodeConfig(
                name="host0", host=self.host, disk=self.disk,
                swap_budget_pages=None,
                swap_backend=self.swap_backend),),
            seed=self.seed,
            faults=self.faults,
        )


def scaled_pages(pages: int, scale: int) -> int:
    """Divide a page count by the experiment scale factor (min 1 page).

    Benchmarks run at ``scale`` 4--8 to keep wall-clock time sane; the
    CLI can rerun any experiment at ``scale=1`` (paper-sized).
    """
    if scale <= 0:
        raise ConfigError(f"scale must be positive: {scale}")
    return max(1, pages // scale)


__all__ = [
    "ClusterConfig",
    "ClusterMigrationConfig",
    "DISK_KINDS",
    "DiskConfig",
    "FaultConfig",
    "GuestConfig",
    "GuestOsKind",
    "HostConfig",
    "HostNodeConfig",
    "HypervisorKind",
    "MachineConfig",
    "PLACEMENT_POLICIES",
    "SWAP_BACKEND_KINDS",
    "SwapBackendConfig",
    "VSwapperConfig",
    "VmConfig",
    "replace",
    "scaled_pages",
    "swap_backend_config",
]
