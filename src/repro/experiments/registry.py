"""Registry mapping experiment ids to their harness functions.

The CLI and the benchmark suite both resolve experiments through this
table, so the set of reproducible results lives in exactly one place.

Two tables live here:

* :data:`EXPERIMENTS` -- CLI experiment id -> :class:`ExperimentDef`
  (description, harness, sweep declaration).  Several CLI ids share a
  harness: ``fig5``/``fig11`` regenerate from one pbzip2 sweep,
  ``fig4`` is ``fig14``'s ten-guest column, ``fig3`` is ``fig9``'s
  first iteration.
* :data:`CELL_RUNNERS` -- sweep harness id -> picklable cell runner.
  The executor resolves runners here (by ``CellSpec.experiment_id``)
  so worker processes rebuild each cell from its spec alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ExperimentError
from repro.exec.spec import CellSpec, Sweep
from repro.experiments.ablations import (
    build_cluster_sweep,
    build_dirty_bit_sweep,
    build_preventer_sweep,
    build_ssd_sweep,
    cluster_cell,
    dirty_bit_cell,
    preventer_cell,
    run_cluster_ablation,
    run_dirty_bit_ablation,
    run_preventer_param_ablation,
    run_ssd_ablation,
    ssd_cell,
)
from repro.experiments.chaos import build_chaos_sweep, chaos_cell, run_chaos
from repro.experiments.cluster import (
    build_cluster_exp_sweep,
    cluster_fleet_cell,
    run_cluster_experiment,
)
from repro.experiments.cluster_chaos import (
    build_cluster_chaos_sweep,
    cluster_chaos_cell,
    run_cluster_chaos_experiment,
)
from repro.experiments.dynamic import (
    build_fig04_sweep,
    build_fig14_sweep,
    dynamic_cell,
    run_fig04,
    run_fig14,
)
from repro.experiments.migration import (
    build_migration_sweep,
    migration_cell,
    run_migration_study,
)
from repro.experiments.fig05_11 import (
    build_fig05_fig11_sweep,
    fig05_fig11_cell,
    run_fig05_fig11,
)
from repro.experiments.fig09 import (
    build_fig03_sweep,
    build_fig09_sweep,
    fig09_cell,
    run_fig03,
    run_fig09,
)
from repro.experiments.fig10 import build_fig10_sweep, fig10_cell, run_fig10
from repro.experiments.fig12 import build_fig12_sweep, fig12_cell, run_fig12
from repro.experiments.fig13_15 import (
    build_fig13_sweep,
    build_fig15_sweep,
    fig13_cell,
    fig15_cell,
    run_fig13,
    run_fig15,
)
from repro.experiments.runner import FigureResult, RunResult
from repro.experiments.sec53 import build_sec53_sweep, run_sec53, sec53_cell
from repro.experiments.swaptier import (
    build_swaptier_sweep,
    run_swaptier,
    swaptier_cell,
)
from repro.experiments.sec54 import build_sec54_sweep, run_sec54, sec54_cell
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import build_table2_sweep, run_table2, table2_cell


@dataclass(frozen=True)
class ExperimentDef:
    """One CLI-visible experiment: metadata plus its harness."""

    experiment_id: str
    description: str
    harness: Callable[..., FigureResult]
    #: Declares the experiment's cells (``scale`` keyword); None for
    #: cell-less static results (Table 1).
    build_sweep: Callable[..., Sweep] | None = None
    #: Whether the harness accepts ``scale``.
    scaled: bool = True


#: Experiment id -> definition.  All harnesses accept ``scale``,
#: ``executor``, ``store``, and ``resume`` except Table 1 (pure static
#: analysis: no scale, no cells).
EXPERIMENTS: dict[str, ExperimentDef] = {
    "fig3": ExperimentDef(
        "fig3", "first-iteration sysbench read, four configs",
        run_fig03, build_fig03_sweep),
    "fig4": ExperimentDef(
        "fig4", "ten phased MapReduce guests, average completion time",
        run_fig04, build_fig04_sweep),
    "fig5": ExperimentDef(
        "fig5", "pbzip2 runtime vs shrinking memory grant",
        run_fig05_fig11, build_fig05_fig11_sweep),
    "fig9": ExperimentDef(
        "fig9", "anatomy of uncooperative swapping, per iteration",
        run_fig09, build_fig09_sweep),
    "fig10": ExperimentDef(
        "fig10", "false swap reads: allocate-after-read phase",
        run_fig10, build_fig10_sweep),
    "fig11": ExperimentDef(
        "fig11", "pbzip2 disk traffic vs shrinking memory grant",
        run_fig05_fig11, build_fig05_fig11_sweep),
    "fig12": ExperimentDef(
        "fig12", "Kernbench under memory pressure, preventer remaps",
        run_fig12, build_fig12_sweep),
    "fig13": ExperimentDef(
        "fig13", "Eclipse (DaCapo) runtime vs memory limit",
        run_fig13, build_fig13_sweep),
    "fig14": ExperimentDef(
        "fig14", "phased MapReduce guests vs guest count",
        run_fig14, build_fig14_sweep),
    "fig15": ExperimentDef(
        "fig15", "mapper-tracked pages vs guest page cache over time",
        run_fig15, build_fig15_sweep),
    "table1": ExperimentDef(
        "table1", "lines of code vs the paper's implementation",
        run_table1, None, scaled=False),
    "table2": ExperimentDef(
        "table2", "1GB read on the VMware-like profile",
        run_table2, build_table2_sweep),
    "sec5.3": ExperimentDef(
        "sec5.3", "VSwapper overheads at zero and light pressure",
        run_sec53, build_sec53_sweep),
    "sec5.4": ExperimentDef(
        "sec5.4", "Windows Server guest: sysbench and bzip2",
        run_sec54, build_sec54_sweep),
    "ablation-dirty-bit": ExperimentDef(
        "ablation-dirty-bit", "hardware dirty bit vs silent swap writes",
        run_dirty_bit_ablation, build_dirty_bit_sweep),
    "ablation-ssd": ExperimentDef(
        "ablation-ssd", "HDD vs SSD swap devices, baseline vs VSwapper",
        run_ssd_ablation, build_ssd_sweep),
    "ablation-preventer": ExperimentDef(
        "ablation-preventer", "Preventer window/page-cap sensitivity",
        run_preventer_param_ablation, build_preventer_sweep),
    "ablation-cluster": ExperimentDef(
        "ablation-cluster", "swap readahead cluster size vs decay",
        run_cluster_ablation, build_cluster_sweep),
    "migration-study": ExperimentDef(
        "migration-study", "live-migration traffic with Mapper knowledge",
        run_migration_study, build_migration_sweep),
    "cluster": ExperimentDef(
        "cluster", "four-node consolidation density vs per-guest slowdown",
        run_cluster_experiment, build_cluster_exp_sweep),
    "cluster-chaos": ExperimentDef(
        "cluster-chaos",
        "fleet survival and evacuation under injected host crashes",
        run_cluster_chaos_experiment, build_cluster_chaos_sweep),
    "chaos": ExperimentDef(
        "chaos", "five configs under deterministic fault injection",
        run_chaos, build_chaos_sweep),
    "swaptier": ExperimentDef(
        "swaptier",
        "root-cause counters per swap backend (ssd/nvme/zram/remote)",
        run_swaptier, build_swaptier_sweep),
}

#: Experiments whose harness takes no ``scale`` parameter.
UNSCALED = frozenset(
    def_.experiment_id for def_ in EXPERIMENTS.values() if not def_.scaled)

#: Sweep harness id (``CellSpec.experiment_id``) -> cell runner.  Keys
#: are *harness* ids, not CLI ids: shared sweeps appear once.
CELL_RUNNERS: dict[str, Callable[[CellSpec], RunResult]] = {
    "fig09": fig09_cell,
    "fig05+fig11": fig05_fig11_cell,
    "fig10": fig10_cell,
    "fig12": fig12_cell,
    "fig13": fig13_cell,
    "fig15": fig15_cell,
    "dynamic": dynamic_cell,
    "table2": table2_cell,
    "sec53": sec53_cell,
    "sec54": sec54_cell,
    "ablation-dirty-bit": dirty_bit_cell,
    "ablation-ssd": ssd_cell,
    "ablation-preventer": preventer_cell,
    "ablation-cluster": cluster_cell,
    "migration-study": migration_cell,
    "chaos": chaos_cell,
    "cluster": cluster_fleet_cell,
    "cluster-chaos": cluster_chaos_cell,
    "swaptier": swaptier_cell,
}


def cell_runner(harness_id: str) -> Callable[[CellSpec], RunResult]:
    """Resolve the cell runner for one sweep harness id."""
    try:
        return CELL_RUNNERS[harness_id]
    except KeyError:
        known = ", ".join(sorted(CELL_RUNNERS))
        raise ExperimentError(
            f"no cell runner for harness {harness_id!r}; known: {known}"
        ) from None


def register_cell_runner(harness_id: str,
                         runner: Callable[[CellSpec], RunResult],
                         ) -> Callable[[CellSpec], RunResult]:
    """Register an extra cell runner (supervisor tests install runners
    that hang or kill their worker; forked workers inherit the entry).

    Refuses to shadow a real harness: tests must pick fresh ids and
    remove them again with :func:`unregister_cell_runner`.
    """
    if harness_id in CELL_RUNNERS:
        raise ExperimentError(
            f"cell runner {harness_id!r} is already registered")
    CELL_RUNNERS[harness_id] = runner
    return runner


def unregister_cell_runner(harness_id: str) -> None:
    """Remove a runner added by :func:`register_cell_runner`."""
    CELL_RUNNERS.pop(harness_id, None)


def _lookup(experiment_id: str) -> ExperimentDef:
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def run_experiment(experiment_id: str, *, scale: int = 1,
                   executor=None, store=None,
                   resume: bool = False) -> FigureResult:
    """Run one experiment by id."""
    definition = _lookup(experiment_id)
    kwargs: dict = {"executor": executor, "store": store, "resume": resume}
    if definition.scaled:
        kwargs["scale"] = scale
    else:
        # Cell-less harness: nothing to execute or resume.
        kwargs = {"store": store}
    return definition.harness(**kwargs)


def experiment_ids() -> list[str]:
    """All known experiment ids, sorted."""
    return sorted(EXPERIMENTS)


def describe(experiment_id: str) -> str:
    """One-line description for the CLI listing."""
    return _lookup(experiment_id).description


def cell_count(experiment_id: str, *, scale: int = 1) -> int:
    """Number of cells the experiment declares at ``scale``."""
    definition = _lookup(experiment_id)
    if definition.build_sweep is None:
        return 0
    return len(definition.build_sweep(scale=scale))
