"""Registry mapping experiment ids to their harness functions.

The CLI and the benchmark suite both resolve experiments through this
table, so the set of reproducible results lives in exactly one place.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ExperimentError
from repro.experiments.ablations import (
    run_cluster_ablation,
    run_dirty_bit_ablation,
    run_preventer_param_ablation,
    run_ssd_ablation,
)
from repro.experiments.chaos import run_chaos
from repro.experiments.dynamic import run_fig04, run_fig14
from repro.experiments.migration import run_migration_study
from repro.experiments.fig05_11 import run_fig05_fig11
from repro.experiments.fig09 import run_fig03, run_fig09
from repro.experiments.fig10 import run_fig10
from repro.experiments.fig12 import run_fig12
from repro.experiments.fig13_15 import run_fig13, run_fig15
from repro.experiments.runner import FigureResult
from repro.experiments.sec53 import run_sec53
from repro.experiments.sec54 import run_sec54
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2

#: Experiment id -> harness.  All harnesses accept ``scale`` except
#: Table 1 (pure static analysis).
EXPERIMENTS: dict[str, Callable[..., FigureResult]] = {
    "fig3": run_fig03,
    "fig4": run_fig04,
    "fig5": run_fig05_fig11,   # Figure 5 and Figure 11 share a run
    "fig9": run_fig09,
    "fig10": run_fig10,
    "fig11": run_fig05_fig11,
    "fig12": run_fig12,
    "fig13": run_fig13,
    "fig14": run_fig14,
    "fig15": run_fig15,
    "table1": run_table1,
    "table2": run_table2,
    "sec5.3": run_sec53,
    "sec5.4": run_sec54,
    "ablation-dirty-bit": run_dirty_bit_ablation,
    "ablation-ssd": run_ssd_ablation,
    "ablation-preventer": run_preventer_param_ablation,
    "ablation-cluster": run_cluster_ablation,
    "migration-study": run_migration_study,
    "chaos": run_chaos,
}

#: Experiments whose harness takes no ``scale`` parameter.
UNSCALED = frozenset({"table1"})


def run_experiment(experiment_id: str, *, scale: int = 1) -> FigureResult:
    """Run one experiment by id."""
    try:
        harness = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None
    if experiment_id in UNSCALED:
        return harness()
    return harness(scale=scale)


def experiment_ids() -> list[str]:
    """All known experiment ids, sorted."""
    return sorted(EXPERIMENTS)
