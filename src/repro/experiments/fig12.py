"""Figure 12: Kernbench -- kernel compilation under memory pressure.

The paper reproduces a VMware white-paper experiment: building Linux in
a 512 MB guest granted only 192 MB slows baseline swapping by ~15 % and
ballooning by ~4-5 %.  Panel (b) counts the Preventer's remaps: the
compile farm's process churn recycles host-swapped frames, and each
whole-page overwrite the Preventer catches saves a false read (up to
~80 K on the paper's testbed).

Series are keyed ``series[config][str(actual_mib)]`` (JSON-safe).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.config import MachineConfig
from repro.exec.executor import finish_figure, run_sweep
from repro.exec.spec import CellSpec, Sweep, fault_params
from repro.experiments.runner import (
    ConfigName,
    FigureResult,
    RunResult,
    SingleVmExperiment,
    scaled_guest_config,
    standard_configs,
)
from repro.metrics.report import Table
from repro.units import mib_pages
from repro.workloads.kernbench import Kernbench

FIG12_CONFIGS = (
    ConfigName.BASELINE,
    ConfigName.MAPPER,
    ConfigName.VSWAPPER,
    ConfigName.BALLOON_BASELINE,
)

#: The paper's X axis (MiB of actual memory), 512 down to 192.
DEFAULT_MEMORY_SWEEP = (512, 448, 384, 320, 256, 192)


def make_kernbench(scale: int) -> Kernbench:
    """A Kernbench instance sized for ``scale``."""
    return Kernbench(
        compile_units=max(8, 2400 // scale),
        unit_working_set_pages=mib_pages(8 / scale),
        source_pages=mib_pages(480 / scale),
        min_resident_pages=mib_pages(96 / scale),
    )


def build_fig12_sweep(
    *,
    scale: int = 1,
    memory_sweep_mib: Sequence[int] = DEFAULT_MEMORY_SWEEP,
    config_names: Sequence[ConfigName] = FIG12_CONFIGS,
) -> Sweep:
    """Declare the grid: configuration x actual-memory grant."""
    faults = fault_params()
    cells = tuple(
        CellSpec(
            experiment_id="fig12",
            cell_id=f"{spec.name.value}@{actual_mib}MiB",
            scale=scale,
            config=spec.name.value,
            params={"actual_mib": actual_mib},
            faults=faults,
        )
        for spec in standard_configs(config_names)
        for actual_mib in memory_sweep_mib)
    return Sweep("fig12", cells)


def fig12_cell(spec: CellSpec) -> RunResult:
    """Run Kernbench under one (configuration, grant) cell."""
    scale = spec.scale
    actual_mib = spec.params["actual_mib"]
    workload_probe = make_kernbench(scale)
    experiment = SingleVmExperiment(
        guest_mib=512 / scale,
        actual_mib=actual_mib / scale,
        machine_config=MachineConfig(seed=spec.seed),
        guest_config=scaled_guest_config(512, scale),
        files=[
            ("kernel-src", workload_probe.source_pages),
            ("kernel-obj", workload_probe.object_file_pages()),
        ],
    )
    config = standard_configs([ConfigName(spec.config)])[0]
    return experiment.run(config, make_kernbench(scale))


def assemble_fig12(sweep: Sweep,
                   results: Mapping[str, RunResult]) -> FigureResult:
    """Build Figure 12's panels (a) and (b) from cells."""
    scale = sweep.cells[0].scale
    series: dict = {}
    for cell in sweep.cells:
        result = results[cell.cell_id]
        series.setdefault(cell.config, {})[str(cell.params["actual_mib"])] = {
            "runtime": result.runtime,
            "crashed": result.crashed,
            "preventer_remaps": result.counters.get("preventer_remaps"),
            "false_reads": result.counters.get("false_reads"),
            "guest_faults": result.counters.get("guest_context_faults"),
        }

    table = Table(
        f"Figure 12 (scale=1/{scale}): Kernbench vs actual memory "
        f"(guest believes 512MB)",
        ["config", "memory [MiB]", "runtime [s]", "preventer remaps",
         "false reads"],
    )
    for config, by_memory in series.items():
        for actual_mib, row in by_memory.items():
            if row["crashed"]:
                table.add_row(config, actual_mib, "killed (OOM)", "-", "-")
            else:
                table.add_row(config, actual_mib, round(row["runtime"], 1),
                              row["preventer_remaps"], row["false_reads"])
    return FigureResult("fig12", series, table.render())


def run_fig12(
    *,
    scale: int = 1,
    memory_sweep_mib: Sequence[int] = DEFAULT_MEMORY_SWEEP,
    config_names: Sequence[ConfigName] = FIG12_CONFIGS,
    executor=None, store=None, resume: bool = False,
) -> FigureResult:
    """Regenerate Figure 12: runtime (a) and preventer remaps (b)."""
    sweep = build_fig12_sweep(
        scale=scale, memory_sweep_mib=memory_sweep_mib,
        config_names=config_names)
    outcome = run_sweep(sweep, executor=executor, store=store,
                        resume=resume)
    return finish_figure(
        assemble_fig12(sweep, outcome.results), outcome, store)
