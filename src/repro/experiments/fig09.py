"""Figure 9: the anatomy of uncooperative swapping.

Sysbench iteratively reads a 200 MB file inside a guest that believes
it has 512 MB but actually has 100 MB.  Four panels per iteration:

(a) runtime -- baseline is U-shaped (stale reads dominate iteration 1,
    decayed sequentiality grows the tail), VSwapper stays flat;
(b) host-context page faults -- stale reads in iteration 1, false page
    anonymity (QEMU code refaults) afterwards;
(c) guest-context page faults -- grows with decayed sequentiality;
(d) sectors written to the host swap area -- silent swap writes,
    roughly constant per iteration for the baseline.

Figure 3 is this experiment's first iteration, so :func:`run_fig03`
reuses the same harness.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.runner import (
    ConfigName,
    FigureResult,
    SingleVmExperiment,
    scaled_guest_config,
    standard_configs,
)
from repro.metrics.report import Table
from repro.units import mib_pages
from repro.workloads.sysbench import SysbenchFileRead

#: Figure 9 plots baseline, vswapper, and balloon+baseline.
FIG09_CONFIGS = (
    ConfigName.BASELINE,
    ConfigName.VSWAPPER,
    ConfigName.BALLOON_BASELINE,
)

#: Figure 3 adds the combined configuration.
FIG03_CONFIGS = (
    ConfigName.BASELINE,
    ConfigName.BALLOON_BASELINE,
    ConfigName.VSWAPPER,
    ConfigName.BALLOON_VSWAPPER,
)


def run_fig09(*, scale: int = 1, iterations: int = 8,
              config_names: Sequence[ConfigName] = FIG09_CONFIGS,
              ) -> FigureResult:
    """Regenerate Figure 9's four panels."""
    experiment = SingleVmExperiment(
        guest_mib=512 / scale,
        actual_mib=100 / scale,
        guest_config=scaled_guest_config(512, scale),
        files=[("sysbench.dat", mib_pages(200 / scale))],
    )
    series: dict = {}
    for spec in standard_configs(config_names):
        workload = SysbenchFileRead(
            file_pages=mib_pages(200 / scale), iterations=iterations)
        result = experiment.run(spec, workload)
        series[spec.name.value] = {
            "runtime": result.iteration_durations(),
            "host_faults": result.iteration_counter_deltas(
                "host_context_faults"),
            "guest_faults": result.iteration_counter_deltas(
                "guest_context_faults"),
            "swap_sectors_written": result.iteration_counter_deltas(
                "swap_sectors_written"),
            "stale_reads": result.iteration_counter_deltas("stale_reads"),
            "status": result.status,
        }

    table = Table(
        f"Figure 9 (scale=1/{scale}): sysbench iterative 200MB read, "
        f"100MB actual",
        ["config", "iter", "runtime[s]", "host faults", "guest faults",
         "swap sectors written"],
    )
    for config, panels in series.items():
        completed = len(panels["runtime"])
        for i in range(completed):
            table.add_row(
                config, i + 1,
                round(panels["runtime"][i], 2),
                panels["host_faults"][i],
                panels["guest_faults"][i],
                panels["swap_sectors_written"][i],
            )
        if completed < iterations:
            # A fault-induced crash cut the run short (see RunResult
            # .crash_reason); render the missing tail as one marker row.
            table.add_row(config, f"{completed + 1}+", panels["status"],
                          "-", "-", "-")
    return FigureResult("fig09", series, table.render())


def run_fig03(*, scale: int = 1) -> FigureResult:
    """Regenerate Figure 3: first-iteration read time, four configs."""
    experiment = SingleVmExperiment(
        guest_mib=512 / scale,
        actual_mib=100 / scale,
        guest_config=scaled_guest_config(512, scale),
        files=[("sysbench.dat", mib_pages(200 / scale))],
    )
    series: dict = {}
    for spec in standard_configs(FIG03_CONFIGS):
        workload = SysbenchFileRead(
            file_pages=mib_pages(200 / scale), iterations=1)
        result = experiment.run(spec, workload)
        durations = result.iteration_durations()
        series[spec.name.value] = durations[0] if durations else None

    table = Table(
        f"Figure 3 (scale=1/{scale}): time to sequentially read a 200MB "
        f"file (512MB believed, 100MB actual)",
        ["config", "runtime [s]"],
    )
    for config, runtime in series.items():
        table.add_row(config, "crashed" if runtime is None
                      else round(runtime, 2))
    return FigureResult("fig03", series, table.render())
