"""Figure 9: the anatomy of uncooperative swapping.

Sysbench iteratively reads a 200 MB file inside a guest that believes
it has 512 MB but actually has 100 MB.  Four panels per iteration:

(a) runtime -- baseline is U-shaped (stale reads dominate iteration 1,
    decayed sequentiality grows the tail), VSwapper stays flat;
(b) host-context page faults -- stale reads in iteration 1, false page
    anonymity (QEMU code refaults) afterwards;
(c) guest-context page faults -- grows with decayed sequentiality;
(d) sectors written to the host swap area -- silent swap writes,
    roughly constant per iteration for the baseline.

Figure 3 is this experiment's first iteration, so both figures share
one cell runner: each declares a :class:`~repro.exec.spec.Sweep` of
one cell per configuration and assembles its table from the cells.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.config import MachineConfig
from repro.exec.executor import finish_figure, run_sweep
from repro.exec.spec import CellSpec, Sweep, fault_params, sweep_from_configs
from repro.experiments.runner import (
    ConfigName,
    FigureResult,
    RunResult,
    SingleVmExperiment,
    scaled_guest_config,
    standard_configs,
)
from repro.metrics.report import Table
from repro.units import mib_pages
from repro.workloads.sysbench import SysbenchFileRead

#: Figure 9 plots baseline, vswapper, and balloon+baseline.
FIG09_CONFIGS = (
    ConfigName.BASELINE,
    ConfigName.VSWAPPER,
    ConfigName.BALLOON_BASELINE,
)

#: Figure 3 adds the combined configuration.
FIG03_CONFIGS = (
    ConfigName.BASELINE,
    ConfigName.BALLOON_BASELINE,
    ConfigName.VSWAPPER,
    ConfigName.BALLOON_VSWAPPER,
)


def build_fig09_sweep(*, scale: int = 1, iterations: int = 8,
                      config_names: Sequence[ConfigName] = FIG09_CONFIGS,
                      ) -> Sweep:
    """Declare Figure 9's grid: one cell per configuration."""
    return sweep_from_configs(
        "fig09", config_names, scale=scale,
        params={"iterations": iterations}, faults=fault_params())


def build_fig03_sweep(*, scale: int = 1) -> Sweep:
    """Declare Figure 3's grid: four configs, one iteration each."""
    return sweep_from_configs(
        "fig09", FIG03_CONFIGS, scale=scale,
        params={"iterations": 1}, faults=fault_params())


def fig09_cell(spec: CellSpec) -> RunResult:
    """Run one (configuration, iterations) cell of Figure 9/Figure 3."""
    scale = spec.scale
    experiment = SingleVmExperiment(
        guest_mib=512 / scale,
        actual_mib=100 / scale,
        machine_config=MachineConfig(seed=spec.seed),
        guest_config=scaled_guest_config(512, scale),
        files=[("sysbench.dat", mib_pages(200 / scale))],
    )
    config = standard_configs([ConfigName(spec.config)])[0]
    workload = SysbenchFileRead(
        file_pages=mib_pages(200 / scale),
        iterations=spec.params["iterations"])
    return experiment.run(config, workload)


def assemble_fig09(sweep: Sweep,
                   results: Mapping[str, RunResult]) -> FigureResult:
    """Build Figure 9's four panels from executed cells."""
    scale = sweep.cells[0].scale
    iterations = sweep.cells[0].params["iterations"]
    series: dict = {}
    for cell in sweep.cells:
        result = results[cell.cell_id]
        series[cell.config] = {
            "runtime": result.iteration_durations(),
            "host_faults": result.iteration_counter_deltas(
                "host_context_faults"),
            "guest_faults": result.iteration_counter_deltas(
                "guest_context_faults"),
            "swap_sectors_written": result.iteration_counter_deltas(
                "swap_sectors_written"),
            "stale_reads": result.iteration_counter_deltas("stale_reads"),
            "status": result.status,
        }

    table = Table(
        f"Figure 9 (scale=1/{scale}): sysbench iterative 200MB read, "
        f"100MB actual",
        ["config", "iter", "runtime[s]", "host faults", "guest faults",
         "swap sectors written"],
    )
    for config, panels in series.items():
        completed = len(panels["runtime"])
        for i in range(completed):
            table.add_row(
                config, i + 1,
                round(panels["runtime"][i], 2),
                panels["host_faults"][i],
                panels["guest_faults"][i],
                panels["swap_sectors_written"][i],
            )
        if completed < iterations:
            # A fault-induced crash cut the run short (see RunResult
            # .crash_reason); render the missing tail as one marker row.
            table.add_row(config, f"{completed + 1}+", panels["status"],
                          "-", "-", "-")
    return FigureResult("fig09", series, table.render())


def assemble_fig03(sweep: Sweep,
                   results: Mapping[str, RunResult]) -> FigureResult:
    """Build Figure 3's single-bar-per-config table from cells."""
    scale = sweep.cells[0].scale
    series: dict = {}
    for cell in sweep.cells:
        durations = results[cell.cell_id].iteration_durations()
        series[cell.config] = durations[0] if durations else None

    table = Table(
        f"Figure 3 (scale=1/{scale}): time to sequentially read a 200MB "
        f"file (512MB believed, 100MB actual)",
        ["config", "runtime [s]"],
    )
    for config, runtime in series.items():
        table.add_row(config, "crashed" if runtime is None
                      else round(runtime, 2))
    return FigureResult("fig03", series, table.render())


def run_fig09(*, scale: int = 1, iterations: int = 8,
              config_names: Sequence[ConfigName] = FIG09_CONFIGS,
              executor=None, store=None, resume: bool = False,
              ) -> FigureResult:
    """Regenerate Figure 9's four panels."""
    sweep = build_fig09_sweep(
        scale=scale, iterations=iterations, config_names=config_names)
    outcome = run_sweep(sweep, executor=executor, store=store,
                        resume=resume)
    return finish_figure(
        assemble_fig09(sweep, outcome.results), outcome, store)


def run_fig03(*, scale: int = 1, executor=None, store=None,
              resume: bool = False) -> FigureResult:
    """Regenerate Figure 3: first-iteration read time, four configs."""
    sweep = build_fig03_sweep(scale=scale)
    outcome = run_sweep(sweep, executor=executor, store=store,
                        resume=resume)
    return finish_figure(
        assemble_fig03(sweep, outcome.results), outcome, store)
