"""Experiment harnesses: one module per paper table/figure.

Every experiment returns an :class:`repro.experiments.runner.FigureResult`
holding raw series plus a rendered :class:`repro.metrics.report.Table`,
so the benchmark suite and the CLI can both regenerate the paper's
evaluation.  The per-experiment index lives in DESIGN.md Section 4.
"""

from repro.experiments.runner import (
    ConfigName,
    FigureResult,
    RunResult,
    SingleVmExperiment,
    standard_configs,
)

__all__ = [
    "ConfigName",
    "FigureResult",
    "RunResult",
    "SingleVmExperiment",
    "standard_configs",
]
