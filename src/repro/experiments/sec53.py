"""Section 5.3: VSwapper's overheads and limitations.

Two measurements:

* **Zero pressure** (full grant): VSwapper's pure overhead -- the
  mmap-based I/O interposition and COW exits.  The paper reports up to
  3.5 % slowdown and <= 14 MB of Mapper metadata.
* **Light pressure** (grant a few percent under the guest's footprint):
  reclaim runs without real swapping, exposing scan-length differences
  (the paper observes the Mapper up to doubling clock traversals).

The sweep is a 2x2 grid: pressure level x {baseline, vswapper}.
"""

from __future__ import annotations

from typing import Mapping

from repro.config import MachineConfig
from repro.exec.executor import finish_figure, run_sweep
from repro.exec.spec import CellSpec, Sweep, fault_params
from repro.experiments.runner import (
    ConfigName,
    FigureResult,
    RunResult,
    SingleVmExperiment,
    scaled_guest_config,
    standard_configs,
)
from repro.metrics.report import Table
from repro.units import MIB, mib_pages
from repro.workloads.pbzip import PbzipCompress

#: Pressure label -> actual-memory grant (MiB).
SEC53_PRESSURES = (("zero", 512), ("light", 480))

SEC53_CONFIGS = (ConfigName.BASELINE, ConfigName.VSWAPPER)


def build_sec53_sweep(*, scale: int = 1) -> Sweep:
    """Declare the 2x2 grid: pressure level x configuration."""
    faults = fault_params()
    cells = tuple(
        CellSpec(
            experiment_id="sec53",
            cell_id=f"{name.value}@{pressure}",
            scale=scale,
            config=name.value,
            params={"actual_mib": actual_mib, "pressure": pressure},
            faults=faults,
        )
        for pressure, actual_mib in SEC53_PRESSURES
        for name in SEC53_CONFIGS)
    return Sweep("sec53", cells)


def sec53_cell(spec: CellSpec) -> RunResult:
    """Run pbzip2 under one (pressure, configuration) cell."""
    scale = spec.scale
    experiment = SingleVmExperiment(
        guest_mib=512 / scale,
        actual_mib=spec.params["actual_mib"] / scale,
        machine_config=MachineConfig(seed=spec.seed),
        guest_config=scaled_guest_config(512, scale),
        files=[
            ("pbzip-input", mib_pages(800 / scale)),
            ("pbzip-output", mib_pages(220 / scale)),
        ],
    )
    config = standard_configs([ConfigName(spec.config)])[0]
    workload = PbzipCompress(
        input_pages=mib_pages(800 / scale),
        min_resident_pages=mib_pages(220 / scale),
    )
    return experiment.run(config, workload)


def assemble_sec53(sweep: Sweep,
                   results: Mapping[str, RunResult]) -> FigureResult:
    """Build the Section 5.3 overhead table from cells."""
    scale = sweep.cells[0].scale
    by_cell = {
        (cell.params["pressure"], cell.config): results[cell.cell_id]
        for cell in sweep.cells
    }
    zbase = by_cell[("zero", ConfigName.BASELINE.value)]
    zvsw = by_cell[("zero", ConfigName.VSWAPPER.value)]
    lbase = by_cell[("light", ConfigName.BASELINE.value)]
    lvsw = by_cell[("light", ConfigName.VSWAPPER.value)]

    slowdown = zvsw.runtime / zbase.runtime
    metadata_mib = zvsw.counters.get("mapper_tracked_peak", 0) * 200 / MIB
    scan_ratio = (
        lvsw.counters.get("pages_scanned", 0)
        / max(1, lbase.counters.get("pages_scanned", 0)))

    table = Table(
        f"Section 5.3 (scale=1/{scale}): VSwapper overheads",
        ["metric", "paper", "this repro"],
    )
    table.add_row("zero-pressure slowdown", "<= 1.035x", f"{slowdown:.3f}x")
    table.add_row("mapper metadata", "<= 14 MB",
                  f"{metadata_mib:.1f} MB (peak tracked x 200B)")
    table.add_row("COW break exits (zero pressure)", "-",
                  zvsw.counters.get("mapper_cow_breaks", 0))
    table.add_row("light-pressure scan ratio (vswapper/baseline)",
                  "up to 2x", f"{scan_ratio:.2f}x")
    table.add_row("light-pressure pages scanned (baseline)", "-",
                  lbase.counters.get("pages_scanned", 0))
    table.add_row("light-pressure pages scanned (vswapper)", "-",
                  lvsw.counters.get("pages_scanned", 0))
    series = {
        "slowdown": slowdown,
        "metadata_mib": metadata_mib,
        "scan_ratio": scan_ratio,
        "zero_baseline_runtime": zbase.runtime,
        "zero_vswapper_runtime": zvsw.runtime,
        "light_baseline_scanned": lbase.counters.get("pages_scanned", 0),
        "light_vswapper_scanned": lvsw.counters.get("pages_scanned", 0),
    }
    return FigureResult("sec5.3", series, table.render())


def run_sec53(*, scale: int = 1, executor=None, store=None,
              resume: bool = False) -> FigureResult:
    """Measure VSwapper's overheads (Section 5.3)."""
    sweep = build_sec53_sweep(scale=scale)
    outcome = run_sweep(sweep, executor=executor, store=store,
                        resume=resume)
    return finish_figure(
        assemble_sec53(sweep, outcome.results), outcome, store)
