"""Section 5.3: VSwapper's overheads and limitations.

Two measurements:

* **Zero pressure** (full grant): VSwapper's pure overhead -- the
  mmap-based I/O interposition and COW exits.  The paper reports up to
  3.5 % slowdown and <= 14 MB of Mapper metadata.
* **Light pressure** (grant a few percent under the guest's footprint):
  reclaim runs without real swapping, exposing scan-length differences
  (the paper observes the Mapper up to doubling clock traversals).
"""

from __future__ import annotations

from repro.experiments.runner import (
    ConfigName,
    FigureResult,
    SingleVmExperiment,
    scaled_guest_config,
    standard_configs,
)
from repro.metrics.report import Table
from repro.units import MIB, mib_pages
from repro.workloads.pbzip import PbzipCompress


def _run_pair(scale: int, actual_mib: float) -> dict[str, object]:
    experiment = SingleVmExperiment(
        guest_mib=512 / scale,
        actual_mib=actual_mib / scale,
        guest_config=scaled_guest_config(512, scale),
        files=[
            ("pbzip-input", mib_pages(800 / scale)),
            ("pbzip-output", mib_pages(220 / scale)),
        ],
    )
    results = {}
    for name in (ConfigName.BASELINE, ConfigName.VSWAPPER):
        spec = standard_configs([name])[0]
        workload = PbzipCompress(
            input_pages=mib_pages(800 / scale),
            min_resident_pages=mib_pages(220 / scale),
        )
        results[name.value] = experiment.run(spec, workload)
    return results


def run_sec53(*, scale: int = 1) -> FigureResult:
    """Measure VSwapper's overheads (Section 5.3)."""
    # Zero pressure: the full grant, no host reclaim at all.
    zero = _run_pair(scale, 512)
    # Light pressure: a grant a few percent under the footprint.
    light = _run_pair(scale, 480)

    zbase = zero[ConfigName.BASELINE.value]
    zvsw = zero[ConfigName.VSWAPPER.value]
    lbase = light[ConfigName.BASELINE.value]
    lvsw = light[ConfigName.VSWAPPER.value]

    slowdown = zvsw.runtime / zbase.runtime
    metadata_mib = zvsw.counters.get("mapper_tracked_peak", 0) * 200 / MIB
    scan_ratio = (
        lvsw.counters.get("pages_scanned", 0)
        / max(1, lbase.counters.get("pages_scanned", 0)))

    table = Table(
        f"Section 5.3 (scale=1/{scale}): VSwapper overheads",
        ["metric", "paper", "this repro"],
    )
    table.add_row("zero-pressure slowdown", "<= 1.035x", f"{slowdown:.3f}x")
    table.add_row("mapper metadata", "<= 14 MB",
                  f"{metadata_mib:.1f} MB (peak tracked x 200B)")
    table.add_row("COW break exits (zero pressure)", "-",
                  zvsw.counters.get("mapper_cow_breaks", 0))
    table.add_row("light-pressure scan ratio (vswapper/baseline)",
                  "up to 2x", f"{scan_ratio:.2f}x")
    table.add_row("light-pressure pages scanned (baseline)", "-",
                  lbase.counters.get("pages_scanned", 0))
    table.add_row("light-pressure pages scanned (vswapper)", "-",
                  lvsw.counters.get("pages_scanned", 0))
    series = {
        "slowdown": slowdown,
        "metadata_mib": metadata_mib,
        "scan_ratio": scan_ratio,
        "zero_baseline_runtime": zbase.runtime,
        "zero_vswapper_runtime": zvsw.runtime,
        "light_baseline_scanned": lbase.counters.get("pages_scanned", 0),
        "light_vswapper_scanned": lvsw.counters.get("pages_scanned", 0),
    }
    return FigureResult("sec5.3", series, table.render())
