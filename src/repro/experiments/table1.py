"""Table 1: lines of code of VSwapper's components.

The paper reports the size of the real implementation (Mapper 409
lines, Preventer 1,974, total 2,383, split between QEMU userspace and
the kernel).  We reproduce the table by counting the lines of our own
implementation of each component next to the paper's numbers -- the
honest equivalent for a simulation-based reproduction.
"""

from __future__ import annotations

from pathlib import Path

from repro.exec.executor import finish_figure
from repro.experiments.runner import FigureResult
from repro.metrics.report import Table

#: The paper's Table 1 (component -> (user, kernel, sum)).
PAPER_LOC = {
    "Mapper": (174, 235, 409),
    "Preventer": (10, 1964, 1974),
    "sum": (184, 2199, 2383),
}

#: Our implementation files per component.  The hypervisor integration
#: (the "kernel side") is shared, so it is attributed by the paper's
#: own split: the Preventer's logic lives mostly host-side.
COMPONENT_FILES = {
    "Mapper": ["core/mapper.py"],
    "Preventer": ["core/preventer.py"],
    "shared facade": ["core/vswapper.py", "core/__init__.py"],
}


def count_loc(path: Path) -> int:
    """Non-blank, non-comment-only source lines in ``path``."""
    lines = 0
    for raw in path.read_text().splitlines():
        stripped = raw.strip()
        if stripped and not stripped.startswith("#"):
            lines += 1
    return lines


def run_table1(*, executor=None, store=None,
               resume: bool = False) -> FigureResult:
    """Regenerate Table 1: paper LoC next to this reproduction's LoC.

    Pure static analysis: there is no sweep to execute or cache, so
    ``executor`` and ``resume`` are accepted for interface uniformity
    and ignored; a ``store`` still receives the rendered figure.
    """
    package_root = Path(__file__).resolve().parent.parent
    ours: dict[str, int] = {}
    for component, files in COMPONENT_FILES.items():
        ours[component] = sum(
            count_loc(package_root / rel) for rel in files)
    ours["sum"] = sum(ours.values())

    table = Table(
        "Table 1: VSwapper lines of code (paper) vs this reproduction",
        ["component", "paper user", "paper kernel", "paper sum",
         "repro LoC"],
    )
    for component in ("Mapper", "Preventer"):
        user, kernel, total = PAPER_LOC[component]
        table.add_row(component, user, kernel, total, ours[component])
    table.add_row("shared facade", "-", "-", "-", ours["shared facade"])
    user, kernel, total = PAPER_LOC["sum"]
    table.add_row("sum", user, kernel, total, ours["sum"])
    # JSON-safe series: the paper's (user, kernel, sum) tuples as lists.
    series = {
        "paper": {name: list(loc) for name, loc in PAPER_LOC.items()},
        "repro": ours,
    }
    return finish_figure(
        FigureResult("table1", series, table.render()), None, store)
