"""Live-migration traffic study (the paper's Section 7 future work).

Runs a file-heavy workload to a steady state, then asks the
:class:`repro.core.migration.MigrationPlanner` how many bytes a live
migration would move with and without Mapper knowledge.
"""

from __future__ import annotations

from repro.core.migration import MigrationPlanner
from repro.experiments.runner import (
    ConfigName,
    FigureResult,
    scaled_guest_config,
    standard_configs,
)
from repro.config import MachineConfig, VmConfig
from repro.driver import VmDriver
from repro.machine import Machine
from repro.metrics.report import Table
from repro.units import MIB, mib_pages
from repro.workloads.sysbench import SysbenchFileRead


def run_migration_study(*, scale: int = 1) -> FigureResult:
    """Estimate migration traffic for baseline vs Mapper knowledge."""
    rows: dict = {}
    planner = MigrationPlanner()
    for spec in standard_configs(
            (ConfigName.BASELINE, ConfigName.VSWAPPER)):
        machine = Machine(MachineConfig())
        vm = machine.create_vm(VmConfig(
            name="migrant",
            guest=scaled_guest_config(512, scale),
            vswapper=spec.vswapper,
            resident_limit_pages=mib_pages(256 / scale),
        ))
        machine.boot_guest(vm)
        vm.guest.fs.create_file(
            "sysbench.dat", mib_pages(300 / scale))
        driver = VmDriver(machine, vm, SysbenchFileRead(
            file_pages=mib_pages(300 / scale), iterations=2))
        machine.run()
        assert driver.done
        plan = planner.plan(vm)
        rows[spec.name.value] = {
            "plan": plan,
            "baseline_mib": plan.baseline_bytes / MIB,
            "vswapper_mib": plan.vswapper_bytes / MIB,
            "savings": plan.savings_fraction,
        }

    table = Table(
        f"Live migration study (scale=1/{scale}): traffic to move the "
        f"guest after a file-heavy run (paper Sec. 7)",
        ["source config", "baseline transfer [MiB]",
         "mapping-aware transfer [MiB]", "savings"],
    )
    for config, row in rows.items():
        table.add_row(config, round(row["baseline_mib"], 1),
                      round(row["vswapper_mib"], 1),
                      f"{row['savings'] * 100:.0f}%")
    return FigureResult("migration-study", rows, table.render())
