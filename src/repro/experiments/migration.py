"""Live-migration traffic study (the paper's Section 7 future work).

Runs a file-heavy workload to a steady state, then asks the
:class:`repro.core.migration.MigrationPlanner` how many bytes a live
migration would move with and without Mapper knowledge.

Each cell records the planner's raw page counts as integer counters
(``migration_*_pages``); the figure derives byte totals and savings
from them, so the persisted cell stays pure JSON.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.migration import MigrationPlan, MigrationPlanner
from repro.exec.executor import finish_figure, run_sweep
from repro.exec.spec import CellSpec, Sweep, fault_params
from repro.experiments.runner import (
    ConfigName,
    FigureResult,
    RunResult,
    scaled_guest_config,
    standard_configs,
)
from repro.config import MachineConfig, VmConfig
from repro.driver import VmDriver
from repro.machine import Machine
from repro.metrics.report import Table
from repro.units import MIB, mib_pages
from repro.workloads.sysbench import SysbenchFileRead

MIGRATION_CONFIGS = (ConfigName.BASELINE, ConfigName.VSWAPPER)

#: MigrationPlan field -> counter name, in dataclass order.
_PLAN_COUNTERS = {
    "private_pages": "migration_private_pages",
    "mapped_pages": "migration_mapped_pages",
    "discarded_pages": "migration_discarded_pages",
    "swapped_private_pages": "migration_swapped_private_pages",
    "zero_pages": "migration_zero_pages",
}


def build_migration_sweep(*, scale: int = 1) -> Sweep:
    """Declare the migration study: one cell per source config."""
    faults = fault_params()
    cells = tuple(
        CellSpec(
            experiment_id="migration-study",
            cell_id=name.value,
            scale=scale,
            config=name.value,
            faults=faults,
        )
        for name in MIGRATION_CONFIGS)
    return Sweep("migration-study", cells)


def migration_cell(spec: CellSpec) -> RunResult:
    """Run the source workload and snapshot the migration plan."""
    scale = spec.scale
    config = standard_configs([ConfigName(spec.config)])[0]
    machine = Machine(MachineConfig(seed=spec.seed))
    vm = machine.create_vm(VmConfig(
        name="migrant",
        guest=scaled_guest_config(512, scale),
        vswapper=config.vswapper,
        resident_limit_pages=mib_pages(256 / scale),
    ))
    machine.boot_guest(vm)
    vm.guest.fs.create_file("sysbench.dat", mib_pages(300 / scale))
    driver = VmDriver(machine, vm, SysbenchFileRead(
        file_pages=mib_pages(300 / scale), iterations=2))
    machine.run()
    assert driver.done
    plan = MigrationPlanner().plan(vm)
    counters = {
        counter: getattr(plan, field)
        for field, counter in _PLAN_COUNTERS.items()
    }
    return RunResult(
        config=config.name,
        runtime=driver.runtime if not driver.crashed else None,
        crashed=driver.crashed,
        counters=counters,
    )


def _plan_from_counters(counters: Mapping[str, int]) -> MigrationPlan:
    return MigrationPlan(**{
        field: counters[counter]
        for field, counter in _PLAN_COUNTERS.items()
    })


def assemble_migration(sweep: Sweep,
                       results: Mapping[str, RunResult]) -> FigureResult:
    """Build the migration-traffic table from cells."""
    scale = sweep.cells[0].scale
    rows: dict = {}
    for cell in sweep.cells:
        plan = _plan_from_counters(results[cell.cell_id].counters)
        rows[cell.config] = {
            "baseline_mib": plan.baseline_bytes / MIB,
            "vswapper_mib": plan.vswapper_bytes / MIB,
            "savings": plan.savings_fraction,
        }

    table = Table(
        f"Live migration study (scale=1/{scale}): traffic to move the "
        f"guest after a file-heavy run (paper Sec. 7)",
        ["source config", "baseline transfer [MiB]",
         "mapping-aware transfer [MiB]", "savings"],
    )
    for config, row in rows.items():
        table.add_row(config, round(row["baseline_mib"], 1),
                      round(row["vswapper_mib"], 1),
                      f"{row['savings'] * 100:.0f}%")
    return FigureResult("migration-study", rows, table.render())


def run_migration_study(*, scale: int = 1, executor=None, store=None,
                        resume: bool = False) -> FigureResult:
    """Estimate migration traffic for baseline vs Mapper knowledge."""
    sweep = build_migration_sweep(scale=scale)
    outcome = run_sweep(sweep, executor=executor, store=store,
                        resume=resume)
    return finish_figure(
        assemble_migration(sweep, outcome.results), outcome, store)
