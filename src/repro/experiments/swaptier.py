"""Swap-backend tiering study: which root causes survive fast swap?

The paper's uncooperative-swapping pathologies (stale reads, silent
swap writes, false page anonymity, decayed sequentiality) were
measured against a shared rotating disk.  This experiment re-runs the
Figure 9 workload with host swap served by each registered backend --
SSD, NVMe, compressed RAM, remote memory, and the zram-over-SSD tier
-- under both the baseline and VSwapper configurations.

The interesting output is not just that faster swap shrinks runtimes:
it is *which root-cause counters collapse* as the device gets faster.
Stale reads and silent swap writes are correctness/traffic problems --
a faster device pays for them more quickly but does not remove them --
while decayed sequentiality is a *positioning* problem that
position-independent devices do not feel at all.  The per-backend
baseline/vswapper runtime ratio quantifies how much of VSwapper's
advantage each backend preserves (the paper argues the write
elimination keeps paying on SSDs).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.config import MachineConfig
from repro.exec.executor import finish_figure, run_sweep
from repro.exec.spec import CellSpec, Sweep, fault_params
from repro.experiments.runner import (
    ConfigName,
    FigureResult,
    RunResult,
    SingleVmExperiment,
    scaled_guest_config,
    standard_configs,
)
from repro.metrics.report import Table
from repro.units import mib_pages
from repro.workloads.sysbench import SysbenchFileRead

#: Every registered backend, default disk path first (the anchor row).
SWAPTIER_BACKENDS = ("disk", "ssd", "nvme", "zram", "remote", "tiered")

SWAPTIER_CONFIGS = (ConfigName.BASELINE, ConfigName.VSWAPPER)

#: Root-cause counters the per-backend comparison reports.
ROOT_CAUSE_COUNTERS = (
    "stale_reads",
    "silent_swap_writes",
    "host_context_faults",
    "guest_context_faults",
    "swap_sectors_written",
)


def build_swaptier_sweep(*, scale: int = 1,
                         backends: Sequence[str] = SWAPTIER_BACKENDS,
                         ) -> Sweep:
    """Declare the backend x configuration grid."""
    faults = fault_params()
    cells = tuple(
        CellSpec(
            experiment_id="swaptier",
            cell_id=f"{backend}/{name.value}",
            scale=scale,
            config=name.value,
            params={"swap_backend": backend},
            faults=faults,
            # backend=None keeps the disk row on the exact pre-backend
            # cache identity (and the bit-identical code path).
            backend=None if backend == "disk" else backend,
        )
        for backend in backends
        for name in SWAPTIER_CONFIGS)
    return Sweep("swaptier", cells)


def swaptier_cell(spec: CellSpec) -> RunResult:
    """Run sysbench x4 on one (swap backend, config) cell.

    The backend itself arrives ambiently: ``execute_cell`` installs
    ``spec.backend`` before calling this runner, and the host picks it
    up when the node config leaves ``swap_backend`` unset -- the same
    route the CLI's ``--swap-backend`` flag takes.
    """
    scale = spec.scale
    experiment = SingleVmExperiment(
        guest_mib=512 / scale,
        actual_mib=100 / scale,
        machine_config=MachineConfig(seed=spec.seed),
        guest_config=scaled_guest_config(512, scale),
        files=[("sysbench.dat", mib_pages(200 / scale))],
    )
    config = standard_configs([ConfigName(spec.config)])[0]
    return experiment.run(config, SysbenchFileRead(
        file_pages=mib_pages(200 / scale), iterations=4))


def assemble_swaptier(sweep: Sweep,
                      results: Mapping[str, RunResult]) -> FigureResult:
    """Per-backend runtimes, root-cause counters, and speedup ratios."""
    scale = sweep.cells[0].scale
    rows: dict = {}
    for cell in sweep.cells:
        result = results[cell.cell_id]
        rows[cell.cell_id] = {
            "runtime": result.runtime,
            "status": result.status,
            **{name: result.counters.get(name, 0)
               for name in ROOT_CAUSE_COUNTERS},
        }

    #: backend -> baseline/vswapper runtime ratio (VSwapper's edge).
    speedups: dict = {}
    backends = []
    for cell in sweep.cells:
        backend = cell.params["swap_backend"]
        if backend not in backends:
            backends.append(backend)
    for backend in backends:
        base = rows.get(f"{backend}/baseline", {}).get("runtime")
        vsw = rows.get(f"{backend}/vswapper", {}).get("runtime")
        speedups[backend] = (round(base / vsw, 2)
                             if base and vsw else None)

    table = Table(
        f"Swap-backend tiers (scale=1/{scale}): sysbench x4 per backend",
        ["backend", "config", "runtime [s]", "stale reads",
         "silent writes", "host faults", "guest faults",
         "swap sectors", "base/vsw"],
    )
    for cell in sweep.cells:
        row = rows[cell.cell_id]
        backend = cell.params["swap_backend"]
        runtime = row["runtime"]
        table.add_row(
            backend, cell.config,
            row["status"] if runtime is None else round(runtime, 2),
            row["stale_reads"], row["silent_swap_writes"],
            row["host_context_faults"], row["guest_context_faults"],
            row["swap_sectors_written"],
            speedups[backend] if cell.config == "vswapper" else "")
    return FigureResult("swaptier", {"cells": rows, "speedups": speedups},
                        table.render())


def run_swaptier(*, scale: int = 1, executor=None, store=None,
                 resume: bool = False) -> FigureResult:
    """Regenerate the swap-backend tiering study."""
    sweep = build_swaptier_sweep(scale=scale)
    outcome = run_sweep(sweep, executor=executor, store=store,
                        resume=resume)
    return finish_figure(
        assemble_swaptier(sweep, outcome.results), outcome, store)
