"""Figures 13 and 15: the DaCapo Eclipse workload.

Figure 13 sweeps the actual memory grant (512 down to 256 MB) under the
JVM's cyclic garbage-collection access pattern -- the classic LRU
pathology.  Ballooning is a few percent faster while it survives but
the guest kills Eclipse once the grant drops below its footprint.

Figure 15 samples, over time, the guest page cache size (total and
excluding dirty pages) against the number of pages the Swap Mapper
tracks: the tracked set should ride the clean-cache curve.  Its single
cell carries the sampled :class:`~repro.metrics.timeline.Timeline`
inside the ``RunResult``, which the exec layer freezes (gauges dropped)
so it crosses process and storage boundaries intact.

Figure 13 series are keyed ``series[config][str(actual_mib)]``.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.config import MachineConfig
from repro.exec.executor import finish_figure, run_sweep
from repro.exec.spec import CellSpec, Sweep, fault_params
from repro.experiments.runner import (
    ConfigName,
    FigureResult,
    RunResult,
    SingleVmExperiment,
    scaled_guest_config,
    standard_configs,
)
from repro.metrics.report import Table
from repro.units import mib_pages
from repro.workloads.dacapo import EclipseWorkload

FIG13_CONFIGS = (
    ConfigName.BASELINE,
    ConfigName.MAPPER,
    ConfigName.VSWAPPER,
    ConfigName.BALLOON_BASELINE,
)

#: The paper's X axis (MiB of actual memory).
DEFAULT_MEMORY_SWEEP = (512, 448, 384, 320, 256)


def make_eclipse(scale: int) -> EclipseWorkload:
    """An Eclipse workload sized for ``scale``."""
    return EclipseWorkload(
        heap_pages=mib_pages(128 / scale),
        jvm_resident_pages=mib_pages(288 / scale),
        workspace_pages=mib_pages(160 / scale),
        min_resident_pages=mib_pages(416 / scale),
        work_units=max(10, 220 // scale),
    )


def _experiment(scale: int, actual_mib: float, seed: int = 1,
                sample_interval: float | None = None) -> SingleVmExperiment:
    return SingleVmExperiment(
        guest_mib=512 / scale,
        actual_mib=actual_mib / scale,
        machine_config=MachineConfig(seed=seed),
        guest_config=scaled_guest_config(512, scale),
        files=[("eclipse-workspace", mib_pages(160 / scale))],
        sample_interval=sample_interval,
    )


def build_fig13_sweep(
    *,
    scale: int = 1,
    memory_sweep_mib: Sequence[int] = DEFAULT_MEMORY_SWEEP,
    config_names: Sequence[ConfigName] = FIG13_CONFIGS,
) -> Sweep:
    """Declare the grid: configuration x actual-memory grant."""
    faults = fault_params()
    cells = tuple(
        CellSpec(
            experiment_id="fig13",
            cell_id=f"{spec.name.value}@{actual_mib}MiB",
            scale=scale,
            config=spec.name.value,
            params={"actual_mib": actual_mib},
            faults=faults,
        )
        for spec in standard_configs(config_names)
        for actual_mib in memory_sweep_mib)
    return Sweep("fig13", cells)


def fig13_cell(spec: CellSpec) -> RunResult:
    """Run Eclipse under one (configuration, grant) cell."""
    experiment = _experiment(
        spec.scale, spec.params["actual_mib"], seed=spec.seed)
    config = standard_configs([ConfigName(spec.config)])[0]
    return experiment.run(config, make_eclipse(spec.scale))


def assemble_fig13(sweep: Sweep,
                   results: Mapping[str, RunResult]) -> FigureResult:
    """Build Figure 13's runtime-vs-limit table from cells."""
    scale = sweep.cells[0].scale
    series: dict = {}
    for cell in sweep.cells:
        result = results[cell.cell_id]
        series.setdefault(cell.config, {})[str(cell.params["actual_mib"])] = {
            "runtime": result.runtime,
            "crashed": result.crashed,
        }

    table = Table(
        f"Figure 13 (scale=1/{scale}): Eclipse (DaCapo) vs memory limit",
        ["config", "memory [MiB]", "runtime [s]"],
    )
    for config, by_memory in series.items():
        for actual_mib, row in by_memory.items():
            table.add_row(
                config, actual_mib,
                "killed (OOM)" if row["crashed"]
                else round(row["runtime"], 1))
    return FigureResult("fig13", series, table.render())


def run_fig13(
    *,
    scale: int = 1,
    memory_sweep_mib: Sequence[int] = DEFAULT_MEMORY_SWEEP,
    config_names: Sequence[ConfigName] = FIG13_CONFIGS,
    executor=None, store=None, resume: bool = False,
) -> FigureResult:
    """Regenerate Figure 13: Eclipse runtime vs memory limit."""
    sweep = build_fig13_sweep(
        scale=scale, memory_sweep_mib=memory_sweep_mib,
        config_names=config_names)
    outcome = run_sweep(sweep, executor=executor, store=store,
                        resume=resume)
    return finish_figure(
        assemble_fig13(sweep, outcome.results), outcome, store)


def build_fig15_sweep(*, scale: int = 1, actual_mib: float = 320,
                      sample_interval: float = 2.0) -> Sweep:
    """Declare Figure 15's single sampled-timeline cell."""
    cell = CellSpec(
        experiment_id="fig15",
        cell_id=f"{ConfigName.VSWAPPER.value}@{actual_mib:g}MiB",
        scale=scale,
        config=ConfigName.VSWAPPER.value,
        params={"actual_mib": actual_mib,
                "sample_interval": sample_interval},
        faults=fault_params(),
    )
    return Sweep("fig15", (cell,))


def fig15_cell(spec: CellSpec) -> RunResult:
    """Run the sampled Eclipse cell (timeline attached)."""
    scale = spec.scale
    experiment = _experiment(
        scale, spec.params["actual_mib"], seed=spec.seed,
        sample_interval=spec.params["sample_interval"] / scale)
    config = standard_configs([ConfigName(spec.config)])[0]
    return experiment.run(config, make_eclipse(scale))


def assemble_fig15(sweep: Sweep,
                   results: Mapping[str, RunResult]) -> FigureResult:
    """Build Figure 15's tracked-vs-cache table from the sampled cell."""
    cell = sweep.cells[0]
    scale = cell.scale
    timeline = results[cell.cell_id].timeline
    times, cache = timeline.series("guest_page_cache")
    _t2, clean = timeline.series("guest_page_cache_clean")
    _t3, tracked = timeline.series("mapper_tracked")

    table = Table(
        f"Figure 15 (scale=1/{scale}): Mapper-tracked pages vs guest "
        f"page cache over time",
        ["time [s]", "page cache [pages]", "excl. dirty [pages]",
         "mapper tracked [pages]"],
    )
    for t, total, cln, trk in zip(times, cache, clean, tracked):
        table.add_row(round(t, 1), int(total), int(cln), int(trk))
    series = {
        "time": times,
        "page_cache": cache,
        "page_cache_clean": clean,
        "mapper_tracked": tracked,
    }
    return FigureResult("fig15", series, table.render())


def run_fig15(*, scale: int = 1, actual_mib: float = 320,
              sample_interval: float = 2.0,
              executor=None, store=None, resume: bool = False,
              ) -> FigureResult:
    """Regenerate Figure 15: Mapper tracking vs guest page cache."""
    sweep = build_fig15_sweep(
        scale=scale, actual_mib=actual_mib,
        sample_interval=sample_interval)
    outcome = run_sweep(sweep, executor=executor, store=store,
                        resume=resume)
    return finish_figure(
        assemble_fig15(sweep, outcome.results), outcome, store)
