"""Figures 13 and 15: the DaCapo Eclipse workload.

Figure 13 sweeps the actual memory grant (512 down to 256 MB) under the
JVM's cyclic garbage-collection access pattern -- the classic LRU
pathology.  Ballooning is a few percent faster while it survives but
the guest kills Eclipse once the grant drops below its footprint.

Figure 15 samples, over time, the guest page cache size (total and
excluding dirty pages) against the number of pages the Swap Mapper
tracks: the tracked set should ride the clean-cache curve.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.runner import (
    ConfigName,
    FigureResult,
    RunResult,
    SingleVmExperiment,
    scaled_guest_config,
    standard_configs,
)
from repro.metrics.report import Table
from repro.units import mib_pages
from repro.workloads.dacapo import EclipseWorkload

FIG13_CONFIGS = (
    ConfigName.BASELINE,
    ConfigName.MAPPER,
    ConfigName.VSWAPPER,
    ConfigName.BALLOON_BASELINE,
)

#: The paper's X axis (MiB of actual memory).
DEFAULT_MEMORY_SWEEP = (512, 448, 384, 320, 256)


def make_eclipse(scale: int) -> EclipseWorkload:
    """An Eclipse workload sized for ``scale``."""
    return EclipseWorkload(
        heap_pages=mib_pages(128 / scale),
        jvm_resident_pages=mib_pages(288 / scale),
        workspace_pages=mib_pages(160 / scale),
        min_resident_pages=mib_pages(416 / scale),
        work_units=max(10, 220 // scale),
    )


def _experiment(scale: int, actual_mib: float,
                sample_interval: float | None = None) -> SingleVmExperiment:
    return SingleVmExperiment(
        guest_mib=512 / scale,
        actual_mib=actual_mib / scale,
        guest_config=scaled_guest_config(512, scale),
        files=[("eclipse-workspace", mib_pages(160 / scale))],
        sample_interval=sample_interval,
    )


def run_fig13(
    *,
    scale: int = 1,
    memory_sweep_mib: Sequence[int] = DEFAULT_MEMORY_SWEEP,
    config_names: Sequence[ConfigName] = FIG13_CONFIGS,
) -> FigureResult:
    """Regenerate Figure 13: Eclipse runtime vs memory limit."""
    series: dict = {name.value: {} for name in config_names}
    for actual_mib in memory_sweep_mib:
        experiment = _experiment(scale, actual_mib)
        for spec in standard_configs(config_names):
            result = experiment.run(spec, make_eclipse(scale))
            series[spec.name.value][actual_mib] = {
                "runtime": result.runtime,
                "crashed": result.crashed,
            }

    table = Table(
        f"Figure 13 (scale=1/{scale}): Eclipse (DaCapo) vs memory limit",
        ["config", "memory [MiB]", "runtime [s]"],
    )
    for config, by_memory in series.items():
        for actual_mib, row in by_memory.items():
            table.add_row(
                config, actual_mib,
                "killed (OOM)" if row["crashed"]
                else round(row["runtime"], 1))
    return FigureResult("fig13", series, table.render())


def run_fig15(*, scale: int = 1, actual_mib: float = 320,
              sample_interval: float = 2.0) -> FigureResult:
    """Regenerate Figure 15: Mapper tracking vs guest page cache."""
    experiment = _experiment(
        scale, actual_mib, sample_interval=sample_interval / scale)
    spec = standard_configs([ConfigName.VSWAPPER])[0]
    result: RunResult = experiment.run(spec, make_eclipse(scale))
    timeline = result.timeline
    times, cache = timeline.series("guest_page_cache")
    _t2, clean = timeline.series("guest_page_cache_clean")
    _t3, tracked = timeline.series("mapper_tracked")

    table = Table(
        f"Figure 15 (scale=1/{scale}): Mapper-tracked pages vs guest "
        f"page cache over time",
        ["time [s]", "page cache [pages]", "excl. dirty [pages]",
         "mapper tracked [pages]"],
    )
    for t, total, cln, trk in zip(times, cache, clean, tracked):
        table.add_row(round(t, 1), int(total), int(cln), int(trk))
    series = {
        "time": times,
        "page_cache": cache,
        "page_cache_clean": clean,
        "mapper_tracked": tracked,
    }
    return FigureResult("fig15", series, table.render())
