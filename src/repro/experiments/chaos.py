"""Chaos run: the Figure 3 workload under deterministic fault injection.

Every future perf PR gets a standing suite to run against: the five
standard configurations execute the paper's first-iteration sysbench
read while the fault plan injects disk errors, latency spikes, torn
writes, swap-read failures, slot corruption, and forced mapper
invalidations.  Each cell must end in exactly one of three states --
*ok* (every fault retried away), *degraded* (a circuit breaker fell
back to baseline swapping, run still finished), or *crashed* (a typed
ReproError reported at the runner boundary) -- and no cell may ever
observe stale page content.

The full fault plan travels inside each :class:`~repro.exec.spec
.CellSpec` (``spec.faults``), so a chaos cell replayed from the result
store or in a worker process sees the exact same injections.
"""

from __future__ import annotations

from repro.config import FaultConfig, MachineConfig
from repro.exec.executor import finish_figure, run_sweep
from repro.exec.spec import CellSpec, Sweep, fault_params, faults_from_params
from repro.experiments.runner import (
    ConfigName,
    FigureResult,
    RunResult,
    SingleVmExperiment,
    scaled_guest_config,
    standard_configs,
)
from repro.metrics.report import Table
from repro.units import mib_pages
from repro.workloads.sysbench import SysbenchFileRead

#: Fault counters worth surfacing per cell in the chaos table.
FAULT_COUNTERS = (
    "disk_transient_errors",
    "disk_retries",
    "disk_latency_spikes",
    "disk_torn_writes",
    "swap_read_retries",
    "swap_slot_corruptions",
    "mapper_forced_invalidations",
    "mapper_breaker_trips",
)


def build_chaos_sweep(*, scale: int = 1, seed: int = 1,
                      fault_config: FaultConfig | None = None) -> Sweep:
    """Declare the chaos grid: five configs under one fault plan."""
    faults = fault_config if fault_config is not None else FaultConfig.chaos()
    cells = tuple(
        CellSpec(
            experiment_id="chaos",
            cell_id=spec.name.value,
            scale=scale,
            config=spec.name.value,
            seed=seed,
            faults=fault_params(faults),
        )
        for spec in standard_configs())
    return Sweep("chaos", cells)


def chaos_cell(spec: CellSpec) -> RunResult:
    """Run the Fig. 3 workload under one config and the fault plan."""
    scale = spec.scale
    experiment = SingleVmExperiment(
        guest_mib=512 / scale,
        actual_mib=100 / scale,
        guest_config=scaled_guest_config(512, scale),
        machine_config=MachineConfig(
            seed=spec.seed, faults=faults_from_params(spec.faults)),
        files=[("sysbench.dat", mib_pages(200 / scale))],
    )
    config = standard_configs([ConfigName(spec.config)])[0]
    workload = SysbenchFileRead(
        file_pages=mib_pages(200 / scale), iterations=1)
    return experiment.run(config, workload)


def assemble_chaos(sweep: Sweep,
                   results: dict[str, RunResult]) -> FigureResult:
    """Build the chaos status table from cells."""
    scale = sweep.cells[0].scale
    seed = sweep.cells[0].seed
    series: dict = {}
    for cell in sweep.cells:
        result = results[cell.cell_id]
        injected = {name: result.counters.get(name, 0)
                    for name in FAULT_COUNTERS}
        series[cell.config] = {
            "status": result.status,
            "runtime": result.runtime,
            "crash_reason": result.crash_reason,
            "faults": injected,
        }

    table = Table(
        f"Chaos run (scale=1/{scale}, seed={seed}): Fig. 3 workload under "
        f"fault injection",
        ["config", "status", "runtime [s]", "retries", "breaker trips",
         "detail"],
    )
    for config, cell in series.items():
        faults_seen = cell["faults"]
        retries = (faults_seen["disk_retries"]
                   + faults_seen["swap_read_retries"])
        runtime = cell["runtime"]
        table.add_row(
            config, cell["status"],
            "-" if runtime is None else round(runtime, 2),
            retries,
            faults_seen["mapper_breaker_trips"],
            cell["crash_reason"] or "",
        )
    return FigureResult("chaos", series, table.render())


def run_chaos(*, scale: int = 1, seed: int = 1,
              fault_config: FaultConfig | None = None,
              executor=None, store=None,
              resume: bool = False) -> FigureResult:
    """Run the five standard configs under the seeded fault plan."""
    sweep = build_chaos_sweep(scale=scale, seed=seed,
                              fault_config=fault_config)
    outcome = run_sweep(sweep, executor=executor, store=store,
                        resume=resume)
    return finish_figure(
        assemble_chaos(sweep, outcome.results), outcome, store)
