"""Section 5.4: non-Linux guests (Windows Server 2012).

The paper validates guest-agnosticism on a Windows VM: a 2 GB-file
Sysbench read in a 2 GB guest granted 1 GB runs 302 s without VSwapper
and 79 s with it; bzip2 in the same guest at 512 MB runs 306 s vs
149 s.  The Windows profile differs in ways that matter here: no
async-page-fault support, a background zero-page thread (a steady
false-read generator), and sporadic sub-4KiB disk accesses the Mapper
cannot track.

The sweep is a 2x2 grid: workload x {baseline, vswapper}.
"""

from __future__ import annotations

from typing import Mapping

from repro.config import GuestConfig, GuestOsKind, MachineConfig
from repro.exec.executor import finish_figure, run_sweep
from repro.exec.spec import CellSpec, Sweep, fault_params
from repro.experiments.runner import (
    ConfigName,
    FigureResult,
    RunResult,
    SingleVmExperiment,
    standard_configs,
)
from repro.metrics.report import Table
from repro.units import mib_pages
from repro.workloads.pbzip import BzipCompress
from repro.workloads.sysbench import SysbenchFileRead

SEC54_WORKLOADS = ("sysbench", "bzip")

SEC54_CASES = (
    ("without vswapper", ConfigName.BASELINE),
    ("with vswapper", ConfigName.VSWAPPER),
)


def windows_guest_config(guest_mib: float, scale: int) -> GuestConfig:
    """A Windows Server-like guest profile."""
    return GuestConfig(
        memory_pages=mib_pages(guest_mib / scale),
        kernel_reserve_pages=mib_pages(48 / scale),
        guest_swap_pages=mib_pages(2048 / scale),
        os_kind=GuestOsKind.WINDOWS,
        zero_free_pages=True,
        unaligned_io_fraction=0.02,
    )


def build_sec54_sweep(*, scale: int = 1) -> Sweep:
    """Declare the 2x2 grid: workload x configuration."""
    faults = fault_params()
    cells = tuple(
        CellSpec(
            experiment_id="sec54",
            cell_id=f"{name.value}/{workload}",
            scale=scale,
            config=name.value,
            params={"workload": workload, "label": label},
            faults=faults,
        )
        for label, name in SEC54_CASES
        for workload in SEC54_WORKLOADS)
    return Sweep("sec54", cells)


def sec54_cell(spec: CellSpec) -> RunResult:
    """Run one Windows-guest (workload, configuration) cell."""
    scale = spec.scale
    config = standard_configs([ConfigName(spec.config)])[0]
    if spec.params["workload"] == "sysbench":
        # Experiment 1: Sysbench, 2GB file, 2GB guest, 1GB grant.
        experiment = SingleVmExperiment(
            guest_mib=2048 / scale,
            actual_mib=1024 / scale,
            machine_config=MachineConfig(seed=spec.seed),
            guest_config=windows_guest_config(2048, scale),
            files=[("sysbench.dat", mib_pages(2048 / scale))],
        )
        workload = SysbenchFileRead(
            file_pages=mib_pages(2048 / scale), iterations=1)
    else:
        # Experiment 2: bzip2 in the same guest at 512MB.
        experiment = SingleVmExperiment(
            guest_mib=2048 / scale,
            actual_mib=512 / scale,
            machine_config=MachineConfig(seed=spec.seed),
            guest_config=windows_guest_config(2048, scale),
            files=[
                ("pbzip-input", mib_pages(500 / scale)),
                ("pbzip-output", mib_pages(140 / scale)),
            ],
        )
        workload = BzipCompress(
            input_pages=mib_pages(500 / scale),
            min_resident_pages=mib_pages(220 / scale))
    return experiment.run(config, workload)


def assemble_sec54(sweep: Sweep,
                   results: Mapping[str, RunResult]) -> FigureResult:
    """Build the Windows-guest comparison table from cells."""
    scale = sweep.cells[0].scale
    series: dict = {}
    for cell in sweep.cells:
        result = results[cell.cell_id]
        row = series.setdefault(cell.params["label"], {})
        workload = cell.params["workload"]
        row[f"{workload}_runtime"] = result.runtime
        row[f"{workload}_false_reads"] = result.counters.get("false_reads")

    table = Table(
        f"Section 5.4 (scale=1/{scale}): Windows Server guest",
        ["experiment", "paper w/o -> w/", "repro w/o -> w/"],
    )
    table.add_row(
        "sysbench 2GB read (1GB grant)",
        "302s -> 79s",
        f"{series['without vswapper']['sysbench_runtime']:.1f}s -> "
        f"{series['with vswapper']['sysbench_runtime']:.1f}s")
    table.add_row(
        "bzip2 (512MB grant)",
        "306s -> 149s",
        f"{series['without vswapper']['bzip_runtime']:.1f}s -> "
        f"{series['with vswapper']['bzip_runtime']:.1f}s")
    return FigureResult("sec5.4", series, table.render())


def run_sec54(*, scale: int = 1, executor=None, store=None,
              resume: bool = False) -> FigureResult:
    """Regenerate the two Windows-guest comparisons."""
    sweep = build_sec54_sweep(scale=scale)
    outcome = run_sweep(sweep, executor=executor, store=store,
                        resume=resume)
    return finish_figure(
        assemble_sec54(sweep, outcome.results), outcome, store)
