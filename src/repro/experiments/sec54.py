"""Section 5.4: non-Linux guests (Windows Server 2012).

The paper validates guest-agnosticism on a Windows VM: a 2 GB-file
Sysbench read in a 2 GB guest granted 1 GB runs 302 s without VSwapper
and 79 s with it; bzip2 in the same guest at 512 MB runs 306 s vs
149 s.  The Windows profile differs in ways that matter here: no
async-page-fault support, a background zero-page thread (a steady
false-read generator), and sporadic sub-4KiB disk accesses the Mapper
cannot track.
"""

from __future__ import annotations

from repro.config import GuestConfig, GuestOsKind
from repro.experiments.runner import (
    ConfigName,
    FigureResult,
    SingleVmExperiment,
    standard_configs,
)
from repro.metrics.report import Table
from repro.units import mib_pages
from repro.workloads.pbzip import BzipCompress
from repro.workloads.sysbench import SysbenchFileRead


def windows_guest_config(guest_mib: float, scale: int) -> GuestConfig:
    """A Windows Server-like guest profile."""
    return GuestConfig(
        memory_pages=mib_pages(guest_mib / scale),
        kernel_reserve_pages=mib_pages(48 / scale),
        guest_swap_pages=mib_pages(2048 / scale),
        os_kind=GuestOsKind.WINDOWS,
        zero_free_pages=True,
        unaligned_io_fraction=0.02,
    )


def run_sec54(*, scale: int = 1) -> FigureResult:
    """Regenerate the two Windows-guest comparisons."""
    series: dict = {}

    # Experiment 1: Sysbench, 2GB file, 2GB guest, 1GB grant.
    sysbench_exp = SingleVmExperiment(
        guest_mib=2048 / scale,
        actual_mib=1024 / scale,
        guest_config=windows_guest_config(2048, scale),
        files=[("sysbench.dat", mib_pages(2048 / scale))],
    )
    # Experiment 2: bzip2 in the same guest at 512MB.
    bzip_exp = SingleVmExperiment(
        guest_mib=2048 / scale,
        actual_mib=512 / scale,
        guest_config=windows_guest_config(2048, scale),
        files=[
            ("pbzip-input", mib_pages(500 / scale)),
            ("pbzip-output", mib_pages(140 / scale)),
        ],
    )
    for label, name in (("without vswapper", ConfigName.BASELINE),
                        ("with vswapper", ConfigName.VSWAPPER)):
        spec = standard_configs([name])[0]
        sysbench = sysbench_exp.run(spec, SysbenchFileRead(
            file_pages=mib_pages(2048 / scale), iterations=1))
        bzip = bzip_exp.run(spec, BzipCompress(
            input_pages=mib_pages(500 / scale),
            min_resident_pages=mib_pages(220 / scale)))
        series[label] = {
            "sysbench_runtime": sysbench.runtime,
            "bzip_runtime": bzip.runtime,
            "sysbench_false_reads": sysbench.counters.get("false_reads"),
            "bzip_false_reads": bzip.counters.get("false_reads"),
        }

    table = Table(
        f"Section 5.4 (scale=1/{scale}): Windows Server guest",
        ["experiment", "paper w/o -> w/", "repro w/o -> w/"],
    )
    table.add_row(
        "sysbench 2GB read (1GB grant)",
        "302s -> 79s",
        f"{series['without vswapper']['sysbench_runtime']:.1f}s -> "
        f"{series['with vswapper']['sysbench_runtime']:.1f}s")
    table.add_row(
        "bzip2 (512MB grant)",
        "306s -> 149s",
        f"{series['without vswapper']['bzip_runtime']:.1f}s -> "
        f"{series['with vswapper']['bzip_runtime']:.1f}s")
    return FigureResult("sec5.4", series, table.render())
