"""Cluster experiment: consolidation density vs per-guest slowdown.

The paper evaluates VSwapper on one overcommitted host; this experiment
asks the operator's follow-up question: *how densely can a small fleet
be packed before per-guest slowdown becomes unacceptable, and how much
does the answer depend on swapping quality?*  A four-node cluster with
per-node overcommit ratios and ``memory.swap.max``-style swap budgets
places 4/8/12 phased MapReduce guests under each placement policy
(``first-fit``, ``balance``, ``pack``) and both swapping configurations
(``baseline``, ``vswapper``), with pressure-driven live migration
rebalancing nodes whose swap budget fills past the threshold.

Each cell reports the fleet's average completion time normalized
against an unloaded singleton run (the ``@solo`` cell, shared across
policies and fleet sizes), plus the migrations the pressure controller
performed.  Everything flows through the standard sweep/cache stack,
so ``--jobs`` parallelism and ``--resume`` caching come for free --
and cluster runs stay bit-deterministic either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.cluster import Cluster
from repro.config import (
    ClusterConfig,
    ClusterMigrationConfig,
    HostConfig,
    HostNodeConfig,
    PLACEMENT_POLICIES,
    VmConfig,
)
from repro.driver import VmDriver
from repro.exec.executor import finish_figure, run_sweep
from repro.exec.spec import CellSpec, Sweep, fault_params
from repro.experiments.dynamic import make_mapreduce
from repro.experiments.runner import (
    FAULT_INDUCED_ERRORS,
    ConfigName,
    ConfigSpec,
    FigureResult,
    PhaseMark,
    RunResult,
    scaled_guest_config,
    standard_configs,
)
from repro.errors import InvariantViolation
from repro.metrics.report import Table
from repro.units import mib_pages

#: The two swapping configurations the density question contrasts.
CLUSTER_CONFIGS = (ConfigName.BASELINE, ConfigName.VSWAPPER)

#: Fleet sizes placed on the four-node cluster.  Sixteen guests is the
#: admission capacity (4 nodes x 4 GiB x ratio 2.0 / 2 GiB guests), at
#: which point every node is full and migration has nowhere to go.
FLEET_SIZES = (4, 8, 16)

#: Cell id suffix of the unloaded singleton reference run.
SOLO = "solo"


@dataclass
class ClusterFleetResult:
    """Outcome of one fleet run on the cluster."""

    config: ConfigName
    policy: str
    runtimes: list[float]
    crashes: int
    placements: list[tuple[str, str]]
    migrations: list


def _fleet_nodes(num_hosts: int, *, scale: int, host_mib: float,
                 overcommit_ratio: float | None, swap_budget_mib: float,
                 pressure_threshold: float) -> tuple[HostNodeConfig, ...]:
    """Homogeneous node specs for the experiment's fleet."""
    return tuple(
        HostNodeConfig(
            name=f"node{i}",
            host=HostConfig(
                total_memory_pages=mib_pages(host_mib / scale),
                swap_size_pages=mib_pages(8 * 1024 / scale),
            ),
            overcommit_ratio=overcommit_ratio,
            swap_budget_pages=mib_pages(swap_budget_mib / scale),
            pressure_threshold=pressure_threshold,
        )
        for i in range(num_hosts))


def run_cluster_fleet(spec: ConfigSpec, *, num_guests: int,
                      num_hosts: int = 4, policy: str = "first-fit",
                      scale: int = 1, stagger_seconds: float = 10.0,
                      host_mib: float = 4096, guest_mib: float = 2048,
                      overcommit_ratio: float | None = 2.0,
                      swap_budget_mib: float = 512,
                      pressure_threshold: float = 0.5,
                      migration_enabled: bool = True,
                      seed: int = 1) -> ClusterFleetResult:
    """Run ``num_guests`` phased MapReduce guests across the cluster."""
    cluster = Cluster(ClusterConfig(
        hosts=_fleet_nodes(
            num_hosts, scale=scale, host_mib=host_mib,
            overcommit_ratio=overcommit_ratio,
            swap_budget_mib=swap_budget_mib,
            pressure_threshold=pressure_threshold),
        placement=policy,
        migration=ClusterMigrationConfig(
            enabled=migration_enabled,
            check_interval=5.0 / scale),
        seed=seed,
    ))
    drivers: list[VmDriver] = []
    for i in range(num_guests):
        vm = cluster.create_vm(VmConfig(
            name=f"vm{i}",
            guest=scaled_guest_config(guest_mib, scale),
            vswapper=spec.vswapper,
            image_size_pages=mib_pages(4096 / scale),
            vcpus=2,
        ))
        vm.host.boot_guest(vm, fraction=0.2)
        vm.guest.fs.create_file("metis-input", mib_pages(300 / scale))
        vm.guest.fs.create_file("metis-output", mib_pages(16 / scale))
        drivers.append(VmDriver(
            cluster, vm, make_mapreduce(scale, seed=100 + i),
            start_delay=i * stagger_seconds / scale))

    while not all(d.done for d in drivers):
        if cluster.engine.pending_events() == 0:
            raise RuntimeError("engine drained before guests finished")
        cluster.engine.run(until=cluster.now + 60.0)
    cluster.engine.stop()

    runtimes = [d.runtime for d in drivers if not d.crashed]
    crashes = sum(1 for d in drivers if d.crashed)
    return ClusterFleetResult(
        spec.name, policy, runtimes, crashes,
        list(cluster.placements), list(cluster.migrations))


def _fleet_cells(config_names: Sequence[ConfigName],
                 policies: Sequence[str],
                 fleet_sizes: Sequence[int], *, scale: int,
                 num_hosts: int = 4) -> tuple[CellSpec, ...]:
    """Declare the grid plus one shared singleton cell per config."""
    faults = fault_params()

    def cell(name: ConfigName, cell_id: str, *, n: int, hosts: int,
             policy: str) -> CellSpec:
        return CellSpec(
            experiment_id="cluster",
            cell_id=cell_id,
            scale=scale,
            config=name.value,
            params={
                "num_guests": n,
                "num_hosts": hosts,
                "policy": policy,
            },
            faults=faults,
        )

    cells = [
        # The unloaded reference: one guest on a one-node cluster.  One
        # cell per config, shared by every (policy, fleet size) row.
        cell(name, f"{name.value}@{SOLO}", n=1, hosts=1,
             policy="first-fit")
        for name in config_names
    ]
    cells.extend(
        cell(name, f"{name.value}@{policy}x{n}", n=n, hosts=num_hosts,
             policy=policy)
        for name in config_names
        for policy in policies
        for n in fleet_sizes)
    return tuple(cells)


def build_cluster_exp_sweep(
    *,
    scale: int = 1,
    config_names: Sequence[ConfigName] = CLUSTER_CONFIGS,
    policies: Sequence[str] = PLACEMENT_POLICIES,
    fleet_sizes: Sequence[int] = FLEET_SIZES,
) -> Sweep:
    """Declare the density grid: config x policy x fleet size (+ solo)."""
    return Sweep("cluster", _fleet_cells(
        config_names, policies, fleet_sizes, scale=scale))


def cluster_fleet_cell(spec: CellSpec) -> RunResult:
    """Run one fleet cell and fold it into a RunResult.

    Placement failures and budget-exceeded swap errors are
    fault-induced in spirit -- the fleet did not fit -- so the cell
    reports as crashed instead of aborting the sweep.
    """
    config = standard_configs([ConfigName(spec.config)])[0]
    try:
        outcome = run_cluster_fleet(
            config,
            num_guests=spec.params["num_guests"],
            num_hosts=spec.params["num_hosts"],
            policy=spec.params["policy"],
            scale=spec.scale,
            seed=spec.seed,
        )
    except InvariantViolation:
        # A failed self-check is a simulator bug: propagate loudly.
        raise
    except FAULT_INDUCED_ERRORS as error:
        return RunResult(
            config=config.name, runtime=None, crashed=True, counters={},
            crash_reason=f"{type(error).__name__}: {error}")
    runtime = (sum(outcome.runtimes) / len(outcome.runtimes)
               if outcome.runtimes else None)
    phases = [PhaseMark("placement", {"vm": vm, "host": host}, 0.0)
              for vm, host in outcome.placements]
    phases += [PhaseMark("migration", record.to_dict(), record.time)
               for record in outcome.migrations]
    phases += [PhaseMark("guest-runtime", {"runtime": r}, r)
               for r in outcome.runtimes]
    return RunResult(
        config=config.name,
        runtime=runtime,
        crashed=False,
        counters={
            "oom_kills": outcome.crashes,
            "guests_completed": len(outcome.runtimes),
            "migrations": len(outcome.migrations),
            "migration_pages": sum(
                r.carried_pages for r in outcome.migrations),
            "migration_bytes": sum(
                int(r.transferred_bytes) for r in outcome.migrations),
        },
        phases=phases,
    )


def _density_row(result: RunResult, solo: RunResult | None) -> dict:
    slowdown = None
    if (result.runtime is not None and solo is not None
            and solo.runtime):
        slowdown = result.runtime / solo.runtime
    return {
        "average_runtime": result.runtime,
        "slowdown": slowdown,
        "migrations": result.counters.get("migrations", 0),
        "oom_kills": result.counters.get("oom_kills", 0),
        "crashed": result.crashed,
    }


def assemble_cluster(sweep: Sweep,
                     results: Mapping[str, RunResult]) -> FigureResult:
    """Build the density-vs-slowdown table from the sweep's cells."""
    scale = sweep.cells[0].scale
    solos = {
        cell.config: results[cell.cell_id]
        for cell in sweep.cells if cell.cell_id.endswith(f"@{SOLO}")
    }
    series: dict = {}
    for cell in sweep.cells:
        if cell.cell_id.endswith(f"@{SOLO}"):
            series.setdefault(cell.config, {})[SOLO] = {
                "average_runtime": results[cell.cell_id].runtime,
            }
            continue
        series.setdefault(cell.config, {}).setdefault(
            cell.params["policy"], {})[
                str(cell.params["num_guests"])] = _density_row(
                    results[cell.cell_id], solos.get(cell.config))

    table = Table(
        f"Cluster (scale=1/{scale}): consolidation density vs per-guest "
        f"slowdown, four nodes",
        ["config", "policy", "guests", "avg runtime [s]", "slowdown",
         "migrations", "oom kills"],
    )
    for config, by_policy in series.items():
        for policy, by_n in by_policy.items():
            if policy == SOLO:
                continue
            for n, row in by_n.items():
                runtime = row["average_runtime"]
                slowdown = row["slowdown"]
                table.add_row(
                    config, policy, n,
                    "-" if runtime is None else round(runtime, 1),
                    "-" if slowdown is None else round(slowdown, 2),
                    row["migrations"], row["oom_kills"])
    return FigureResult("cluster", series, table.render())


def run_cluster_experiment(
    *,
    scale: int = 1,
    config_names: Sequence[ConfigName] = CLUSTER_CONFIGS,
    policies: Sequence[str] = PLACEMENT_POLICIES,
    fleet_sizes: Sequence[int] = FLEET_SIZES,
    executor=None, store=None, resume: bool = False,
) -> FigureResult:
    """Regenerate the density-vs-slowdown table."""
    sweep = build_cluster_exp_sweep(
        scale=scale, config_names=config_names, policies=policies,
        fleet_sizes=fleet_sizes)
    outcome = run_sweep(sweep, executor=executor, store=store,
                        resume=resume)
    return finish_figure(
        assemble_cluster(sweep, outcome.results), outcome, store)
