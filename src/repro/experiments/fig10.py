"""Figure 10: the effect of false swap reads.

After the Sysbench read phase, a forked process allocates and
sequentially accesses 200 MB.  Its freshly allocated pages are recycled
guest frames, mostly swapped out by the host, so every demand-zero
allocation overwrites a swapped page.  The figure contrasts runtime and
disk operations for baseline, vswapper-without-preventer ("mapper"),
full vswapper, and balloon+baseline (which crashes: over-ballooning).
"""

from __future__ import annotations

from repro.experiments.runner import (
    ConfigName,
    FigureResult,
    SingleVmExperiment,
    scaled_guest_config,
    standard_configs,
)
from repro.metrics.report import Table
from repro.units import mib_pages
from repro.workloads.alloctouch import SysbenchThenAlloc

FIG10_CONFIGS = (
    ConfigName.BASELINE,
    ConfigName.MAPPER,       # the paper labels this "vswapper w/o preventer"
    ConfigName.VSWAPPER,
    ConfigName.BALLOON_BASELINE,
)


def run_fig10(*, scale: int = 1) -> FigureResult:
    """Regenerate Figure 10: alloc-phase runtime and disk operations."""
    experiment = SingleVmExperiment(
        guest_mib=512 / scale,
        actual_mib=100 / scale,
        guest_config=scaled_guest_config(512, scale),
        files=[("sysbench.dat", mib_pages(200 / scale))],
    )
    series: dict = {}
    for spec in standard_configs(FIG10_CONFIGS):
        workload = SysbenchThenAlloc(
            file_pages=mib_pages(200 / scale),
            alloc_pages=mib_pages(200 / scale),
        )
        result = experiment.run(spec, workload)
        if result.crashed:
            series[spec.name.value] = {
                "runtime": None, "disk_ops": None, "crashed": True,
                "false_reads": None, "preventer_remaps": None,
            }
            continue
        starts = [p for p in result.phases if p.name == "alloc-start"]
        ends = [p for p in result.phases if p.name == "alloc-end"]
        if not starts or not ends:
            # The allocator OOM-crashed mid-phase.
            series[spec.name.value] = {
                "runtime": None, "disk_ops": None, "crashed": True,
                "false_reads": None, "preventer_remaps": None,
            }
            continue
        start, end = starts[0], ends[0]
        series[spec.name.value] = {
            "runtime": end.time - start.time,
            "disk_ops": (end.counters.get("disk_ops", 0)
                         - start.counters.get("disk_ops", 0)),
            "false_reads": (end.counters.get("false_reads", 0)
                            - start.counters.get("false_reads", 0)),
            "preventer_remaps": (
                end.counters.get("preventer_remaps", 0)
                - start.counters.get("preventer_remaps", 0)),
            "crashed": False,
        }

    table = Table(
        f"Figure 10 (scale=1/{scale}): allocate-and-access 200MB after "
        f"the file-read phase",
        ["config", "runtime [s]", "disk ops", "false reads",
         "preventer remaps"],
    )
    for config, row in series.items():
        if row["crashed"]:
            table.add_row(config, "crashed", "-", "-", "-")
        else:
            table.add_row(config, round(row["runtime"], 2),
                          row["disk_ops"], row["false_reads"],
                          row["preventer_remaps"])
    return FigureResult("fig10", series, table.render())
