"""Figure 10: the effect of false swap reads.

After the Sysbench read phase, a forked process allocates and
sequentially accesses 200 MB.  Its freshly allocated pages are recycled
guest frames, mostly swapped out by the host, so every demand-zero
allocation overwrites a swapped page.  The figure contrasts runtime and
disk operations for baseline, vswapper-without-preventer ("mapper"),
full vswapper, and balloon+baseline (which crashes: over-ballooning).
"""

from __future__ import annotations

from typing import Mapping

from repro.config import MachineConfig
from repro.exec.executor import finish_figure, run_sweep
from repro.exec.spec import CellSpec, Sweep, fault_params, sweep_from_configs
from repro.experiments.runner import (
    ConfigName,
    FigureResult,
    RunResult,
    SingleVmExperiment,
    scaled_guest_config,
    standard_configs,
)
from repro.metrics.report import Table
from repro.units import mib_pages
from repro.workloads.alloctouch import SysbenchThenAlloc

FIG10_CONFIGS = (
    ConfigName.BASELINE,
    ConfigName.MAPPER,       # the paper labels this "vswapper w/o preventer"
    ConfigName.VSWAPPER,
    ConfigName.BALLOON_BASELINE,
)


def build_fig10_sweep(*, scale: int = 1) -> Sweep:
    """Declare Figure 10's grid: one cell per configuration."""
    return sweep_from_configs(
        "fig10", FIG10_CONFIGS, scale=scale, faults=fault_params())


def fig10_cell(spec: CellSpec) -> RunResult:
    """Run the sysbench-then-alloc workload under one configuration."""
    scale = spec.scale
    experiment = SingleVmExperiment(
        guest_mib=512 / scale,
        actual_mib=100 / scale,
        machine_config=MachineConfig(seed=spec.seed),
        guest_config=scaled_guest_config(512, scale),
        files=[("sysbench.dat", mib_pages(200 / scale))],
    )
    config = standard_configs([ConfigName(spec.config)])[0]
    workload = SysbenchThenAlloc(
        file_pages=mib_pages(200 / scale),
        alloc_pages=mib_pages(200 / scale),
    )
    return experiment.run(config, workload)


def _alloc_phase_row(result: RunResult) -> dict:
    if not result.crashed:
        starts = [p for p in result.phases if p.name == "alloc-start"]
        ends = [p for p in result.phases if p.name == "alloc-end"]
        if starts and ends:
            start, end = starts[0], ends[0]
            return {
                "runtime": end.time - start.time,
                "disk_ops": (end.counters.get("disk_ops", 0)
                             - start.counters.get("disk_ops", 0)),
                "false_reads": (end.counters.get("false_reads", 0)
                                - start.counters.get("false_reads", 0)),
                "preventer_remaps": (
                    end.counters.get("preventer_remaps", 0)
                    - start.counters.get("preventer_remaps", 0)),
                "crashed": False,
            }
    # Either the run crashed outright or the allocator OOM-crashed
    # mid-phase (no alloc-end mark).
    return {
        "runtime": None, "disk_ops": None, "crashed": True,
        "false_reads": None, "preventer_remaps": None,
    }


def assemble_fig10(sweep: Sweep,
                   results: Mapping[str, RunResult]) -> FigureResult:
    """Build Figure 10's alloc-phase table from cells."""
    scale = sweep.cells[0].scale
    series: dict = {
        cell.config: _alloc_phase_row(results[cell.cell_id])
        for cell in sweep.cells
    }

    table = Table(
        f"Figure 10 (scale=1/{scale}): allocate-and-access 200MB after "
        f"the file-read phase",
        ["config", "runtime [s]", "disk ops", "false reads",
         "preventer remaps"],
    )
    for config, row in series.items():
        if row["crashed"]:
            table.add_row(config, "crashed", "-", "-", "-")
        else:
            table.add_row(config, round(row["runtime"], 2),
                          row["disk_ops"], row["false_reads"],
                          row["preventer_remaps"])
    return FigureResult("fig10", series, table.render())


def run_fig10(*, scale: int = 1, executor=None, store=None,
              resume: bool = False) -> FigureResult:
    """Regenerate Figure 10: alloc-phase runtime and disk operations."""
    sweep = build_fig10_sweep(scale=scale)
    outcome = run_sweep(sweep, executor=executor, store=store,
                        resume=resume)
    return finish_figure(
        assemble_fig10(sweep, outcome.results), outcome, store)
