"""Cluster-chaos experiment: fleet survival under injected host crashes.

The fault-tolerance question the density experiment leaves open: *when
nodes die mid-run, how much of the fleet survives, how fast does
evacuation re-home the victims, and what does the disruption cost the
guests that were never touched?*  A four-node cluster runs phased
MapReduce fleets under seeded host-fault schedules -- no faults, one
crash, a mass crash that leaves a single survivor node, and a transient
degradation window -- crossed with placement policies and fleet sizes.

Each cell reports fleet survival (completed / lost), evacuation latency
and retry counts, and a per-VM result *fingerprint* (a hash of the VM's
final counters and runtime).  The assembler cross-checks the injection
cells against their fault-free twins: every VM on an *unaffected* host
-- never crashed, never degraded, never a migration source or
destination -- must reproduce its fault-free fingerprint bit-exactly,
because host faults draw from fresh ``host_fault_seed`` streams and
never touch simulation randomness.  VMs that could not be re-homed
surface as typed ``VmLost`` holes in the figure, never silent drops.

Schedule seeds are chosen empirically (for the four-node fleet at crash
rate 0.45 / degrade rate 0.6) so each schedule produces its designed
shape: ``crash-one`` kills exactly node0 a quarter into the horizon;
``crash-most`` kills node0, node1, and node3, leaving node2 the only
survivor (mass evacuation, then losses once it fills); ``degrade``
opens slow-disk windows on node0 and node1 and crashes nothing.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.cluster import Cluster, HostState
from repro.config import (
    ClusterConfig,
    ClusterMigrationConfig,
    FaultConfig,
    VmConfig,
)
from repro.driver import VmDriver
from repro.errors import InvariantViolation
from repro.exec.executor import finish_figure, run_sweep
from repro.exec.spec import CellSpec, Sweep, fault_params
from repro.experiments.cluster import _fleet_nodes
from repro.experiments.dynamic import make_mapreduce
from repro.experiments.runner import (
    FAULT_INDUCED_ERRORS,
    ConfigName,
    ConfigSpec,
    FigureResult,
    PhaseMark,
    RunResult,
    scaled_guest_config,
    standard_configs,
)
from repro.metrics.report import Table
from repro.units import mib_pages

#: Virtual-time horizon (at scale 1) the host-fault schedule draws
#: crash/degradation times from; scaled down with the workload.
FAULT_HORIZON = 240.0

#: Host crash probability per node under the crash schedules.
CRASH_RATE = 0.45

#: Degradation probability and window shape under ``degrade``.
DEGRADE_RATE = 0.6
DEGRADE_FACTOR = 8.0

#: The fault schedules, keyed by cell-id component.  Values are
#: FaultConfig overrides; None means a fault-free run (the twin every
#: injection cell's survivors are checked against).  Seeds were chosen
#: by scanning ``FaultPlan.host_crash_time``/``host_degrade_window``
#: over the four-node fleet (see module docstring).
SCHEDULES: dict[str, dict | None] = {
    "none": None,
    "crash-one": {"host_crash_rate": CRASH_RATE, "host_fault_seed": 22},
    "crash-most": {"host_crash_rate": CRASH_RATE, "host_fault_seed": 7},
    "degrade": {"host_degrade_rate": DEGRADE_RATE,
                "host_degrade_factor": DEGRADE_FACTOR,
                "host_fault_seed": 4},
}

#: Placement policies crossed with the schedules.
CHAOS_POLICIES = ("first-fit", "balance")

#: Fleet sizes: 8 guests is the four-node admission capacity, so a
#: crash there has nowhere to evacuate to and losses must surface.
CHAOS_FLEET_SIZES = (4, 8)


def schedule_fault_config(schedule: str, *, scale: int) -> FaultConfig | None:
    """The FaultConfig one schedule injects (None for ``none``)."""
    overrides = SCHEDULES[schedule]
    if overrides is None:
        return None
    return FaultConfig(
        enabled=True,
        host_fault_horizon=FAULT_HORIZON / scale,
        host_degrade_duration=FAULT_HORIZON / (4 * scale),
        **overrides,
    )


def _fingerprint(payload: dict) -> str:
    """Stable short hash of one VM's observable outcome."""
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


@dataclass
class ChaosFleetResult:
    """Outcome of one fleet run under one fault schedule."""

    config: ConfigName
    runtimes: list[float]
    oom_kills: int
    placements: list[tuple[str, str]]
    migrations: list
    lost: list
    evac_latencies: dict[str, float]
    evac_retries: int
    host_states: dict[str, str]
    host_crashes: int
    host_degrades: int
    #: vm name -> hash of (runtime, counters); the survivor-identity
    #: cross-check currency.
    fingerprints: dict[str, str] = field(default_factory=dict)
    #: Hosts no fault or migration ever touched; their VMs must match
    #: the fault-free twin bit-exactly.
    unaffected_hosts: list[str] = field(default_factory=list)
    #: vm name -> host the VM sat on when the run ended (or "lost").
    final_hosts: dict[str, str] = field(default_factory=dict)


def run_chaos_fleet(spec: ConfigSpec, *, schedule: str, num_guests: int,
                    num_hosts: int = 4, policy: str = "first-fit",
                    scale: int = 1, stagger_seconds: float = 10.0,
                    seed: int = 1) -> ChaosFleetResult:
    """Run ``num_guests`` MapReduce guests under one fault schedule.

    Pressure-driven migration stays off: every move in the log is then
    recovery's doing, which keeps the evacuation accounting exact.
    """
    faults = schedule_fault_config(schedule, scale=scale)
    cluster = Cluster(ClusterConfig(
        hosts=_fleet_nodes(
            num_hosts, scale=scale, host_mib=4096,
            overcommit_ratio=2.0, swap_budget_mib=512,
            pressure_threshold=0.5),
        placement=policy,
        migration=ClusterMigrationConfig(enabled=False),
        seed=seed,
        faults=faults,
    ))
    drivers: list[VmDriver] = []
    for i in range(num_guests):
        vm = cluster.create_vm(VmConfig(
            name=f"vm{i}",
            guest=scaled_guest_config(2048, scale),
            vswapper=spec.vswapper,
            image_size_pages=mib_pages(4096 / scale),
            vcpus=2,
        ))
        vm.host.boot_guest(vm, fraction=0.2)
        vm.guest.fs.create_file("metis-input", mib_pages(300 / scale))
        vm.guest.fs.create_file("metis-output", mib_pages(16 / scale))
        drivers.append(VmDriver(
            cluster, vm, make_mapreduce(scale, seed=100 + i),
            start_delay=i * stagger_seconds / scale))

    while not all(d.done for d in drivers):
        if cluster.engine.pending_events() == 0:
            raise RuntimeError("engine drained before guests finished")
        cluster.engine.run(until=cluster.now + 60.0)
    cluster.engine.stop()

    touched = {record.src for record in cluster.migrations}
    touched |= {record.dst for record in cluster.migrations}
    touched |= {record.host for record in cluster.lost}
    unaffected = [host.name for host in cluster.hosts
                  if host.state is HostState.UP
                  and not host.ever_degraded
                  and host.name not in touched]
    fingerprints = {}
    final_hosts = {}
    for driver in drivers:
        vm = driver.vm
        fingerprints[vm.name] = _fingerprint({
            "runtime": (driver.runtime
                        if driver.done and not driver.crashed else None),
            "crashed": driver.crashed,
            "counters": vm.counters.snapshot(),
        })
        final_hosts[vm.name] = (vm.host.name if vm.host is not None
                                else "lost")
    plan_counters = (cluster.faults.counters.snapshot()
                     if cluster.faults is not None else {})
    return ChaosFleetResult(
        config=spec.name,
        runtimes=[d.runtime for d in drivers
                  if not d.crashed and d.started_at is not None],
        oom_kills=sum(1 for d in drivers if d.crashed and not d.vm.lost),
        placements=list(cluster.placements),
        migrations=list(cluster.migrations),
        lost=list(cluster.lost),
        evac_latencies=dict(cluster.evac.latencies),
        evac_retries=cluster.evac.retries,
        host_states={h.name: h.state.value for h in cluster.hosts},
        host_crashes=plan_counters.get("host_crashes", 0),
        host_degrades=plan_counters.get("host_degrades", 0),
        fingerprints=fingerprints,
        unaffected_hosts=unaffected,
        final_hosts=final_hosts,
    )


def _chaos_cells(schedules: Sequence[str], policies: Sequence[str],
                 fleet_sizes: Sequence[int], *, scale: int,
                 num_hosts: int = 4) -> tuple[CellSpec, ...]:
    """One cell per (schedule, policy, fleet size), vswapper config.

    The cells are *hermetic*: each carries exactly its schedule's fault
    plan (the ``none`` schedule carries none), never the ambient CLI
    plan -- the fault-free twin must stay fault-free or the survivor
    cross-check would compare against a polluted baseline.
    """
    def cell_faults(schedule: str) -> dict | None:
        cfg = schedule_fault_config(schedule, scale=scale)
        # fault_params(None) would capture the ambient default; the
        # "none" twin must bypass it.
        return None if cfg is None else fault_params(cfg)

    return tuple(
        CellSpec(
            experiment_id="cluster-chaos",
            cell_id=f"{schedule}@{policy}x{n}",
            scale=scale,
            config=ConfigName.VSWAPPER.value,
            params={
                "schedule": schedule,
                "num_guests": n,
                "num_hosts": num_hosts,
                "policy": policy,
            },
            faults=cell_faults(schedule),
        )
        for schedule in schedules
        for policy in policies
        for n in fleet_sizes)


def build_cluster_chaos_sweep(
    *,
    scale: int = 1,
    schedules: Sequence[str] = tuple(SCHEDULES),
    policies: Sequence[str] = CHAOS_POLICIES,
    fleet_sizes: Sequence[int] = CHAOS_FLEET_SIZES,
) -> Sweep:
    """Declare the chaos grid: schedule x policy x fleet size."""
    return Sweep("cluster-chaos", _chaos_cells(
        schedules, policies, fleet_sizes, scale=scale))


def cluster_chaos_cell(spec: CellSpec) -> RunResult:
    """Run one chaos cell and fold it into a RunResult.

    The cell's own fault schedule is rebuilt from the spec (not the
    ambient default), so a cached cell is a pure function of its spec.
    Placement failures during *initial* deployment mean the fleet never
    fit and the cell reports crashed; losses during the run are data,
    not errors.
    """
    config = standard_configs([ConfigName(spec.config)])[0]
    try:
        outcome = run_chaos_fleet(
            config,
            schedule=spec.params["schedule"],
            num_guests=spec.params["num_guests"],
            num_hosts=spec.params["num_hosts"],
            policy=spec.params["policy"],
            scale=spec.scale,
            seed=spec.seed,
        )
    except InvariantViolation:
        # A failed self-check is a simulator bug: propagate loudly.
        raise
    except FAULT_INDUCED_ERRORS as error:
        return RunResult(
            config=config.name, runtime=None, crashed=True, counters={},
            crash_reason=f"{type(error).__name__}: {error}")
    runtime = (sum(outcome.runtimes) / len(outcome.runtimes)
               if outcome.runtimes else None)
    phases = [PhaseMark("placement", {"vm": vm, "host": host}, 0.0)
              for vm, host in outcome.placements]
    phases += [PhaseMark("migration", record.to_dict(), record.time)
               for record in outcome.migrations]
    phases += [PhaseMark("vm-lost", record.to_dict(), record.time)
               for record in outcome.lost]
    phases.append(PhaseMark("survivors", {
        "fingerprints": outcome.fingerprints,
        "unaffected_hosts": outcome.unaffected_hosts,
        "final_hosts": outcome.final_hosts,
        "host_states": outcome.host_states,
        "evac_latencies": outcome.evac_latencies,
    }, 0.0))
    return RunResult(
        config=config.name,
        runtime=runtime,
        crashed=False,
        counters={
            "vms_placed": len(outcome.placements),
            "vms_completed": len(outcome.runtimes),
            "vms_lost": len(outcome.lost),
            "oom_kills": outcome.oom_kills,
            "host_crashes": outcome.host_crashes,
            "host_degrades": outcome.host_degrades,
            "evacuations": sum(1 for r in outcome.migrations
                               if r.kind == "evacuation"
                               and r.outcome == "completed"),
            "evac_retries": outcome.evac_retries,
        },
        phases=phases,
    )


def _survivors_payload(result: RunResult) -> dict:
    for mark in result.phases:
        if mark.name == "survivors":
            return mark.payload
    return {}


def _chaos_row(result: RunResult, baseline: RunResult | None) -> dict:
    """One figure row: survival, recovery, and the survivor check."""
    placed = result.counters.get("vms_placed", 0)
    lost = result.counters.get("vms_lost", 0)
    payload = _survivors_payload(result)
    latencies = list(payload.get("evac_latencies", {}).values())
    row = {
        "survival_rate": (placed - lost) / placed if placed else None,
        "completed": result.counters.get("vms_completed", 0),
        "lost": lost,
        "evacuations": result.counters.get("evacuations", 0),
        "evac_retries": result.counters.get("evac_retries", 0),
        "mean_evac_latency": (sum(latencies) / len(latencies)
                              if latencies else None),
        "host_crashes": result.counters.get("host_crashes", 0),
        "crashed": result.crashed,
        "slowdown": None,
        "survivors_identical": None,
        "survivors_checked": 0,
    }
    if baseline is not None and not baseline.crashed:
        if result.runtime is not None and baseline.runtime:
            row["slowdown"] = result.runtime / baseline.runtime
        base = _survivors_payload(baseline)
        unaffected = set(payload.get("unaffected_hosts", []))
        survivors = [vm for vm, host in
                     payload.get("final_hosts", {}).items()
                     if host in unaffected]
        mine = payload.get("fingerprints", {})
        theirs = base.get("fingerprints", {})
        row["survivors_checked"] = len(survivors)
        row["survivors_identical"] = all(
            mine.get(vm) == theirs.get(vm) for vm in survivors)
    return row


def assemble_cluster_chaos(sweep: Sweep,
                           results: Mapping[str, RunResult]) -> FigureResult:
    """Build the survival/recovery table and run the survivor check."""
    scale = sweep.cells[0].scale
    baselines = {
        (cell.params["policy"], cell.params["num_guests"]):
            results[cell.cell_id]
        for cell in sweep.cells if cell.params["schedule"] == "none"
    }
    series: dict = {}
    table = Table(
        f"Cluster chaos (scale=1/{scale}): fleet survival under host "
        f"crashes, four nodes",
        ["schedule", "policy", "guests", "survival", "lost",
         "evacs", "retries", "evac lat [s]", "slowdown",
         "survivors identical"],
    )
    holes: list[str] = []
    for cell in sweep.cells:
        schedule = cell.params["schedule"]
        policy = cell.params["policy"]
        n = cell.params["num_guests"]
        result = results[cell.cell_id]
        baseline = (baselines.get((policy, n))
                    if schedule != "none" else None)
        row = _chaos_row(result, baseline)
        series.setdefault(f"{policy}x{n}", {})[schedule] = row
        survival = row["survival_rate"]
        latency = row["mean_evac_latency"]
        if schedule == "none":
            identical = "-"
        elif row["survivors_identical"] is None:
            identical = "?"
        elif row["survivors_checked"] == 0:
            identical = "n/a"
        else:
            identical = ("yes" if row["survivors_identical"]
                         else "NO (BIT-DRIFT)")
        table.add_row(
            schedule, policy, n,
            "-" if survival is None else f"{survival:.0%}",
            row["lost"], row["evacuations"], row["evac_retries"],
            "-" if latency is None else round(latency, 2),
            "-" if row["slowdown"] is None else round(row["slowdown"], 2),
            identical)
        for mark in result.phases:
            if mark.name == "vm-lost":
                holes.append(
                    f"  VmLost: {cell.cell_id}: {mark.payload['vm']} "
                    f"(host {mark.payload['host']}, "
                    f"{mark.payload['attempts']} attempts)")
    rendered = table.render()
    if holes:
        rendered += ("\nExplicit figure holes (VMs recovery could not "
                     "re-home):\n" + "\n".join(holes))
    return FigureResult("cluster-chaos", series, rendered)


def run_cluster_chaos_experiment(
    *,
    scale: int = 1,
    schedules: Sequence[str] = tuple(SCHEDULES),
    policies: Sequence[str] = CHAOS_POLICIES,
    fleet_sizes: Sequence[int] = CHAOS_FLEET_SIZES,
    executor=None, store=None, resume: bool = False,
) -> FigureResult:
    """Regenerate the fleet-survival table."""
    sweep = build_cluster_chaos_sweep(
        scale=scale, schedules=schedules, policies=policies,
        fleet_sizes=fleet_sizes)
    outcome = run_sweep(sweep, executor=executor, store=store,
                        resume=resume)
    return finish_figure(
        assemble_cluster_chaos(sweep, outcome.results), outcome, store)
