"""Table 2: the VMware-profile experiment.

The paper runs a 1 GB sequential file read inside a Linux guest on
VMware Workstation 9 (512 MB host, 440 MB guest, 350 MB reservation)
with the balloon enabled vs disabled, showing that disabling it more
than triples the runtime and roughly quadruples swap traffic -- i.e.
the pathologies are not KVM-specific.

Our VMware-like profile differs from the KVM profile in the ways the
paper implies matter: no asynchronous page faults, and a hosted
(Workstation) I/O path.  The balloon-enabled row statically balloons
the guest down to its reservation; the disabled row leaves the guest
unaware while the host enforces the same grant uncooperatively.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

from repro.config import (
    DiskConfig,
    HostConfig,
    HypervisorKind,
    MachineConfig,
)
from repro.exec.executor import finish_figure, run_sweep
from repro.exec.spec import CellSpec, Sweep, fault_params
from repro.experiments.runner import (
    ConfigName,
    FigureResult,
    RunResult,
    SingleVmExperiment,
    scaled_guest_config,
    standard_configs,
)
from repro.metrics.report import Table
from repro.units import mib_pages
from repro.workloads.sysbench import SysbenchFileRead

#: Row label -> configuration, in the paper's column order.
TABLE2_CASES = (
    ("balloon enabled", ConfigName.BALLOON_BASELINE),
    ("balloon disabled", ConfigName.BASELINE),
)


def vmware_machine_config(scale: int) -> MachineConfig:
    """The Table 2 host: a VMware-Workstation-like profile."""
    return MachineConfig(
        host=HostConfig(
            total_memory_pages=mib_pages(512 / scale),
            swap_size_pages=mib_pages(4096 / scale),
            async_page_faults=False,
            kind=HypervisorKind.VMWARE,
        ),
        disk=DiskConfig(),
    )


def build_table2_sweep(*, scale: int = 1) -> Sweep:
    """Declare Table 2's two cells: balloon enabled vs disabled."""
    faults = fault_params()
    cells = tuple(
        CellSpec(
            experiment_id="table2",
            cell_id=label,
            scale=scale,
            config=name.value,
            params={"label": label},
            faults=faults,
        )
        for label, name in TABLE2_CASES)
    return Sweep("table2", cells)


def table2_cell(spec: CellSpec) -> RunResult:
    """Run the 1 GB sequential read on the VMware-like profile."""
    scale = spec.scale
    experiment = SingleVmExperiment(
        guest_mib=440 / scale,
        actual_mib=360 / scale,
        machine_config=dataclasses.replace(
            vmware_machine_config(scale), seed=spec.seed),
        guest_config=scaled_guest_config(440, scale),
        files=[("sysbench.dat", mib_pages(1024 / scale))],
    )
    config = standard_configs([ConfigName(spec.config)])[0]
    workload = SysbenchFileRead(
        file_pages=mib_pages(1024 / scale), iterations=1)
    return experiment.run(config, workload)


def assemble_table2(sweep: Sweep,
                    results: Mapping[str, RunResult]) -> FigureResult:
    """Build Table 2's metric rows from cells."""
    scale = sweep.cells[0].scale
    rows: dict = {}
    for cell in sweep.cells:
        result = results[cell.cell_id]
        counters = result.counters
        rows[cell.params["label"]] = {
            "runtime": result.runtime,
            "swap_read_sectors": counters.get("swap_sectors_read", 0),
            "swap_write_sectors": counters.get("swap_sectors_written", 0),
            "major_faults": (counters.get("guest_context_faults", 0)
                             + counters.get("host_context_faults", 0)),
        }

    table = Table(
        f"Table 2 (scale=1/{scale}): 1GB sequential read on the "
        f"VMware-like profile (440MB guest, 360MB grant)",
        ["metric", "balloon enabled", "balloon disabled"],
    )
    table.add_row("runtime (sec)",
                  round(rows["balloon enabled"]["runtime"], 1),
                  round(rows["balloon disabled"]["runtime"], 1))
    for metric in ("swap_read_sectors", "swap_write_sectors",
                   "major_faults"):
        table.add_row(metric,
                      rows["balloon enabled"][metric],
                      rows["balloon disabled"][metric])
    return FigureResult("table2", rows, table.render())


def run_table2(*, scale: int = 1, executor=None, store=None,
               resume: bool = False) -> FigureResult:
    """Regenerate Table 2: balloon enabled vs disabled on VMware."""
    sweep = build_table2_sweep(scale=scale)
    outcome = run_sweep(sweep, executor=executor, store=store,
                        resume=resume)
    return finish_figure(
        assemble_table2(sweep, outcome.results), outcome, store)
