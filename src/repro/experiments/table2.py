"""Table 2: the VMware-profile experiment.

The paper runs a 1 GB sequential file read inside a Linux guest on
VMware Workstation 9 (512 MB host, 440 MB guest, 350 MB reservation)
with the balloon enabled vs disabled, showing that disabling it more
than triples the runtime and roughly quadruples swap traffic -- i.e.
the pathologies are not KVM-specific.

Our VMware-like profile differs from the KVM profile in the ways the
paper implies matter: no asynchronous page faults, and a hosted
(Workstation) I/O path.  The balloon-enabled row statically balloons
the guest down to its reservation; the disabled row leaves the guest
unaware while the host enforces the same grant uncooperatively.
"""

from __future__ import annotations

from repro.config import (
    DiskConfig,
    HostConfig,
    HypervisorKind,
    MachineConfig,
)
from repro.experiments.runner import (
    ConfigName,
    FigureResult,
    SingleVmExperiment,
    scaled_guest_config,
    standard_configs,
)
from repro.metrics.report import Table
from repro.units import mib_pages
from repro.workloads.sysbench import SysbenchFileRead


def vmware_machine_config(scale: int) -> MachineConfig:
    """The Table 2 host: a VMware-Workstation-like profile."""
    return MachineConfig(
        host=HostConfig(
            total_memory_pages=mib_pages(512 / scale),
            swap_size_pages=mib_pages(4096 / scale),
            async_page_faults=False,
            kind=HypervisorKind.VMWARE,
        ),
        disk=DiskConfig(),
    )


def run_table2(*, scale: int = 1) -> FigureResult:
    """Regenerate Table 2: balloon enabled vs disabled on VMware."""
    experiment = SingleVmExperiment(
        guest_mib=440 / scale,
        actual_mib=360 / scale,
        machine_config=vmware_machine_config(scale),
        guest_config=scaled_guest_config(440, scale),
        files=[("sysbench.dat", mib_pages(1024 / scale))],
    )
    rows: dict = {}
    cases = {
        "balloon enabled": ConfigName.BALLOON_BASELINE,
        "balloon disabled": ConfigName.BASELINE,
    }
    for label, name in cases.items():
        spec = standard_configs([name])[0]
        workload = SysbenchFileRead(
            file_pages=mib_pages(1024 / scale), iterations=1)
        result = experiment.run(spec, workload)
        counters = result.counters
        rows[label] = {
            "runtime": result.runtime,
            "swap_read_sectors": counters.get("swap_sectors_read", 0),
            "swap_write_sectors": counters.get("swap_sectors_written", 0),
            "major_faults": (counters.get("guest_context_faults", 0)
                             + counters.get("host_context_faults", 0)),
        }

    table = Table(
        f"Table 2 (scale=1/{scale}): 1GB sequential read on the "
        f"VMware-like profile (440MB guest, 360MB grant)",
        ["metric", "balloon enabled", "balloon disabled"],
    )
    table.add_row("runtime (sec)",
                  round(rows["balloon enabled"]["runtime"], 1),
                  round(rows["balloon disabled"]["runtime"], 1))
    for metric in ("swap_read_sectors", "swap_write_sectors",
                   "major_faults"):
        table.add_row(metric,
                      rows["balloon enabled"][metric],
                      rows["balloon disabled"][metric])
    return FigureResult("table2", rows, table.render())
