"""Shared experiment machinery.

The paper evaluates five configurations (Section 5): *baseline*
(uncooperative swapping only), *balloon* (+ baseline fallback),
*mapper* (VSwapper without the Preventer), *vswapper* (both
components), and *balloon + vswapper*.  :func:`standard_configs` builds
them; :class:`SingleVmExperiment` runs one workload under one of them
with a fixed actual-memory grant (the Section 5.1 controlled setup).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.config import (
    GuestConfig,
    MachineConfig,
    VmConfig,
    VSwapperConfig,
)
from repro.driver import VmDriver
from repro.errors import (
    ConsistencyError,
    DiskError,
    ExperimentError,
    FaultError,
    GuestOomKill,
    HostError,
    InvariantViolation,
    SimulationError,
)
from repro.machine import Machine
from repro.metrics.timeline import Timeline
from repro.trace.events import TraceData
from repro.units import mib_pages
from repro.workloads.base import Workload


class ConfigName(str, enum.Enum):
    """The paper's evaluated configurations."""

    BASELINE = "baseline"
    BALLOON_BASELINE = "balloon+base"
    MAPPER = "mapper"
    VSWAPPER = "vswapper"
    BALLOON_VSWAPPER = "balloon+vswap"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ConfigSpec:
    """How one named configuration is realized."""

    name: ConfigName
    vswapper: VSwapperConfig
    ballooned: bool


def standard_configs(
    names: Sequence[ConfigName] | None = None) -> list[ConfigSpec]:
    """The evaluated configuration matrix, in the paper's order."""
    all_specs = [
        ConfigSpec(ConfigName.BASELINE, VSwapperConfig.off(), False),
        ConfigSpec(ConfigName.BALLOON_BASELINE, VSwapperConfig.off(), True),
        ConfigSpec(ConfigName.MAPPER, VSwapperConfig.mapper_only(), False),
        ConfigSpec(ConfigName.VSWAPPER, VSwapperConfig.full(), False),
        ConfigSpec(ConfigName.BALLOON_VSWAPPER, VSwapperConfig.full(), True),
    ]
    if names is None:
        return all_specs
    wanted = set(names)
    return [s for s in all_specs if s.name in wanted]


#: Version of the persisted result schema.  Bumped whenever the shape
#: or semantics of RunResult/FigureResult change; the result store
#: folds it into every cache key, so stale entries become cache misses
#: instead of wrong answers.
RESULT_SCHEMA_VERSION = 1


def _require_schema(data: dict, kind: str) -> None:
    found = data.get("schema")
    if found != RESULT_SCHEMA_VERSION:
        raise ExperimentError(
            f"{kind} schema version {found!r} != {RESULT_SCHEMA_VERSION} "
            f"(refusing to deserialize)")


@dataclass
class PhaseMark:
    """One MarkPhase observation, with a counter snapshot at that time."""

    name: str
    payload: dict
    time: float
    counters: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready form (payloads carry primitives only)."""
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "name": self.name,
            "payload": self.payload,
            "time": self.time,
            "counters": self.counters,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PhaseMark":
        """Inverse of :meth:`to_dict`."""
        _require_schema(data, "PhaseMark")
        return cls(
            name=data["name"],
            payload=dict(data["payload"]),
            time=data["time"],
            counters=dict(data["counters"]),
        )


#: Fault-induced failures the runner reports as a *crashed* cell (the
#: paper's missing OOM bars) instead of aborting the whole sweep.
#: Harness bugs (ExperimentError, ConfigError) still propagate.
FAULT_INDUCED_ERRORS = (
    FaultError, HostError, ConsistencyError, DiskError, SimulationError)


@dataclass
class RunResult:
    """Outcome of one workload run under one configuration."""

    config: ConfigName
    runtime: float | None
    crashed: bool
    counters: dict[str, int]
    phases: list[PhaseMark] = field(default_factory=list)
    timeline: Timeline | None = None
    #: A fault circuit breaker dropped the VM to baseline swapping
    #: mid-run (the run still completed, in degraded mode).
    degraded: bool = False
    #: ``"ErrorType: message"`` when ``crashed`` came from an exception
    #: the runner caught (None for clean runs and OOM-kill crashes).
    crash_reason: str | None = None
    #: Structured event trace; recorded only under ``--trace`` (None
    #: otherwise, and None for results cached from untraced runs).
    trace: TraceData | None = None

    @property
    def status(self) -> str:
        """Cell status for sweep tables: ok / degraded / crashed."""
        if self.crashed:
            return "crashed"
        return "degraded" if self.degraded else "ok"

    def phase_times(self, name: str) -> list[float]:
        """Times of every occurrence of phase ``name``."""
        return [p.time for p in self.phases if p.name == name]

    def _check_iteration_marks(self, starts: int, ends: int) -> None:
        """A crashed run may leave its final iteration open (started but
        never finished); any other imbalance is a harness bug."""
        if starts == ends:
            return
        if self.crashed and starts == ends + 1:
            return
        raise ExperimentError(
            f"unbalanced iteration marks: {starts} starts, {ends} ends")

    def iteration_durations(self) -> list[float]:
        """Durations of *completed* iteration-start/iteration-end pairs."""
        starts = self.phase_times("iteration-start")
        ends = self.phase_times("iteration-end")
        self._check_iteration_marks(len(starts), len(ends))
        return [e - s for s, e in zip(starts, ends)]

    def iteration_counter_deltas(self, counter: str) -> list[int]:
        """Per-iteration change of one counter (Figure 9b--9d series)."""
        starts = [p for p in self.phases if p.name == "iteration-start"]
        ends = [p for p in self.phases if p.name == "iteration-end"]
        self._check_iteration_marks(len(starts), len(ends))
        return [
            e.counters.get(counter, 0) - s.counters.get(counter, 0)
            for s, e in zip(starts, ends)
        ]

    def to_dict(self, *, include_timeline: bool = True) -> dict:
        """JSON-ready form.

        ``include_timeline=False`` opts the (potentially large) sampled
        timeline out; the round trip then yields ``timeline=None``.
        """
        timeline = None
        if include_timeline and self.timeline is not None:
            timeline = self.timeline.to_dict()
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "config": self.config.value,
            "runtime": self.runtime,
            "crashed": self.crashed,
            "counters": self.counters,
            "phases": [p.to_dict() for p in self.phases],
            "timeline": timeline,
            "degraded": self.degraded,
            "crash_reason": self.crash_reason,
            "trace": self.trace.to_dict() if self.trace is not None
            else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        """Inverse of :meth:`to_dict`."""
        _require_schema(data, "RunResult")
        timeline = (Timeline.from_dict(data["timeline"])
                    if data.get("timeline") is not None else None)
        return cls(
            config=ConfigName(data["config"]),
            runtime=data["runtime"],
            crashed=data["crashed"],
            counters=dict(data["counters"]),
            phases=[PhaseMark.from_dict(p) for p in data["phases"]],
            timeline=timeline,
            degraded=data["degraded"],
            crash_reason=data.get("crash_reason"),
            trace=(TraceData.from_dict(data["trace"])
                   if data.get("trace") is not None else None),
        )


@dataclass(frozen=True)
class SweepStats:
    """Execution accounting for one sweep (reported, never persisted)."""

    experiment_id: str
    cells: int
    executed: int
    cached: int
    #: Summed per-cell wall time of the cells executed this run.
    wall_seconds: float = 0.0
    #: Cells the supervisor had to re-run at least once (they may still
    #: have succeeded).
    retried: int = 0
    #: Cells quarantined as typed CellFailure records after retries.
    quarantined: int = 0
    #: Summed wall time the store recorded for cache-hit cells -- what
    #: regenerating them originally cost, so resume summaries do not
    #: read as near-zero "run time".
    cached_wall_seconds: float = 0.0
    #: Cache-hit cells whose stored result carries no trace while this
    #: run asked for tracing (the "trace unavailable (cached)" note).
    cached_traceless: int = 0

    @property
    def all_cached(self) -> bool:
        """Whether a resume skipped every cell (none failed either)."""
        return self.cells > 0 and self.executed == 0 \
            and self.quarantined == 0


@dataclass
class FigureResult:
    """A regenerated table/figure: raw series plus rendered text.

    ``series`` must hold JSON-serializable data only (string keys,
    primitive leaves), so every figure persists faithfully through the
    result store.
    """

    figure_id: str
    series: dict
    rendered: str
    #: How the sweep behind this figure executed (cache hits etc.).
    #: Presentation metadata: excluded from equality and serialization.
    stats: SweepStats | None = field(default=None, compare=False)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.rendered

    def to_dict(self) -> dict:
        """JSON-ready form (``stats`` intentionally omitted)."""
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "figure_id": self.figure_id,
            "series": self.series,
            "rendered": self.rendered,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FigureResult":
        """Inverse of :meth:`to_dict`."""
        _require_schema(data, "FigureResult")
        return cls(
            figure_id=data["figure_id"],
            series=data["series"],
            rendered=data["rendered"],
        )


def scaled_guest_config(guest_mib: float, scale: int,
                        **overrides) -> GuestConfig:
    """A GuestConfig with memory *and* kernel reserve scaled together.

    Keeping the reserve proportional preserves OOM crossover points
    when experiments run at reduced scale.
    """
    defaults = dict(
        memory_pages=mib_pages(guest_mib / scale),
        kernel_reserve_pages=mib_pages(16 / scale),
        guest_swap_pages=mib_pages(1024 / scale),
    )
    defaults.update(overrides)
    return GuestConfig(**defaults)


class SingleVmExperiment:
    """Controlled-memory-assignment harness (Section 5.1).

    One guest that believes it has ``guest_mib`` of memory while the
    host actually grants ``actual_mib``: balloon configurations inform
    the guest by statically inflating ``guest - actual``; uncooperative
    configurations enforce it with a resident limit.
    """

    def __init__(
        self,
        *,
        guest_mib: float = 512,
        actual_mib: float = 100,
        machine_config: MachineConfig | None = None,
        guest_config: GuestConfig | None = None,
        files: Sequence[tuple[str, int]] = (),
        sample_interval: float | None = None,
        gauges: dict[str, Callable[["Machine"], float]] | None = None,
        boot: bool = True,
        balloon_deficit_pages: int = 0,
    ) -> None:
        self.guest_pages = mib_pages(guest_mib)
        self.actual_pages = mib_pages(actual_mib)
        if self.actual_pages > self.guest_pages:
            raise ExperimentError(
                f"actual memory ({actual_mib} MiB) exceeds guest memory "
                f"({guest_mib} MiB)")
        self.machine_config = machine_config or MachineConfig()
        self.guest_config = guest_config or GuestConfig(
            memory_pages=self.guest_pages)
        self.files = list(files)
        self.sample_interval = sample_interval
        self.gauges = gauges or {}
        self.boot = boot
        #: Pages by which a static balloon falls short of covering the
        #: whole grant gap (models reservations below guest size, as in
        #: the Table 2 VMware setup): the host must still swap the rest.
        self.balloon_deficit_pages = balloon_deficit_pages

    def run(self, spec: ConfigSpec, workload: Workload) -> RunResult:
        """Execute ``workload`` under configuration ``spec``."""
        machine = Machine(self.machine_config)
        guest_cfg = self.guest_config
        if guest_cfg.memory_pages != self.guest_pages:
            raise ExperimentError(
                "guest_config.memory_pages disagrees with guest_mib")
        balloon = (max(0, self.guest_pages - self.actual_pages
                       - self.balloon_deficit_pages)
                   if spec.ballooned else 0)
        vm_config = VmConfig(
            name="vm0",
            guest=guest_cfg,
            vswapper=spec.vswapper,
            resident_limit_pages=self.actual_pages,
        )
        phases: list[PhaseMark] = []
        vm = machine.create_vm(vm_config)
        if self.boot:
            # Uptime history first, then the balloon policy -- the
            # order a real deployment experiences them in.
            machine.boot_guest(vm)
        try:
            if balloon:
                machine.apply_static_balloon(vm, balloon)
        except GuestOomKill as error:
            # Over-ballooning killed the workload during static setup.
            return RunResult(spec.name, None, True, {}, phases,
                             crash_reason=f"GuestOomKill: {error}",
                             trace=machine.trace.finish())

        def on_phase(name: str, payload: dict, time: float) -> None:
            phases.append(
                PhaseMark(name, payload, time, vm.counters.snapshot()))
        for file_name, file_pages in self.files:
            vm.guest.fs.create_file(file_name, file_pages)

        timeline = None
        if self.sample_interval is not None:
            timeline = Timeline()
            self._register_gauges(timeline, machine, vm)
            machine.engine.add_periodic(
                self.sample_interval,
                lambda: timeline.sample_all(machine.now))

        driver = VmDriver(machine, vm, workload, phase_callback=on_phase)
        try:
            self._run_to_completion(machine, driver)
        except InvariantViolation:
            # Derives SimulationError but must NOT become a crashed
            # cell: a failed self-check is a simulator bug, and hiding
            # it inside a figure hole defeats the auditor.  Propagate so
            # the supervisor quarantines it (kind ``invariant``) or an
            # unsupervised run aborts loudly.
            machine.engine.stop()
            raise
        except FAULT_INDUCED_ERRORS as error:
            # An injected fault (or watchdog) killed this configuration:
            # report the cell as crashed rather than aborting the sweep.
            machine.engine.stop()
            return RunResult(
                spec.name, None, True, vm.counters.snapshot(), phases,
                timeline, degraded=vm.degraded,
                crash_reason=f"{type(error).__name__}: {error}",
                trace=machine.trace.finish())
        runtime = None if driver.crashed else driver.runtime
        return RunResult(
            spec.name, runtime, driver.crashed,
            vm.counters.snapshot(), phases, timeline, degraded=vm.degraded,
            trace=machine.trace.finish())

    def _register_gauges(self, timeline: Timeline, machine: Machine,
                         vm) -> None:
        timeline.register(
            "guest_page_cache", lambda: vm.guest.cache.cached_pages)
        timeline.register(
            "guest_page_cache_clean", lambda: vm.guest.cache.clean_pages)
        timeline.register(
            "mapper_tracked",
            lambda: (vm.mapper.tracked_pages if vm.mapper else 0))
        for name, gauge in self.gauges.items():
            timeline.register(name, lambda gauge=gauge: gauge(machine))

    @staticmethod
    def _run_to_completion(machine: Machine, driver: VmDriver) -> None:
        """Run the engine until the driver finishes.

        Periodic tasks (timeline sampling) would keep the queue alive
        forever, so the engine is stopped once the workload is done.
        """
        # Run in slices: cheap because the engine just drains events.
        while not driver.done:
            if machine.engine.pending_events() == 0:
                raise ExperimentError("engine drained before completion")
            machine.engine.run(until=machine.now + 30.0)
        machine.engine.stop()
