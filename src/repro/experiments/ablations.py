"""Ablation studies for the design choices DESIGN.md calls out.

These go beyond the paper's figures and quantify:

* the **hardware dirty bit** the paper anticipates from Haswell
  (Section 3 footnote, Section 7) -- how much of the silent-write
  traffic a guest-page dirty bit alone would remove;
* **SSD swap devices** -- the paper remarks VSwapper's write
  elimination "makes it beneficial for systems that employ SSDs";
* the Preventer's **emulation window and page cap** (the empirically
  chosen 1 ms / 32 pages, Section 4.2);
* the host's **swap readahead cluster size** interaction with decayed
  sequentiality.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.config import DiskConfig, HostConfig, MachineConfig, VSwapperConfig
from repro.experiments.runner import (
    ConfigName,
    ConfigSpec,
    FigureResult,
    SingleVmExperiment,
    scaled_guest_config,
    standard_configs,
)
from repro.metrics.report import Table
from repro.units import mib_pages
from repro.workloads.alloctouch import SysbenchThenAlloc
from repro.workloads.sysbench import SysbenchFileRead


def _sysbench_experiment(scale: int,
                         machine_config: MachineConfig | None = None,
                         ) -> SingleVmExperiment:
    return SingleVmExperiment(
        guest_mib=512 / scale,
        actual_mib=100 / scale,
        machine_config=machine_config or MachineConfig(),
        guest_config=scaled_guest_config(512, scale),
        files=[("sysbench.dat", mib_pages(200 / scale))],
    )


def run_dirty_bit_ablation(*, scale: int = 1) -> FigureResult:
    """Baseline swapping with and without a guest-page dirty bit."""
    rows: dict = {}
    for label, hw_bit in (("no dirty bit (2013 hw)", False),
                          ("hardware dirty bit (Haswell)", True)):
        machine_config = MachineConfig(
            host=HostConfig(hardware_dirty_bit=hw_bit))
        experiment = _sysbench_experiment(scale, machine_config)
        spec = standard_configs([ConfigName.BASELINE])[0]
        result = experiment.run(spec, SysbenchFileRead(
            file_pages=mib_pages(200 / scale), iterations=4))
        rows[label] = {
            "runtime": result.runtime,
            "swap_sectors_written": result.counters.get(
                "swap_sectors_written"),
            "silent_swap_writes": result.counters.get("silent_swap_writes"),
        }
    table = Table(
        f"Ablation (scale=1/{scale}): hardware dirty bit for guest pages "
        f"(baseline swapping, sysbench x4)",
        ["configuration", "runtime [s]", "swap sectors written",
         "silent writes"],
    )
    for label, row in rows.items():
        table.add_row(label, round(row["runtime"], 1),
                      row["swap_sectors_written"],
                      row["silent_swap_writes"])
    return FigureResult("ablation-dirty-bit", rows, table.render())


def run_ssd_ablation(*, scale: int = 1) -> FigureResult:
    """Baseline vs VSwapper on HDD and on SSD swap devices."""
    rows: dict = {}
    for disk_kind in ("hdd", "ssd"):
        machine_config = MachineConfig(disk=DiskConfig(kind=disk_kind))
        experiment = _sysbench_experiment(scale, machine_config)
        for name in (ConfigName.BASELINE, ConfigName.VSWAPPER):
            spec = standard_configs([name])[0]
            result = experiment.run(spec, SysbenchFileRead(
                file_pages=mib_pages(200 / scale), iterations=4))
            rows[(disk_kind, name.value)] = {
                "runtime": result.runtime,
                "swap_sectors_written": result.counters.get(
                    "swap_sectors_written"),
            }
    table = Table(
        f"Ablation (scale=1/{scale}): disk technology (sysbench x4)",
        ["disk", "config", "runtime [s]", "swap sectors written"],
    )
    for (disk_kind, config), row in rows.items():
        table.add_row(disk_kind, config, round(row["runtime"], 1),
                      row["swap_sectors_written"])
    return FigureResult("ablation-ssd", rows, table.render())


def run_preventer_param_ablation(
    *,
    scale: int = 1,
    windows: Sequence[float] = (0.25e-3, 1e-3, 4e-3),
    caps: Sequence[int] = (8, 32, 128),
) -> FigureResult:
    """Sensitivity of the Preventer to its window and page cap."""
    rows: dict = {}
    for window in windows:
        for cap in caps:
            vswapper = replace(
                VSwapperConfig.full(),
                preventer_window=window,
                preventer_max_pages=cap,
            )
            spec = ConfigSpec(ConfigName.VSWAPPER, vswapper, False)
            experiment = _sysbench_experiment(scale)
            result = experiment.run(spec, SysbenchThenAlloc(
                file_pages=mib_pages(200 / scale),
                alloc_pages=mib_pages(200 / scale)))
            rows[(window, cap)] = {
                "runtime": result.runtime,
                "remaps": result.counters.get("preventer_remaps"),
                "merges": result.counters.get("preventer_merges"),
            }
    table = Table(
        f"Ablation (scale=1/{scale}): Preventer window/cap "
        f"(sysbench-then-alloc)",
        ["window [ms]", "page cap", "runtime [s]", "remaps", "merges"],
    )
    for (window, cap), row in rows.items():
        table.add_row(window * 1e3, cap, round(row["runtime"], 2),
                      row["remaps"], row["merges"])
    return FigureResult("ablation-preventer", rows, table.render())


def run_cluster_ablation(
    *,
    scale: int = 1,
    clusters: Sequence[int] = (1, 4, 8, 16, 32),
) -> FigureResult:
    """Swap readahead cluster size vs baseline decay."""
    rows: dict = {}
    for cluster in clusters:
        machine_config = MachineConfig(
            host=HostConfig(swap_cluster_pages=cluster))
        experiment = _sysbench_experiment(scale, machine_config)
        spec = standard_configs([ConfigName.BASELINE])[0]
        result = experiment.run(spec, SysbenchFileRead(
            file_pages=mib_pages(200 / scale), iterations=4))
        rows[cluster] = {
            "runtime": result.runtime,
            "guest_faults": result.counters.get("guest_context_faults"),
            "swap_sectors_read": result.counters.get("swap_sectors_read"),
        }
    table = Table(
        f"Ablation (scale=1/{scale}): swap readahead cluster size "
        f"(baseline, sysbench x4)",
        ["cluster [pages]", "runtime [s]", "guest faults",
         "swap sectors read"],
    )
    for cluster, row in rows.items():
        table.add_row(cluster, round(row["runtime"], 1),
                      row["guest_faults"], row["swap_sectors_read"])
    return FigureResult("ablation-cluster", rows, table.render())
