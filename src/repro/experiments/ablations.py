"""Ablation studies for the design choices DESIGN.md calls out.

These go beyond the paper's figures and quantify:

* the **hardware dirty bit** the paper anticipates from Haswell
  (Section 3 footnote, Section 7) -- how much of the silent-write
  traffic a guest-page dirty bit alone would remove;
* **SSD swap devices** -- the paper remarks VSwapper's write
  elimination "makes it beneficial for systems that employ SSDs";
* the Preventer's **emulation window and page cap** (the empirically
  chosen 1 ms / 32 pages, Section 4.2);
* the host's **swap readahead cluster size** interaction with decayed
  sequentiality.

Series keys are JSON-safe strings: ``"hdd/baseline"`` for the SSD
grid, ``"1ms/32"`` for the Preventer grid, ``"8"`` for cluster sizes.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping, Sequence

from repro.config import DiskConfig, HostConfig, MachineConfig, VSwapperConfig
from repro.exec.executor import finish_figure, run_sweep
from repro.exec.spec import CellSpec, Sweep, fault_params
from repro.experiments.runner import (
    ConfigName,
    ConfigSpec,
    FigureResult,
    RunResult,
    SingleVmExperiment,
    scaled_guest_config,
    standard_configs,
)
from repro.metrics.report import Table
from repro.units import mib_pages
from repro.workloads.alloctouch import SysbenchThenAlloc
from repro.workloads.sysbench import SysbenchFileRead

DIRTY_BIT_CASES = (
    ("no dirty bit (2013 hw)", False),
    ("hardware dirty bit (Haswell)", True),
)

SSD_DISK_KINDS = ("hdd", "ssd")
SSD_CONFIGS = (ConfigName.BASELINE, ConfigName.VSWAPPER)

DEFAULT_PREVENTER_WINDOWS = (0.25e-3, 1e-3, 4e-3)
DEFAULT_PREVENTER_CAPS = (8, 32, 128)

DEFAULT_CLUSTERS = (1, 4, 8, 16, 32)


def _sysbench_experiment(scale: int,
                         machine_config: MachineConfig | None = None,
                         ) -> SingleVmExperiment:
    return SingleVmExperiment(
        guest_mib=512 / scale,
        actual_mib=100 / scale,
        machine_config=machine_config or MachineConfig(),
        guest_config=scaled_guest_config(512, scale),
        files=[("sysbench.dat", mib_pages(200 / scale))],
    )


def build_dirty_bit_sweep(*, scale: int = 1) -> Sweep:
    """Declare the dirty-bit pair: 2013 hardware vs Haswell."""
    faults = fault_params()
    cells = tuple(
        CellSpec(
            experiment_id="ablation-dirty-bit",
            cell_id="hw-dirty-bit" if hw_bit else "no-dirty-bit",
            scale=scale,
            config=ConfigName.BASELINE.value,
            params={"hardware_dirty_bit": hw_bit, "label": label},
            faults=faults,
        )
        for label, hw_bit in DIRTY_BIT_CASES)
    return Sweep("ablation-dirty-bit", cells)


def dirty_bit_cell(spec: CellSpec) -> RunResult:
    """Baseline swapping with/without a guest-page dirty bit."""
    scale = spec.scale
    machine_config = MachineConfig(
        seed=spec.seed,
        host=HostConfig(hardware_dirty_bit=spec.params["hardware_dirty_bit"]))
    experiment = _sysbench_experiment(scale, machine_config)
    config = standard_configs([ConfigName(spec.config)])[0]
    return experiment.run(config, SysbenchFileRead(
        file_pages=mib_pages(200 / scale), iterations=4))


def assemble_dirty_bit(sweep: Sweep,
                       results: Mapping[str, RunResult]) -> FigureResult:
    """Build the dirty-bit ablation table from cells."""
    scale = sweep.cells[0].scale
    rows: dict = {}
    for cell in sweep.cells:
        result = results[cell.cell_id]
        rows[cell.params["label"]] = {
            "runtime": result.runtime,
            "swap_sectors_written": result.counters.get(
                "swap_sectors_written"),
            "silent_swap_writes": result.counters.get("silent_swap_writes"),
        }
    table = Table(
        f"Ablation (scale=1/{scale}): hardware dirty bit for guest pages "
        f"(baseline swapping, sysbench x4)",
        ["configuration", "runtime [s]", "swap sectors written",
         "silent writes"],
    )
    for label, row in rows.items():
        table.add_row(label, round(row["runtime"], 1),
                      row["swap_sectors_written"],
                      row["silent_swap_writes"])
    return FigureResult("ablation-dirty-bit", rows, table.render())


def run_dirty_bit_ablation(*, scale: int = 1, executor=None, store=None,
                           resume: bool = False) -> FigureResult:
    """Baseline swapping with and without a guest-page dirty bit."""
    sweep = build_dirty_bit_sweep(scale=scale)
    outcome = run_sweep(sweep, executor=executor, store=store,
                        resume=resume)
    return finish_figure(
        assemble_dirty_bit(sweep, outcome.results), outcome, store)


def build_ssd_sweep(*, scale: int = 1) -> Sweep:
    """Declare the 2x2 grid: disk technology x configuration."""
    faults = fault_params()
    cells = tuple(
        CellSpec(
            experiment_id="ablation-ssd",
            cell_id=f"{disk_kind}/{name.value}",
            scale=scale,
            config=name.value,
            params={"disk_kind": disk_kind},
            faults=faults,
        )
        for disk_kind in SSD_DISK_KINDS
        for name in SSD_CONFIGS)
    return Sweep("ablation-ssd", cells)


def ssd_cell(spec: CellSpec) -> RunResult:
    """Run sysbench x4 on one (disk technology, config) cell."""
    scale = spec.scale
    machine_config = MachineConfig(
        seed=spec.seed,
        disk=DiskConfig(kind=spec.params["disk_kind"]))
    experiment = _sysbench_experiment(scale, machine_config)
    config = standard_configs([ConfigName(spec.config)])[0]
    return experiment.run(config, SysbenchFileRead(
        file_pages=mib_pages(200 / scale), iterations=4))


def assemble_ssd(sweep: Sweep,
                 results: Mapping[str, RunResult]) -> FigureResult:
    """Build the disk-technology ablation table from cells."""
    scale = sweep.cells[0].scale
    rows: dict = {}
    for cell in sweep.cells:
        result = results[cell.cell_id]
        rows[cell.cell_id] = {
            "runtime": result.runtime,
            "swap_sectors_written": result.counters.get(
                "swap_sectors_written"),
        }
    table = Table(
        f"Ablation (scale=1/{scale}): disk technology (sysbench x4)",
        ["disk", "config", "runtime [s]", "swap sectors written"],
    )
    for cell in sweep.cells:
        row = rows[cell.cell_id]
        table.add_row(cell.params["disk_kind"], cell.config,
                      round(row["runtime"], 1),
                      row["swap_sectors_written"])
    return FigureResult("ablation-ssd", rows, table.render())


def run_ssd_ablation(*, scale: int = 1, executor=None, store=None,
                     resume: bool = False) -> FigureResult:
    """Baseline vs VSwapper on HDD and on SSD swap devices."""
    sweep = build_ssd_sweep(scale=scale)
    outcome = run_sweep(sweep, executor=executor, store=store,
                        resume=resume)
    return finish_figure(
        assemble_ssd(sweep, outcome.results), outcome, store)


def _preventer_key(window: float, cap: int) -> str:
    return f"{window * 1e3:g}ms/{cap}"


def build_preventer_sweep(
    *,
    scale: int = 1,
    windows: Sequence[float] = DEFAULT_PREVENTER_WINDOWS,
    caps: Sequence[int] = DEFAULT_PREVENTER_CAPS,
) -> Sweep:
    """Declare the window x cap sensitivity grid."""
    faults = fault_params()
    cells = tuple(
        CellSpec(
            experiment_id="ablation-preventer",
            cell_id=_preventer_key(window, cap),
            scale=scale,
            config=ConfigName.VSWAPPER.value,
            params={"window": window, "cap": cap},
            faults=faults,
        )
        for window in windows
        for cap in caps)
    return Sweep("ablation-preventer", cells)


def preventer_cell(spec: CellSpec) -> RunResult:
    """Run sysbench-then-alloc under one (window, cap) Preventer."""
    scale = spec.scale
    vswapper = replace(
        VSwapperConfig.full(),
        preventer_window=spec.params["window"],
        preventer_max_pages=spec.params["cap"],
    )
    config = ConfigSpec(ConfigName(spec.config), vswapper, False)
    experiment = _sysbench_experiment(scale, MachineConfig(seed=spec.seed))
    return experiment.run(config, SysbenchThenAlloc(
        file_pages=mib_pages(200 / scale),
        alloc_pages=mib_pages(200 / scale)))


def assemble_preventer(sweep: Sweep,
                       results: Mapping[str, RunResult]) -> FigureResult:
    """Build the Preventer sensitivity table from cells."""
    scale = sweep.cells[0].scale
    rows: dict = {}
    for cell in sweep.cells:
        result = results[cell.cell_id]
        rows[cell.cell_id] = {
            "runtime": result.runtime,
            "remaps": result.counters.get("preventer_remaps"),
            "merges": result.counters.get("preventer_merges"),
        }
    table = Table(
        f"Ablation (scale=1/{scale}): Preventer window/cap "
        f"(sysbench-then-alloc)",
        ["window [ms]", "page cap", "runtime [s]", "remaps", "merges"],
    )
    for cell in sweep.cells:
        row = rows[cell.cell_id]
        table.add_row(cell.params["window"] * 1e3, cell.params["cap"],
                      round(row["runtime"], 2),
                      row["remaps"], row["merges"])
    return FigureResult("ablation-preventer", rows, table.render())


def run_preventer_param_ablation(
    *,
    scale: int = 1,
    windows: Sequence[float] = DEFAULT_PREVENTER_WINDOWS,
    caps: Sequence[int] = DEFAULT_PREVENTER_CAPS,
    executor=None, store=None, resume: bool = False,
) -> FigureResult:
    """Sensitivity of the Preventer to its window and page cap."""
    sweep = build_preventer_sweep(scale=scale, windows=windows, caps=caps)
    outcome = run_sweep(sweep, executor=executor, store=store,
                        resume=resume)
    return finish_figure(
        assemble_preventer(sweep, outcome.results), outcome, store)


def build_cluster_sweep(
    *,
    scale: int = 1,
    clusters: Sequence[int] = DEFAULT_CLUSTERS,
) -> Sweep:
    """Declare one cell per swap-readahead cluster size."""
    faults = fault_params()
    cells = tuple(
        CellSpec(
            experiment_id="ablation-cluster",
            cell_id=str(cluster),
            scale=scale,
            config=ConfigName.BASELINE.value,
            params={"cluster": cluster},
            faults=faults,
        )
        for cluster in clusters)
    return Sweep("ablation-cluster", cells)


def cluster_cell(spec: CellSpec) -> RunResult:
    """Run baseline sysbench x4 with one readahead cluster size."""
    scale = spec.scale
    machine_config = MachineConfig(
        seed=spec.seed,
        host=HostConfig(swap_cluster_pages=spec.params["cluster"]))
    experiment = _sysbench_experiment(scale, machine_config)
    config = standard_configs([ConfigName(spec.config)])[0]
    return experiment.run(config, SysbenchFileRead(
        file_pages=mib_pages(200 / scale), iterations=4))


def assemble_cluster(sweep: Sweep,
                     results: Mapping[str, RunResult]) -> FigureResult:
    """Build the cluster-size ablation table from cells."""
    scale = sweep.cells[0].scale
    rows: dict = {}
    for cell in sweep.cells:
        result = results[cell.cell_id]
        rows[cell.cell_id] = {
            "runtime": result.runtime,
            "guest_faults": result.counters.get("guest_context_faults"),
            "swap_sectors_read": result.counters.get("swap_sectors_read"),
        }
    table = Table(
        f"Ablation (scale=1/{scale}): swap readahead cluster size "
        f"(baseline, sysbench x4)",
        ["cluster [pages]", "runtime [s]", "guest faults",
         "swap sectors read"],
    )
    for cell in sweep.cells:
        row = rows[cell.cell_id]
        table.add_row(cell.params["cluster"], round(row["runtime"], 1),
                      row["guest_faults"], row["swap_sectors_read"])
    return FigureResult("ablation-cluster", rows, table.render())


def run_cluster_ablation(
    *,
    scale: int = 1,
    clusters: Sequence[int] = DEFAULT_CLUSTERS,
    executor=None, store=None, resume: bool = False,
) -> FigureResult:
    """Swap readahead cluster size vs baseline decay."""
    sweep = build_cluster_sweep(scale=scale, clusters=clusters)
    outcome = run_sweep(sweep, executor=executor, store=store,
                        resume=resume)
    return finish_figure(
        assemble_cluster(sweep, outcome.results), outcome, store)
