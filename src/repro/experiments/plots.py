"""ASCII-chart renderings for the figure-shaped experiment results."""

from __future__ import annotations

from repro.experiments.runner import FigureResult
from repro.metrics.plot import ascii_bars, ascii_chart


def _fig03_chart(result: FigureResult) -> str:
    return ascii_bars(result.series, title="Figure 3 runtime",
                      unit="s")


def _fig04_chart(result: FigureResult) -> str:
    return ascii_bars(
        {k: v["average_runtime"] for k, v in result.series.items()
         if v["average_runtime"] is not None},
        title="Figure 4 average completion time", unit="s")


def _fig09_chart(result: FigureResult) -> str:
    return ascii_chart(
        {config: panels["runtime"]
         for config, panels in result.series.items()},
        title="Figure 9a runtime per iteration",
        y_label="seconds")


def _sweep_chart(result: FigureResult, title: str) -> str:
    series = {}
    for config, by_x in result.series.items():
        series[config] = [
            row["runtime"] for row in by_x.values()
            if not row.get("crashed") and row.get("runtime") is not None
        ]
    return ascii_chart(series, title=title, y_label="seconds")


def _fig14_chart(result: FigureResult) -> str:
    series = {
        config: [row["average_runtime"] for row in by_n.values()
                 if row["average_runtime"] is not None]
        for config, by_n in result.series.items()
    }
    return ascii_chart(series, title="Figure 14 avg runtime vs guests",
                       y_label="seconds")


def _fig15_chart(result: FigureResult) -> str:
    return ascii_chart(
        {
            "page cache (clean)": result.series["page_cache_clean"],
            "mapper tracked": result.series["mapper_tracked"],
        },
        title="Figure 15 tracked pages over time", y_label="pages")


def chart_for(result: FigureResult) -> str | None:
    """ASCII chart for a figure result, or None for table-only ones."""
    figure_id = result.figure_id
    if figure_id == "fig03":
        return _fig03_chart(result)
    if figure_id == "fig04":
        return _fig04_chart(result)
    if figure_id == "fig09":
        return _fig09_chart(result)
    if figure_id in ("fig05+fig11", "fig11"):
        return _sweep_chart(result, "Figure 5 runtime vs memory grant")
    if figure_id == "fig12":
        return _sweep_chart(result, "Figure 12 runtime vs memory grant")
    if figure_id == "fig13":
        return _sweep_chart(result, "Figure 13 runtime vs memory limit")
    if figure_id == "fig14":
        return _fig14_chart(result)
    if figure_id == "fig15":
        return _fig15_chart(result)
    return None
