"""Figures 4 and 14: phased MapReduce guests under a balloon manager.

Up to ten 2 GB guests start a Metis word-count ten seconds apart on a
host with 8 GB for guests -- demand outruns the balloon manager's
polling control loop, so balloon configurations lean on uncooperative
swapping exactly when memory is scarcest.  The paper's headline: with
VSwapper the average completion time is up to ~2x better than
balloon-plus-baseline, and combining both is best overall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.balloon.manager import BalloonManager, ManagerConfig
from repro.balloon.policy import BalloonPolicy
from repro.config import HostConfig, MachineConfig, VmConfig
from repro.driver import VmDriver
from repro.experiments.runner import (
    ConfigName,
    ConfigSpec,
    FigureResult,
    scaled_guest_config,
    standard_configs,
)
from repro.machine import Machine
from repro.metrics.report import Table
from repro.units import mib_pages
from repro.workloads.mapreduce import MetisMapReduce

FIG14_CONFIGS = (
    ConfigName.BALLOON_BASELINE,
    ConfigName.BASELINE,
    ConfigName.VSWAPPER,
    ConfigName.BALLOON_VSWAPPER,
)


@dataclass
class DynamicResult:
    """Outcome of one phased multi-guest run."""

    config: ConfigName
    runtimes: list[float]
    crashes: int

    @property
    def average_runtime(self) -> float:
        """Mean completion time over guests that finished."""
        if not self.runtimes:
            return float("nan")
        return sum(self.runtimes) / len(self.runtimes)


def make_mapreduce(scale: int, seed: int) -> MetisMapReduce:
    """A Metis word-count sized for ``scale``."""
    return MetisMapReduce(
        input_pages=mib_pages(300 / scale),
        table_pages=mib_pages(1024 / scale),
        min_resident_pages=mib_pages(640 / scale),
        output_pages=mib_pages(8 / scale),
        seed=seed,
    )


def run_phased(spec: ConfigSpec, *, num_guests: int, scale: int = 1,
               stagger_seconds: float = 10.0,
               host_mib: float = 8192,
               guest_mib: float = 2048) -> DynamicResult:
    """Run ``num_guests`` phased MapReduce guests under one config."""
    machine = Machine(MachineConfig(
        host=HostConfig(
            total_memory_pages=mib_pages(host_mib / scale),
            swap_size_pages=mib_pages(16 * 1024 / scale),
        ),
    ))
    drivers: list[VmDriver] = []
    for i in range(num_guests):
        vm = machine.create_vm(VmConfig(
            name=f"vm{i}",
            guest=scaled_guest_config(guest_mib, scale),
            vswapper=spec.vswapper,
            image_size_pages=mib_pages(4096 / scale),
            vcpus=2,
        ))
        # Freshly booted guests: only a fraction of memory has history.
        machine.boot_guest(vm, fraction=0.2)
        vm.guest.fs.create_file(
            "metis-input", mib_pages(300 / scale))
        vm.guest.fs.create_file("metis-output", mib_pages(16 / scale))
        drivers.append(VmDriver(
            machine, vm, make_mapreduce(scale, seed=100 + i),
            start_delay=i * stagger_seconds / scale))
    if spec.ballooned:
        BalloonManager(machine, ManagerConfig(
            poll_interval=5.0 / scale,
            max_step_pages=mib_pages(256 / scale),
            policy=BalloonPolicy(
                host_pressure_evictions=max(8, 256 // scale),
                guest_swap_activity_threshold=max(8, 64 // scale),
            ),
        ))

    while not all(d.done for d in drivers):
        if machine.engine.pending_events() == 0:
            raise RuntimeError("engine drained before guests finished")
        machine.engine.run(until=machine.now + 60.0)
    machine.engine.stop()

    runtimes = [d.runtime for d in drivers if not d.crashed]
    crashes = sum(1 for d in drivers if d.crashed)
    return DynamicResult(spec.name, runtimes, crashes)


def run_fig14(
    *,
    scale: int = 1,
    guest_counts: Sequence[int] = tuple(range(1, 11)),
    config_names: Sequence[ConfigName] = FIG14_CONFIGS,
) -> FigureResult:
    """Regenerate Figure 14: average runtime vs number of guests."""
    series: dict = {name.value: {} for name in config_names}
    for spec in standard_configs(config_names):
        for n in guest_counts:
            outcome = run_phased(spec, num_guests=n, scale=scale)
            series[spec.name.value][n] = {
                "average_runtime": outcome.average_runtime,
                "crashes": outcome.crashes,
            }

    table = Table(
        f"Figure 14 (scale=1/{scale}): phased MapReduce guests, average "
        f"completion time",
        ["config", "guests", "avg runtime [s]", "oom kills"],
    )
    for config, by_n in series.items():
        for n, row in by_n.items():
            table.add_row(config, n, round(row["average_runtime"], 1),
                          row["crashes"])
    return FigureResult("fig14", series, table.render())


def run_fig04(*, scale: int = 1, num_guests: int = 10) -> FigureResult:
    """Regenerate Figure 4: the ten-guest bar chart."""
    order = (
        ConfigName.BASELINE,
        ConfigName.BALLOON_BASELINE,
        ConfigName.VSWAPPER,
        ConfigName.BALLOON_VSWAPPER,
    )
    series: dict = {}
    for spec in standard_configs(order):
        outcome = run_phased(spec, num_guests=num_guests, scale=scale)
        series[spec.name.value] = {
            "average_runtime": outcome.average_runtime,
            "crashes": outcome.crashes,
        }
    table = Table(
        f"Figure 4 (scale=1/{scale}): {num_guests} phased MapReduce "
        f"guests, average completion time",
        ["config", "avg runtime [s]", "oom kills"],
    )
    for config, row in series.items():
        table.add_row(config, round(row["average_runtime"], 1),
                      row["crashes"])
    return FigureResult("fig04", series, table.render())
