"""Figures 4 and 14: phased MapReduce guests under a balloon manager.

Up to ten 2 GB guests start a Metis word-count ten seconds apart on a
host with 8 GB for guests -- demand outruns the balloon manager's
polling control loop, so balloon configurations lean on uncooperative
swapping exactly when memory is scarcest.  The paper's headline: with
VSwapper the average completion time is up to ~2x better than
balloon-plus-baseline, and combining both is best overall.

Both CLI ids (``fig4``, ``fig14``) declare cells under the harness id
``dynamic``: Figure 4 is Figure 14's ten-guest column, so with a
result store the bar chart comes for free after the full grid.

Each cell folds its :class:`DynamicResult` into a ``RunResult``:
``runtime`` is the average completion time (``None`` when every guest
was killed -- JSON has no NaN), ``counters`` carry ``oom_kills`` and
``guests_completed``, and one ``guest-runtime`` phase mark records
each finisher.  Figure 14 series are keyed ``series[config][str(n)]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.balloon.manager import BalloonManager, ManagerConfig
from repro.balloon.policy import BalloonPolicy
from repro.config import HostConfig, MachineConfig, VmConfig
from repro.driver import VmDriver
from repro.exec.executor import finish_figure, run_sweep
from repro.exec.spec import CellSpec, Sweep, fault_params
from repro.experiments.runner import (
    ConfigName,
    ConfigSpec,
    FigureResult,
    PhaseMark,
    RunResult,
    scaled_guest_config,
    standard_configs,
)
from repro.machine import Machine
from repro.metrics.report import Table
from repro.units import mib_pages
from repro.workloads.mapreduce import MetisMapReduce

FIG14_CONFIGS = (
    ConfigName.BALLOON_BASELINE,
    ConfigName.BASELINE,
    ConfigName.VSWAPPER,
    ConfigName.BALLOON_VSWAPPER,
)

#: Figure 4's bar order (the ten-guest column of Figure 14).
FIG04_CONFIGS = (
    ConfigName.BASELINE,
    ConfigName.BALLOON_BASELINE,
    ConfigName.VSWAPPER,
    ConfigName.BALLOON_VSWAPPER,
)


@dataclass
class DynamicResult:
    """Outcome of one phased multi-guest run."""

    config: ConfigName
    runtimes: list[float]
    crashes: int

    @property
    def average_runtime(self) -> float:
        """Mean completion time over guests that finished."""
        if not self.runtimes:
            return float("nan")
        return sum(self.runtimes) / len(self.runtimes)


def make_mapreduce(scale: int, seed: int) -> MetisMapReduce:
    """A Metis word-count sized for ``scale``."""
    return MetisMapReduce(
        input_pages=mib_pages(300 / scale),
        table_pages=mib_pages(1024 / scale),
        min_resident_pages=mib_pages(640 / scale),
        output_pages=mib_pages(8 / scale),
        seed=seed,
    )


def run_phased(spec: ConfigSpec, *, num_guests: int, scale: int = 1,
               stagger_seconds: float = 10.0,
               host_mib: float = 8192,
               guest_mib: float = 2048,
               seed: int = 1) -> DynamicResult:
    """Run ``num_guests`` phased MapReduce guests under one config."""
    machine = Machine(MachineConfig(
        seed=seed,
        host=HostConfig(
            total_memory_pages=mib_pages(host_mib / scale),
            swap_size_pages=mib_pages(16 * 1024 / scale),
        ),
    ))
    drivers: list[VmDriver] = []
    for i in range(num_guests):
        vm = machine.create_vm(VmConfig(
            name=f"vm{i}",
            guest=scaled_guest_config(guest_mib, scale),
            vswapper=spec.vswapper,
            image_size_pages=mib_pages(4096 / scale),
            vcpus=2,
        ))
        # Freshly booted guests: only a fraction of memory has history.
        machine.boot_guest(vm, fraction=0.2)
        vm.guest.fs.create_file(
            "metis-input", mib_pages(300 / scale))
        vm.guest.fs.create_file("metis-output", mib_pages(16 / scale))
        drivers.append(VmDriver(
            machine, vm, make_mapreduce(scale, seed=100 + i),
            start_delay=i * stagger_seconds / scale))
    if spec.ballooned:
        BalloonManager(machine, ManagerConfig(
            poll_interval=5.0 / scale,
            max_step_pages=mib_pages(256 / scale),
            policy=BalloonPolicy(
                host_pressure_evictions=max(8, 256 // scale),
                guest_swap_activity_threshold=max(8, 64 // scale),
            ),
        ))

    while not all(d.done for d in drivers):
        if machine.engine.pending_events() == 0:
            raise RuntimeError("engine drained before guests finished")
        machine.engine.run(until=machine.now + 60.0)
    machine.engine.stop()

    runtimes = [d.runtime for d in drivers if not d.crashed]
    crashes = sum(1 for d in drivers if d.crashed)
    return DynamicResult(spec.name, runtimes, crashes)


def _dynamic_cells(config_names: Sequence[ConfigName],
                   guest_counts: Sequence[int], *, scale: int,
                   stagger_seconds: float = 10.0,
                   host_mib: float = 8192,
                   guest_mib: float = 2048) -> tuple[CellSpec, ...]:
    faults = fault_params()
    return tuple(
        CellSpec(
            experiment_id="dynamic",
            cell_id=f"{name.value}@{n}",
            scale=scale,
            config=name.value,
            params={
                "num_guests": n,
                "stagger_seconds": stagger_seconds,
                "host_mib": host_mib,
                "guest_mib": guest_mib,
            },
            faults=faults,
        )
        for name in config_names
        for n in guest_counts)


def build_fig14_sweep(
    *,
    scale: int = 1,
    guest_counts: Sequence[int] = tuple(range(1, 11)),
    config_names: Sequence[ConfigName] = FIG14_CONFIGS,
) -> Sweep:
    """Declare Figure 14's grid: configuration x guest count."""
    return Sweep("dynamic",
                 _dynamic_cells(config_names, guest_counts, scale=scale))


def build_fig04_sweep(*, scale: int = 1, num_guests: int = 10) -> Sweep:
    """Declare Figure 4: the four-bar, ``num_guests``-guest column."""
    return Sweep("dynamic",
                 _dynamic_cells(FIG04_CONFIGS, (num_guests,), scale=scale))


def dynamic_cell(spec: CellSpec) -> RunResult:
    """Run one phased multi-guest cell and fold it into a RunResult."""
    config = standard_configs([ConfigName(spec.config)])[0]
    outcome = run_phased(
        config,
        num_guests=spec.params["num_guests"],
        scale=spec.scale,
        stagger_seconds=spec.params["stagger_seconds"],
        host_mib=spec.params["host_mib"],
        guest_mib=spec.params["guest_mib"],
        seed=spec.seed,
    )
    runtime = (sum(outcome.runtimes) / len(outcome.runtimes)
               if outcome.runtimes else None)
    phases = [PhaseMark("guest-runtime", {"runtime": r}, r)
              for r in outcome.runtimes]
    return RunResult(
        config=config.name,
        runtime=runtime,
        crashed=False,
        counters={"oom_kills": outcome.crashes,
                  "guests_completed": len(outcome.runtimes)},
        phases=phases,
    )


def _cell_row(result: RunResult) -> dict:
    return {
        "average_runtime": result.runtime,
        "crashes": result.counters["oom_kills"],
    }


def assemble_fig14(sweep: Sweep,
                   results: Mapping[str, RunResult]) -> FigureResult:
    """Build Figure 14's runtime-vs-guests table from cells."""
    scale = sweep.cells[0].scale
    series: dict = {}
    for cell in sweep.cells:
        series.setdefault(cell.config, {})[
            str(cell.params["num_guests"])] = _cell_row(
                results[cell.cell_id])

    table = Table(
        f"Figure 14 (scale=1/{scale}): phased MapReduce guests, average "
        f"completion time",
        ["config", "guests", "avg runtime [s]", "oom kills"],
    )
    for config, by_n in series.items():
        for n, row in by_n.items():
            runtime = row["average_runtime"]
            table.add_row(config, n,
                          "-" if runtime is None else round(runtime, 1),
                          row["crashes"])
    return FigureResult("fig14", series, table.render())


def assemble_fig04(sweep: Sweep,
                   results: Mapping[str, RunResult]) -> FigureResult:
    """Build Figure 4's bar table from cells."""
    scale = sweep.cells[0].scale
    num_guests = sweep.cells[0].params["num_guests"]
    series: dict = {
        cell.config: _cell_row(results[cell.cell_id])
        for cell in sweep.cells
    }
    table = Table(
        f"Figure 4 (scale=1/{scale}): {num_guests} phased MapReduce "
        f"guests, average completion time",
        ["config", "avg runtime [s]", "oom kills"],
    )
    for config, row in series.items():
        runtime = row["average_runtime"]
        table.add_row(config,
                      "-" if runtime is None else round(runtime, 1),
                      row["crashes"])
    return FigureResult("fig04", series, table.render())


def run_fig14(
    *,
    scale: int = 1,
    guest_counts: Sequence[int] = tuple(range(1, 11)),
    config_names: Sequence[ConfigName] = FIG14_CONFIGS,
    executor=None, store=None, resume: bool = False,
) -> FigureResult:
    """Regenerate Figure 14: average runtime vs number of guests."""
    sweep = build_fig14_sweep(
        scale=scale, guest_counts=guest_counts, config_names=config_names)
    outcome = run_sweep(sweep, executor=executor, store=store,
                        resume=resume)
    return finish_figure(
        assemble_fig14(sweep, outcome.results), outcome, store)


def run_fig04(*, scale: int = 1, num_guests: int = 10,
              executor=None, store=None,
              resume: bool = False) -> FigureResult:
    """Regenerate Figure 4: the ten-guest bar chart."""
    sweep = build_fig04_sweep(scale=scale, num_guests=num_guests)
    outcome = run_sweep(sweep, executor=executor, store=store,
                        resume=resume)
    return finish_figure(
        assemble_fig04(sweep, outcome.results), outcome, store)
