"""Figures 5 and 11: pbzip2 under a shrinking memory grant.

One 8-thread compression job inside a guest that believes it has
512 MB, granted 512 down to 128 MB of actual memory.  Figure 5 plots
runtime (ballooning wins while it survives, but the guest's OOM killer
terminates the job once the grant drops below the workload's needs);
Figure 11 plots disk operations, written sectors (VSwapper eliminates
the write component), and reclaim pages-scanned (the Mapper roughly
doubles scan lengths at low pressure).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.runner import (
    ConfigName,
    FigureResult,
    SingleVmExperiment,
    scaled_guest_config,
    standard_configs,
)
from repro.metrics.report import Table
from repro.units import mib_pages
from repro.workloads.pbzip import PbzipCompress

FIG05_CONFIGS = (
    ConfigName.BASELINE,
    ConfigName.MAPPER,
    ConfigName.VSWAPPER,
    ConfigName.BALLOON_BASELINE,
)

#: The paper's Figure 5/11 X axis (MiB of actual memory).
DEFAULT_MEMORY_SWEEP = (512, 448, 384, 320, 256, 240, 192, 128)


def run_fig05_fig11(
    *,
    scale: int = 1,
    memory_sweep_mib: Sequence[int] = DEFAULT_MEMORY_SWEEP,
    config_names: Sequence[ConfigName] = FIG05_CONFIGS,
) -> FigureResult:
    """Regenerate Figure 5 (runtime) and Figure 11 (panels a-c)."""
    series: dict = {name.value: {} for name in config_names}
    for actual_mib in memory_sweep_mib:
        experiment = SingleVmExperiment(
            guest_mib=512 / scale,
            actual_mib=actual_mib / scale,
            guest_config=scaled_guest_config(512, scale),
            files=[
                ("pbzip-input", mib_pages(500 / scale)),
                ("pbzip-output", mib_pages(140 / scale)),
            ],
        )
        for spec in standard_configs(config_names):
            workload = PbzipCompress(
                input_pages=mib_pages(500 / scale),
                min_resident_pages=mib_pages(220 / scale),
            )
            result = experiment.run(spec, workload)
            series[spec.name.value][actual_mib] = {
                "runtime": result.runtime,
                "crashed": result.crashed,
                "disk_ops": result.counters.get("disk_ops"),
                "swap_sectors_written": result.counters.get(
                    "swap_sectors_written"),
                "pages_scanned": result.counters.get("pages_scanned"),
                "false_reads": result.counters.get("false_reads"),
                "preventer_remaps": result.counters.get("preventer_remaps"),
            }

    table = Table(
        f"Figures 5 and 11 (scale=1/{scale}): pbzip2 vs actual memory "
        f"(guest believes 512MB)",
        ["config", "memory [MiB]", "runtime [s]", "disk ops",
         "swap sectors written", "pages scanned"],
    )
    for config, by_memory in series.items():
        for actual_mib, row in by_memory.items():
            if row["crashed"]:
                table.add_row(config, actual_mib, "killed (OOM)",
                              "-", "-", "-")
            else:
                table.add_row(config, actual_mib, round(row["runtime"], 1),
                              row["disk_ops"], row["swap_sectors_written"],
                              row["pages_scanned"])
    return FigureResult("fig05+fig11", series, table.render())
