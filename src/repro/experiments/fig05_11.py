"""Figures 5 and 11: pbzip2 under a shrinking memory grant.

One 8-thread compression job inside a guest that believes it has
512 MB, granted 512 down to 128 MB of actual memory.  Figure 5 plots
runtime (ballooning wins while it survives, but the guest's OOM killer
terminates the job once the grant drops below the workload's needs);
Figure 11 plots disk operations, written sectors (VSwapper eliminates
the write component), and reclaim pages-scanned (the Mapper roughly
doubles scan lengths at low pressure).

Both CLI ids (``fig5``, ``fig11``) declare the *same* sweep under the
harness id ``fig05+fig11``, so their cells share cache entries: with a
result store, regenerating one makes the other free.

Series are keyed ``series[config][str(actual_mib)]`` (JSON-safe).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.config import MachineConfig
from repro.exec.executor import finish_figure, run_sweep
from repro.exec.spec import CellSpec, Sweep, fault_params
from repro.experiments.runner import (
    ConfigName,
    FigureResult,
    RunResult,
    SingleVmExperiment,
    scaled_guest_config,
    standard_configs,
)
from repro.metrics.report import Table
from repro.units import mib_pages
from repro.workloads.pbzip import PbzipCompress

FIG05_CONFIGS = (
    ConfigName.BASELINE,
    ConfigName.MAPPER,
    ConfigName.VSWAPPER,
    ConfigName.BALLOON_BASELINE,
)

#: The paper's Figure 5/11 X axis (MiB of actual memory).
DEFAULT_MEMORY_SWEEP = (512, 448, 384, 320, 256, 240, 192, 128)


def build_fig05_fig11_sweep(
    *,
    scale: int = 1,
    memory_sweep_mib: Sequence[int] = DEFAULT_MEMORY_SWEEP,
    config_names: Sequence[ConfigName] = FIG05_CONFIGS,
) -> Sweep:
    """Declare the grid: configuration x actual-memory grant."""
    faults = fault_params()
    cells = tuple(
        CellSpec(
            experiment_id="fig05+fig11",
            cell_id=f"{spec.name.value}@{actual_mib}MiB",
            scale=scale,
            config=spec.name.value,
            params={"actual_mib": actual_mib},
            faults=faults,
        )
        for spec in standard_configs(config_names)
        for actual_mib in memory_sweep_mib)
    return Sweep("fig05+fig11", cells)


def fig05_fig11_cell(spec: CellSpec) -> RunResult:
    """Run pbzip2 under one (configuration, grant) cell."""
    scale = spec.scale
    actual_mib = spec.params["actual_mib"]
    experiment = SingleVmExperiment(
        guest_mib=512 / scale,
        actual_mib=actual_mib / scale,
        machine_config=MachineConfig(seed=spec.seed),
        guest_config=scaled_guest_config(512, scale),
        files=[
            ("pbzip-input", mib_pages(500 / scale)),
            ("pbzip-output", mib_pages(140 / scale)),
        ],
    )
    config = standard_configs([ConfigName(spec.config)])[0]
    workload = PbzipCompress(
        input_pages=mib_pages(500 / scale),
        min_resident_pages=mib_pages(220 / scale),
    )
    return experiment.run(config, workload)


def assemble_fig05_fig11(sweep: Sweep,
                         results: Mapping[str, RunResult]) -> FigureResult:
    """Build the shared Figure 5 + Figure 11 table from cells."""
    scale = sweep.cells[0].scale
    series: dict = {}
    for cell in sweep.cells:
        result = results[cell.cell_id]
        series.setdefault(cell.config, {})[str(cell.params["actual_mib"])] = {
            "runtime": result.runtime,
            "crashed": result.crashed,
            "disk_ops": result.counters.get("disk_ops"),
            "swap_sectors_written": result.counters.get(
                "swap_sectors_written"),
            "pages_scanned": result.counters.get("pages_scanned"),
            "false_reads": result.counters.get("false_reads"),
            "preventer_remaps": result.counters.get("preventer_remaps"),
        }

    table = Table(
        f"Figures 5 and 11 (scale=1/{scale}): pbzip2 vs actual memory "
        f"(guest believes 512MB)",
        ["config", "memory [MiB]", "runtime [s]", "disk ops",
         "swap sectors written", "pages scanned"],
    )
    for config, by_memory in series.items():
        for actual_mib, row in by_memory.items():
            if row["crashed"]:
                table.add_row(config, actual_mib, "killed (OOM)",
                              "-", "-", "-")
            else:
                table.add_row(config, actual_mib, round(row["runtime"], 1),
                              row["disk_ops"], row["swap_sectors_written"],
                              row["pages_scanned"])
    return FigureResult("fig05+fig11", series, table.render())


def run_fig05_fig11(
    *,
    scale: int = 1,
    memory_sweep_mib: Sequence[int] = DEFAULT_MEMORY_SWEEP,
    config_names: Sequence[ConfigName] = FIG05_CONFIGS,
    executor=None, store=None, resume: bool = False,
) -> FigureResult:
    """Regenerate Figure 5 (runtime) and Figure 11 (panels a-c)."""
    sweep = build_fig05_fig11_sweep(
        scale=scale, memory_sweep_mib=memory_sweep_mib,
        config_names=config_names)
    outcome = run_sweep(sweep, executor=executor, store=store,
                        resume=resume)
    return finish_figure(
        assemble_fig05_fig11(sweep, outcome.results), outcome, store)
