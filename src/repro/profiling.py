"""Per-cell profiling (the ``repro run --profile`` flag).

Performance work on the simulator is only as good as its visibility:
the hot-path rewrite that produced DESIGN.md section 12 was steered
entirely by per-cell call-count censuses, and future perf PRs need the
same lever without reconstructing the harness by hand.  ``--profile``
wraps every cell runner in :mod:`cProfile` and persists a three-view
hot-function report (cumulative time, internal time, call counts)
named exactly like the cell's store record, so a profile can always be
matched to the result it explains.

Like the fault layer's default config and the audit layer's paranoid
flag, the profile destination is ambient process state: the CLI sets
it once and :func:`~repro.exec.executor.execute_cell` checks it per
cell.  The executors carry it across the process boundary explicitly
(pool initargs / supervised-worker args), exactly as they do for the
paranoid and tracing flags, so ``--profile --jobs N`` profiles every
worker.

Profiling is observational only: the runner, its RNG draws, and the
returned :class:`~repro.experiments.runner.RunResult` are untouched,
so profiled results stay bit-identical to unprofiled ones (cProfile
adds wall time, which only ever appears outside the result payload).
"""

from __future__ import annotations

import cProfile
import io
import pstats
from pathlib import Path

#: Process-wide profile output directory (``None`` = profiling off).
_PROFILE_DIR: str | None = None

#: Hot functions listed under each sort order of the report.
REPORT_LINES = 30


def set_profiling(directory: str | Path | None) -> str | None:
    """Set the process-wide profile directory; returns the previous
    value (``None`` disables profiling)."""
    global _PROFILE_DIR
    previous = _PROFILE_DIR
    _PROFILE_DIR = None if directory is None else str(directory)
    return previous


def profiling_dir() -> str | None:
    """Where cell profiles are written, or ``None`` when off."""
    return _PROFILE_DIR


def profile_report_path(spec) -> Path:
    """Where ``spec``'s profile report lands.

    Mirrors :meth:`ResultStore.cell_path` naming --
    ``<dir>/<experiment>/<cell-id>-<hash12>.txt`` with the same
    content-hash suffix -- so the profile sits beside (and keys to)
    the cell record it explains.
    """
    from repro.exec.store import _sanitize, cell_key

    if _PROFILE_DIR is None:
        raise RuntimeError("profiling is not enabled")
    return (Path(_PROFILE_DIR) / _sanitize(spec.experiment_id)
            / f"{_sanitize(spec.cell_id)}-{cell_key(spec)[:12]}.txt")


def render_report(profile: cProfile.Profile, spec) -> str:
    """The persisted report: one header, three sorted views.

    Cumulative time finds the expensive subsystems, internal time the
    expensive functions, and call counts the fusion opportunities (a
    million cheap calls cost more than their bodies -- see DESIGN.md
    section 12's methodology notes).
    """
    buffer = io.StringIO()
    buffer.write(
        f"profile: experiment={spec.experiment_id} cell={spec.cell_id} "
        f"seed={spec.seed}\n")
    stats = pstats.Stats(profile, stream=buffer)
    stats.sort_stats("cumulative").print_stats(REPORT_LINES)
    buffer.write("-- by internal time --\n")
    stats.sort_stats("tottime").print_stats(REPORT_LINES)
    buffer.write("-- by call count --\n")
    stats.sort_stats("ncalls").print_stats(REPORT_LINES)
    return buffer.getvalue()


def profile_runner(runner, spec):
    """Run ``runner(spec)`` under cProfile, persist the report, and
    return the runner's result unchanged.

    A report that fails to write (read-only directory, disk full) is
    a harness inconvenience, not a cell failure: the exception
    propagates only after the cell's result exists, and executors
    treat it like any other harness error.
    """
    profile = cProfile.Profile()
    result = profile.runcall(runner, spec)
    path = profile_report_path(spec)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_report(profile, spec))
    return result


__all__ = [
    "profile_report_path",
    "profile_runner",
    "profiling_dir",
    "render_report",
    "set_profiling",
]
