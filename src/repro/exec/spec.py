"""Declarative cell specifications for experiment sweeps.

Every paper figure is a grid of independent simulations: configuration
x workload parameters x memory grant.  A :class:`CellSpec` is the
*complete*, serializable description of one such simulation -- enough
for any process to rebuild the seeded :class:`repro.machine.Machine`
and re-run it bit-identically.  A :class:`Sweep` is the ordered set of
cells one experiment declares instead of hand-rolling a loop.

Because a cell is pure data (JSON primitives only), the executor layer
can ship it to a worker process, and the store layer can content-hash
it into a cache key.  Anything that would change the simulation result
must live in the spec; anything that doesn't (rendering, table labels)
must not.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Mapping, Sequence

from repro.config import SWAP_BACKEND_KINDS, FaultConfig
from repro.errors import ExperimentError
from repro.faults.plan import default_fault_config
from repro.swapback.base import default_swap_backend

#: Bumped whenever CellSpec/RunResult semantics change such that old
#: persisted results are no longer comparable to fresh runs.  Part of
#: every cache key, so a schema bump silently invalidates the cache.
SPEC_SCHEMA_VERSION = 1


def _check_json_value(value: Any, where: str) -> None:
    """Reject anything that would not survive a JSON round trip."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return
    if isinstance(value, (list, tuple)):
        for item in value:
            _check_json_value(item, where)
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise ExperimentError(
                    f"{where}: non-string key {key!r} would not survive "
                    f"JSON round-tripping")
            _check_json_value(item, where)
        return
    raise ExperimentError(
        f"{where}: value {value!r} of type {type(value).__name__} is "
        f"not JSON-serializable")


def fault_params(faults: FaultConfig | None = None) -> dict | None:
    """Serialize a fault plan for embedding into cell specs.

    With no explicit plan, the process-wide ambient default (the CLI's
    ``--faults`` flag) is captured, so a sweep built under ``--faults``
    carries the injection plan inside its cells -- worker processes and
    cache keys both see it.
    """
    config = faults if faults is not None else default_fault_config()
    return None if config is None else asdict(config)


def faults_from_params(params: Mapping | None) -> FaultConfig | None:
    """Rebuild the :class:`FaultConfig` a cell was declared with."""
    if params is None:
        return None
    return FaultConfig(**dict(params))


def _ambient_backend_kind() -> str | None:
    """Capture the CLI's ``--swap-backend`` choice at sweep-build time.

    Mirrors how :func:`fault_params` folds the ambient fault plan into
    cells: a sweep built under ``--swap-backend`` carries the backend
    kind inside every cell, so worker processes rebuild the same device
    and the cache key distinguishes the runs.
    """
    config = default_swap_backend()
    return None if config is None else config.kind


@dataclass(frozen=True)
class CellSpec:
    """One independent simulation inside a sweep.

    ``experiment_id`` names the *harness* whose cell runner understands
    this spec (see ``repro.experiments.registry.CELL_RUNNERS``); two CLI
    experiments may share one harness id (fig5/fig11, fig4/fig14) so
    their identical cells share cache entries.
    """

    experiment_id: str
    cell_id: str
    scale: int
    config: str | None = None
    seed: int = 1
    params: dict = field(default_factory=dict)
    #: Serialized :class:`FaultConfig` (via :func:`fault_params`), or
    #: None for a fault-free cell.  Part of the identity: a faulted run
    #: never shares a cache entry with a clean one.
    faults: dict | None = None
    #: Swap-backend registry kind (``repro.config.SWAP_BACKEND_KINDS``)
    #: or None for the default disk path.  Defaults to the ambient
    #: ``--swap-backend`` choice; serialized only when set, so every
    #: pre-backend cell keeps its exact cache key.
    backend: str | None = field(default_factory=_ambient_backend_kind)

    def __post_init__(self) -> None:
        if not self.experiment_id:
            raise ExperimentError("cell spec needs an experiment id")
        if not self.cell_id:
            raise ExperimentError("cell spec needs a cell id")
        if self.scale < 1:
            raise ExperimentError(f"scale must be positive: {self.scale}")
        if (self.backend is not None
                and self.backend not in SWAP_BACKEND_KINDS):
            raise ExperimentError(
                f"cell {self.cell_id}: unknown swap backend "
                f"{self.backend!r}")
        _check_json_value(self.params, f"cell {self.cell_id} params")
        if self.faults is not None:
            _check_json_value(self.faults, f"cell {self.cell_id} faults")

    def to_dict(self) -> dict:
        """Plain-data form (stable; feeds the content hash)."""
        doc = {
            "schema": SPEC_SCHEMA_VERSION,
            "experiment_id": self.experiment_id,
            "cell_id": self.cell_id,
            "scale": self.scale,
            "config": self.config,
            "seed": self.seed,
            "params": self.params,
            "faults": self.faults,
        }
        if self.backend is not None:
            doc["backend"] = self.backend
        return doc

    @classmethod
    def from_dict(cls, data: Mapping) -> "CellSpec":
        """Inverse of :meth:`to_dict`."""
        if data.get("schema") != SPEC_SCHEMA_VERSION:
            raise ExperimentError(
                f"cell spec schema {data.get('schema')!r} != "
                f"{SPEC_SCHEMA_VERSION}")
        return cls(
            experiment_id=data["experiment_id"],
            cell_id=data["cell_id"],
            scale=data["scale"],
            config=data.get("config"),
            seed=data.get("seed", 1),
            params=dict(data.get("params") or {}),
            faults=(dict(data["faults"])
                    if data.get("faults") is not None else None),
            backend=data.get("backend"),
        )

    def canonical_json(self) -> str:
        """Deterministic serialization: the cache-key preimage."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))


@dataclass(frozen=True)
class Sweep:
    """The ordered cell grid one experiment declares.

    Cell order is the *presentation* order (tables render in it) and
    the deterministic submission order (parallel executors gather
    results back into it).
    """

    experiment_id: str
    cells: tuple[CellSpec, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "cells", tuple(self.cells))
        seen: set[str] = set()
        for cell in self.cells:
            if cell.cell_id in seen:
                raise ExperimentError(
                    f"sweep {self.experiment_id}: duplicate cell id "
                    f"{cell.cell_id!r}")
            seen.add(cell.cell_id)

    def __len__(self) -> int:
        return len(self.cells)


def sweep_from_configs(experiment_id: str, config_names: Sequence,
                       *, scale: int, seed: int = 1,
                       params: dict | None = None,
                       faults: dict | None = None) -> Sweep:
    """The common one-cell-per-configuration sweep shape."""
    cells = tuple(
        CellSpec(
            experiment_id=experiment_id,
            cell_id=str(getattr(name, "value", name)),
            scale=scale,
            config=str(getattr(name, "value", name)),
            seed=seed,
            params=dict(params or {}),
            faults=faults,
        )
        for name in config_names)
    return Sweep(experiment_id, cells)
