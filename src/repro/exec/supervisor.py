"""The supervised cell executor: timeouts, crash recovery, quarantine.

``ParallelExecutor`` trusts its workers: one hung cell stalls the pool
forever and one dead worker poisons every sibling future with
``BrokenProcessPool``.  The :class:`CellSupervisor` trusts nothing.
Each cell attempt runs in its *own* ``multiprocessing.Process`` joined
to the parent by a pipe, so the supervisor can observe three distinct
outcomes the pool API conflates:

* the worker **reported** -- a result or a typed error came down the
  pipe;
* the worker **died** -- the process exited without reporting (signal
  kill, ``os._exit``, interpreter abort);
* the worker **hung** -- alive past its per-cell deadline, so the
  supervisor terminates it.

Died and hung attempts are environmental: the supervisor retries them
with capped exponential backoff up to ``max_retries`` times.  Errors
the worker itself reports are deterministic -- the same seed replays
the same fault -- so retrying is wasted work and they quarantine
immediately.  Either way a cell that never succeeds becomes a typed
:class:`CellFailure` (``timeout | worker-crash | fault | invariant``)
in submission order, never an exception: the sweep completes and the
figure renders with explicit holes, exactly how PR 1 reports crashed
cells.

The state machine per cell (see DESIGN.md, "The cell supervisor")::

    pending -> running -> done(result)
                 |-> reported error -------------> quarantined(failure)
                 |-> died/hung -> backoff -> running   (attempts left)
                 `-> died/hung ------------------> quarantined(failure)

Successful cells are handed to the ``on_cell`` callback the moment
they finish, which is how :func:`~repro.exec.executor.run_sweep`
checkpoints incrementally to the result store.
"""

from __future__ import annotations

import enum
import multiprocessing as mp
import os
import time
from dataclasses import dataclass
from multiprocessing.connection import Connection, wait as connection_wait
from typing import Callable, Sequence

from repro.errors import ConfigError, InvariantViolation
from repro.exec.spec import CellSpec, faults_from_params
from repro.experiments.runner import RunResult

#: Exit code of a chaos-killed worker (distinguishable in ps output,
#: not load-bearing: any report-less death is a worker-crash).
WORKER_KILL_EXIT = 86


class FailureKind(enum.Enum):
    """Why a cell was quarantined."""

    #: The attempt outlived the per-cell wall-clock deadline.
    TIMEOUT = "timeout"
    #: The worker process died without reporting (signal, hard exit).
    WORKER_CRASH = "worker-crash"
    #: The cell raised inside the worker (fault layer, harness bug).
    FAULT = "fault"
    #: The runtime invariant auditor caught the simulator lying.
    INVARIANT = "invariant"


#: Environmental failures worth retrying; reported errors are
#: deterministic under the cell's seed and quarantine immediately.
RETRYABLE = frozenset({FailureKind.TIMEOUT, FailureKind.WORKER_CRASH})


@dataclass(frozen=True)
class CellFailure:
    """A quarantined cell: the typed record standing in for its result."""

    cell_id: str
    kind: FailureKind
    message: str
    #: Total attempts made (1 = failed without any retry).
    attempts: int

    def describe(self) -> str:
        """One-line human form for summaries and crash reasons."""
        return (f"CellFailure[{self.kind.value}] after "
                f"{self.attempts} attempt(s): {self.message}")


@dataclass(frozen=True)
class SupervisorConfig:
    """Tunables of the supervised executor."""

    #: Per-cell wall-clock deadline in seconds (None = no deadline).
    timeout: float | None = None
    #: Environmental failures tolerated per cell before quarantine
    #: (total attempts = max_retries + 1).
    max_retries: int = 2
    #: First retry waits this long...
    backoff_base: float = 0.25
    #: ...each further retry multiplies the wait by this factor...
    backoff_factor: float = 2.0
    #: ...capped here, so a long sweep never sleeps unboundedly.
    backoff_cap: float = 5.0
    #: Liveness poll interval: the longest the supervisor sleeps before
    #: re-checking workers for death or deadline.
    heartbeat: float = 0.1

    def validate(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigError(f"timeout must be positive: {self.timeout}")
        if self.max_retries < 0:
            raise ConfigError(
                f"max_retries must be non-negative: {self.max_retries}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ConfigError("backoff must be non-negative")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff_factor must be >= 1")
        if self.heartbeat <= 0:
            raise ConfigError("heartbeat must be positive")

    def backoff(self, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (1-based)."""
        return min(self.backoff_cap,
                   self.backoff_base * self.backoff_factor ** (attempt - 1))


def _supervised_worker(conn: Connection, spec_dict: dict, attempt: int,
                       paranoid: bool, trace_mode: str | None,
                       profile_dir: str | None) -> None:
    """Worker-process body: run one cell attempt, report on the pipe.

    Every outcome is reported as a tagged tuple; the parent treats a
    closed pipe with no report as a worker crash.  Deterministic
    errors are classified *here*, where the exception object still
    exists (it may not pickle).
    """
    # Deferred: the parent imported this module before forking, but a
    # spawn-start child resolves imports fresh.
    from repro.audit import set_paranoid
    from repro.exec.executor import _timed_execute
    from repro.faults.plan import should_kill_worker
    from repro.profiling import set_profiling
    from repro.trace import set_tracing

    try:
        set_paranoid(paranoid)
        set_tracing(trace_mode)
        set_profiling(profile_dir)
        spec = CellSpec.from_dict(spec_dict)
        chaos = faults_from_params(spec.faults)
        if chaos is not None and should_kill_worker(
                chaos, spec.cell_id, spec.seed, attempt):
            # The chaos fault: die hard, reporting nothing -- exactly
            # what an OOM kill or segfault looks like from the parent.
            conn.close()
            os._exit(WORKER_KILL_EXIT)
        result, wall = _timed_execute(spec)
        conn.send(("ok", result, wall))
    except InvariantViolation as error:
        conn.send(("failed", FailureKind.INVARIANT.value,
                   f"{type(error).__name__}: {error}"))
    except BaseException as error:  # noqa: BLE001 - report, then die
        conn.send(("failed", FailureKind.FAULT.value,
                   f"{type(error).__name__}: {error}"))
    finally:
        conn.close()


class _Pending:
    """One cell waiting to run (or to retry after backoff)."""

    __slots__ = ("index", "spec", "attempt", "not_before")

    def __init__(self, index: int, spec: CellSpec, attempt: int,
                 not_before: float) -> None:
        self.index = index
        self.spec = spec
        self.attempt = attempt
        self.not_before = not_before


class _Running:
    """One live worker process under supervision."""

    __slots__ = ("pending", "process", "conn", "started", "deadline")

    def __init__(self, pending: _Pending, process: mp.Process,
                 conn: Connection, started: float,
                 deadline: float | None) -> None:
        self.pending = pending
        self.process = process
        self.conn = conn
        self.started = started
        self.deadline = deadline


class CellSupervisor:
    """Run cells under supervision: at most ``jobs`` live workers, each
    with its own process, pipe, and deadline.

    Results come back in submission order as ``(outcome, wall)`` pairs
    where ``outcome`` is the cell's :class:`RunResult` or, for
    quarantined cells, its :class:`CellFailure`.  Successful results
    are bit-identical to :class:`~repro.exec.executor.SerialExecutor`'s
    because the worker runs the same pure ``execute_cell``; the
    property the parallel executor guarantees survives supervision.
    """

    def __init__(self, jobs: int,
                 config: SupervisorConfig | None = None) -> None:
        # Deferred import: executor imports this module at top level.
        from repro.exec.executor import _validate_jobs

        _validate_jobs(jobs)
        self.jobs = jobs
        self.config = config or SupervisorConfig()
        self.config.validate()
        #: Cell ids that needed at least one retry in the latest
        #: :meth:`run_cells` call (they may still have succeeded).
        self.retried_cells: list[str] = []

    # ------------------------------------------------------------------

    def run_cells(
        self, specs: Sequence[CellSpec],
        on_cell: Callable[[CellSpec, RunResult, float], None] | None = None,
    ) -> list[tuple[RunResult | CellFailure, float]]:
        """(outcome, wall seconds) per spec, in submission order."""
        from repro.audit import paranoid_enabled
        from repro.profiling import profiling_dir
        from repro.trace import tracing_mode

        specs = list(specs)
        self.retried_cells = []
        if not specs:
            return []
        paranoid = paranoid_enabled()
        trace_mode = tracing_mode()
        profile_dir = profiling_dir()
        outcomes: dict[int, tuple[RunResult | CellFailure, float]] = {}
        #: Wall seconds burned by failed attempts, per cell index.
        burned: dict[int, float] = {}
        queue: list[_Pending] = [
            _Pending(i, spec, 1, 0.0) for i, spec in enumerate(specs)]
        running: list[_Running] = []

        try:
            while queue or running:
                now = time.monotonic()
                self._launch_ready(queue, running, now, paranoid, trace_mode,
                                   profile_dir)
                self._wait(queue, running, now)
                now = time.monotonic()
                for worker in list(running):
                    finished = self._collect(worker, now, specs, outcomes,
                                             burned, queue, on_cell)
                    if finished:
                        running.remove(worker)
        except BaseException:
            # The supervision loop itself failed -- e.g. the on_cell
            # store checkpoint raised StoreContentionError.  Tear down
            # every live worker before propagating, so an aborted sweep
            # never strands orphan processes.
            for worker in running:
                self._terminate(worker)
            raise

        return [outcomes[i] for i in range(len(specs))]

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def _launch_ready(self, queue: list[_Pending], running: list[_Running],
                      now: float, paranoid: bool,
                      trace_mode: str | None,
                      profile_dir: str | None) -> None:
        """Start waiting cells, oldest first, up to the jobs cap.

        A cell sitting out its backoff does not block later cells from
        taking the slot -- the scan keeps going past it.
        """
        for pending in list(queue):
            if len(running) >= self.jobs:
                break
            if pending.not_before > now:
                continue
            queue.remove(pending)
            parent_conn, child_conn = mp.Pipe(duplex=False)
            process = mp.Process(
                target=_supervised_worker,
                args=(child_conn, pending.spec.to_dict(), pending.attempt,
                      paranoid, trace_mode, profile_dir),
                daemon=True)
            process.start()
            child_conn.close()  # the worker holds the only write end
            deadline = (None if self.config.timeout is None
                        else now + self.config.timeout)
            running.append(
                _Running(pending, process, parent_conn, now, deadline))

    def _wait(self, queue: list[_Pending], running: list[_Running],
              now: float) -> None:
        """Sleep until something can happen: a report, a deadline, a
        backoff expiry -- capped by the heartbeat so worker *death*
        (which signals no pipe on some platforms until EOF) is noticed
        promptly."""
        if not running:
            wake = min((p.not_before for p in queue), default=now)
            delay = min(max(0.0, wake - now), self.config.heartbeat)
            if delay > 0:
                time.sleep(delay)
            return
        timeout = self.config.heartbeat
        for worker in running:
            if worker.deadline is not None:
                timeout = min(timeout, max(0.0, worker.deadline - now))
        if timeout > 0:
            connection_wait([w.conn for w in running], timeout)

    # ------------------------------------------------------------------
    # outcome collection
    # ------------------------------------------------------------------

    def _collect(self, worker: _Running, now: float,
                 specs: list[CellSpec],
                 outcomes: dict[int, tuple[RunResult | CellFailure, float]],
                 burned: dict[int, float],
                 queue: list[_Pending],
                 on_cell) -> bool:
        """Resolve one worker's state; True when it left ``running``."""
        pending = worker.pending
        elapsed = max(0.0, now - worker.started)
        if worker.conn.poll():
            try:
                report = worker.conn.recv()
            except (EOFError, OSError):
                # Pipe closed mid-report: the worker died writing.
                report = None
            self._reap(worker)
            if report is not None and report[0] == "ok":
                _tag, result, wall = report
                outcomes[pending.index] = (result, wall)
                if on_cell is not None:
                    on_cell(pending.spec, result, wall)
                return True
            if report is not None:
                _tag, kind_value, message = report
                burned[pending.index] = \
                    burned.get(pending.index, 0.0) + elapsed
                self._quarantine(pending, FailureKind(kind_value), message,
                                 outcomes, burned)
                return True
            self._retry_or_quarantine(
                pending, FailureKind.WORKER_CRASH,
                f"worker died before reporting (exit code "
                f"{worker.process.exitcode})", now, elapsed,
                outcomes, burned, queue)
            return True
        if not worker.process.is_alive():
            self._reap(worker)
            code = worker.process.exitcode
            self._retry_or_quarantine(
                pending, FailureKind.WORKER_CRASH,
                f"worker exited with code {code} before reporting",
                now, elapsed, outcomes, burned, queue)
            return True
        if worker.deadline is not None and now >= worker.deadline:
            self._terminate(worker)
            self._retry_or_quarantine(
                pending, FailureKind.TIMEOUT,
                f"cell exceeded its {self.config.timeout}s deadline",
                now, elapsed, outcomes, burned, queue)
            return True
        return False

    def _retry_or_quarantine(self, pending: _Pending, kind: FailureKind,
                             message: str, now: float, elapsed: float,
                             outcomes, burned, queue: list[_Pending]) -> None:
        burned[pending.index] = burned.get(pending.index, 0.0) + elapsed
        if pending.attempt <= self.config.max_retries:
            if pending.spec.cell_id not in self.retried_cells:
                self.retried_cells.append(pending.spec.cell_id)
            delay = self.config.backoff(pending.attempt)
            queue.append(_Pending(pending.index, pending.spec,
                                  pending.attempt + 1, now + delay))
            return
        self._quarantine(pending, kind,
                         f"{message} (retries exhausted)", outcomes, burned)

    def _quarantine(self, pending: _Pending, kind: FailureKind,
                    message: str, outcomes, burned) -> None:
        failure = CellFailure(
            cell_id=pending.spec.cell_id, kind=kind, message=message,
            attempts=pending.attempt)
        outcomes[pending.index] = (failure,
                                   burned.get(pending.index, 0.0))

    # ------------------------------------------------------------------
    # process lifecycle
    # ------------------------------------------------------------------

    @staticmethod
    def _reap(worker: _Running) -> None:
        """Join a worker that reported or died; never blocks for long."""
        worker.conn.close()
        worker.process.join(timeout=1.0)
        if worker.process.is_alive():  # reported, then wedged on exit
            worker.process.terminate()
            worker.process.join(timeout=1.0)

    @staticmethod
    def _terminate(worker: _Running) -> None:
        """Tear down a hung worker, escalating SIGTERM -> SIGKILL."""
        worker.conn.close()
        worker.process.terminate()
        worker.process.join(timeout=1.0)
        if worker.process.is_alive():
            worker.process.kill()
            worker.process.join(timeout=1.0)
