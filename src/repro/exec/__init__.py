"""The sweep execution substrate: specs, executors, result store.

Experiments *declare* their parameter grid as a
:class:`~repro.exec.spec.Sweep` of frozen
:class:`~repro.exec.spec.CellSpec`\\ s; :func:`~repro.exec.executor.run_sweep`
executes it serially or on a process pool, consults the
content-addressed :class:`~repro.exec.store.ResultStore` for resumable
caching, and hands the results back for figure assembly.  See
DESIGN.md, "The exec layer".
"""

from repro.exec.executor import (
    ParallelExecutor,
    SerialExecutor,
    SweepOutcome,
    execute_cell,
    finish_figure,
    make_executor,
    run_sweep,
)
from repro.exec.supervisor import (
    CellFailure,
    CellSupervisor,
    FailureKind,
    SupervisorConfig,
)
from repro.exec.spec import (
    SPEC_SCHEMA_VERSION,
    CellSpec,
    Sweep,
    fault_params,
    faults_from_params,
    sweep_from_configs,
)
from repro.exec.store import (
    QuarantineReason,
    ResultStore,
    STORE_CRASH_EXIT,
    StoreCompactReport,
    StoreGcReport,
    StoreLockConfig,
    StoreVerifyReport,
    cell_key,
    figure_key,
)

__all__ = [
    "CellFailure",
    "CellSpec",
    "CellSupervisor",
    "FailureKind",
    "ParallelExecutor",
    "QuarantineReason",
    "ResultStore",
    "SPEC_SCHEMA_VERSION",
    "STORE_CRASH_EXIT",
    "SerialExecutor",
    "StoreCompactReport",
    "StoreGcReport",
    "StoreLockConfig",
    "StoreVerifyReport",
    "SupervisorConfig",
    "Sweep",
    "SweepOutcome",
    "cell_key",
    "figure_key",
    "execute_cell",
    "fault_params",
    "faults_from_params",
    "finish_figure",
    "make_executor",
    "run_sweep",
    "sweep_from_configs",
]
