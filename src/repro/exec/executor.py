"""Cell executors: serial, process-pool parallel, and the sweep driver.

Both executors run the same pure function, :func:`execute_cell`, over
:class:`~repro.exec.spec.CellSpec`\\ s.  Each cell builds its own seeded
:class:`~repro.machine.Machine`, so cells share no state and the
parallel executor's results are bit-identical to the serial one's --
results are gathered back into sweep order regardless of completion
order, and a property test enforces the equality.

Fault-induced failures keep their PR-1 semantics: the harness reports
them as crashed/degraded *cells* (``RunResult.status``), so one faulted
cell never poisons the pool.  Harness bugs (``ExperimentError``,
``ConfigError``) still propagate and abort the sweep.

:func:`run_sweep` adds the store integration: with ``resume=True``
cells whose content hash is already in the :class:`ResultStore` are
skipped entirely, which is what lets an interrupted ``run all`` restart
where it died.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import ConfigError
from repro.exec.spec import CellSpec, Sweep, faults_from_params
from repro.exec.store import ResultStore
from repro.experiments.runner import FigureResult, RunResult, SweepStats


def execute_cell(spec: CellSpec) -> RunResult:
    """Run one cell, self-contained: resolve the harness's cell runner,
    install the cell's fault plan, run, and freeze the result.

    This is the unit both executors (and worker processes) invoke; it
    must depend on nothing but the spec.
    """
    # Deferred imports keep module import acyclic (registry imports the
    # experiment modules, which import this module for run_sweep).
    from repro.experiments.registry import cell_runner
    from repro.faults.plan import (
        default_fault_config,
        set_default_fault_config,
    )

    runner = cell_runner(spec.experiment_id)
    ambient = default_fault_config()
    set_default_fault_config(faults_from_params(spec.faults))
    try:
        result = runner(spec)
    finally:
        set_default_fault_config(ambient)
    if result.timeline is not None:
        # Gauges close over live VM state: not picklable, not JSON.
        result.timeline.freeze()
    return result


def _timed_execute(spec: CellSpec) -> tuple[RunResult, float]:
    started = time.perf_counter()
    result = execute_cell(spec)
    return result, time.perf_counter() - started


class SerialExecutor:
    """Run cells one after another in this process (the default)."""

    jobs = 1

    def run_cells(self, specs: Sequence[CellSpec]
                  ) -> list[tuple[RunResult, float]]:
        """(result, wall seconds) per spec, in submission order."""
        return [_timed_execute(spec) for spec in specs]


class ParallelExecutor:
    """Run cells on a process pool, preserving deterministic order.

    Futures are gathered by submission index, never by completion
    order, so the visible result sequence is independent of scheduling.
    Worker exceptions surface on :meth:`run_cells` exactly as they
    would under :class:`SerialExecutor`.
    """

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ConfigError(f"jobs must be a positive integer: {jobs}")
        self.jobs = jobs

    def run_cells(self, specs: Sequence[CellSpec]
                  ) -> list[tuple[RunResult, float]]:
        """(result, wall seconds) per spec, in submission order."""
        specs = list(specs)
        workers = min(self.jobs, len(specs))
        if workers <= 1:
            return SerialExecutor().run_cells(specs)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_timed_execute, spec) for spec in specs]
            return [future.result() for future in futures]


def make_executor(jobs: int) -> SerialExecutor | ParallelExecutor:
    """The executor for a ``--jobs`` value (1 = serial)."""
    if jobs < 1:
        raise ConfigError(f"jobs must be a positive integer: {jobs}")
    return SerialExecutor() if jobs == 1 else ParallelExecutor(jobs)


@dataclass
class SweepOutcome:
    """Everything :func:`run_sweep` learned about one sweep."""

    sweep: Sweep
    #: Cell id -> result, in sweep (presentation) order.
    results: dict[str, RunResult]
    #: Cell id -> wall seconds, for the cells executed this run.
    wall_seconds: dict[str, float] = field(default_factory=dict)
    executed: int = 0
    cached: int = 0

    @property
    def stats(self) -> SweepStats:
        """Compact accounting for CLI summaries and benchmarks."""
        return SweepStats(
            experiment_id=self.sweep.experiment_id,
            cells=len(self.sweep.cells),
            executed=self.executed,
            cached=self.cached,
            wall_seconds=sum(self.wall_seconds.values()),
        )


def run_sweep(sweep: Sweep, *,
              executor: SerialExecutor | ParallelExecutor | None = None,
              store: ResultStore | None = None,
              resume: bool = False) -> SweepOutcome:
    """Execute a sweep: resolve cache hits, run the rest, persist.

    With ``resume=True`` every cell already present in ``store`` (same
    content hash) is returned from cache without executing; a store is
    then mandatory.  Freshly executed cells are persisted to ``store``
    when one is given, resume or not.
    """
    if resume and store is None:
        raise ConfigError(
            "resume requires a results store (pass --results-dir)")
    executor = executor or SerialExecutor()

    cached: dict[str, RunResult] = {}
    pending: list[CellSpec] = []
    for spec in sweep.cells:
        hit = store.load_cell(spec) if (resume and store) else None
        if hit is not None:
            cached[spec.cell_id] = hit
        else:
            pending.append(spec)

    executed = executor.run_cells(pending)

    walls: dict[str, float] = {}
    fresh: dict[str, RunResult] = {}
    for spec, (result, wall) in zip(pending, executed):
        fresh[spec.cell_id] = result
        walls[spec.cell_id] = wall
        if store is not None:
            store.store_cell(spec, result, wall)

    results = {
        spec.cell_id: (cached.get(spec.cell_id) or fresh[spec.cell_id])
        for spec in sweep.cells
    }
    return SweepOutcome(sweep=sweep, results=results, wall_seconds=walls,
                        executed=len(fresh), cached=len(cached))


def finish_figure(figure: FigureResult,
                  outcome: SweepOutcome | None = None,
                  store: ResultStore | None = None) -> FigureResult:
    """Attach sweep stats to an assembled figure and persist it."""
    if outcome is not None:
        figure.stats = outcome.stats
    if store is not None:
        store.store_figure(figure)
    return figure


#: Signature every harness's cell runner satisfies.
CellRunner = Callable[[CellSpec], RunResult]
