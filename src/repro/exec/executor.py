"""Cell executors: serial, process-pool parallel, and the sweep driver.

All executors run the same pure function, :func:`execute_cell`, over
:class:`~repro.exec.spec.CellSpec`\\ s.  Each cell builds its own seeded
:class:`~repro.machine.Machine`, so cells share no state and the
parallel executor's results are bit-identical to the serial one's --
results are gathered back into sweep order regardless of completion
order, and a property test enforces the equality.

Fault-induced failures keep their PR-1 semantics: the harness reports
them as crashed/degraded *cells* (``RunResult.status``), so one faulted
cell never poisons the pool.  Harness bugs (``ExperimentError``,
``ConfigError``) still propagate and abort the sweep.  The third
executor, :class:`~repro.exec.supervisor.CellSupervisor`, extends the
cell-never-poisons-the-sweep property to the *process* level: hung or
crashed workers are retried and, failing that, quarantined as typed
:class:`~repro.exec.supervisor.CellFailure` records.

:func:`run_sweep` adds the store integration: with ``resume=True``
cells whose content hash is already in the :class:`ResultStore` are
skipped entirely, which is what lets an interrupted ``run all`` restart
where it died.  Fresh cells are checkpointed to the store *as each one
finishes* (the ``on_cell`` callback every executor honours), so even a
sweep that dies mid-batch leaves its completed cells resumable.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import ConfigError
from repro.exec.spec import CellSpec, Sweep, faults_from_params
from repro.exec.store import ResultStore, cell_key
from repro.exec.supervisor import (
    CellFailure,
    CellSupervisor,
    SupervisorConfig,
)
from repro.experiments.runner import (
    ConfigName,
    FigureResult,
    RunResult,
    SweepStats,
)


def execute_cell(spec: CellSpec) -> RunResult:
    """Run one cell, self-contained: resolve the harness's cell runner,
    install the cell's fault plan and swap backend, run, and freeze the
    result.

    This is the unit all executors (and worker processes) invoke; it
    must depend on nothing but the spec.
    """
    # Deferred imports keep module import acyclic (registry imports the
    # experiment modules, which import this module for run_sweep).
    from repro.experiments.registry import cell_runner
    from repro.faults.plan import (
        default_fault_config,
        set_default_fault_config,
    )
    from repro.profiling import profile_runner, profiling_dir
    from repro.swapback.base import (
        default_swap_backend,
        set_default_swap_backend,
    )

    runner = cell_runner(spec.experiment_id)
    ambient = default_fault_config()
    ambient_backend = default_swap_backend()
    set_default_fault_config(faults_from_params(spec.faults))
    set_default_swap_backend(spec.backend)
    try:
        if profiling_dir() is not None:
            result = profile_runner(runner, spec)
        else:
            result = runner(spec)
    finally:
        set_default_fault_config(ambient)
        set_default_swap_backend(ambient_backend)
    if result.timeline is not None:
        # Gauges close over live VM state: not picklable, not JSON.
        result.timeline.freeze()
    return result


def _timed_execute(spec: CellSpec) -> tuple[RunResult, float]:
    started = time.perf_counter()
    result = execute_cell(spec)
    return result, time.perf_counter() - started


def _validate_jobs(jobs: int) -> None:
    """The one authoritative ``--jobs`` check (executors and factory)."""
    if jobs < 1:
        raise ConfigError(f"jobs must be a positive integer: {jobs}")


#: Per-completed-cell callback: ``(spec, result, wall_seconds)``.  Every
#: executor invokes it the moment a cell finishes, in completion order;
#: run_sweep uses it to checkpoint the store incrementally.
OnCell = Callable[[CellSpec, RunResult, float], None]


class SerialExecutor:
    """Run cells one after another in this process (the default)."""

    jobs = 1

    def run_cells(self, specs: Sequence[CellSpec],
                  on_cell: OnCell | None = None,
                  ) -> list[tuple[RunResult, float]]:
        """(result, wall seconds) per spec, in submission order."""
        results: list[tuple[RunResult, float]] = []
        for spec in specs:
            result, wall = _timed_execute(spec)
            if on_cell is not None:
                on_cell(spec, result, wall)
            results.append((result, wall))
        return results


def _init_pool_worker(paranoid: bool, trace_mode: str | None,
                      profile_dir: str | None) -> None:
    """Pool-worker initializer: carry the ambient paranoid, tracing,
    and profiling flags across the process boundary (fork inherits
    them, spawn would not)."""
    from repro.audit import set_paranoid
    from repro.profiling import set_profiling
    from repro.trace import set_tracing

    set_paranoid(paranoid)
    set_tracing(trace_mode)
    set_profiling(profile_dir)


class ParallelExecutor:
    """Run cells on a process pool, preserving deterministic order.

    Futures are gathered by submission index, never by completion
    order, so the visible result sequence is independent of scheduling.
    Worker exceptions surface on :meth:`run_cells` exactly as they
    would under :class:`SerialExecutor`.
    """

    def __init__(self, jobs: int) -> None:
        _validate_jobs(jobs)
        self.jobs = jobs

    def run_cells(self, specs: Sequence[CellSpec],
                  on_cell: OnCell | None = None,
                  ) -> list[tuple[RunResult, float]]:
        """(result, wall seconds) per spec, in submission order."""
        from repro.audit import paranoid_enabled
        from repro.profiling import profiling_dir
        from repro.trace import tracing_mode

        specs = list(specs)
        workers = min(self.jobs, len(specs))
        if workers <= 1:
            return SerialExecutor().run_cells(specs, on_cell)
        with ProcessPoolExecutor(
                max_workers=workers, initializer=_init_pool_worker,
                initargs=(paranoid_enabled(), tracing_mode(),
                          profiling_dir())) as pool:
            futures = [pool.submit(_timed_execute, spec) for spec in specs]
            if on_cell is not None:
                spec_of = dict(zip(futures, specs))
                for future in as_completed(futures):
                    result, wall = future.result()
                    on_cell(spec_of[future], result, wall)
            return [future.result() for future in futures]


def make_executor(jobs: int, *, timeout: float | None = None,
                  retries: int | None = None, supervise: bool = False,
                  ) -> SerialExecutor | ParallelExecutor | CellSupervisor:
    """The executor for a ``--jobs`` value (1 = serial).

    Asking for any supervision feature -- a per-cell ``timeout``, an
    explicit ``retries`` budget, or ``supervise=True`` (the CLI sets it
    for worker-kill chaos) -- selects the :class:`CellSupervisor`;
    otherwise the plain executors keep their zero-overhead paths.
    """
    _validate_jobs(jobs)
    if supervise or timeout is not None or retries is not None:
        overrides = {} if retries is None else {"max_retries": retries}
        return CellSupervisor(
            jobs, SupervisorConfig(timeout=timeout, **overrides))
    return SerialExecutor() if jobs == 1 else ParallelExecutor(jobs)


def _failure_result(spec: CellSpec, failure: CellFailure) -> RunResult:
    """The crashed placeholder standing in for a quarantined cell, so
    figure assembly renders an explicit hole exactly as it does for
    fault-crashed cells."""
    try:
        config = (ConfigName(spec.config) if spec.config
                  else ConfigName.BASELINE)
    except ValueError:
        config = ConfigName.BASELINE
    return RunResult(config=config, runtime=None, crashed=True, counters={},
                     crash_reason=failure.describe())


@dataclass
class SweepOutcome:
    """Everything :func:`run_sweep` learned about one sweep."""

    sweep: Sweep
    #: Cell id -> result, in sweep (presentation) order.  Quarantined
    #: cells appear as crashed placeholder results; their typed records
    #: are in :attr:`failures`.
    results: dict[str, RunResult]
    #: Cell id -> wall seconds, for the cells executed this run.
    wall_seconds: dict[str, float] = field(default_factory=dict)
    executed: int = 0
    cached: int = 0
    #: Cell id -> typed failure record for quarantined cells.
    failures: dict[str, CellFailure] = field(default_factory=dict)
    #: Cells the supervisor retried at least once this run.
    retried: int = 0
    #: Cell id -> wall seconds the store recorded when each cache-hit
    #: cell originally executed.
    cached_wall_seconds: dict[str, float] = field(default_factory=dict)
    #: Cache hits whose stored result has no trace although tracing was
    #: requested this run (trace unavailable (cached)).
    cached_traceless: int = 0

    @property
    def stats(self) -> SweepStats:
        """Compact accounting for CLI summaries and benchmarks."""
        return SweepStats(
            experiment_id=self.sweep.experiment_id,
            cells=len(self.sweep.cells),
            executed=self.executed,
            cached=self.cached,
            wall_seconds=sum(self.wall_seconds.values()),
            retried=self.retried,
            quarantined=len(self.failures),
            cached_wall_seconds=sum(self.cached_wall_seconds.values()),
            cached_traceless=self.cached_traceless,
        )


def run_sweep(sweep: Sweep, *,
              executor: SerialExecutor | ParallelExecutor | CellSupervisor
              | None = None,
              store: ResultStore | None = None,
              resume: bool = False) -> SweepOutcome:
    """Execute a sweep: resolve cache hits, run the rest, persist.

    With ``resume=True`` every cell already present in ``store`` (same
    content hash) is returned from cache without executing; a store is
    then mandatory.  Freshly executed cells are checkpointed to
    ``store`` as each finishes, resume or not.  Quarantined cells are
    *not* stored -- a later ``--resume`` retries them.
    """
    if resume and store is None:
        raise ConfigError(
            "resume requires a results store (pass --results-dir)")
    executor = executor or SerialExecutor()

    cached: dict[str, RunResult] = {}
    cached_walls: dict[str, float] = {}
    pending: list[CellSpec] = []
    for spec in sweep.cells:
        entry = store.load_cell_entry(spec) if (resume and store) else None
        if entry is not None:
            cached[spec.cell_id], cached_walls[spec.cell_id] = entry
        else:
            pending.append(spec)

    on_cell = store.store_cell if store is not None else None
    executed = executor.run_cells(pending, on_cell)

    walls: dict[str, float] = {}
    fresh: dict[str, RunResult] = {}
    failures: dict[str, CellFailure] = {}
    for spec, (outcome, wall) in zip(pending, executed):
        walls[spec.cell_id] = wall
        if isinstance(outcome, CellFailure):
            failures[spec.cell_id] = outcome
            fresh[spec.cell_id] = _failure_result(spec, outcome)
        else:
            fresh[spec.cell_id] = outcome

    results = {
        spec.cell_id: (cached.get(spec.cell_id) or fresh[spec.cell_id])
        for spec in sweep.cells
    }
    from repro.trace import tracing_mode
    cached_traceless = 0
    if tracing_mode() is not None:
        # Tracing is not part of the cell hash, so a traced --resume can
        # hit entries recorded without it; flag them rather than pretend
        # an empty trace was captured.
        cached_traceless = sum(
            1 for result in cached.values()
            if getattr(result, "trace", None) is None)
    return SweepOutcome(
        sweep=sweep, results=results, wall_seconds=walls,
        executed=len(fresh) - len(failures), cached=len(cached),
        failures=failures,
        retried=len(getattr(executor, "retried_cells", ())),
        cached_wall_seconds=cached_walls,
        cached_traceless=cached_traceless)


def finish_figure(figure: FigureResult,
                  outcome: SweepOutcome | None = None,
                  store: ResultStore | None = None) -> FigureResult:
    """Attach sweep stats to an assembled figure and persist it.

    The stored figure record is stamped with the content keys of its
    constituent cells, so a later :meth:`ResultStore.load_figure` with
    the current sweep's keys refuses a figure assembled from cells that
    have since changed (spec edits, schema bumps) instead of serving
    stale data.
    """
    if outcome is not None:
        figure.stats = outcome.stats
    if store is not None:
        keys = None
        if outcome is not None:
            keys = [cell_key(spec) for spec in outcome.sweep.cells]
        store.store_figure(figure, cell_keys=keys)
    return figure


#: Signature every harness's cell runner satisfies.
CellRunner = Callable[[CellSpec], RunResult]
